"""Tests for hubness analysis."""

import numpy as np
import pytest

from repro.datasets import gaussian_blob
from repro.indexes import LinearScanIndex
from repro.mining import hubness_counts, hubness_skewness, knn_digraph


class TestHubnessCounts:
    def test_in_degree_sum(self):
        data = gaussian_blob(200, 4, seed=0)
        counts = hubness_counts(LinearScanIndex(data), k=5, t=100.0)
        assert counts.sum() >= 5 * 200  # ties can only add edges

    def test_skew_grows_with_dimension(self):
        low = gaussian_blob(400, 2, seed=1)
        high = gaussian_blob(400, 32, seed=1)
        skew_low = hubness_skewness(LinearScanIndex(low), k=5, t=50.0)
        skew_high = hubness_skewness(LinearScanIndex(high), k=5, t=50.0)
        assert skew_high > skew_low

    def test_degenerate_data_zero_skew(self):
        data = np.tile(np.arange(4, dtype=float)[:, None], (25, 1))
        # Constant count distributions have zero std -> skew defined as 0.
        value = hubness_skewness(LinearScanIndex(np.unique(data)[:, None]), k=1, t=50.0)
        assert np.isfinite(value)


class TestKnnDigraph:
    def test_graph_structure(self):
        data = gaussian_blob(120, 3, seed=2)
        index = LinearScanIndex(data)
        graph = knn_digraph(index, k=4, t=100.0)
        assert graph.number_of_nodes() == 120
        # Out-degree of each node is >= k (ties included).
        out_degrees = [graph.out_degree(n) for n in graph.nodes]
        assert min(out_degrees) >= 4
        # Edges agree with the forward definition on a sample.
        for u, v in list(graph.edges)[:20]:
            dists = np.linalg.norm(data - data[u], axis=1)
            dists[u] = np.inf
            kth = np.sort(dists)[3]
            assert dists[v] <= kth * (1 + 1e-9)

    def test_in_degrees_match_counts(self):
        data = gaussian_blob(100, 3, seed=4)
        index = LinearScanIndex(data)
        graph = knn_digraph(index, k=3, t=100.0)
        counts = hubness_counts(index, k=3, t=100.0)
        for node in graph.nodes:
            assert graph.in_degree(node) == counts[node]
