"""Tests for the reverse-kNN self-join."""

import numpy as np
import pytest

from repro.baselines import NaiveRkNN
from repro.indexes import LinearScanIndex
from repro.mining import rknn_self_join


class TestJoinCorrectness:
    def test_matches_naive_at_large_t(self, small_gaussian, naive_k5):
        join = rknn_self_join(LinearScanIndex(small_gaussian), k=5, t=100.0)
        for qi in range(0, 300, 37):
            expected = naive_k5.query_ids(query_index=qi)
            assert np.array_equal(join.neighborhoods[qi], expected)

    def test_covers_all_active_points(self, small_gaussian):
        join = rknn_self_join(LinearScanIndex(small_gaussian), k=5, t=4.0)
        assert set(join.neighborhoods) == set(range(len(small_gaussian)))

    def test_subset_of_points(self, small_gaussian):
        join = rknn_self_join(
            LinearScanIndex(small_gaussian), k=5, t=4.0, point_ids=[3, 7]
        )
        assert set(join.neighborhoods) == {3, 7}

    def test_respects_removals(self, small_gaussian):
        index = LinearScanIndex(small_gaussian)
        index.remove(0)
        join = rknn_self_join(index, k=5, t=100.0)
        assert 0 not in join.neighborhoods
        assert all(0 not in ids for ids in join.neighborhoods.values())


class TestJoinOutputs:
    def test_counts_and_array_consistent(self, small_gaussian):
        join = rknn_self_join(LinearScanIndex(small_gaussian), k=5, t=6.0)
        counts = join.counts()
        array = join.count_array()
        for pid, count in counts.items():
            assert array[pid] == count

    def test_degree_sum_identity(self, small_gaussian):
        """Sum of in-degrees equals sum of out-degrees (= ~ k * n)."""
        join = rknn_self_join(LinearScanIndex(small_gaussian), k=5, t=100.0)
        total_in = sum(join.counts().values())
        # Out-degree is k per point except for boundary ties.
        assert total_in >= 5 * len(small_gaussian)
        assert total_in <= 5.5 * len(small_gaussian)

    def test_totals_aggregate(self, small_gaussian):
        join = rknn_self_join(LinearScanIndex(small_gaussian), k=5, t=4.0)
        assert join.totals.num_retrieved >= len(small_gaussian)
        assert join.totals.num_distance_calls > 0
        assert join.totals.total_seconds > 0


class TestJoinValidation:
    def test_invalid_parameters(self, small_gaussian):
        with pytest.raises(ValueError):
            rknn_self_join(LinearScanIndex(small_gaussian), k=0, t=1.0)
        with pytest.raises(ValueError):
            rknn_self_join(LinearScanIndex(small_gaussian), k=5, t=-1.0)
        with pytest.raises(ValueError):
            rknn_self_join(LinearScanIndex(small_gaussian), k=5, t=2.0, variant="x")
