"""Tests for ODIN outlier scoring and influence sets."""

import numpy as np
import pytest

from repro.datasets import gaussian_mixture
from repro.indexes import LinearScanIndex
from repro.mining import influence_set, odin_outliers, odin_scores


@pytest.fixture(scope="module")
def contaminated():
    rng = np.random.default_rng(3)
    inliers = gaussian_mixture(400, dim=4, n_clusters=3, separation=5.0, seed=3)
    directions = rng.normal(size=(10, 4))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    outliers = directions * 40.0
    data = np.vstack([inliers, outliers])
    return data, set(range(400, 410))


class TestOdinScores:
    def test_outliers_score_low(self, contaminated):
        data, outlier_ids = contaminated
        scores = odin_scores(LinearScanIndex(data), k=8, t=6.0)
        inlier_mean = scores[: 400].mean()
        outlier_mean = scores[400:].mean()
        assert outlier_mean < 0.5 * inlier_mean

    def test_scores_are_in_degrees(self, contaminated):
        data, _ = contaminated
        from repro.baselines import NaiveRkNN

        scores = odin_scores(LinearScanIndex(data), k=8, t=100.0)
        naive = NaiveRkNN(data, k=8)
        for qi in [0, 100, 405]:
            assert scores[qi] == len(naive.query_ids(query_index=qi))


class TestOdinOutliers:
    def test_threshold_rule(self, contaminated):
        data, outlier_ids = contaminated
        flagged = set(
            odin_outliers(LinearScanIndex(data), k=8, t=6.0, threshold=2.0).tolist()
        )
        assert len(outlier_ids & flagged) >= 8  # most planted outliers found

    def test_fraction_rule_size(self, contaminated):
        data, _ = contaminated
        flagged = odin_outliers(LinearScanIndex(data), k=8, t=6.0, fraction=0.05)
        assert flagged.shape[0] == round(0.05 * len(data))

    def test_requires_exactly_one_rule(self, contaminated):
        data, _ = contaminated
        index = LinearScanIndex(data)
        with pytest.raises(ValueError, match="exactly one"):
            odin_outliers(index, k=8, t=6.0)
        with pytest.raises(ValueError, match="exactly one"):
            odin_outliers(index, k=8, t=6.0, threshold=1.0, fraction=0.1)

    def test_fraction_validated(self, contaminated):
        data, _ = contaminated
        with pytest.raises(ValueError, match="fraction"):
            odin_outliers(LinearScanIndex(data), k=8, t=6.0, fraction=1.5)


class TestInfluenceSet:
    def test_matches_rknn(self, contaminated):
        data, _ = contaminated
        from repro.baselines import NaiveRkNN

        index = LinearScanIndex(data)
        naive = NaiveRkNN(data, k=8)
        got = influence_set(index, point_id=7, k=8, t=100.0)
        assert np.array_equal(got, naive.query_ids(query_index=7))

    def test_isolated_point_influences_nothing(self, contaminated):
        data, _ = contaminated
        index = LinearScanIndex(data)
        # A far outlier should be in (almost) no one's neighborhood.
        influence = influence_set(index, point_id=405, k=8, t=100.0)
        assert influence.shape[0] <= 2
