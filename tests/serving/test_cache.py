"""ResultCache semantics: exact keys, epoch invalidation, LRU bounds."""

import numpy as np
import pytest

from repro.serving import ResultCache, query_cache_key
from repro.service import QuerySpec

SPEC = QuerySpec(k=5, t=4.0)


def test_query_cache_key_forms():
    assert query_cache_key(query_index=3) == ("member", 3)
    kind, payload = query_cache_key(np.array([1.0, 2.0]))
    assert kind == "raw"
    assert payload == np.array([1.0, 2.0]).tobytes()
    with pytest.raises(ValueError, match="exactly one"):
        query_cache_key()
    with pytest.raises(ValueError, match="exactly one"):
        query_cache_key(np.array([1.0]), query_index=0)


def test_hit_requires_every_key_component():
    cache = ResultCache()
    cache.put(3, "rdt+", SPEC, "answer", query_index=7)
    assert cache.get(3, "rdt+", SPEC, query_index=7) == "answer"
    assert cache.get(2, "rdt+", SPEC, query_index=7) is None  # other epoch
    assert cache.get(3, "rdt", SPEC, query_index=7) is None  # other engine
    assert cache.get(3, "rdt+", SPEC.replace(k=6), query_index=7) is None
    assert cache.get(3, "rdt+", SPEC, query_index=8) is None
    assert cache.stats() == {
        "hits": 1, "misses": 4, "evicted": 0, "invalidated": 0, "size": 1,
    }


def test_raw_queries_key_by_exact_bytes():
    cache = ResultCache()
    q = np.array([0.5, -1.25])
    cache.put(0, "rdt+", SPEC, "answer", q)
    assert cache.get(0, "rdt+", SPEC, q.copy()) == "answer"
    assert cache.get(0, "rdt+", SPEC, q + 1e-12) is None


def test_newer_epoch_purges_older_entries():
    cache = ResultCache()
    for i in range(4):
        cache.put(1, "rdt+", SPEC, f"old-{i}", query_index=i)
    assert len(cache) == 4
    cache.put(2, "rdt+", SPEC, "new", query_index=0)
    assert len(cache) == 1
    assert cache.get(1, "rdt+", SPEC, query_index=1) is None
    assert cache.get(2, "rdt+", SPEC, query_index=0) == "new"
    assert cache.stats()["invalidated"] == 4


def test_late_put_from_superseded_epoch_is_dropped():
    cache = ResultCache()
    cache.put(5, "rdt+", SPEC, "current", query_index=0)
    cache.put(4, "rdt+", SPEC, "late", query_index=1)
    assert cache.get(4, "rdt+", SPEC, query_index=1) is None
    assert len(cache) == 1


def test_lru_eviction_keeps_recently_used():
    cache = ResultCache(maxsize=2)
    cache.put(0, "rdt+", SPEC, "a", query_index=0)
    cache.put(0, "rdt+", SPEC, "b", query_index=1)
    assert cache.get(0, "rdt+", SPEC, query_index=0) == "a"  # refresh a
    cache.put(0, "rdt+", SPEC, "c", query_index=2)  # evicts b
    assert cache.get(0, "rdt+", SPEC, query_index=1) is None
    assert cache.get(0, "rdt+", SPEC, query_index=0) == "a"
    assert cache.stats()["evicted"] == 1


def test_maxsize_validation():
    with pytest.raises(ValueError, match="maxsize"):
        ResultCache(maxsize=0)
