"""Adverse-conditions harness: reader/writer storms with exactness checks.

The MVCC contract under fire: worker threads hammer one
:class:`repro.Service` with a mix of inserts, removals, and queries, and
afterwards **every** versioned answer is re-verified against brute-force
ground truth computed over the published snapshot of the epoch it
claims — no answer may mix epochs (a "torn read"), trail the data it was
computed against, or observe an unpublished state.

Determinism: threads make scheduling nondeterministic, but the *check*
is not — whatever interleaving happened, each recorded
``(epoch, query, ids)`` triple either matches its epoch's ground truth
or the test fails.  Snapshots for every published epoch are recorded by
a Service subclass hooking ``_publish`` (called under the writer lock,
so recording is race-free).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro.baselines import rknn_brute_force

K = 5
N = 150
DIM = 4


class RecordingService(repro.Service):
    """A Service that keeps the frozen snapshot of every published epoch."""

    def __init__(self, *args, **kwargs):
        self.recorded = {}
        super().__init__(*args, **kwargs)
        self.recorded[self._head.epoch] = self._head.snapshot

    def _publish(self):
        super()._publish()
        self.recorded[self._head.epoch] = self._head.snapshot


def _truth(snapshot, query):
    """Exact RkNN ids (index id space) over one recorded snapshot."""
    active = snapshot.active_ids()
    local = rknn_brute_force(snapshot.points[active], K, query)
    return sorted(int(active[i]) for i in local)


def _storm(service, data, *, n_readers=4, n_mutations=40, query_fn=None):
    """Run the mixed workload; return the readers' recorded triples.

    Deterministic overlap by construction, not by sleep tuning: each
    reader records one answer *before* the writers start (the writers
    gate on it) and one *after* they finish, so the record always spans
    at least two epochs; in between, readers query continuously while
    the writers churn.
    """
    rng = np.random.default_rng(17)
    queries = rng.normal(size=(16, DIM))
    query_fn = query_fn or service.query_versioned
    records = []
    records_lock = threading.Lock()
    readers_started = threading.Barrier(n_readers + 2)
    writers_done = threading.Event()

    def one_query(local, mine):
        query = queries[int(local.integers(queries.shape[0]))]
        epoch, result = query_fn(query)
        mine.append((epoch, query, sorted(result.ids.tolist())))

    def reader(seed):
        local = np.random.default_rng(seed)
        mine = []
        one_query(local, mine)  # guaranteed pre-churn (writers gate on it)
        readers_started.wait()
        while not writers_done.is_set():
            one_query(local, mine)
        one_query(local, mine)  # guaranteed post-churn
        with records_lock:
            records.extend(mine)

    def writer(seed):
        local = np.random.default_rng(seed)
        readers_started.wait()
        for _ in range(n_mutations):
            if local.random() < 0.6:
                service.insert(local.normal(size=DIM))
            else:
                try:
                    service.remove(int(local.integers(N)))
                except KeyError:
                    pass  # already removed by the other writer — fine

    with ThreadPoolExecutor(max_workers=n_readers + 2) as pool:
        futures = [pool.submit(reader, 100 + i) for i in range(n_readers)]
        writer_futures = [pool.submit(writer, 200 + i) for i in range(2)]
        try:
            for future in writer_futures:
                future.result(timeout=120)
        finally:
            writers_done.set()
        for future in futures:
            future.result(timeout=120)
    return records


@pytest.mark.parametrize("engine", ["naive", "rdt"])
def test_every_concurrent_answer_is_exact_for_its_epoch(engine):
    """``naive`` exercises the data-snapshot path (per-epoch rebuild +
    id translation); ``rdt`` the live-index path.  RDT+ is deliberately
    absent: its Section 4.3 candidate reduction documents a possible
    precision loss on raw queries, so brute force is not its oracle."""
    data = np.random.default_rng(3).normal(size=(N, DIM))
    # t far above any GED estimate for 4-d Gaussians: RDT stays exact,
    # so brute force over the epoch's snapshot is the oracle for both.
    service = RecordingService(
        data, backend="kd", engine=engine,
        defaults=repro.QuerySpec(k=K, t=50.0),
    )
    records = _storm(service, data)

    assert records, "readers recorded nothing"
    epochs_seen = {epoch for epoch, _, _ in records}
    # The storm must actually have interleaved reads with publications.
    assert len(epochs_seen) > 1, "workload never overlapped epochs"
    assert epochs_seen <= set(service.recorded), "answer cites unknown epoch"
    truth_cache = {}
    for epoch, query, ids in records:
        key = (epoch, query.tobytes())
        if key not in truth_cache:
            truth_cache[key] = _truth(service.recorded[epoch], query)
        assert ids == truth_cache[key], (
            f"epoch {epoch}: got {ids}, expected {truth_cache[key]}"
        )


def test_coalesced_answers_are_exact_under_churn():
    """Same exactness bar with the QueryCoalescer in front: batching
    must never mix a batch across epochs."""
    data = np.random.default_rng(4).normal(size=(N, DIM))
    service = RecordingService(
        data, backend="kd", engine="naive", defaults=repro.QuerySpec(k=K),
    )
    with repro.QueryCoalescer(service, max_wait=0.002) as coalescer:
        records = _storm(
            service, data, n_mutations=20,
            query_fn=coalescer.query_versioned,
        )
    assert len({epoch for epoch, _, _ in records}) > 1
    for epoch, query, ids in records:
        assert ids == _truth(service.recorded[epoch], query)


def test_mutations_linearize_cleanly_under_contention():
    """Concurrent inserts/removes through the writer lock: no lost
    updates, and the final epoch equals the number of mutations."""
    data = np.random.default_rng(6).normal(size=(N, DIM))
    service = repro.Service(data, backend="kd", engine="rdt+")
    inserted = []
    inserted_lock = threading.Lock()

    def insert_worker(seed):
        local = np.random.default_rng(seed)
        mine = [service.insert(local.normal(size=DIM)) for _ in range(20)]
        with inserted_lock:
            inserted.extend(mine)

    with ThreadPoolExecutor(max_workers=4) as pool:
        for future in [pool.submit(insert_worker, s) for s in range(4)]:
            future.result(timeout=60)

    assert len(inserted) == 80
    assert len(set(inserted)) == 80, "two inserts claimed the same id"
    assert service.epoch == 80
    active = set(service.index.active_ids().tolist())
    assert set(inserted) <= active and len(active) == N + 80
