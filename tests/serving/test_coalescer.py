"""QueryCoalescer: batched dispatch must be invisible to callers.

Every test asserts the one property that matters — a coalesced answer is
the same answer a solo :meth:`repro.Service.query` gives — plus the
mechanics around it: grouping, per-request fallback, cache integration,
and clean shutdown.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro
from repro.serving import QueryCoalescer, ResultCache


@pytest.fixture(scope="module")
def data():
    return np.random.default_rng(9).normal(size=(250, 4))


@pytest.fixture()
def service(data):
    return repro.Service(
        data, backend="kd", engine="rdt+", defaults=repro.QuerySpec(k=5, t=6.0)
    )


def _ids(result):
    return result.ids.tolist()


def test_concurrent_queries_coalesce_and_match_solo_answers(service, data):
    member_ids = list(range(0, 40, 2))
    solo = {i: _ids(service.query(query_index=i)) for i in member_ids}
    barrier = threading.Barrier(len(member_ids))

    with QueryCoalescer(service, max_wait=0.02, max_batch=64) as coalescer:
        def call(i):
            barrier.wait()
            return i, _ids(coalescer.query(query_index=i))

        with ThreadPoolExecutor(max_workers=len(member_ids)) as pool:
            answers = dict(pool.map(call, member_ids))
        stats = coalescer.stats()

    assert answers == solo
    assert stats["dispatched_queries"] == len(member_ids)
    # The barrier makes arrivals simultaneous; the 20 ms window must have
    # merged at least some of them into shared dispatches.
    assert stats["coalesced_queries"] > 0


def test_raw_and_member_queries_group_separately_but_both_answer(service, data):
    raw = data[3] + 0.01
    expected_raw = _ids(service.query(raw))
    expected_member = _ids(service.query(query_index=10))
    with QueryCoalescer(service, max_wait=0.01) as coalescer:
        with ThreadPoolExecutor(max_workers=2) as pool:
            raw_future = pool.submit(coalescer.query, raw)
            member_future = pool.submit(coalescer.query, query_index=10)
            assert _ids(raw_future.result(timeout=10)) == expected_raw
            assert _ids(member_future.result(timeout=10)) == expected_member


def test_versioned_epoch_matches_service_epoch(service):
    with QueryCoalescer(service, max_wait=0.0) as coalescer:
        epoch, result = coalescer.query_versioned(query_index=1)
        assert epoch == service.epoch
        assert _ids(result) == _ids(service.query(query_index=1))


def test_spec_overrides_resolve_like_the_service(service):
    with QueryCoalescer(service, max_wait=0.0) as coalescer:
        assert _ids(coalescer.query(query_index=2, k=3)) == _ids(
            service.query(query_index=2, k=3)
        )


def test_poisoned_request_fails_alone(service):
    """A removed member id in a batch must not break its batch-mates."""
    service.remove(17)
    barrier = threading.Barrier(2)
    with QueryCoalescer(service, max_wait=0.05) as coalescer:
        def call(i):
            barrier.wait()
            return _ids(coalescer.query(query_index=i))

        with ThreadPoolExecutor(max_workers=2) as pool:
            good = pool.submit(call, 4)
            bad = pool.submit(call, 17)
            with pytest.raises(KeyError, match="removed"):
                bad.result(timeout=10)
            assert good.result(timeout=10) == _ids(service.query(query_index=4))


def test_cache_short_circuits_repeats_until_epoch_moves(service, data):
    cache = ResultCache()
    with QueryCoalescer(service, max_wait=0.0, cache=cache) as coalescer:
        first = _ids(coalescer.query(query_index=6))
        assert cache.stats()["hits"] == 0
        again = _ids(coalescer.query(query_index=6))
        assert again == first
        assert cache.stats()["hits"] == 1
        # A mutation publishes a new epoch: the stale entry must not
        # be served, and the recomputed answer reflects the new data.
        inserted = service.insert(data[6] + 1e-4)
        refreshed = coalescer.query(query_index=6)
        assert cache.stats()["hits"] == 1  # miss, recomputed
        assert inserted in _ids(refreshed) or _ids(refreshed) != first


def test_validation_and_shutdown(service):
    coalescer = QueryCoalescer(service, max_wait=0.0)
    with pytest.raises(ValueError, match="exactly one"):
        coalescer.query()
    coalescer.close()
    coalescer.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        coalescer.query(query_index=0)
    with pytest.raises(ValueError, match="max_wait"):
        QueryCoalescer(service, max_wait=-1.0)
    with pytest.raises(ValueError, match="max_batch"):
        QueryCoalescer(service, max_batch=0)


def test_many_threads_many_rounds_all_exact(service):
    """A denser soak: 8 threads x 10 rounds of mixed raw/member queries,
    every answer checked against the solo path."""
    rng = np.random.default_rng(31)
    raws = rng.normal(size=(8, 4))
    with QueryCoalescer(service, max_wait=0.002, max_batch=32) as coalescer:
        def worker(seed):
            local = np.random.default_rng(seed)
            for _ in range(10):
                if local.random() < 0.5:
                    i = int(local.integers(0, 100))
                    assert _ids(coalescer.query(query_index=i)) == _ids(
                        service.query(query_index=i)
                    )
                else:
                    q = raws[int(local.integers(0, raws.shape[0]))]
                    assert _ids(coalescer.query(q)) == _ids(service.query(q))

        with ThreadPoolExecutor(max_workers=8) as pool:
            for future in [pool.submit(worker, s) for s in range(8)]:
                future.result(timeout=60)
