"""The open-loop load generator: scheduling, accounting, churn thread."""

import threading
import time

import numpy as np
import pytest

from repro.serving import run_open_loop

QUERIES = np.arange(12.0).reshape(6, 2)


def test_report_accounts_for_every_arrival():
    seen = []
    lock = threading.Lock()

    def send(q):
        with lock:
            seen.append(float(q[0]))

    report = run_open_loop(
        send, QUERIES, offered_qps=200.0, duration_s=0.25, n_workers=4
    )
    assert report["arrivals"] == 50
    assert report["completed"] == 50
    assert report["errors"] == 0
    assert len(seen) == 50
    # Arrivals cycle the query pool in order (first rows 0,2,4,...).
    assert set(seen) <= {0.0, 2.0, 4.0, 6.0, 8.0, 10.0}
    assert report["achieved_qps"] == pytest.approx(200.0, rel=0.5)
    lat = report["latency_ms"]
    assert 0.0 <= lat["p50"] <= lat["p90"] <= lat["p99"] <= lat["max"]


def test_errors_are_counted_not_raised():
    calls = [0]

    def send(q):
        calls[0] += 1
        if calls[0] % 2 == 0:
            raise RuntimeError("boom")

    report = run_open_loop(
        send, QUERIES, offered_qps=400.0, duration_s=0.1, n_workers=2
    )
    assert report["errors"] > 0
    assert report["completed"] + report["errors"] == report["arrivals"]


def test_open_loop_reports_saturation_not_comfort():
    """A slow server cannot keep up with the offered rate: achieved qps
    must reflect that instead of silently re-pacing (the closed-loop
    failure mode this generator exists to avoid)."""

    def slow_send(q):
        time.sleep(0.01)

    report = run_open_loop(
        slow_send, QUERIES, offered_qps=1000.0, duration_s=0.2, n_workers=2
    )
    # 2 workers x ~100 q/s each << 1000 offered.  Arrivals are not
    # dropped — they queue, so the gap shows up as low achieved qps and
    # a latency tail dominated by queueing delay, not service time.
    assert report["achieved_qps"] < 500.0
    assert report["completed"] == report["arrivals"]
    assert report["latency_ms"]["p99"] > 50.0


def test_writer_thread_runs_at_its_own_rate():
    writes = [0]

    def writer():
        writes[0] += 1

    report = run_open_loop(
        lambda q: None,
        QUERIES,
        offered_qps=100.0,
        duration_s=0.2,
        n_workers=2,
        writer=writer,
        write_rate=50.0,
    )
    assert report["writes"] == writes[0]
    assert 5 <= report["writes"] <= 15
    assert report["write_errors"] == 0


def test_parameter_validation():
    with pytest.raises(ValueError, match="offered_qps"):
        run_open_loop(lambda q: None, QUERIES, offered_qps=0, duration_s=1.0)
    with pytest.raises(ValueError, match="duration_s"):
        run_open_loop(lambda q: None, QUERIES, offered_qps=1.0, duration_s=0)
    with pytest.raises(ValueError, match="n_workers"):
        run_open_loop(
            lambda q: None, QUERIES, offered_qps=1, duration_s=1, n_workers=0
        )
    with pytest.raises(ValueError, match="non-empty"):
        run_open_loop(
            lambda q: None, np.empty((0, 2)), offered_qps=1, duration_s=1
        )
