"""Worker kernel-dispatch hygiene under both start methods.

``repro.kernels`` resolves Numba availability once at import.  A forked
worker inherits the parent's resolved table (stale if the environment
moved); a spawned worker re-imports against whatever environment it was
handed.  The pool initializer re-applies the parent's ``REPRO_JIT``
decision and calls ``kernels.refresh()`` in every worker, so both start
methods land on the dispatch table the parent runs — asserted here
through the executor's :meth:`probe`.
"""

import multiprocessing

import numpy as np
import pytest

from repro import kernels
from repro.parallel import ParallelExecutor
from repro.service import QuerySpec

START_METHODS = [
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


@pytest.fixture
def tiny():
    return np.random.default_rng(1).normal(size=(30, 3))


@pytest.mark.parametrize("start_method", START_METHODS)
def test_workers_resolve_parent_dispatch_table(tiny, start_method):
    with ParallelExecutor(
        tiny, "rdt", workers=2, start_method=start_method,
        defaults=QuerySpec(k=3, t=8.0),
    ) as executor:
        assert executor.start_method == start_method
        reports = executor.probe()
    assert len(reports) == 2
    for report in reports:
        assert report["backend"] == kernels.active_backend()
        assert report["jit_enabled"] == kernels.jit_enabled()


@pytest.mark.parametrize("start_method", START_METHODS)
def test_workers_honor_repro_jit_override(tiny, start_method, monkeypatch):
    """REPRO_JIT=0 in the parent pins the NumPy fallback in every worker."""
    monkeypatch.setenv("REPRO_JIT", "0")
    kernels.refresh()
    try:
        with ParallelExecutor(
            tiny, "rdt", workers=2, start_method=start_method,
            defaults=QuerySpec(k=3, t=8.0),
        ) as executor:
            for report in executor.probe():
                assert report["repro_jit"] == "0"
                assert report["jit_enabled"] is False
                assert report["backend"] == "numpy"
    finally:
        monkeypatch.delenv("REPRO_JIT")
        kernels.refresh()


@pytest.mark.parametrize("start_method", START_METHODS)
def test_answers_match_across_start_methods(tiny, start_method):
    expected = None
    with ParallelExecutor(
        tiny, "rdt", workers=2, start_method=start_method,
        defaults=QuerySpec(k=3, t=1e30),
    ) as executor:
        _, results = executor.query_all_versioned()
        expected = executor.service.query_all()
    for qid in expected:
        np.testing.assert_array_equal(expected[qid].ids, results[qid].ids)


def test_unknown_start_method_rejected(tiny):
    with pytest.raises(ValueError, match="not available"):
        ParallelExecutor(tiny, "rdt", workers=1, start_method="fibers")
