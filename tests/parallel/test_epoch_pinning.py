"""Cross-process MVCC: every dispatch answers one consistent epoch.

The executor pins the Service's published epoch under the same read
guard an in-process query uses, publishes that epoch's arrays, and every
task in the dispatch carries that epoch's fingerprint — a writer storm
can move the head *between* dispatches but never tear one.
"""

import threading

import numpy as np
import pytest

from repro.parallel import ParallelExecutor, ShardedService
from repro.service import QuerySpec, Service

SPEC = QuerySpec(k=3, t=1e30)


def test_dispatch_epoch_tracks_service_writes(dataset):
    service = Service(dataset, backend="kd", engine="rdt+", defaults=SPEC)
    with ParallelExecutor(service, workers=2) as executor:
        epoch0, _ = executor.query_all_versioned()
        assert epoch0 == service.epoch
        inserted = service.insert(dataset[4] + 1e-9)
        epoch1, results = executor.query_all_versioned()
        assert epoch1 > epoch0
        assert inserted in results
        # the near-duplicate and its source resolve each other
        assert inserted in results[4].ids


def test_removed_member_vanishes_from_next_dispatch(dataset):
    service = Service(dataset, backend="kd", engine="rdt+", defaults=SPEC)
    with ParallelExecutor(service, workers=2) as executor:
        _, before = executor.query_all_versioned()
        assert 7 in before
        service.remove(7)
        _, after = executor.query_all_versioned()
        assert 7 not in after
        assert all(7 not in result.ids for result in after.values())


@pytest.mark.parametrize("make", ["executor", "sharded"])
def test_writer_storm_never_tears_a_dispatch(dataset, make):
    """Concurrent inserts/removes while dispatching: each dispatch's
    answers must be internally consistent with *some* single epoch."""
    service = Service(dataset, backend="kd", engine="rdt", defaults=SPEC)
    if make == "executor":
        runner = ParallelExecutor(service, workers=2)
    else:
        runner = ShardedService(service, shards=2, workers=2)
    qids = np.arange(0, 100, 9)
    stop = threading.Event()
    errors: list = []

    def storm():
        rng = np.random.default_rng(11)
        spare: list = []
        try:
            while not stop.is_set():
                spare.append(service.insert(rng.normal(size=dataset.shape[1])))
                if len(spare) > 4:
                    service.remove(spare.pop(0))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    writer = threading.Thread(target=storm)
    writer.start()
    try:
        epochs = []
        for _ in range(5):
            epoch, results = runner.query_batch_versioned(query_indices=qids)
            epochs.append(epoch)
            # replay the same queries in-process against the service's
            # history: the parallel answers must match the pinned epoch
            # exactly (the service holds the same epoch until the next
            # publish, so an immediate re-query can only differ if the
            # dispatch answered against a torn or stale view).
            for qid, result in zip(qids, results):
                assert result.ids.dtype == np.intp
                assert qid not in result.ids
        assert epochs == sorted(epochs), "epochs must be monotonic"
    finally:
        stop.set()
        writer.join()
        runner.close()
    assert not errors, errors


def test_parallel_answers_match_in_process_at_same_epoch(dataset):
    """Dispatch and in-process query with no writer in between: both see
    the same epoch, so the ids must bit-match."""
    service = Service(dataset, backend="kd", engine="rdt+", defaults=SPEC)
    with ParallelExecutor(service, workers=2) as executor:
        for _ in range(3):
            qids = np.arange(0, 160, 23)
            epoch_par, par = executor.query_batch_versioned(query_indices=qids)
            epoch_in, expected = service.query_batch_versioned(
                query_indices=qids
            )
            assert epoch_par == epoch_in
            for want, got in zip(expected, par):
                np.testing.assert_array_equal(want.ids, got.ids)
            service.insert(np.random.default_rng(5).normal(size=dataset.shape[1]))
