"""Publication/attachment lifecycle of the shared-memory array packs."""

import numpy as np
import pytest

from repro.parallel import attach_arrays, publish_arrays
from repro.parallel.shared import ArrayMeta, PackMeta

from .conftest import _repro_segments


@pytest.fixture
def arrays():
    rng = np.random.default_rng(3)
    return {
        "points": rng.normal(size=(50, 4)),
        "active": np.ones(50, dtype=bool),
        "empty": np.empty((0, 4)),
    }


def test_round_trip_preserves_values_and_dtypes(arrays):
    pack = publish_arrays(arrays, tag="t")
    try:
        attachment = attach_arrays(pack.meta)
        for name, arr in arrays.items():
            got = attachment.arrays[name]
            assert got.shape == arr.shape
            assert got.dtype == arr.dtype
            np.testing.assert_array_equal(got, arr)
        attachment.close()
    finally:
        pack.close()


def test_attached_views_are_read_only(arrays):
    pack = publish_arrays(arrays, tag="t")
    try:
        attachment = attach_arrays(pack.meta)
        with pytest.raises((ValueError, RuntimeError)):
            attachment.arrays["points"][0, 0] = 1.0
        attachment.close()
    finally:
        pack.close()


def test_zero_size_arrays_travel_in_metadata_only(arrays):
    pack = publish_arrays(arrays, tag="t")
    try:
        assert pack.meta.arrays["empty"].segment == ""
        assert len(pack.segment_names) == 2  # points + active only
    finally:
        pack.close()


def test_owner_close_unlinks_and_is_idempotent(arrays):
    before = _repro_segments()
    pack = publish_arrays(arrays, tag="t")
    assert _repro_segments() - before, "publication should create segments"
    pack.close()
    assert _repro_segments() == before
    pack.close()  # second close is a no-op


def test_attachment_survives_owner_unlink(arrays):
    """POSIX: an unlinked-but-mapped segment stays readable (the epoch-
    retirement contract — workers may straddle a republish)."""
    pack = publish_arrays(arrays, tag="t")
    attachment = attach_arrays(pack.meta)
    pack.close()  # unlink while the attachment still maps the segments
    np.testing.assert_array_equal(attachment.arrays["points"], arrays["points"])
    attachment.close()


def test_attach_unknown_segment_raises():
    meta = PackMeta(
        "repro-missing-feedbeef",
        {"points": ArrayMeta("repro-missing-feedbeef-0", (1, 1), "<f8")},
    )
    with pytest.raises(FileNotFoundError):
        attach_arrays(meta)
