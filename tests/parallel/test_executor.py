"""ParallelExecutor: cross-process answers bit-match in-process ones."""

import numpy as np
import pytest

import repro
from repro.parallel import ParallelExecutor
from repro.service import QuerySpec, Service

SPEC = QuerySpec(k=4, t=8.0)


def _assert_same_results(expected, got):
    assert set(expected) == set(got)
    for qid in expected:
        np.testing.assert_array_equal(expected[qid].ids, got[qid].ids)


@pytest.fixture(scope="module")
def service(dataset):
    return Service(dataset, backend="kd", engine="rdt+", defaults=SPEC)


def test_query_all_bit_matches_service(service):
    epoch_in, expected = service.query_all_versioned()
    with ParallelExecutor(service, workers=2) as executor:
        epoch_out, got = executor.query_all_versioned()
    assert epoch_out == epoch_in
    _assert_same_results(expected, got)


def test_query_batch_member_and_raw_paths(service, dataset):
    qids = np.arange(0, 160, 13)
    _, expected = service.query_batch_versioned(query_indices=qids)
    with ParallelExecutor(service, workers=2, block_size=5) as executor:
        _, got_member = executor.query_batch_versioned(query_indices=qids)
        _, got_raw = executor.query_batch_versioned(dataset[qids] + 0.01)
    _, expected_raw = service.query_batch_versioned(dataset[qids] + 0.01)
    for want, got in zip(expected, got_member):
        np.testing.assert_array_equal(want.ids, got.ids)
    for want, got in zip(expected_raw, got_raw):
        np.testing.assert_array_equal(want.ids, got.ids)


def test_owned_service_from_raw_data(dataset):
    with ParallelExecutor(
        dataset, "rdt", workers=2, defaults=SPEC
    ) as executor:
        _, got = executor.query_all_versioned()
        expected = executor.service.query_all()
    _assert_same_results(expected, got)


def test_single_query_stays_in_process(service, dataset):
    with ParallelExecutor(service, workers=1) as executor:
        result = executor.query(query_index=3)
    np.testing.assert_array_equal(
        result.ids, service.query(query_index=3).ids
    )


def test_non_index_engines_are_rejected(dataset):
    with pytest.raises(ValueError, match="index-family"):
        ParallelExecutor(dataset, "naive", workers=1)


def test_closed_executor_refuses_dispatch(dataset):
    executor = ParallelExecutor(dataset, "rdt+", workers=1, defaults=SPEC)
    executor.close()
    with pytest.raises(RuntimeError, match="closed"):
        executor.query_all_versioned()
    executor.close()  # idempotent


def test_service_parallel_knob_routes_batches(dataset):
    reference = Service(dataset, backend="kd", engine="rdt+", defaults=SPEC)
    expected = reference.query_all()
    with Service(
        dataset, backend="kd", engine="rdt+", defaults=SPEC,
        parallel={"workers": 2},
    ) as svc:
        _assert_same_results(expected, svc.query_all())
        # single queries stay on the in-process path even with the knob
        np.testing.assert_array_equal(
            svc.query(query_index=5).ids,
            reference.query(query_index=5).ids,
        )
    with pytest.raises(RuntimeError, match="closed"):
        svc.query_all()


def test_create_engine_parallel_passthrough(dataset):
    expected = repro.create_engine("rdt+", dataset).query_all(k=4, t=8.0)
    with repro.create_engine("rdt+", dataset, parallel=2) as executor:
        assert isinstance(executor, ParallelExecutor)
        _, got = executor.query_all_versioned(k=4, t=8.0)
    _assert_same_results(expected, got)


def test_invalid_worker_and_block_counts(dataset):
    with pytest.raises(ValueError, match="workers"):
        ParallelExecutor(dataset, "rdt+", workers=0)
    with pytest.raises(ValueError, match="block_size"):
        ParallelExecutor(dataset, "rdt+", workers=1, block_size=0)
