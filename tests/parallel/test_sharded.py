"""ShardedService: partitioned answers are exact after the global merge."""

import numpy as np
import pytest

from repro.baselines import NaiveRkNN
from repro.parallel import SHARD_STRATEGIES, ShardedService
from repro.service import QuerySpec, Service

#: Exhaustive-regime spec (see the oracle's T_EXACT argument): the inner
#: rdt engine is exact here, so sharded answers must bit-match it.
SPEC = QuerySpec(k=4, t=1e30)


@pytest.fixture(scope="module")
def truth(dataset):
    naive = NaiveRkNN(dataset, k=SPEC.k)
    return {
        qid: naive.query_ids(query_index=qid)
        for qid in range(dataset.shape[0])
    }


@pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
def test_query_all_is_exact(dataset, truth, strategy):
    with ShardedService(
        dataset, "rdt", shards=3, strategy=strategy, defaults=SPEC
    ) as sharded:
        _, results = sharded.query_all_versioned()
    assert set(results) == set(truth)
    for qid, expected in truth.items():
        np.testing.assert_array_equal(expected, results[qid].ids)


def test_bit_matches_single_process_service(dataset):
    service = Service(dataset, backend="kd", engine="rdt", defaults=SPEC)
    expected = service.query_all()
    with ShardedService(
        dataset, "rdt", shards=3, defaults=SPEC
    ) as sharded:
        _, results = sharded.query_all_versioned()
    for qid in expected:
        np.testing.assert_array_equal(expected[qid].ids, results[qid].ids)


def test_merge_tightens_recall_engines_to_exact(dataset, truth):
    """rdt+ may lazy-accept false positives in-process; the sharded
    merge's global verification strips them, leaving brute-force ids."""
    with ShardedService(
        dataset, "rdt+", shards=3, defaults=SPEC
    ) as sharded:
        _, results = sharded.query_all_versioned()
    for qid, expected in truth.items():
        np.testing.assert_array_equal(expected, results[qid].ids)


def test_pruning_never_changes_answers(dataset):
    kept = {}
    for prune in (False, True):
        with ShardedService(
            dataset, "rdt", shards=4, prune=prune, defaults=SPEC
        ) as sharded:
            _, kept[prune] = sharded.query_all_versioned()
    for qid in kept[True]:
        np.testing.assert_array_equal(
            kept[False][qid].ids, kept[True][qid].ids
        )


def test_raw_and_member_query_paths(dataset, truth):
    with ShardedService(
        dataset, "rdt", shards=3, defaults=SPEC
    ) as sharded:
        member = sharded.query(query_index=11)
        raw = sharded.query(dataset[11] + 1e-3)
    np.testing.assert_array_equal(truth[11], member.ids)
    assert raw.ids.dtype == np.intp


def test_more_shards_than_points():
    data = np.random.default_rng(0).normal(size=(5, 3))
    with ShardedService(
        data, "rdt", shards=8, defaults=QuerySpec(k=2, t=1e30)
    ) as sharded:
        _, results = sharded.query_all_versioned()
    naive = NaiveRkNN(data, k=2)
    for qid in range(5):
        np.testing.assert_array_equal(
            naive.query_ids(query_index=qid), results[qid].ids
        )


def test_writes_repartition_next_epoch(dataset):
    with ShardedService(
        dataset, "rdt", shards=3, defaults=SPEC
    ) as sharded:
        epoch0, _ = sharded.query_all_versioned()
        new_id = sharded.insert(dataset[0] + 1e-9)
        epoch1, results = sharded.query_all_versioned()
        assert epoch1 > epoch0
        assert new_id in results
        sharded.remove(new_id)
        with pytest.raises(KeyError):
            sharded.query_versioned(query_index=new_id)


def test_save_load_round_trip(dataset, tmp_path):
    path = tmp_path / "sharded.npz"
    with ShardedService(
        dataset, "rdt", shards=3, strategy="dk-balanced",
        prune=False, sample_size=64, defaults=SPEC,
    ) as sharded:
        _, expected = sharded.query_all_versioned()
        sharded.save(path)
    loaded = ShardedService.load(path)
    try:
        assert loaded.shards == 3
        assert loaded.strategy == "dk-balanced"
        assert loaded.prune is False
        assert loaded.sample_size == 64
        _, results = loaded.query_all_versioned()
        for qid in expected:
            np.testing.assert_array_equal(
                expected[qid].ids, results[qid].ids
            )
    finally:
        loaded.close()
    # the payload stays loadable as a plain Service
    service = Service.load(path)
    assert service.size == dataset.shape[0]


def test_plain_service_payload_rejected_by_sharded_load(dataset, tmp_path):
    path = tmp_path / "plain.npz"
    Service(dataset, defaults=SPEC).save(path)
    with pytest.raises(ValueError, match="plain Service payload"):
        ShardedService.load(path)


def test_invalid_configuration_rejected(dataset):
    with pytest.raises(ValueError, match="shards"):
        ShardedService(dataset, shards=0)
    with pytest.raises(ValueError, match="strategy"):
        ShardedService(dataset, strategy="hash")
