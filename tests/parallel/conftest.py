"""Shared fixtures for the parallel tier, plus the /dev/shm leak gate.

Every test in this package runs under an autouse teardown that asserts
no ``repro-*`` shared-memory segment outlived the test: the executor's
close path (pool joined, packs unlinked) is a correctness requirement —
a leaked segment is host memory pinned until reboot.
"""

import pathlib

import numpy as np
import pytest

from repro.parallel import shared_memory_available

SHM_DIR = pathlib.Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not shared_memory_available(),
    reason="multiprocessing.shared_memory unavailable (no usable /dev/shm)",
)


def _repro_segments() -> set:
    if not SHM_DIR.is_dir():  # pragma: no cover - non-Linux shm layout
        return set()
    return {p.name for p in SHM_DIR.glob("repro-*")}


@pytest.fixture(autouse=True)
def assert_no_leaked_segments():
    """Fail any test that leaves a published repro-* segment behind."""
    before = _repro_segments()
    yield
    leaked = _repro_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="module")
def dataset():
    """A small gaussian member set shared by the module's tests."""
    return np.random.default_rng(7).normal(size=(160, 6))
