"""Cross-module integration tests.

These tie the whole system together the way the paper's experiments do:
every method answering the same workload over the same stand-in dataset,
with exact configurations agreeing on the exact answer and approximate
configurations showing the documented quality/cost behaviour.
"""

import numpy as np
import pytest

from repro.baselines import SFT, TPL, MRkNNCoP, RdNN
from repro.core import RDT, AdaptiveRDT, suggest_scale
from repro.datasets import load_standin
from repro.evaluation import GroundTruth, run_method, sample_query_indices
from repro.indexes import (
    CoverTreeIndex,
    LinearScanIndex,
    RdNNTreeIndex,
    RStarTreeIndex,
)

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def fct_workload():
    data = load_standin("fct", n=600, seed=9)
    truth = GroundTruth(data)
    queries = sample_query_indices(len(data), 12, seed=1)
    return data, truth, queries


K = 10


class TestAllMethodsAgreeExactly:
    def test_exact_methods_identical_answers(self, fct_workload):
        data, truth, queries = fct_workload
        index = LinearScanIndex(data)
        methods = {
            "rdt-huge-t": lambda qi: RDT(index).query(query_index=qi, k=K, t=100.0),
            "mrknncop": lambda qi, cop=MRkNNCoP(data, k_max=K): cop.query(
                query_index=qi, k=K
            ),
            "rdnn": lambda qi, rd=RdNN(RdNNTreeIndex(data, k=K)): rd.query(
                query_index=qi
            ),
            "tpl": lambda qi, tpl=TPL(RStarTreeIndex(data)): tpl.query(
                query_index=qi, k=K
            ),
            "sft-full": lambda qi, sft=SFT(index): sft.query(
                query_index=qi, k=K, alpha=len(data) / K
            ),
        }
        for name, query_fn in methods.items():
            run = run_method(name, query_fn, queries, truth, k=K)
            assert run.mean_recall == 1.0, name
            assert run.mean_precision == 1.0, name

    def test_backends_agree_for_rdt(self, fct_workload):
        data, truth, queries = fct_workload
        for index in (LinearScanIndex(data), CoverTreeIndex(data)):
            rdt = RDT(index)
            run = run_method(
                f"rdt-{index.name}",
                lambda qi: rdt.query(query_index=qi, k=K, t=50.0),
                queries,
                truth,
                k=K,
            )
            assert run.mean_recall == 1.0


class TestEstimatorDrivenConfiguration:
    def test_suggested_scale_gives_high_recall(self, fct_workload):
        """The paper's RDT+(MLE) configuration: t from the estimator."""
        data, truth, queries = fct_workload
        t = suggest_scale(data, method="mle", k=50)
        rdtp = RDT(LinearScanIndex(data), variant="rdt+")
        run = run_method(
            "rdt+(mle)",
            lambda qi: rdtp.query(query_index=qi, k=K, t=t),
            queries,
            truth,
            k=K,
        )
        assert run.mean_recall >= 0.9

    def test_adaptive_matches_estimator_quality(self, fct_workload):
        data, truth, queries = fct_workload
        adaptive = AdaptiveRDT(LinearScanIndex(data))
        run = run_method(
            "adaptive",
            lambda qi: adaptive.query(query_index=qi, k=K),
            queries,
            truth,
            k=K,
        )
        assert run.mean_recall >= 0.9


class TestCostShape:
    def test_rdt_examines_fewer_points_than_scan(self, fct_workload):
        """The dimensional test must stop well short of the dataset."""
        data, _, queries = fct_workload
        rdt = RDT(LinearScanIndex(data))
        retrieved = [
            rdt.query(query_index=int(qi), k=K, t=4.0).stats.num_retrieved
            for qi in queries
        ]
        assert np.mean(retrieved) < 0.8 * len(data)

    def test_witnesses_suppress_verifications(self, fct_workload):
        """Most candidates are resolved lazily, not by kNN queries (§8.2)."""
        data, _, queries = fct_workload
        rdt = RDT(LinearScanIndex(data))
        stats = [rdt.query(query_index=int(qi), k=K, t=6.0).stats for qi in queries]
        verified = sum(s.num_verified for s in stats)
        generated = sum(s.num_generated for s in stats)
        assert verified < 0.2 * generated

    def test_preprocessing_gap(self, fct_workload):
        """MRkNNCoP's build cost dwarfs RDT's (the Figure 9 story)."""
        import time

        data, _, _ = fct_workload
        start = time.perf_counter()
        LinearScanIndex(data)
        rdt_build = time.perf_counter() - start
        cop = MRkNNCoP(data, k_max=50)
        assert cop.preprocessing_seconds > 5 * rdt_build


class TestMetricGenerality:
    @pytest.mark.parametrize("metric", ["manhattan", "chebyshev"])
    def test_rdt_exact_under_other_metrics(self, metric):
        data = load_standin("sequoia", n=400, seed=2)
        truth = GroundTruth(data, metric=metric)
        rdt = RDT(LinearScanIndex(data, metric=metric))
        run = run_method(
            f"rdt-{metric}",
            lambda qi: rdt.query(query_index=qi, k=5, t=100.0),
            [0, 100, 399],
            truth,
            k=5,
        )
        assert run.mean_recall == 1.0 and run.mean_precision == 1.0
