"""End-to-end coverage for the runnable examples.

All examples are compiled; the quickstart runs at its published size (it
is the one a new user will copy-paste first), and every example exposing
CLI size knobs additionally runs end-to-end at a tiny scale, asserting
the output artifacts its docstring promises.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _run_example(name, *args, timeout=300):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_examples_directory_populated():
    names = {path.stem for path in ALL_EXAMPLES}
    assert {
        "quickstart",
        "service_quickstart",
        "outlier_detection",
        "hubness_analysis",
        "streaming_updates",
        "bichromatic_services",
        "scale_parameter_study",
        "approximate_search",
        "concurrent_serving",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs():
    stdout = _run_example("quickstart.py")
    assert "RDT+" in stdout
    assert "recall=1.00" in stdout


def test_service_quickstart_runs_tiny():
    stdout = _run_example(
        "service_quickstart.py", "--n", "400", "--dim", "4", "--k", "5",
    )
    # The documented walkthrough: facade repr, the three query modes, the
    # engine swap's recall guarantee, churn, and the save/load invariant.
    assert "Service(engine='rdt+', backend='kd-tree'" in stdout
    assert "query(42):" in stdout
    assert "query_batch(64 queries" in stdout
    assert "query_all: self-join over 400 points" in stdout
    assert "misses none by construction: True" in stdout
    assert "inserted id 400" in stdout
    assert "round-trip identical over" in stdout and ": True" in stdout


def test_streaming_updates_runs_tiny():
    stdout = _run_example(
        "streaming_updates.py",
        "--window", "80", "--batch", "8", "--rounds", "2", "--k", "4",
    )
    # The documented per-round report and the closing invariant line.
    assert "sliding window of 80 points" in stdout
    assert stdout.count("round ") == 2
    assert "neighborhood changed by arrivals" in stdout
    assert "no precomputed" in stdout


def test_scale_parameter_study_runs_tiny():
    stdout = _run_example("scale_parameter_study.py", "--n", "300", "--k", "5")
    # The documented landscape table: manual sweep, all three estimators,
    # and the Theorem 1 bound, with the table header intact.
    assert "configuration" in stdout and "recall" in stdout
    for row in ("manual t=1.0", "estimator mle", "estimator gp",
                "estimator takens", "MaxGED (Theorem 1 bound)"):
        assert row in stdout, f"missing row {row!r}"


def test_concurrent_serving_runs_tiny():
    stdout = _run_example(
        "concurrent_serving.py", "--n", "400", "--dim", "4", "--k", "5",
        "--readers", "3", "--queries", "15", "--writes", "10",
    )
    # The documented walkthrough: epoch churn, coalescer/cache counters,
    # and the closing exactness verification over recorded epochs.
    assert "serving 400 points" in stdout
    assert "final epoch 10" in stdout
    assert "batched dispatches" in stdout and "cache:" in stdout
    assert "exact for their epoch: True" in stdout


def test_approximate_search_runs_tiny():
    stdout = _run_example(
        "approximate_search.py", "--n", "600", "--dim", "6", "--k", "5",
        "--queries", "120",
    )
    assert "Approximate RkNN sweep" in stdout
    assert "[sampled, k=5]" in stdout and "[lsh, k=5]" in stdout
    assert "speedup" in stdout
    assert "sampled strategy at recall" in stdout
