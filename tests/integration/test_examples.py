"""Smoke coverage for the runnable examples.

The full examples take minutes; here we compile all of them and execute the
quickstart end-to-end (it is the one a new user will copy-paste first).
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.stem for path in ALL_EXAMPLES}
    assert {
        "quickstart",
        "outlier_detection",
        "hubness_analysis",
        "streaming_updates",
        "bichromatic_services",
        "scale_parameter_study",
    } <= names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.stem)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def test_quickstart_runs():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert "RDT+" in completed.stdout
    assert "recall=1.00" in completed.stdout
