"""Unit tests for the dimensional termination test."""

import math

import pytest

from repro.core.termination import DimensionalTest


class TestRankCap:
    def test_cap_formula_conservative(self):
        test = DimensionalTest(k=10, t=4.0, n=10_000, conservative=True)
        assert test.rank_cap == int(2.0**4 * 11)

    def test_cap_formula_paper_literal(self):
        test = DimensionalTest(k=10, t=4.0, n=10_000, conservative=False)
        assert test.rank_cap == int(2.0**4 * 10)

    def test_cap_clamped_to_n(self):
        test = DimensionalTest(k=10, t=10.0, n=500)
        assert test.rank_cap == 500

    @pytest.mark.parametrize("t", [65.0, 500.0, 1e6])
    def test_huge_t_does_not_overflow(self, t):
        test = DimensionalTest(k=10, t=t, n=1000)
        assert test.rank_cap == 1000


class TestOmegaUpdates:
    def test_initially_infinite(self):
        assert DimensionalTest(k=5, t=2.0, n=100).omega == math.inf

    def test_update_matches_formula(self):
        test = DimensionalTest(k=5, t=2.0, n=1000, conservative=False)
        test.observe(rank=20, frontier_dist=3.0)
        expected = 3.0 / ((20 / 5) ** (1 / 2.0) - 1.0)
        assert test.omega == pytest.approx(expected)

    def test_conservative_uses_k_plus_one(self):
        test = DimensionalTest(k=5, t=2.0, n=1000, conservative=True)
        test.observe(rank=20, frontier_dist=3.0)
        expected = 3.0 / ((20 / 6) ** (1 / 2.0) - 1.0)
        assert test.omega == pytest.approx(expected)

    def test_omega_is_running_minimum(self):
        test = DimensionalTest(k=5, t=2.0, n=1000)
        test.observe(rank=30, frontier_dist=1.0)
        first = test.omega
        test.observe(rank=31, frontier_dist=100.0)  # larger bound: no change
        assert test.omega == first

    def test_no_update_at_or_below_termination_rank(self):
        test = DimensionalTest(k=5, t=2.0, n=1000, conservative=True)
        test.observe(rank=6, frontier_dist=1.0)  # rank == k+1: skipped
        assert test.omega == math.inf
        test.observe(rank=7, frontier_dist=1.0)
        assert test.omega < math.inf

    def test_zero_distance_skipped(self):
        test = DimensionalTest(k=5, t=2.0, n=1000)
        test.observe(rank=50, frontier_dist=0.0)
        assert test.omega == math.inf


class TestShouldTerminate:
    def test_omega_trigger(self):
        test = DimensionalTest(k=5, t=2.0, n=1000)
        test.observe(rank=100, frontier_dist=1.0)
        assert test.should_terminate(rank=101, frontier_dist=test.omega * 1.01)
        assert test.terminated_by == "omega"

    def test_frontier_at_omega_continues(self):
        test = DimensionalTest(k=5, t=10.0, n=1000)  # cap = n: only omega acts
        test.observe(rank=100, frontier_dist=1.0)
        assert not test.should_terminate(rank=101, frontier_dist=test.omega)

    def test_rank_cap_trigger(self):
        test = DimensionalTest(k=2, t=1.0, n=1000)
        assert test.should_terminate(rank=test.rank_cap, frontier_dist=0.5)
        assert test.terminated_by == "rank-cap"

    def test_mark_exhausted_only_when_unset(self):
        test = DimensionalTest(k=2, t=1.0, n=10)
        test.should_terminate(rank=test.rank_cap, frontier_dist=0.1)
        test.mark_exhausted()
        assert test.terminated_by == "rank-cap"

    def test_exhausted(self):
        test = DimensionalTest(k=2, t=1.0, n=10)
        test.mark_exhausted()
        assert test.terminated_by == "exhausted"


class TestValidation:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            DimensionalTest(k=0, t=1.0, n=10)

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            DimensionalTest(k=1, t=0.0, n=10)


class TestMonotonicityInT:
    def test_larger_t_larger_omega(self):
        """Increasing t weakens the termination bound (more search)."""
        omegas = []
        for t in (1.0, 2.0, 4.0, 8.0):
            test = DimensionalTest(k=5, t=t, n=10_000)
            test.observe(rank=40, frontier_dist=2.0)
            omegas.append(test.omega)
        assert omegas == sorted(omegas)

    def test_larger_t_larger_cap(self):
        caps = [
            DimensionalTest(k=5, t=t, n=10**9).rank_cap for t in (1.0, 3.0, 6.0)
        ]
        assert caps == sorted(caps)
