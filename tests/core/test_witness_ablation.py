"""Tests for the witness-ablation switch (RDT with use_witnesses=False)."""

import numpy as np
import pytest

from repro.baselines import NaiveRkNN
from repro.core import RDT
from repro.indexes import LinearScanIndex


@pytest.fixture(scope="module")
def pair(medium_mixture):
    index = LinearScanIndex(medium_mixture)
    return RDT(index), RDT(index, use_witnesses=False)


class TestSameAnswers:
    def test_identical_results_all_t(self, pair, naive_k10_mixture):
        """Disabling witnesses moves cost, never the answer (plain RDT)."""
        with_w, without_w = pair
        for qi in [0, 200, 600]:
            for t in (2.0, 5.0, 100.0):
                a = with_w.query(query_index=qi, k=10, t=t)
                b = without_w.query(query_index=qi, k=10, t=t)
                assert np.array_equal(a.ids, b.ids), (qi, t)

    def test_exact_at_huge_t(self, pair, naive_k10_mixture):
        _, without_w = pair
        for qi in [0, 400]:
            expected = set(naive_k10_mixture.query_ids(query_index=qi).tolist())
            got = set(without_w.query(query_index=qi, k=10, t=100.0).ids.tolist())
            assert got == expected


class TestCostShift:
    def test_everything_verified_without_witnesses(self, pair):
        _, without_w = pair
        result = without_w.query(query_index=3, k=10, t=6.0)
        assert result.stats.num_verified == result.stats.num_candidates
        assert result.stats.num_lazy_accepts == 0
        assert result.stats.num_lazy_rejects == 0

    def test_witnesses_reduce_verifications(self, pair):
        with_w, without_w = pair
        a = with_w.query(query_index=3, k=10, t=6.0)
        b = without_w.query(query_index=3, k=10, t=6.0)
        assert a.stats.num_verified < b.stats.num_verified

    def test_same_candidates_generated(self, pair):
        """The filter phase (termination) is witness-independent."""
        with_w, without_w = pair
        a = with_w.query(query_index=7, k=10, t=4.0)
        b = without_w.query(query_index=7, k=10, t=4.0)
        assert a.stats.num_retrieved == b.stats.num_retrieved
        assert a.stats.num_generated == b.stats.num_candidates


class TestGuards:
    def test_rdt_plus_requires_witnesses(self, medium_mixture):
        with pytest.raises(ValueError, match="witness-based exclusion"):
            RDT(LinearScanIndex(medium_mixture), variant="rdt+", use_witnesses=False)
