"""Unit and property tests for the witness-counter machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.witness import CandidateStore
from repro.distances import EuclideanMetric


def feed_stream(points, query, k, rdt_plus=False):
    """Feed points in ascending query distance; return the store."""
    metric = EuclideanMetric()
    dists = metric.to_point(points, query)
    order = np.argsort(dists)
    store = CandidateStore(points.shape[1], metric, k)
    for idx in order:
        store.process_retrieved(
            int(idx), points[idx], float(dists[idx]), exclude_if_rejected=rdt_plus
        )
    return store, dists


def brute_witness_counts(points, query, candidate_ids):
    """W(x) over the full stream: points strictly closer to x than q is."""
    counts = {}
    for x in candidate_ids:
        d_qx = np.linalg.norm(points[x] - query)
        closer = 0
        for y in candidate_ids:
            if y != x and np.linalg.norm(points[y] - points[x]) < d_qx:
                closer += 1
        counts[x] = closer
    return counts


class TestWitnessCounting:
    def test_counts_match_brute_force(self, rng):
        points = rng.normal(size=(40, 3))
        query = rng.normal(size=3)
        store, _ = feed_stream(points, query, k=3)
        expected = brute_witness_counts(points, query, list(range(40)))
        for slot in range(store.size):
            assert store.witnesses[slot] == expected[int(store.ids[slot])]

    def test_empty_store_first_point(self, rng):
        metric = EuclideanMetric()
        store = CandidateStore(2, metric, k=3)
        assert store.process_retrieved(0, np.zeros(2), 1.0, exclude_if_rejected=True)
        assert store.size == 1 and store.witnesses[0] == 0


class TestLazyDecisions:
    def test_accept_requires_ball_coverage(self):
        """A candidate is decided exactly when the frontier passes 2d(q,x)."""
        metric = EuclideanMetric()
        store = CandidateStore(1, metric, k=2)
        store.process_retrieved(0, np.array([1.0]), 1.0, exclude_if_rejected=False)
        # Frontier at 1.9 < 2.0: undecided.
        store.process_retrieved(1, np.array([-1.9]), 1.9, exclude_if_rejected=False)
        assert not store.accepted[0]
        # Frontier reaches 2.0: candidate 0's ball is covered, W=0 < k.
        store.process_retrieved(2, np.array([2.0]), 2.0, exclude_if_rejected=False)
        assert store.accepted[0]

    def test_reject_blocks_acceptance(self):
        """k witnesses inside the ball force a lazy reject, never an accept."""
        metric = EuclideanMetric()
        store = CandidateStore(1, metric, k=1)
        store.process_retrieved(0, np.array([1.0]), 1.0, exclude_if_rejected=False)
        # A witness right next to candidate 0 (d=0.1 < d(q,x)=1).
        store.process_retrieved(1, np.array([1.1]), 1.1, exclude_if_rejected=False)
        store.process_retrieved(2, np.array([-2.5]), 2.5, exclude_if_rejected=False)
        assert store.lazy_rejected[0]
        assert not store.accepted[0]

    def test_decisions_are_final(self):
        metric = EuclideanMetric()
        store = CandidateStore(1, metric, k=1)
        store.process_retrieved(0, np.array([0.5]), 0.5, exclude_if_rejected=False)
        store.process_retrieved(1, np.array([-1.0]), 1.0, exclude_if_rejected=False)
        assert store.accepted[0]
        # Later witnesses cannot revoke the accept.
        store.process_retrieved(2, np.array([0.6]), 0.6 + 1.0, exclude_if_rejected=False)
        assert store.accepted[0]


class TestRdtPlusExclusion:
    def test_rejected_first_cycle_excluded(self, rng):
        """A point arriving with k witnesses already nearby is not stored."""
        cluster = rng.normal(scale=0.01, size=(10, 2))
        straggler = cluster.mean(axis=0) + 0.001
        query = np.array([5.0, 0.0])
        points = np.vstack([cluster, straggler[None, :]])
        store, dists = feed_stream(points, query, k=3, rdt_plus=True)
        assert store.num_excluded >= 1
        assert store.size + store.num_excluded == len(points)

    def test_first_k_candidates_never_excluded(self, rng):
        points = rng.normal(size=(30, 2))
        query = rng.normal(size=2)
        store, dists = feed_stream(points, query, k=5, rdt_plus=True)
        order = np.argsort(dists)
        stored = set(store.ids.tolist())
        # The first k retrieved cannot reach k witnesses in their first cycle.
        for idx in order[:5]:
            assert int(idx) in stored

    def test_exclusions_reduce_store_size(self, rng):
        points = np.vstack(
            [rng.normal(scale=0.05, size=(50, 2)), rng.normal(size=(10, 2)) + 8.0]
        )
        query = np.array([8.0, 8.0])
        plain, _ = feed_stream(points, query, k=2, rdt_plus=False)
        plus, _ = feed_stream(points, query, k=2, rdt_plus=True)
        assert plus.size < plain.size
        assert plain.size == len(points)


class TestCapacityGrowth:
    def test_growth_preserves_state(self, rng):
        points = rng.normal(size=(500, 2))  # > initial capacity of 64
        query = rng.normal(size=2)
        store, _ = feed_stream(points, query, k=3)
        assert store.size == 500
        expected = brute_witness_counts(points, query, list(range(500)))
        for slot in [0, 63, 64, 100, 499]:
            assert store.witnesses[slot] == expected[int(store.ids[slot])]

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=150), k=st.integers(1, 5))
    def test_property_masks_partition_candidates(self, n, k):
        rng = np.random.default_rng(n * 31 + k)
        points = rng.normal(size=(n, 2))
        query = rng.normal(size=2)
        store, _ = feed_stream(points, query, k=k)
        accepted = store.accepted
        rejected = store.lazy_rejected
        undecided = store.needs_verification
        total = accepted.sum() + rejected.sum() + undecided.sum()
        assert total == store.size
        assert not np.any(accepted & rejected)
        assert not np.any(accepted & undecided)
