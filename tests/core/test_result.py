"""Unit tests for the result/stats containers."""

import numpy as np
import pytest

from repro.core import QueryStats, RkNNResult


class TestQueryStats:
    def test_total_seconds(self):
        stats = QueryStats(filter_seconds=0.25, refine_seconds=0.5)
        assert stats.total_seconds == pytest.approx(0.75)

    def test_num_generated(self):
        stats = QueryStats(num_candidates=7, num_excluded=3)
        assert stats.num_generated == 10

    def test_proportions_empty_query(self):
        props = QueryStats().proportions()
        assert props == {"accept": 0.0, "reject": 0.0, "verify": 0.0}

    def test_proportions_partition(self):
        stats = QueryStats(
            num_candidates=8,
            num_excluded=2,
            num_lazy_accepts=3,
            num_lazy_rejects=5,
            num_verified=2,
        )
        props = stats.proportions()
        assert sum(props.values()) == pytest.approx(1.0)
        assert props["accept"] == pytest.approx(0.3)


class TestRkNNResult:
    def test_container_protocols(self):
        result = RkNNResult(ids=np.array([2, 5, 9]), k=3, t=4.0)
        assert len(result) == 3
        assert 5 in result
        assert 7 not in result
        assert list(result) == [2, 5, 9]

    def test_default_fields(self):
        result = RkNNResult(ids=np.empty(0, dtype=np.intp), k=1, t=1.0)
        assert len(result) == 0
        assert result.lazy_accepted_ids.shape == (0,)
        assert result.stats.terminated_by == "unknown"
