"""Parity tests for the batched RkNN query engine.

``RDT.query_batch`` restructures the execution (closed-form vectorized
filter for plain RDT, one shared kNN-distance call for all refinements)
but must decide exactly like a loop of single ``query()`` calls: same
result ids, same lazy-accept sets, and same semantic per-query statistics
on every backend and variant.  Wall-clock and distance-call fields are
cost metrics of the execution strategy and are intentionally *not* part of
the parity contract (the batch attributes its shared vectorized work to
each query instead).
"""

import numpy as np
import pytest

from repro.core import RDT
from repro.indexes import BallTreeIndex, LinearScanIndex

#: Stats fields that must be identical between batched and looped execution.
PARITY_FIELDS = (
    "num_retrieved",
    "num_candidates",
    "num_excluded",
    "num_lazy_accepts",
    "num_lazy_rejects",
    "num_verified",
    "num_verified_hits",
    "terminated_by",
)

BACKENDS = {"linear-scan": LinearScanIndex, "ball-tree": BallTreeIndex}


def assert_single_batch_parity(single, batched):
    assert np.array_equal(single.ids, batched.ids)
    assert np.array_equal(single.lazy_accepted_ids, batched.lazy_accepted_ids)
    assert single.k == batched.k and single.t == batched.t
    for field in PARITY_FIELDS:
        assert getattr(single.stats, field) == getattr(batched.stats, field), field
    assert batched.stats.omega == pytest.approx(
        single.stats.omega, rel=1e-9, abs=1e-12
    ) or (np.isinf(single.stats.omega) and np.isinf(batched.stats.omega))


class TestMemberQueryParity:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("variant", ["rdt", "rdt+"])
    @pytest.mark.parametrize("t", [2.0, 4.0, 100.0])
    def test_batch_equals_loop(self, backend, variant, t, small_gaussian):
        index = BACKENDS[backend](small_gaussian)
        rdt = RDT(index, variant=variant)
        query_indices = np.arange(0, len(small_gaussian), 11)
        batch = rdt.query_batch(query_indices=query_indices, k=5, t=t)
        assert len(batch) == len(query_indices)
        for qi, batched in zip(query_indices, batch):
            single = rdt.query(query_index=int(qi), k=5, t=t)
            assert_single_batch_parity(single, batched)

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_witness_ablation_parity(self, backend, small_gaussian):
        index = BACKENDS[backend](small_gaussian)
        rdt = RDT(index, use_witnesses=False)
        query_indices = np.arange(0, 90, 9)
        batch = rdt.query_batch(query_indices=query_indices, k=4, t=3.0)
        for qi, batched in zip(query_indices, batch):
            single = rdt.query(query_index=int(qi), k=4, t=3.0)
            assert_single_batch_parity(single, batched)
            # the ablation verifies every candidate
            assert batched.stats.num_verified == batched.stats.num_candidates

    def test_tie_heavy_data_parity(self, duplicated_points):
        """Exact duplicates / integer grids exercise the tie-group logic."""
        index = LinearScanIndex(duplicated_points)
        for variant in ("rdt", "rdt+"):
            rdt = RDT(index, variant=variant)
            query_indices = np.arange(len(duplicated_points))
            batch = rdt.query_batch(query_indices=query_indices, k=4, t=2.5)
            for qi, batched in zip(query_indices, batch):
                single = rdt.query(query_index=int(qi), k=4, t=2.5)
                assert_single_batch_parity(single, batched)

    @pytest.mark.parametrize("variant", ["rdt", "rdt+"])
    def test_irrational_tie_parity(self, variant):
        """Exact ties at non-integer coordinates: the pairwise and to_point
        kernels disagree in the last ulp there, which must not leak into
        decisions (regression for the vectorized filter's tie handling)."""
        rng = np.random.default_rng(0)
        data = rng.integers(0, 4, size=(300, 4)).astype(np.float64) * np.pi
        rdt = RDT(LinearScanIndex(data), variant=variant)
        query_indices = np.arange(0, 300, 7)
        batch = rdt.query_batch(query_indices=query_indices, k=5, t=6.0)
        for qi, batched in zip(query_indices, batch):
            single = rdt.query(query_index=int(qi), k=5, t=6.0)
            assert_single_batch_parity(single, batched)

    @pytest.mark.parametrize("offset", [1e6, 1e8])
    @pytest.mark.parametrize("variant", ["rdt", "rdt+"])
    def test_far_from_origin_parity(self, variant, offset):
        """Un-normalized data far from the origin amplifies dot-expansion
        cancellation; parity must survive it (regression for the centered
        Euclidean pairwise kernel)."""
        rng = np.random.default_rng(3)
        data = rng.normal(size=(250, 6)) + offset
        rdt = RDT(LinearScanIndex(data), variant=variant)
        query_indices = np.arange(0, 250, 11)
        batch = rdt.query_batch(query_indices=query_indices, k=5, t=6.0)
        for qi, batched in zip(query_indices, batch):
            single = rdt.query(query_index=int(qi), k=5, t=6.0)
            assert_single_batch_parity(single, batched)

    def test_non_conservative_parity(self, small_gaussian):
        index = LinearScanIndex(small_gaussian)
        rdt = RDT(index, conservative=False)
        for qi in range(0, 60, 13):
            single = rdt.query(query_index=qi, k=5, t=3.0)
            batched = rdt.query_batch(query_indices=[qi], k=5, t=3.0)[0]
            assert_single_batch_parity(single, batched)


class TestFilterModes:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_sequential_mode_matches_default(self, backend, small_gaussian):
        index = BACKENDS[backend](small_gaussian)
        rdt = RDT(index)
        query_indices = np.arange(0, 100, 9)
        auto = rdt.query_batch(query_indices=query_indices, k=5, t=4.0)
        sequential = rdt.query_batch(
            query_indices=query_indices, k=5, t=4.0, filter_mode="sequential"
        )
        for a, s in zip(auto, sequential):
            assert np.array_equal(a.ids, s.ids)
            assert np.array_equal(a.lazy_accepted_ids, s.lazy_accepted_ids)
            for field in PARITY_FIELDS:
                assert getattr(a.stats, field) == getattr(s.stats, field), field

    def test_vectorized_mode_rejects_rdt_plus(self, small_gaussian):
        rdt = RDT(LinearScanIndex(small_gaussian), variant="rdt+")
        with pytest.raises(ValueError, match="vectorized"):
            rdt.query_batch(query_indices=[0], k=5, t=3.0, filter_mode="vectorized")

    def test_unknown_mode_rejected(self, small_gaussian):
        rdt = RDT(LinearScanIndex(small_gaussian))
        with pytest.raises(ValueError, match="filter_mode"):
            rdt.query_batch(query_indices=[0], k=5, t=3.0, filter_mode="turbo")


class TestRawPointQueries:
    @pytest.mark.parametrize("variant", ["rdt", "rdt+"])
    def test_raw_points_parity(self, variant, small_gaussian, rng):
        index = LinearScanIndex(small_gaussian)
        rdt = RDT(index, variant=variant)
        queries = rng.normal(size=(15, small_gaussian.shape[1]))
        batch = rdt.query_batch(queries, k=5, t=3.0)
        for query, batched in zip(queries, batch):
            single = rdt.query(query, k=5, t=3.0)
            assert_single_batch_parity(single, batched)

    def test_member_exclusion_only_for_indices(self, small_gaussian):
        """A member passed as a raw point is *not* excluded from its answer."""
        index = LinearScanIndex(small_gaussian)
        rdt = RDT(index)
        as_point = rdt.query_batch(small_gaussian[:1], k=5, t=50.0)[0]
        as_member = rdt.query_batch(query_indices=[0], k=5, t=50.0)[0]
        assert 0 in as_point.ids  # a point is its own 1-NN's witness
        assert 0 not in as_member.ids


class TestQueryAll:
    def test_matches_batch_over_active_ids(self, small_gaussian):
        index = LinearScanIndex(small_gaussian[:120])
        rdt = RDT(index)
        all_results = rdt.query_all(k=5, t=4.0)
        assert sorted(all_results) == list(range(120))
        batch = rdt.query_batch(
            query_indices=index.active_ids(), k=5, t=4.0
        )
        for pid, batched in zip(index.active_ids(), batch):
            assert np.array_equal(all_results[int(pid)].ids, batched.ids)

    def test_respects_removals(self, small_gaussian):
        index = LinearScanIndex(small_gaussian[:80])
        index.remove(7)
        index.remove(20)
        rdt = RDT(index)
        all_results = rdt.query_all(k=4, t=4.0)
        assert 7 not in all_results and 20 not in all_results
        for result in all_results.values():
            assert 7 not in result.ids and 20 not in result.ids
        single = rdt.query(query_index=3, k=4, t=4.0)
        assert_single_batch_parity(single, all_results[3])


class TestBatchStatsAccounting:
    def test_per_query_stats_are_populated(self, small_gaussian):
        index = LinearScanIndex(small_gaussian)
        rdt = RDT(index)
        batch = rdt.query_batch(query_indices=np.arange(30), k=5, t=4.0)
        assert sum(r.stats.num_distance_calls for r in batch) > 0
        for result in batch:
            stats = result.stats
            assert stats.num_retrieved >= stats.num_candidates
            assert (
                stats.num_lazy_accepts + stats.num_lazy_rejects + stats.num_verified
                == stats.num_generated
            )
            assert stats.terminated_by in ("omega", "rank-cap", "exhausted")
            assert stats.filter_seconds >= 0.0 and stats.refine_seconds >= 0.0

    def test_distance_call_parity_on_linear_scan(self, small_gaussian):
        """On the scan backend the batched kernels do the same distance work
        per query as the looped path, minus the witness restructuring — so
        refinement-only configurations agree exactly."""
        index = LinearScanIndex(small_gaussian)
        rdt = RDT(index, use_witnesses=False)
        qi = 13
        single = rdt.query(query_index=qi, k=5, t=2.0)
        # a singleton batch shares nothing, so attribution is exact
        batched = rdt.query_batch(query_indices=[qi], k=5, t=2.0)[0]
        assert batched.stats.num_verified == single.stats.num_verified


class TestValidation:
    def test_requires_exactly_one_input(self, small_gaussian):
        rdt = RDT(LinearScanIndex(small_gaussian))
        with pytest.raises(ValueError, match="exactly one"):
            rdt.query_batch(k=5, t=3.0)
        with pytest.raises(ValueError, match="exactly one"):
            rdt.query_batch(
                small_gaussian[:3], query_indices=[0, 1, 2], k=5, t=3.0
            )

    def test_empty_batches(self, small_gaussian):
        rdt = RDT(LinearScanIndex(small_gaussian))
        assert rdt.query_batch(query_indices=[], k=5, t=3.0) == []
        assert (
            rdt.query_batch(np.empty((0, small_gaussian.shape[1])), k=5, t=3.0)
            == []
        )

    def test_rejects_bad_shapes(self, small_gaussian):
        rdt = RDT(LinearScanIndex(small_gaussian))
        with pytest.raises(ValueError, match="shape"):
            rdt.query_batch(np.zeros((3, small_gaussian.shape[1] + 2)), k=5, t=3.0)
        with pytest.raises(ValueError):
            rdt.query_batch(query_indices=[[0, 1]], k=5, t=3.0)

    def test_inactive_query_index_raises(self, small_gaussian):
        index = LinearScanIndex(small_gaussian[:40])
        index.remove(5)
        rdt = RDT(index)
        with pytest.raises(KeyError):
            rdt.query_batch(query_indices=[5], k=3, t=3.0)

    def test_out_of_range_query_index_raises(self, small_gaussian):
        rdt = RDT(LinearScanIndex(small_gaussian[:40]))
        with pytest.raises(IndexError):
            rdt.query_batch(query_indices=[99], k=3, t=3.0)

    def test_empty_active_set_matches_loop(self, small_gaussian):
        index = LinearScanIndex(small_gaussian[:3])
        for i in range(3):
            index.remove(i)
        rdt = RDT(index)
        query = np.zeros((1, small_gaussian.shape[1]))
        batched = rdt.query_batch(query, k=2, t=4.0)[0]
        single = rdt.query(query[0], k=2, t=4.0)
        assert_single_batch_parity(single, batched)
        assert batched.stats.terminated_by == "exhausted"


class TestCorrectnessAgainstTruth:
    def test_large_t_batch_is_exact(self, small_gaussian, naive_k5):
        """With a generous scale the batch must reproduce the exact answer."""
        index = LinearScanIndex(small_gaussian)
        rdt = RDT(index)
        query_indices = np.arange(0, 300, 23)
        batch = rdt.query_batch(query_indices=query_indices, k=5, t=200.0)
        for qi, result in zip(query_indices, batch):
            expected = naive_k5.query_ids(query_index=int(qi))
            assert np.array_equal(result.ids, expected)
