"""Tests for automatic scale-parameter selection (paper Section 6)."""

import numpy as np
import pytest

from repro.core import suggest_scale
from repro.datasets import uniform_hypercube


class TestSuggestScale:
    def test_tracks_intrinsic_dimension(self):
        low = suggest_scale(uniform_hypercube(1500, 2, seed=0), method="mle")
        high = suggest_scale(uniform_hypercube(1500, 8, seed=0), method="mle")
        assert 1.0 <= low < high

    @pytest.mark.parametrize("method", ["mle", "gp", "takens"])
    def test_all_estimators_available(self, method):
        data = uniform_hypercube(1000, 3, seed=1)
        t = suggest_scale(data, method=method)
        assert 1.0 <= t <= 10.0

    def test_margin_scales_linearly(self):
        data = uniform_hypercube(800, 4, seed=2)
        base = suggest_scale(data, method="mle", margin=1.0)
        doubled = suggest_scale(data, method="mle", margin=2.0)
        assert doubled == pytest.approx(2.0 * base)

    def test_minimum_clamp(self):
        data = np.linspace(0, 1, 500)[:, None]  # 1-D line: estimate ~1
        assert suggest_scale(data, method="mle", minimum=3.0) >= 3.0

    def test_degenerate_data_falls_back(self):
        data = np.zeros((200, 3))  # all duplicates: estimators return nan
        t = suggest_scale(data, method="mle")
        assert np.isfinite(t) and t > 0

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            suggest_scale(np.zeros((10, 2)) + np.arange(10)[:, None], method="pca")

    def test_bad_margin_raises(self):
        with pytest.raises(ValueError, match="margin"):
            suggest_scale(np.ones((10, 2)), margin=-1.0)

    def test_estimator_kwargs_forwarded(self):
        data = uniform_hypercube(1200, 3, seed=3)
        t = suggest_scale(data, method="mle", k=20, sample_fraction=0.2)
        assert 1.0 <= t <= 8.0
