"""Exact parity between the optimized and legacy RDT code paths.

``vectorized_filter``, ``use_refine_caps``, and the flat SoA descent are
pure reformulations of the scalar pipeline: every accept/reject decision
is made on bit-identical distances, so result ids *and* every decision
counter must match the legacy path exactly — on adversarial workloads
(tie grids, duplicates, catastrophic offsets, 1-d) and at float32, where
the batched witness tensor repairs boundary entries back to exact
arithmetic before deciding.
"""

from __future__ import annotations

import contextlib

import numpy as np
import pytest

from repro.core.rdt import RDT
from repro.distances import EuclideanMetric
from repro.indexes import create_index


def _workloads():
    rng = np.random.default_rng(7)
    yield "gauss", rng.normal(size=(1200, 6)), rng.normal(size=(25, 6))
    pts = np.round(rng.normal(size=(1000, 4)), 1)
    yield "ties", pts, np.round(rng.normal(size=(20, 4)), 1)
    base = rng.normal(size=(300, 5))
    dup = np.concatenate([base, base[:150], rng.normal(size=(400, 5))])
    yield "dups", dup, rng.normal(size=(15, 5))
    yield "offset", rng.normal(size=(1000, 6)) + 1e6, (
        rng.normal(size=(12, 6)) + 1e6
    )
    yield "d1", rng.normal(size=(800, 1)), rng.normal(size=(10, 1))


WORKLOADS = {name: (pts, qs) for name, pts, qs in _workloads()}


@contextlib.contextmanager
def _toggles(vectorized, caps):
    saved = RDT.vectorized_filter, RDT.use_refine_caps
    RDT.vectorized_filter = vectorized
    RDT.use_refine_caps = caps
    try:
        yield
    finally:
        RDT.vectorized_filter, RDT.use_refine_caps = saved


def _decisions(points, queries, backend, *, optimized, dtype=None):
    metric = EuclideanMetric(dtype=dtype) if dtype is not None else None
    index = create_index(backend, points, metric=metric)
    if hasattr(index, "use_flat_descent"):
        index.use_flat_descent = optimized
    out = []
    with _toggles(optimized, optimized):
        engine = RDT(index)
        for q in queries.astype(index.points.dtype):
            result = engine.query(q, k=4, t=4.0)
            stats = result.stats
            out.append(
                (
                    sorted(result.ids),
                    stats.num_retrieved,
                    stats.terminated_by,
                    stats.num_lazy_accepts,
                    stats.num_lazy_rejects,
                    stats.num_verified,
                )
            )
    return out


@pytest.mark.parametrize("backend", ["kd-tree", "linear-scan"])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_optimized_path_matches_legacy_decisions(workload, backend):
    points, queries = WORKLOADS[workload]
    fast = _decisions(points, queries, backend, optimized=True)
    slow = _decisions(points, queries, backend, optimized=False)
    assert fast == slow


@pytest.mark.parametrize("backend", ["kd-tree", "linear-scan", "ball-tree"])
def test_float32_optimized_path_matches_legacy_decisions(backend):
    # The float32 witness tensor flags near-threshold entries and repairs
    # them with exact arithmetic, so parity holds at reduced precision too.
    rng = np.random.default_rng(11)
    points = rng.normal(size=(1100, 6))
    queries = rng.normal(size=(18, 6))
    fast = _decisions(points, queries, backend, optimized=True,
                      dtype=np.float32)
    slow = _decisions(points, queries, backend, optimized=False,
                      dtype=np.float32)
    assert fast == slow


def test_float32_ties_parity():
    rng = np.random.default_rng(13)
    points = np.round(rng.normal(size=(900, 3)), 1)
    queries = np.round(rng.normal(size=(12, 3)), 1)
    fast = _decisions(points, queries, "kd-tree", optimized=True,
                      dtype=np.float32)
    slow = _decisions(points, queries, "kd-tree", optimized=False,
                      dtype=np.float32)
    assert fast == slow


def test_batch_matches_sequential_scalar_filter():
    points, queries = WORKLOADS["gauss"]
    engine = RDT(create_index("kd-tree", points))
    batched = engine.query_batch(queries, k=4, t=4.0,
                                 filter_mode="vectorized")
    sequential = engine.query_batch(
        queries, k=4, t=4.0, filter_mode="sequential"
    )
    for a, b in zip(batched, sequential):
        assert sorted(a.ids) == sorted(b.ids)


def test_toggles_default_on():
    assert RDT.vectorized_filter is True
    assert RDT.use_refine_caps is True
