"""Tests for the adaptive-scale RDT extension (paper future work, §9)."""

import numpy as np
import pytest

from repro.baselines import NaiveRkNN
from repro.core import RDT, AdaptiveRDT
from repro.evaluation.metrics import precision, recall
from repro.indexes import LinearScanIndex


class TestAdaptiveQueries:
    def test_high_recall_without_manual_t(self, medium_mixture, naive_k10_mixture):
        adaptive = AdaptiveRDT(LinearScanIndex(medium_mixture))
        values = []
        for qi in range(0, 800, 100):
            truth = naive_k10_mixture.query_ids(query_index=qi)
            got = adaptive.query(query_index=qi, k=10).ids
            values.append(recall(truth, got))
        assert np.mean(values) >= 0.9

    def test_no_false_positives(self, medium_mixture, naive_k10_mixture):
        adaptive = AdaptiveRDT(LinearScanIndex(medium_mixture))
        for qi in range(0, 800, 200):
            truth = naive_k10_mixture.query_ids(query_index=qi)
            got = adaptive.query(query_index=qi, k=10).ids
            assert precision(truth, got) == 1.0

    def test_reports_final_scale(self, medium_mixture):
        adaptive = AdaptiveRDT(LinearScanIndex(medium_mixture))
        result = adaptive.query(query_index=0, k=10)
        assert adaptive.t_min <= result.t <= adaptive.t_max

    def test_t_max_caps_work(self, medium_mixture):
        tight = AdaptiveRDT(LinearScanIndex(medium_mixture), t_max=2.0)
        loose = AdaptiveRDT(LinearScanIndex(medium_mixture), t_max=16.0)
        a = tight.query(query_index=0, k=10)
        b = loose.query(query_index=0, k=10)
        assert a.stats.num_retrieved <= b.stats.num_retrieved

    def test_explicit_initial_t_used(self, medium_mixture):
        adaptive = AdaptiveRDT(LinearScanIndex(medium_mixture), update_every=10_000)
        # With updates effectively disabled, behaves like fixed-t RDT.
        fixed = RDT(LinearScanIndex(medium_mixture))
        a = adaptive.query(query_index=4, k=10, t=3.0)
        b = fixed.query(query_index=4, k=10, t=3.0)
        assert set(a.ids.tolist()) == set(b.ids.tolist())
        assert a.stats.num_retrieved == b.stats.num_retrieved


class TestAdaptiveValidation:
    def test_rejects_bad_bounds(self, small_gaussian):
        with pytest.raises(ValueError, match="t_max"):
            AdaptiveRDT(LinearScanIndex(small_gaussian), t_min=4.0, t_max=2.0)

    def test_rejects_bad_margin(self, small_gaussian):
        with pytest.raises(ValueError, match="margin"):
            AdaptiveRDT(LinearScanIndex(small_gaussian), margin=0.0)

    def test_rejects_conflicting_query_forms(self, small_gaussian):
        adaptive = AdaptiveRDT(LinearScanIndex(small_gaussian))
        with pytest.raises(ValueError, match="exactly one"):
            adaptive.query(small_gaussian[0], query_index=0, k=5)


class TestAdaptiveBatchEntryPoints:
    """The adaptive recursion has no vectorized form: batched entry
    points must loop query() (not inherit RDT's fixed-t batch kernel),
    so batch decisions equal looped ones — the protocol's contract."""

    def test_not_advertised_as_natively_batched(self):
        assert AdaptiveRDT.supports_batch is False

    def test_batch_decisions_equal_looped(self, medium_mixture):
        adaptive = AdaptiveRDT(LinearScanIndex(medium_mixture))
        queries = list(range(0, 800, 160))
        batch = adaptive.query_batch(query_indices=queries, k=10)
        for qi, batched in zip(queries, batch):
            looped = adaptive.query(query_index=qi, k=10)
            assert np.array_equal(batched.ids, looped.ids)
            assert batched.t == looped.t  # per-query re-estimated scale

    def test_query_all_uses_adaptive_path(self, small_gaussian):
        adaptive = AdaptiveRDT(LinearScanIndex(small_gaussian))
        results = adaptive.query_all(k=5)
        assert set(results) == set(range(len(small_gaussian)))
        probe = next(iter(results))
        assert np.array_equal(
            results[probe].ids, adaptive.query(query_index=probe, k=5).ids
        )


class TestAdaptiveVsFixedCost:
    def test_adapts_across_density_regimes(self, medium_mixture, naive_k10_mixture):
        """Adaptive t varies per query — the point of the extension."""
        adaptive = AdaptiveRDT(LinearScanIndex(medium_mixture))
        scales = {
            round(adaptive.query(query_index=qi, k=10).t, 3)
            for qi in range(0, 800, 100)
        }
        assert len(scales) > 1
