"""Correctness tests for RDT / RDT+ (Algorithm 1).

The headline properties from the paper's analysis:

* **Theorem 1 (exactness)** — with ``t >= MaxGed(S ∪ {q}, k)`` the result
  is exact; and unconditionally, any missed true member must lie beyond
  the final ``omega`` bound.
* **Assertion 1/2 side** — plain RDT never reports a false positive.
* **Monotone accuracy** — recall grows toward 1 as ``t`` increases, and a
  huge ``t`` degenerates to an exact full scan.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import NaiveRkNN
from repro.core import RDT
from repro.evaluation.metrics import precision, recall
from repro.indexes import INDEX_REGISTRY, LinearScanIndex, build_index
from repro.lid import max_ged, theorem1_scale


class TestExactnessAtHugeT:
    @pytest.mark.parametrize("index_name", sorted(INDEX_REGISTRY))
    def test_full_scan_equivalence(self, index_name, small_gaussian, naive_k5):
        index = build_index(index_name, small_gaussian)
        rdt = RDT(index)
        for qi in [0, 50, 150, 299]:
            expected = set(naive_k5.query_ids(query_index=qi).tolist())
            got = set(rdt.query(query_index=qi, k=5, t=100.0).ids.tolist())
            assert got == expected, f"{index_name} query {qi}"

    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_all_k(self, small_gaussian, k):
        naive = NaiveRkNN(small_gaussian, k=k)
        rdt = RDT(LinearScanIndex(small_gaussian))
        for qi in [7, 123]:
            expected = set(naive.query_ids(query_index=qi).tolist())
            got = set(rdt.query(query_index=qi, k=k, t=100.0).ids.tolist())
            assert got == expected

    def test_clustered_data(self, medium_mixture, naive_k10_mixture):
        rdt = RDT(LinearScanIndex(medium_mixture))
        for qi in range(0, 800, 160):
            expected = set(naive_k10_mixture.query_ids(query_index=qi).tolist())
            got = set(rdt.query(query_index=qi, k=10, t=100.0).ids.tolist())
            assert got == expected


class TestTheorem1:
    def test_exact_at_theorem1_scale(self, small_gaussian, naive_k5):
        t_star = theorem1_scale(small_gaussian, k=5)
        rdt = RDT(LinearScanIndex(small_gaussian))
        for qi in range(0, 300, 30):
            expected = set(naive_k5.query_ids(query_index=qi).tolist())
            got = set(rdt.query(query_index=qi, k=5, t=t_star).ids.tolist())
            assert got == expected

    def test_missed_members_lie_beyond_omega(self, medium_mixture, naive_k10_mixture):
        """Theorem 1's distance guarantee, checked per query at small t."""
        rdt = RDT(LinearScanIndex(medium_mixture))
        for qi in range(0, 800, 80):
            truth = naive_k10_mixture.query_ids(query_index=qi)
            result = rdt.query(query_index=qi, k=10, t=2.0)
            missed = np.setdiff1d(truth, result.ids)
            dists = np.linalg.norm(medium_mixture - medium_mixture[qi], axis=1)
            for m in missed:
                assert dists[m] > result.stats.omega * (1 - 1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_exactness_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(rng.integers(30, 120), rng.integers(1, 5)))
        k = int(rng.integers(1, 6))
        naive = NaiveRkNN(points, k=k)
        rdt = RDT(LinearScanIndex(points))
        qi = int(rng.integers(0, len(points)))
        t_star = theorem1_scale(points, k=k)
        expected = set(naive.query_ids(query_index=qi).tolist())
        got = set(rdt.query(query_index=qi, k=k, t=max(t_star, 1.0)).ids.tolist())
        assert got == expected

    def test_paper_anchor_degenerates_at_k1(self):
        """Why theorem1_scale anchors at k+1: the paper's inclusive-count
        MaxGED at k=1 is identically zero (the inner ball radius is the
        center's self-distance), which would allow arbitrarily early
        termination and missed members."""
        points = np.random.default_rng(2586).normal(size=(77, 3))
        assert max_ged(points, k=1) == 0.0
        assert theorem1_scale(points, k=1) > 0.0


class TestPrecision:
    def test_rdt_never_false_positives(self, medium_mixture, naive_k10_mixture):
        """Assertions 1-2 and verification are exact for plain RDT."""
        rdt = RDT(LinearScanIndex(medium_mixture))
        for qi in range(0, 800, 50):
            truth = naive_k10_mixture.query_ids(query_index=qi)
            for t in (1.5, 3.0, 6.0):
                got = rdt.query(query_index=qi, k=10, t=t).ids
                assert precision(truth, got) == 1.0

    def test_lazy_accepts_are_true_members(self, medium_mixture, naive_k10_mixture):
        """Assertion 2: lazily accepted points need no verification."""
        rdt = RDT(LinearScanIndex(medium_mixture))
        for qi in range(0, 800, 100):
            truth = set(naive_k10_mixture.query_ids(query_index=qi).tolist())
            result = rdt.query(query_index=qi, k=10, t=6.0)
            assert set(result.lazy_accepted_ids.tolist()) <= truth


class TestAccuracyMonotonicity:
    def test_recall_reaches_one(self, medium_mixture, naive_k10_mixture):
        rdt = RDT(LinearScanIndex(medium_mixture))
        recalls = []
        for t in (1.0, 2.0, 4.0, 8.0, 16.0):
            values = []
            for qi in range(0, 800, 100):
                truth = naive_k10_mixture.query_ids(query_index=qi)
                got = rdt.query(query_index=qi, k=10, t=t).ids
                values.append(recall(truth, got))
            recalls.append(float(np.mean(values)))
        assert recalls[-1] == 1.0
        assert recalls[0] <= recalls[-1]

    def test_retrieved_grows_with_t(self, medium_mixture):
        rdt = RDT(LinearScanIndex(medium_mixture))
        counts = [
            rdt.query(query_index=5, k=10, t=t).stats.num_retrieved
            for t in (1.0, 3.0, 9.0)
        ]
        assert counts == sorted(counts)


class TestRdtPlus:
    def test_recall_comparable_to_rdt(self, medium_mixture, naive_k10_mixture):
        index = LinearScanIndex(medium_mixture)
        rdt, rdtp = RDT(index), RDT(index, variant="rdt+")
        for qi in range(0, 800, 200):
            truth = naive_k10_mixture.query_ids(query_index=qi)
            r1 = recall(truth, rdt.query(query_index=qi, k=10, t=6.0).ids)
            r2 = recall(truth, rdtp.query(query_index=qi, k=10, t=6.0).ids)
            assert r2 >= r1 - 0.25  # reduction may cost a little recall

    def test_exclusions_happen_on_clustered_data(self, medium_mixture):
        rdtp = RDT(LinearScanIndex(medium_mixture), variant="rdt+")
        result = rdtp.query(query_index=0, k=10, t=8.0)
        assert result.stats.num_excluded > 0

    def test_huge_t_still_exact_recall(self, medium_mixture, naive_k10_mixture):
        """RDT+ may add false positives but never loses recall at full scan."""
        rdtp = RDT(LinearScanIndex(medium_mixture), variant="rdt+")
        for qi in [0, 400]:
            truth = naive_k10_mixture.query_ids(query_index=qi)
            got = rdtp.query(query_index=qi, k=10, t=100.0).ids
            assert recall(truth, got) == 1.0

    def test_false_positive_mechanism_documented(
        self, medium_mixture, naive_k10_mixture
    ):
        """Section 4.3's precision risk is real and has exactly one cause:
        RDT+ exclusions undercount witnesses, so a lazy accept can fire for
        a non-member.  Every false positive must be a lazy accept — never a
        verified candidate (verification stays exact)."""
        rdtp = RDT(LinearScanIndex(medium_mixture), variant="rdt+")
        found_fp = False
        for qi in range(0, 800, 40):
            truth = set(naive_k10_mixture.query_ids(query_index=qi).tolist())
            result = rdtp.query(query_index=qi, k=10, t=8.0)
            false_positives = set(result.ids.tolist()) - truth
            if false_positives:
                found_fp = True
                assert false_positives <= set(result.lazy_accepted_ids.tolist())
        assert found_fp, "expected at least one FP on clustered data at t=8"

    def test_invalid_variant_rejected(self, small_gaussian):
        with pytest.raises(ValueError, match="variant"):
            RDT(LinearScanIndex(small_gaussian), variant="rdt++")


class TestStatsConsistency:
    def test_treatment_counts_partition_candidates(self, medium_mixture):
        rdt = RDT(LinearScanIndex(medium_mixture))
        result = rdt.query(query_index=9, k=10, t=5.0)
        s = result.stats
        assert s.num_lazy_accepts + s.num_lazy_rejects + s.num_verified == (
            s.num_generated
        )
        assert s.num_candidates + s.num_excluded == s.num_generated
        assert 0 <= s.num_verified_hits <= s.num_verified

    def test_proportions_sum_to_one(self, medium_mixture):
        rdt = RDT(LinearScanIndex(medium_mixture), variant="rdt+")
        props = rdt.query(query_index=3, k=10, t=5.0).stats.proportions()
        assert sum(props.values()) == pytest.approx(1.0)

    def test_timers_and_counters_populated(self, medium_mixture):
        result = RDT(LinearScanIndex(medium_mixture)).query(query_index=1, k=5, t=4.0)
        assert result.stats.total_seconds > 0
        assert result.stats.num_distance_calls > 0
        assert result.stats.terminated_by in {"omega", "rank-cap", "exhausted"}

    def test_result_container_protocols(self, medium_mixture):
        result = RDT(LinearScanIndex(medium_mixture)).query(query_index=1, k=5, t=4.0)
        assert len(result) == len(result.ids)
        for pid in result:
            assert pid in result


class TestQueryInterface:
    def test_query_point_not_in_own_result(self, small_gaussian):
        rdt = RDT(LinearScanIndex(small_gaussian))
        result = rdt.query(query_index=42, k=5, t=100.0)
        assert 42 not in result.ids

    def test_external_query_point(self, small_gaussian, rng):
        """Queries need not be dataset members."""
        q = rng.normal(size=small_gaussian.shape[1])
        rdt = RDT(LinearScanIndex(small_gaussian))
        got = set(rdt.query(q, k=5, t=100.0).ids.tolist())
        naive = NaiveRkNN(small_gaussian, k=5)
        expected = set(naive.query_ids(q).tolist())
        assert got == expected

    def test_requires_exactly_one_query_form(self, small_gaussian):
        rdt = RDT(LinearScanIndex(small_gaussian))
        with pytest.raises(ValueError, match="exactly one"):
            rdt.query(small_gaussian[0], query_index=0, k=5, t=1.0)
        with pytest.raises(ValueError, match="exactly one"):
            rdt.query(k=5, t=1.0)

    def test_invalid_parameters(self, small_gaussian):
        rdt = RDT(LinearScanIndex(small_gaussian))
        with pytest.raises(ValueError):
            rdt.query(query_index=0, k=5, t=0.0)
        with pytest.raises(ValueError):
            rdt.query(query_index=0, k=0, t=1.0)


class TestTieHandling:
    def test_duplicate_heavy_data_exact_at_huge_t(self, duplicated_points):
        naive = NaiveRkNN(duplicated_points, k=4)
        rdt = RDT(LinearScanIndex(duplicated_points))
        for qi in [0, 33, 77]:
            expected = set(naive.query_ids(query_index=qi).tolist())
            got = set(rdt.query(query_index=qi, k=4, t=100.0).ids.tolist())
            assert got == expected

    def test_query_with_duplicates_of_query_point(self):
        """Exact duplicates of q are legitimate candidates, never dropped."""
        points = np.vstack([np.zeros((3, 2)), np.ones((5, 2)), np.eye(2) * 3.0])
        naive = NaiveRkNN(points, k=3)
        rdt = RDT(LinearScanIndex(points))
        expected = set(naive.query_ids(query_index=0).tolist())
        got = set(rdt.query(query_index=0, k=3, t=100.0).ids.tolist())
        assert got == expected


class TestDynamicIndexIntegration:
    def test_insertions_visible_to_queries(self, rng):
        from repro.indexes import CoverTreeIndex

        points = rng.normal(size=(100, 3))
        index = CoverTreeIndex(points)
        rdt = RDT(index)
        before = rdt.query(query_index=0, k=5, t=100.0)
        new_rows = points[0] + rng.normal(scale=1e-3, size=(6, 3))
        for row in new_rows:
            index.insert(row)
        after = rdt.query(query_index=0, k=5, t=100.0)
        all_points = np.vstack([points, new_rows])
        naive = NaiveRkNN(all_points, k=5)
        assert set(after.ids.tolist()) == set(naive.query_ids(query_index=0).tolist())
        assert set(after.ids.tolist()) != set(before.ids.tolist())
