"""Direct tests of the paper's theoretical statements (Section 5).

These test the *mathematics*, independent of the RDT implementation:
Lemma 1's reverse-rank bound and the ball-counting step inside the proof of
Theorem 1, instantiated on concrete random datasets.

Note on Lemma 1's statement: the paper anchors ``MaxGed(S, k)`` at "k such
that rho_S(x, v) = k" but its proof counts the ball
``B(v, d(v, x))`` — whose cardinality is the *reverse* rank
``rho_S(v, x)``.  The lemma is therefore tested with the anchor the proof
actually uses: for every ordered pair, ``rho(x, v) <= 2^t(k) * rho(v, x)``
with ``t(k) = MaxGed(S, k)`` and ``k = rho(v, x)``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lid import max_ged


def physical_ranks(points: np.ndarray) -> np.ndarray:
    """rho[i, j]: max-rank of j w.r.t. center i (self-inclusive counts)."""
    n = len(points)
    dists = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=2)
    ranks = np.empty((n, n), dtype=np.int64)
    for i in range(n):
        order = np.sort(dists[i])
        ranks[i] = np.searchsorted(order, dists[i], side="right")
    return ranks


class TestLemma1:
    """rho(x, v) <= 2^MaxGed(S, rho(v,x)) * rho(v, x), per ordered pair."""

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_reverse_rank_bound_random_data(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(int(rng.integers(10, 35)), int(rng.integers(1, 4))))
        n = len(points)
        ranks = physical_ranks(points)
        maxged_by_k = {k: max_ged(points, k=k) for k in range(1, n + 1)}
        for x in range(n):
            for v in range(n):
                if x == v:
                    continue
                k = int(ranks[v, x])
                bound = 2.0 ** min(maxged_by_k[k], 60.0)
                assert ranks[x, v] <= bound * ranks[v, x] * (1 + 1e-9), (x, v, k)

    def test_reverse_rank_bound_jittered_line(self):
        """A near-1-D configuration: small MaxGED, strong rank asymmetry."""
        rng = np.random.default_rng(5)
        points = np.sort(rng.uniform(size=40))[:, None] + rng.normal(
            scale=1e-4, size=(40, 1)
        )
        n = len(points)
        ranks = physical_ranks(points)
        maxged_by_k = {k: max_ged(points, k=k) for k in range(1, n + 1)}
        for x in range(n):
            for v in range(n):
                if x == v:
                    continue
                k = int(ranks[v, x])
                bound = 2.0 ** min(maxged_by_k[k], 60.0)
                assert ranks[x, v] <= bound * ranks[v, x] * (1 + 1e-9)


class TestTheorem1BallCounting:
    """The proof's key inequality: any point x whose query distance exceeds
    omega would witness a GED above MaxGED — so no such member exists."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_ged_of_proof_ball_pair_below_maxged(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(40, 3))
        k = 4
        t_star = max_ged(points, k=k)
        dists_from_q = np.linalg.norm(points - points[0], axis=1)
        order = np.argsort(dists_from_q)
        # Take the search state after s~ = 15 retrievals.
        s_tilde = 15
        d_s = dists_from_q[order[s_tilde - 1]]
        for x in order[s_tilde:]:
            d_xq = dists_from_q[x]
            if d_xq <= d_s or d_xq == 0.0:
                continue
            # Ball around x with radius d_s + d_xq contains >= s~ points.
            d_from_x = np.linalg.norm(points - points[x], axis=1)
            big_count = int(np.count_nonzero(d_from_x <= d_s + d_xq))
            assert big_count >= s_tilde
            # ... so the dimensional test value of this pair is a valid GED
            # observation, necessarily below the dataset maximum whenever
            # the small ball holds at most k+1 points (x a member).
            small_count = int(np.count_nonzero(d_from_x <= d_xq))
            if small_count <= k + 1 and big_count > small_count:
                value = np.log(big_count / small_count) / np.log(
                    (d_s + d_xq) / d_xq
                )
                assert value <= t_star + 1e-9
