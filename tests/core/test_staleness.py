"""Engine staleness via the version protocol (layer 2 of the design).

Every engine records the index version it was built against
(``built_at_version``) and answers ``is_stale()`` by comparing against
the live version — replacing the ad-hoc "did the active set change?"
array comparisons that predated the protocol.
"""

import numpy as np
import pytest

import repro
from repro.core.bichromatic import BichromaticRDT


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(5).normal(size=(150, 4))


def test_rdt_binds_build_version_and_goes_stale(points):
    index = repro.create_index("kd", points)
    engine = repro.RDT(index, variant="rdt+")
    assert engine.built_at_version == 0
    assert not engine.is_stale()
    index.insert(points[0] + 0.1)
    assert engine.is_stale()
    fresh = repro.RDT(index)
    assert fresh.built_at_version == 1
    assert not fresh.is_stale()
    assert fresh.is_stale(repro.create_index("kd", points))  # wrong build


@pytest.mark.parametrize("name", ["rdt", "rdt+", "adaptive", "approx-sampled",
                                  "approx-lsh", "sft"])
def test_index_engines_from_registry_track_their_index(name, points):
    index = repro.create_index("kd", points)
    engine = repro.create_engine(name, index)
    assert engine.built_at_version == index.version
    assert not engine.is_stale()
    index.remove(7)
    assert engine.is_stale()


def test_data_snapshot_engines_are_stamped_by_create_engine(points):
    index = repro.create_index("kd", points)
    index.insert(points[1] + 0.2)
    engine = repro.create_engine("naive", index, k=5)
    assert engine.built_at_version == 1
    assert not engine.is_stale(index)
    index.remove(0)
    assert engine.is_stale(index)


def test_engines_built_from_raw_data_never_report_stale(points):
    engine = repro.create_engine("naive", points, k=5)
    assert engine.built_at_version is None
    assert not engine.is_stale()
    # Without a bound version there is nothing to compare against.
    assert not engine.is_stale(repro.create_index("kd", points))


def test_bichromatic_tracks_both_colors(points):
    clients = repro.create_index("kd", points[:100])
    services = repro.create_index("kd", points[100:])
    engine = BichromaticRDT(clients, services)
    assert not engine.is_stale()
    services.insert(points[0] + 0.3)
    assert engine.is_stale()
    rebuilt = BichromaticRDT(clients, services)
    assert not rebuilt.is_stale()
    clients.remove(2)
    assert rebuilt.is_stale()


def test_approx_strategy_rebuilds_on_version_change_only(points):
    index = repro.create_index("kd", points)
    engine = repro.create_engine("approx-sampled", index, sample_size=32, seed=0)
    first = engine.query(query_index=3, k=5)
    strategy = engine.strategy
    built = strategy._built_version
    engine.query(query_index=4, k=5)
    assert strategy._built_version == built  # no spurious rebuild
    index.insert(points[2] + 0.05)
    engine.query(query_index=3, k=5)
    assert strategy._built_version == index.version
    assert isinstance(first, repro.RkNNResult)
