"""Informative ``__repr__``s: class, n, dim, metric, and key knobs.

Reprs are part of the operator surface — a Service (or any engine) pasted
into a log or a debugger must identify its configuration without digging.
"""

import numpy as np
import pytest

import repro
from repro.indexes import INDEX_REGISTRY, create_index


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(2).normal(size=(60, 4))


#: constructor knobs each backend's repr must surface
BACKEND_KNOBS = {
    "linear-scan": (),
    "kd-tree": ("leaf_size=16",),
    "ball-tree": ("leaf_size=16",),
    "vp-tree": ("leaf_size=16", "n_candidates=5"),
    "cover-tree": ("root_level=",),
    "m-tree": ("capacity=32",),
    "r-star-tree": ("capacity=32",),
}


@pytest.mark.parametrize("name", sorted(INDEX_REGISTRY))
def test_index_backend_reprs(name, points):
    index = create_index(name, points)
    text = repr(index)
    assert type(index).__name__ in text
    assert "n=60" in text and "dim=4" in text and "metric=euclidean" in text
    for knob in BACKEND_KNOBS[name]:
        assert knob in text, f"{name} repr should mention {knob!r}: {text}"


def test_rdnn_tree_repr(points):
    text = repr(create_index("rdnn", points, k=3))
    assert "RdNNTreeIndex" in text and "k=3" in text and "capacity=32" in text


def test_rdt_repr(points):
    index = repro.LinearScanIndex(points)
    plain = repr(repro.RDT(index))
    assert plain.startswith("RDT(variant='rdt'") and "n=60" in plain
    tuned = repr(repro.RDT(index, conservative=False, use_witnesses=False))
    assert "conservative=False" in tuned and "use_witnesses=False" in tuned
    adaptive = repr(repro.AdaptiveRDT(index, t_min=2.0, t_max=16.0))
    assert adaptive.startswith("AdaptiveRDT(") and "t_min=2.0" in adaptive


def test_bichromatic_repr(points):
    engine = repro.create_engine(
        "bichromatic", points[:40], clients=points[40:]
    )
    text = repr(engine)
    assert text.startswith("BichromaticRDT(clients=")
    assert "n=20" in text and "n=40" in text


def test_approx_repr(points):
    engine = repro.ApproxRkNN(repro.LinearScanIndex(points), "lsh", n_tables=2)
    text = repr(engine)
    assert text.startswith("ApproxRkNN(strategy='lsh'") and "n=60" in text


def test_baseline_reprs(points):
    assert "k=5" in repr(repro.NaiveRkNN(points, k=5))
    assert "k_max=4" in repr(repro.MRkNNCoP(points, k_max=4))
    assert "k=3" in repr(repro.create_engine("rdnn", points, k=3))
    assert "trim_size=None" in repr(repro.create_engine("tpl", points))
    assert repr(repro.create_engine("sft", points)).startswith("SFT(index=")


def test_service_repr(points):
    svc = repro.Service(points, backend="kd", engine="rdt+",
                        defaults=repro.QuerySpec(k=7, t=4.0))
    text = repr(svc)
    assert text.startswith("Service(engine='rdt+'")
    assert "backend='kd-tree'" in text
    assert "n=60" in text and "dim=4" in text
    assert "QuerySpec(k=7, t=4.0" in text
