"""Tests for the bichromatic RkNN extension (paper §1, services/clients)."""

import numpy as np
import pytest

from repro.core import BichromaticRDT, bichromatic_brute_force
from repro.evaluation.metrics import precision, recall
from repro.indexes import CoverTreeIndex, LinearScanIndex


@pytest.fixture(scope="module")
def service_scenario():
    rng = np.random.default_rng(77)
    clients = rng.normal(size=(400, 3))
    services = rng.normal(size=(150, 3))
    return clients, services


class TestBruteForceReference:
    def test_definition_by_hand(self):
        clients = np.array([[0.0], [2.0], [10.0]])
        services = np.array([[1.0], [3.0], [20.0]])
        # k=1: client belongs iff q is closer than its nearest service.
        got = set(bichromatic_brute_force(clients, services, [0.5], k=1).tolist())
        # client 0: d(q)=0.5 < nearest service d=1 -> in
        # client 1: d(q)=1.5 > nearest service d=1 -> out
        # client 2: d(q)=9.5 > nearest service d=7 (s at 3.0) -> out
        assert got == {0}

    def test_k_equals_service_count(self, service_scenario):
        clients, services = service_scenario
        got = bichromatic_brute_force(
            clients[:20], services[:5], np.zeros(3), k=5
        )
        # With k = |S| every client's kNN ball spans all services; membership
        # requires d(x, q) <= max service distance.
        for x in range(20):
            d_q = np.linalg.norm(clients[x])
            d_max = np.linalg.norm(services[:5] - clients[x], axis=1).max()
            assert (x in got) == (d_q <= d_max * (1 + 1e-9))


class TestBichromaticRDT:
    def test_exact_at_huge_t(self, service_scenario, rng):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        for _ in range(5):
            q = rng.normal(size=3)
            expected = set(
                bichromatic_brute_force(clients, services, q, k=5).tolist()
            )
            got = set(br.query(q, k=5, t=100.0).ids.tolist())
            assert got == expected

    def test_no_false_positives_any_t(self, service_scenario, rng):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        for t in (1.0, 3.0, 8.0):
            q = rng.normal(size=3)
            truth = bichromatic_brute_force(clients, services, q, k=5)
            got = br.query(q, k=5, t=t).ids
            assert precision(truth, got) == 1.0

    def test_recall_grows_with_t(self, service_scenario):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        q = np.array([0.2, -0.3, 0.1])
        truth = bichromatic_brute_force(clients, services, q, k=5)
        recalls = [recall(truth, br.query(q, k=5, t=t).ids) for t in (1.0, 4.0, 100.0)]
        assert recalls[-1] == 1.0
        assert recalls[0] <= recalls[-1] + 1e-12

    def test_tree_backed_indexes(self, service_scenario, rng):
        clients, services = service_scenario
        br = BichromaticRDT(CoverTreeIndex(clients), CoverTreeIndex(services))
        q = rng.normal(size=3)
        expected = set(bichromatic_brute_force(clients, services, q, k=3).tolist())
        got = set(br.query(q, k=3, t=100.0).ids.tolist())
        assert got == expected

    def test_lazy_accepts_are_true_members(self, service_scenario, rng):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        q = rng.normal(size=3)
        truth = set(bichromatic_brute_force(clients, services, q, k=5).tolist())
        result = br.query(q, k=5, t=6.0)
        assert set(result.lazy_accepted_ids.tolist()) <= truth


class TestBichromaticValidation:
    def test_dimension_mismatch(self, service_scenario):
        clients, services = service_scenario
        with pytest.raises(ValueError, match="share a dimension"):
            BichromaticRDT(
                LinearScanIndex(clients), LinearScanIndex(services[:, :2])
            )

    def test_k_bounded_by_service_count(self, service_scenario):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        with pytest.raises(ValueError, match="exceeds"):
            br.query(np.zeros(3), k=len(services) + 1, t=2.0)


class TestAsymmetricScenarios:
    def test_dense_clients_sparse_services(self, rng):
        """The motivating scenario: few facilities, many customers."""
        clients = rng.normal(size=(600, 2))
        services = rng.normal(size=(12, 2)) * 2.0
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        q = np.zeros(2)
        expected = set(bichromatic_brute_force(clients, services, q, k=2).tolist())
        got = set(br.query(q, k=2, t=50.0).ids.tolist())
        assert got == expected
        assert len(got) > 0
