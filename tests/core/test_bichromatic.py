"""Tests for the bichromatic RkNN extension (paper §1, services/clients)."""

import numpy as np
import pytest

from repro.core import BichromaticRDT, bichromatic_brute_force
from repro.evaluation.metrics import precision, recall
from repro.indexes import CoverTreeIndex, LinearScanIndex


@pytest.fixture(scope="module")
def service_scenario():
    rng = np.random.default_rng(77)
    clients = rng.normal(size=(400, 3))
    services = rng.normal(size=(150, 3))
    return clients, services


class TestBruteForceReference:
    def test_definition_by_hand(self):
        clients = np.array([[0.0], [2.0], [10.0]])
        services = np.array([[1.0], [3.0], [20.0]])
        # k=1: client belongs iff q is closer than its nearest service.
        got = set(bichromatic_brute_force(clients, services, [0.5], k=1).tolist())
        # client 0: d(q)=0.5 < nearest service d=1 -> in
        # client 1: d(q)=1.5 > nearest service d=1 -> out
        # client 2: d(q)=9.5 > nearest service d=7 (s at 3.0) -> out
        assert got == {0}

    def test_k_equals_service_count(self, service_scenario):
        clients, services = service_scenario
        got = bichromatic_brute_force(
            clients[:20], services[:5], np.zeros(3), k=5
        )
        # With k = |S| every client's kNN ball spans all services; membership
        # requires d(x, q) <= max service distance.
        for x in range(20):
            d_q = np.linalg.norm(clients[x])
            d_max = np.linalg.norm(services[:5] - clients[x], axis=1).max()
            assert (x in got) == (d_q <= d_max * (1 + 1e-9))


class TestBichromaticRDT:
    def test_exact_at_huge_t(self, service_scenario, rng):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        for _ in range(5):
            q = rng.normal(size=3)
            expected = set(
                bichromatic_brute_force(clients, services, q, k=5).tolist()
            )
            got = set(br.query(q, k=5, t=100.0).ids.tolist())
            assert got == expected

    def test_no_false_positives_any_t(self, service_scenario, rng):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        for t in (1.0, 3.0, 8.0):
            q = rng.normal(size=3)
            truth = bichromatic_brute_force(clients, services, q, k=5)
            got = br.query(q, k=5, t=t).ids
            assert precision(truth, got) == 1.0

    def test_recall_grows_with_t(self, service_scenario):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        q = np.array([0.2, -0.3, 0.1])
        truth = bichromatic_brute_force(clients, services, q, k=5)
        recalls = [recall(truth, br.query(q, k=5, t=t).ids) for t in (1.0, 4.0, 100.0)]
        assert recalls[-1] == 1.0
        assert recalls[0] <= recalls[-1] + 1e-12

    def test_tree_backed_indexes(self, service_scenario, rng):
        clients, services = service_scenario
        br = BichromaticRDT(CoverTreeIndex(clients), CoverTreeIndex(services))
        q = rng.normal(size=3)
        expected = set(bichromatic_brute_force(clients, services, q, k=3).tolist())
        got = set(br.query(q, k=3, t=100.0).ids.tolist())
        assert got == expected

    def test_lazy_accepts_are_true_members(self, service_scenario, rng):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        q = rng.normal(size=3)
        truth = set(bichromatic_brute_force(clients, services, q, k=5).tolist())
        result = br.query(q, k=5, t=6.0)
        assert set(result.lazy_accepted_ids.tolist()) <= truth


class TestBichromaticValidation:
    def test_dimension_mismatch(self, service_scenario):
        clients, services = service_scenario
        with pytest.raises(ValueError, match="share a dimension"):
            BichromaticRDT(
                LinearScanIndex(clients), LinearScanIndex(services[:, :2])
            )

    def test_k_bounded_by_service_count(self, service_scenario):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        with pytest.raises(ValueError, match="exceeds"):
            br.query(np.zeros(3), k=len(services) + 1, t=2.0)


class TestQueryBatch:
    def test_matches_looped_query(self, service_scenario, rng):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        queries = rng.normal(size=(12, 3))
        for t in (1.5, 6.0, 100.0):
            batch = br.query_batch(queries, k=5, t=t)
            assert len(batch) == 12
            for row, result in enumerate(batch):
                single = br.query(queries[row], k=5, t=t)
                assert np.array_equal(result.ids, single.ids)
                assert np.array_equal(
                    result.lazy_accepted_ids, single.lazy_accepted_ids
                )
                assert result.stats.num_retrieved == single.stats.num_retrieved
                assert result.stats.num_candidates == single.stats.num_candidates
                assert result.stats.num_verified == single.stats.num_verified
                assert result.stats.terminated_by == single.stats.terminated_by

    def test_exact_at_huge_t(self, service_scenario, rng):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        queries = rng.normal(size=(8, 3))
        batch = br.query_batch(queries, k=5, t=100.0)
        for row, result in enumerate(batch):
            expected = bichromatic_brute_force(
                clients, services, queries[row], k=5
            )
            assert np.array_equal(result.ids, expected)

    def test_ties_and_duplicates_match_loop(self):
        rng = np.random.default_rng(55)
        clients = rng.integers(0, 3, size=(150, 2)).astype(np.float64)
        services = rng.integers(0, 3, size=(60, 2)).astype(np.float64)
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        queries = rng.integers(0, 3, size=(10, 2)).astype(np.float64)
        for t in (2.0, 100.0):
            batch = br.query_batch(queries, k=3, t=t)
            for row, result in enumerate(batch):
                single = br.query(queries[row], k=3, t=t)
                assert np.array_equal(result.ids, single.ids)
                assert np.array_equal(
                    result.lazy_accepted_ids, single.lazy_accepted_ids
                )

    def test_tree_backed_service_index(self, service_scenario, rng):
        """The batched verification rides the service backend's pruned
        knn_distances override; answers must not depend on the backend."""
        clients, services = service_scenario
        reference = BichromaticRDT(
            LinearScanIndex(clients), LinearScanIndex(services)
        )
        tree_backed = BichromaticRDT(
            CoverTreeIndex(clients), CoverTreeIndex(services)
        )
        queries = rng.normal(size=(6, 3))
        expected = reference.query_batch(queries, k=4, t=8.0)
        got = tree_backed.query_batch(queries, k=4, t=8.0)
        for ref, res in zip(expected, got):
            assert np.array_equal(ref.ids, res.ids)

    def test_verification_deduplicates_shared_clients(self, service_scenario):
        """Nearby queries share undecided clients; the batch must verify
        each distinct client once, so total verification cost is below the
        sum of the looped per-query verifications.  A small ``t`` makes
        the scan terminate by omega with pending candidates — the regime
        that actually produces undecided clients (an exhaustive scan
        decides everyone lazily)."""
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        base = np.array([0.1, 0.0, -0.1])
        queries = np.stack([base + 1e-3 * i for i in range(6)])
        service_metric = br.services.metric
        before = service_metric.num_calls
        batch = br.query_batch(queries, k=5, t=2.0)
        batched_calls = service_metric.num_calls - before
        before = service_metric.num_calls
        looped = [br.query(q, k=5, t=2.0) for q in queries]
        looped_calls = service_metric.num_calls - before
        total_verified = sum(r.stats.num_verified for r in batch)
        assert total_verified > 0
        assert total_verified == sum(r.stats.num_verified for r in looped)
        assert batched_calls < looped_calls

    def test_empty_batch(self, service_scenario):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        assert br.query_batch(np.empty((0, 3)), k=5, t=2.0) == []

    def test_wrong_dimension_raises(self, service_scenario):
        clients, services = service_scenario
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        with pytest.raises(ValueError, match="shape"):
            br.query_batch(np.zeros((4, 5)), k=5, t=2.0)


class TestAsymmetricScenarios:
    def test_dense_clients_sparse_services(self, rng):
        """The motivating scenario: few facilities, many customers."""
        clients = rng.normal(size=(600, 2))
        services = rng.normal(size=(12, 2)) * 2.0
        br = BichromaticRDT(LinearScanIndex(clients), LinearScanIndex(services))
        q = np.zeros(2)
        expected = set(bichromatic_brute_force(clients, services, q, k=2).tolist())
        got = set(br.query(q, k=2, t=50.0).ids.tolist())
        assert got == expected
        assert len(got) > 0
