"""The kernel dispatch layer: backend resolution and the bit contracts.

The NumPy implementations are the semantics of record; these tests pin
both the reference semantics and the dispatch rules (``REPRO_JIT=0``
forces the fallback, a missing Numba means the fallback, ``refresh()``
re-resolves).  They run identically whether or not Numba is installed —
backend-specific assertions are conditioned on :func:`jit_available`.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import kernels
from repro.kernels import numpy_impl


@pytest.fixture
def restore_dispatch():
    """Restore the dispatch table and REPRO_JIT after a test fiddles them."""
    saved = os.environ.get("REPRO_JIT")
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop("REPRO_JIT", None)
        else:
            os.environ["REPRO_JIT"] = saved
        kernels.refresh()


def test_backend_matches_jit_enabled():
    assert kernels.active_backend() == (
        "numba" if kernels.jit_enabled() else "numpy"
    )


def test_jit_enabled_requires_availability():
    if not kernels.jit_available():
        assert not kernels.jit_enabled()


def test_repro_jit_zero_pins_numpy(restore_dispatch):
    os.environ["REPRO_JIT"] = "0"
    kernels.refresh()
    assert not kernels.jit_enabled()
    assert kernels.active_backend() == "numpy"


def test_refresh_restores_environment_backend(restore_dispatch):
    os.environ["REPRO_JIT"] = "0"
    kernels.refresh()
    assert kernels.active_backend() == "numpy"
    os.environ.pop("REPRO_JIT")
    kernels.refresh()
    assert kernels.active_backend() == (
        "numba" if kernels.jit_available() else "numpy"
    )


def test_active_backend_rejects_unknown_kernel():
    with pytest.raises(KeyError):
        kernels.active_backend("no_such_kernel")


def test_kernel_names_cover_dispatch_table():
    for name in kernels.KERNEL_NAMES:
        assert kernels.active_backend(name) in ("numpy", "numba")


# ----------------------------------------------------------------------
# Reference semantics (numpy_impl is the record)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_pairwise_matches_brute_force(dtype):
    rng = np.random.default_rng(5)
    X = rng.normal(size=(40, 6)).astype(dtype)
    Y = rng.normal(size=(70, 6)).astype(dtype)
    out = numpy_impl.euclidean_pairwise(X, Y)
    assert out.dtype == dtype
    expect = np.sqrt(((X[:, None, :] - Y[None, :, :]) ** 2).sum(axis=2))
    tol = 50 * np.finfo(dtype).eps
    np.testing.assert_allclose(out, expect, rtol=tol, atol=tol)


def test_pairwise_centers_offset_data():
    rng = np.random.default_rng(6)
    X = rng.normal(size=(30, 5)) + 1e6
    Y = rng.normal(size=(50, 5)) + 1e6
    out = numpy_impl.euclidean_pairwise(X, Y)
    expect = np.sqrt(((X[:, None, :] - Y[None, :, :]) ** 2).sum(axis=2))
    # Without centering the expansion would lose ~eps * 1e12 / d(x, y)
    # absolute accuracy (catastrophically more than this tolerance).
    np.testing.assert_allclose(out, expect, rtol=1e-9, atol=1e-9)


def test_pairwise_is_chunk_independent():
    # The centering decision depends only on Y, so chunked calls take the
    # same arithmetic path; BLAS may still differ in the last ulp between
    # block heights (consumers compare through the tolerance layer).
    rng = np.random.default_rng(7)
    X = rng.normal(size=(64, 4)) + 37.0
    Y = rng.normal(size=(90, 4)) + 37.0
    whole = numpy_impl.euclidean_pairwise(X, Y)
    parts = np.concatenate(
        [numpy_impl.euclidean_pairwise(X[i : i + 7], Y) for i in range(0, 64, 7)]
    )
    np.testing.assert_allclose(whole, parts, rtol=1e-13, atol=1e-13)


@pytest.mark.parametrize("offset", [0.0, 1e6])
def test_pairwise_stats_bit_identical(offset):
    rng = np.random.default_rng(8)
    X = rng.normal(size=(25, 5)) + offset
    Y = rng.normal(size=(60, 5)) + offset
    direct = numpy_impl.euclidean_pairwise(X, Y)
    via_stats = numpy_impl.euclidean_pairwise_stats(
        X, *numpy_impl.euclidean_y_stats(Y)
    )
    assert np.array_equal(direct, via_stats)


def test_y_stats_centering_decision():
    rng = np.random.default_rng(9)
    near = rng.normal(size=(40, 4))
    _, _, mu = numpy_impl.euclidean_y_stats(near)
    assert mu is None
    far = near + 1e6
    Yc, yy, mu = numpy_impl.euclidean_y_stats(far)
    assert mu is not None
    assert np.array_equal(yy, np.einsum("ij,ij->i", Yc, Yc))


def test_to_point_many_columns_match_to_point_bits():
    from repro.distances import EuclideanMetric

    rng = np.random.default_rng(10)
    X = rng.normal(size=(80, 6))
    Ys = rng.normal(size=(9, 6))
    metric = EuclideanMetric()
    block = numpy_impl.euclidean_to_point_many(X, Ys)
    for j in range(Ys.shape[0]):
        assert np.array_equal(block[:, j], metric.to_point(X, Ys[j]))


def test_keeper_update_reference_semantics():
    rng = np.random.default_rng(11)
    m, k = 12, 4
    best = rng.uniform(1.0, 2.0, size=(m, k))
    kth = best.max(axis=1)
    rows = np.arange(m, dtype=np.intp)
    cand = rng.uniform(0.0, 3.0, size=(m, 7))
    expect = np.partition(np.concatenate([best, cand], axis=1), k - 1, axis=1)[
        :, :k
    ]
    numpy_impl.keeper_update(best, kth, rows, cand)
    assert np.array_equal(np.sort(best, axis=1), np.sort(expect, axis=1))
    assert np.array_equal(kth, best.max(axis=1))


def test_keeper_update_skips_useless_rows():
    best = np.array([[1.0, 2.0], [1.0, 2.0]])
    kth = best.max(axis=1)
    before = best.copy()
    # Row 0's candidates cannot beat its radius; row 1's can.
    cand = np.array([[5.0, 6.0], [0.5, 9.0]])
    numpy_impl.keeper_update(best, kth, np.arange(2, dtype=np.intp), cand)
    assert np.array_equal(best[0], before[0])
    assert np.sort(best[1]).tolist() == [0.5, 1.0]


def test_keeper_update_empty_blocks_are_noops():
    best = np.ones((3, 2))
    kth = best.max(axis=1)
    numpy_impl.keeper_update(best, kth, np.arange(3, dtype=np.intp),
                             np.empty((3, 0)))
    numpy_impl.keeper_update(best, kth, np.empty(0, dtype=np.intp),
                             np.empty((0, 4)))
    assert np.array_equal(best, np.ones((3, 2)))


# ----------------------------------------------------------------------
# Dispatch contracts (hold for whichever backend is active)
# ----------------------------------------------------------------------
def test_dispatched_keeper_update_bit_identical_to_reference():
    rng = np.random.default_rng(12)
    m, k = 20, 5
    best_a = rng.uniform(1.0, 2.0, size=(m, k))
    best_b = best_a.copy()
    kth_a = best_a.max(axis=1)
    kth_b = kth_a.copy()
    rows = np.arange(m, dtype=np.intp)
    cand = rng.uniform(0.0, 3.0, size=(m, 9))
    kernels.keeper_update(best_a, kth_a, rows, cand.copy())
    numpy_impl.keeper_update(best_b, kth_b, rows, cand.copy())
    # The selection kernel is pure comparison/permutation work, so the
    # compiled layer must agree bit-for-bit, not just to round-off.
    assert np.array_equal(best_a, best_b)
    assert np.array_equal(kth_a, kth_b)


def test_dispatched_to_point_many_columns_are_to_point_bits():
    from repro.distances import EuclideanMetric

    rng = np.random.default_rng(13)
    X = rng.normal(size=(64, 5))
    Ys = rng.normal(size=(6, 5))
    metric = EuclideanMetric()
    block = kernels.euclidean_to_point_many(X, Ys)
    for j in range(Ys.shape[0]):
        assert np.array_equal(block[:, j], metric.to_point(X, Ys[j]))


def test_dispatched_pairwise_within_tolerance_of_reference():
    rng = np.random.default_rng(14)
    X = rng.normal(size=(48, 6))
    Y = rng.normal(size=(72, 6))
    out = kernels.euclidean_pairwise(X, Y)
    ref = numpy_impl.euclidean_pairwise(X, Y)
    if kernels.active_backend() == "numpy":
        assert np.array_equal(out, ref)
    else:
        # The compiled fused loop may differ in the last ulp; consumers
        # compare through the tolerance layer.
        np.testing.assert_allclose(out, ref, rtol=1e-12, atol=1e-12)


def test_dispatched_pairwise_stats_matches_pairwise_bits():
    rng = np.random.default_rng(15)
    X = rng.normal(size=(16, 4))
    Y = rng.normal(size=(40, 4))
    via = kernels.euclidean_pairwise_stats(
        X, *numpy_impl.euclidean_y_stats(Y)
    )
    assert np.array_equal(via, numpy_impl.euclidean_pairwise(X, Y))
