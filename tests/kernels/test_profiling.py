"""The per-kernel counters of :mod:`repro.utils.profiling`."""

from __future__ import annotations

import json

import numpy as np

from repro import kernels
from repro.utils.profiling import profile_kernels


def test_profile_counts_calls_results_and_bytes():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(10, 4))
    Y = rng.normal(size=(20, 4))
    with profile_kernels() as prof:
        out = kernels.euclidean_pairwise(X, Y)
        kernels.euclidean_pairwise(X, Y)
    counters = prof.counters["euclidean_pairwise"]
    assert counters.calls == 2
    assert counters.results == 2 * out.size
    assert counters.bytes == 2 * (X.nbytes + Y.nbytes + out.nbytes)


def test_profile_off_by_default():
    rng = np.random.default_rng(2)
    with profile_kernels() as prof:
        pass
    kernels.euclidean_pairwise(
        rng.normal(size=(4, 3)), rng.normal(size=(5, 3))
    )
    assert "euclidean_pairwise" not in prof.counters


def test_nested_profiles_restore_outer():
    rng = np.random.default_rng(3)
    X, Y = rng.normal(size=(6, 3)), rng.normal(size=(7, 3))
    with profile_kernels() as outer:
        kernels.euclidean_pairwise(X, Y)
        with profile_kernels() as inner:
            kernels.euclidean_pairwise(X, Y)
        kernels.euclidean_pairwise(X, Y)
    assert inner.counters["euclidean_pairwise"].calls == 1
    assert outer.counters["euclidean_pairwise"].calls == 2


def test_stats_variant_records_under_pairwise():
    from repro.kernels import numpy_impl

    rng = np.random.default_rng(4)
    X, Y = rng.normal(size=(5, 3)), rng.normal(size=(9, 3))
    with profile_kernels() as prof:
        kernels.euclidean_pairwise_stats(
            X, *numpy_impl.euclidean_y_stats(Y)
        )
    assert prof.counters["euclidean_pairwise"].calls == 1


def test_profile_captures_end_to_end_query_kernels():
    from repro.core.rdt import RDT
    from repro.indexes import create_index

    rng = np.random.default_rng(5)
    pts = rng.normal(size=(400, 5))
    engine = RDT(create_index("kd-tree", pts))
    with profile_kernels() as prof:
        engine.query_batch(query_indices=np.arange(20), k=4, t=4.0)
    # The RDT pipeline must exercise both profiled hot kernels.
    assert prof.counters["euclidean_pairwise"].calls > 0
    assert prof.counters["keeper_update"].calls > 0


def test_json_and_summary_shapes():
    rng = np.random.default_rng(6)
    with profile_kernels() as prof:
        kernels.euclidean_pairwise(
            rng.normal(size=(3, 2)), rng.normal(size=(4, 2))
        )
    data = json.loads(prof.to_json())
    assert set(data["euclidean_pairwise"]) == {"calls", "results", "bytes"}
    assert "euclidean_pairwise" in prof.summary()
