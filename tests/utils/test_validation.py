"""Unit tests for input validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    as_dataset,
    as_query_point,
    check_k,
    check_positive_int,
    check_probability,
    check_scale_parameter,
)


class TestAsDataset:
    def test_coerces_lists(self):
        arr = as_dataset([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)

    def test_promotes_1d_to_column(self):
        arr = as_dataset([1.0, 2.0, 3.0])
        assert arr.shape == (3, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one point"):
            as_dataset(np.empty((0, 3)))

    def test_rejects_zero_features(self):
        with pytest.raises(ValueError, match="at least one feature"):
            as_dataset(np.empty((3, 0)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            as_dataset([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            as_dataset([[1.0, np.inf]])

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2-D"):
            as_dataset(np.zeros((2, 2, 2)))

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="clients"):
            as_dataset(np.empty((0, 2)), name="clients")


class TestAsQueryPoint:
    def test_accepts_row_vector(self):
        q = as_query_point(np.ones((1, 3)), dim=3)
        assert q.shape == (3,)

    def test_rejects_wrong_dim(self):
        with pytest.raises(ValueError, match="dimension 2"):
            as_query_point([1.0, 2.0], dim=3)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="single point"):
            as_query_point(np.ones((2, 3)), dim=3)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            as_query_point([np.nan, 1.0], dim=2)


class TestCheckK:
    def test_accepts_numpy_integer(self):
        assert check_k(np.int64(3)) == 3

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_k(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_k(3.0)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match=">= 1"):
            check_k(0)

    def test_rejects_beyond_n(self):
        with pytest.raises(ValueError, match="exceeds"):
            check_k(11, n=10)

    def test_boundary_equals_n(self):
        assert check_k(10, n=10) == 10


class TestCheckScaleParameter:
    def test_accepts_float(self):
        assert check_scale_parameter(2.5) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_rejects_nonpositive_or_nonfinite(self, bad):
        with pytest.raises(ValueError):
            check_scale_parameter(bad)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(7, name="x") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, name="x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, name="x")


class TestCheckProbability:
    def test_accepts_one(self):
        assert check_probability(1.0, name="f") == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            check_probability(bad, name="f")
