"""Unit tests for the distance-comparison tolerance policy."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.tolerance import DIST_ATOL, DIST_RTOL, dist_le, dist_lt, inflate


class TestDistLe:
    def test_exact_equality(self):
        assert dist_le(1.0, 1.0)

    def test_last_ulp_noise_accepted(self):
        b = 0.12345678901234
        a = b * (1 + 1e-15)  # same quantity from another kernel
        assert dist_le(a, b)

    def test_clear_violation_rejected(self):
        assert not dist_le(1.001, 1.0)

    def test_zero_boundary(self):
        assert dist_le(0.0, 0.0)
        assert dist_le(DIST_ATOL / 2, 0.0)
        assert not dist_le(1e-6, 0.0)


class TestDistLt:
    def test_strict_needs_real_gap(self):
        assert dist_lt(0.9, 1.0)
        assert not dist_lt(1.0, 1.0)
        assert not dist_lt(1.0 - 1e-15, 1.0)

    def test_consistent_with_le(self):
        # dist_lt(a, b) implies dist_le(a, b)
        assert dist_lt(1.0, 2.0) and dist_le(1.0, 2.0)


class TestInflate:
    def test_inflation_is_small_and_positive(self):
        r = 5.0
        assert r < inflate(r) < r * (1 + 10 * DIST_RTOL)

    def test_zero_radius(self):
        assert inflate(0.0) == DIST_ATOL


@given(st.floats(min_value=0.0, max_value=1e12))
def test_property_le_reflexive_under_kernel_noise(value):
    """Any value compares <= to itself even after a one-ulp perturbation."""
    import math

    perturbed = math.nextafter(value, math.inf)
    assert dist_le(perturbed, value)


@given(
    st.floats(min_value=0.0, max_value=1e12),
    st.floats(min_value=0.0, max_value=1e12),
)
def test_property_lt_implies_le_and_not_reverse(a, b):
    if dist_lt(a, b):
        assert dist_le(a, b)
        assert not dist_le(b, a) or abs(a - b) <= DIST_RTOL * b + DIST_ATOL
