"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng


def test_none_gives_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_int_is_deterministic():
    a = ensure_rng(42).normal(size=5)
    b = ensure_rng(42).normal(size=5)
    assert np.array_equal(a, b)


def test_generator_passthrough():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_numpy_integer_accepted():
    assert isinstance(ensure_rng(np.int32(7)), np.random.Generator)


def test_rejects_strings():
    with pytest.raises(TypeError):
        ensure_rng("seed")
