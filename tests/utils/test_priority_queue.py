"""Unit and property tests for the priority-queue helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.priority_queue import KSmallestKeeper, MinPriorityQueue


class TestMinPriorityQueue:
    def test_pops_in_priority_order(self):
        q = MinPriorityQueue()
        for p in [3.0, 1.0, 2.0]:
            q.push(p, f"item{p}")
        assert [q.pop()[0] for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_fifo_on_ties(self):
        q = MinPriorityQueue()
        q.push(1.0, "first")
        q.push(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_payloads_need_not_be_comparable(self):
        q = MinPriorityQueue()
        q.push(1.0, {"a": 1})
        q.push(1.0, {"b": 2})  # dicts are not orderable; must not raise
        assert q.pop()[1] == {"a": 1}

    def test_peek_does_not_remove(self):
        q = MinPriorityQueue()
        q.push(2.0, "x")
        assert q.peek() == (2.0, "x")
        assert len(q) == 1

    def test_len_and_bool(self):
        q = MinPriorityQueue()
        assert not q
        q.push(1.0, None)
        assert q and len(q) == 1

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=200))
    def test_property_pops_sorted(self, priorities):
        q = MinPriorityQueue()
        for p in priorities:
            q.push(p, None)
        popped = [q.pop()[0] for _ in range(len(priorities))]
        assert popped == sorted(priorities)


class TestKSmallestKeeper:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KSmallestKeeper(0)

    def test_keeps_k_smallest(self):
        keeper = KSmallestKeeper(3)
        for key in [5.0, 1.0, 4.0, 2.0, 3.0]:
            keeper.push(key, key)
        assert [key for key, _ in keeper.items_sorted()] == [1.0, 2.0, 3.0]

    def test_bound_is_inf_until_full(self):
        keeper = KSmallestKeeper(2)
        keeper.push(1.0, None)
        assert keeper.bound() == float("inf")
        keeper.push(2.0, None)
        assert keeper.bound() == 2.0

    def test_push_reports_retention(self):
        keeper = KSmallestKeeper(1)
        assert keeper.push(2.0, "a") is True
        assert keeper.push(3.0, "b") is False
        assert keeper.push(1.0, "c") is True

    def test_is_full(self):
        keeper = KSmallestKeeper(2)
        assert not keeper.is_full()
        keeper.push(1.0, None)
        keeper.push(2.0, None)
        assert keeper.is_full()

    def test_iteration_matches_items_sorted(self):
        keeper = KSmallestKeeper(4)
        for key in [9.0, 7.0, 8.0]:
            keeper.push(key, str(key))
        assert list(keeper) == keeper.items_sorted()

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=300
        ),
        st.integers(min_value=1, max_value=20),
    )
    def test_property_matches_numpy_partition(self, keys, k):
        keeper = KSmallestKeeper(k)
        for key in keys:
            keeper.push(key, None)
        kept = sorted(key for key, _ in keeper.items_sorted())
        expected = sorted(keys)[: min(k, len(keys))]
        assert np.allclose(kept, expected)
