"""The version/snapshot protocol every backend must honor.

These are the layer-1 guarantees the whole concurrency design rests on
(DESIGN.md "Concurrency & versioning"): a monotonic ``version`` bumped
by every mutation, and a cheap frozen ``snapshot()`` view whose reads
keep answering the state it was taken at — in particular, a removal
applied to the live index afterwards is never visible through the view.
"""

import numpy as np
import pytest

import repro
from repro.indexes import INDEX_REGISTRY, create_index
from repro.indexes.base import IndexCapabilityError

BACKENDS = sorted(INDEX_REGISTRY)


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(7).normal(size=(120, 4))


def _knn_ids(index, query, k=5, **kwargs):
    ids, _ = index.knn(query, k, **kwargs)
    return ids.tolist()


@pytest.mark.parametrize("backend", BACKENDS)
def test_version_starts_at_zero_and_bumps_per_mutation(backend, points):
    index = create_index(backend, points)
    assert index.version == 0
    version = 0
    if index.supports_insert:
        index.insert(points[0] + 0.25)
        version += 1
        assert index.version == version
    if index.supports_remove:
        index.remove(3)
        version += 1
        assert index.version == version
        if getattr(index, "compact", None) is not None:
            index.compact()
            version += 1
        assert index.version == version
    if version == 0:
        pytest.skip(f"{backend} is static: no mutations to version")


@pytest.mark.parametrize("backend", BACKENDS)
def test_snapshot_is_frozen_and_pins_version(backend, points):
    index = create_index(backend, points)
    view = index.snapshot()
    assert view.is_snapshot and not index.is_snapshot
    assert view.version == index.version
    assert view.size == index.size
    if index.supports_insert:
        with pytest.raises(IndexCapabilityError):
            view.insert(points[0] + 0.5)
    if index.supports_remove:
        with pytest.raises(IndexCapabilityError):
            view.remove(0)
        if getattr(view, "compact", None) is not None:
            with pytest.raises(IndexCapabilityError):
                view.compact()
        # ... and the live index still mutates freely afterwards,
        # with the view pinned at the pre-mutation version.
        index.remove(5)
        assert index.version == view.version + 1
        assert view.version == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_snapshot_does_not_observe_later_removals(backend, points):
    index = create_index(backend, points)
    if not index.supports_remove:
        pytest.skip(f"{backend} does not support removal")
    query = points[0] + 0.01
    before = _knn_ids(index, query)
    view = index.snapshot()
    index.remove(before[0])
    assert before[0] not in _knn_ids(index, query)
    assert _knn_ids(view, query) == before
    assert view.is_active(before[0]) and not index.is_active(before[0])
    assert before[0] in view.active_ids()


@pytest.mark.parametrize("backend", ["linear-scan", "kd-tree"])
def test_snapshot_stable_backends_survive_live_inserts(backend, points):
    """For snapshot_stable backends, reads through an old view stay
    exact while the live index takes inserts (and compactions)."""
    index = create_index(backend, points)
    assert index.snapshot_stable
    query = points[1] + 0.02
    view = index.snapshot()
    before = _knn_ids(view, query, k=8)
    rng = np.random.default_rng(11)
    for _ in range(40):
        index.insert(rng.normal(size=points.shape[1]))
    index.remove(before[0])
    if getattr(index, "compact", None) is not None:
        index.compact()
    assert _knn_ids(view, query, k=8) == before
    # Fresh state is a new snapshot away.
    assert before[0] not in _knn_ids(index.snapshot(), query, k=8)


def test_snapshot_stability_flags_document_the_contract():
    assert repro.KDTreeIndex.snapshot_stable
    assert repro.LinearScanIndex.snapshot_stable
    assert repro.BallTreeIndex.snapshot_stable
    assert repro.VPTreeIndex.snapshot_stable
    assert repro.RdNNTreeIndex.snapshot_stable
    # In-place structural rewiring: snapshots of these stay correct only
    # if no mutation runs concurrently (Service drains readers first).
    assert not repro.CoverTreeIndex.snapshot_stable
    assert not repro.MTreeIndex.snapshot_stable
    assert not repro.RStarTreeIndex.snapshot_stable


def test_snapshot_active_mask_is_read_only(points):
    view = create_index("kd", points).snapshot()
    with pytest.raises(ValueError):
        view._active[0] = False


def test_kd_snapshot_exact_under_heavy_interleaving(points):
    """Sequential MVCC check: several generations of snapshots, each
    re-verified against brute force over its own pinned membership after
    every later mutation batch."""
    index = create_index("kd", points)
    rng = np.random.default_rng(23)
    query = rng.normal(size=4)
    generations = []
    for round_no in range(4):
        for _ in range(15):
            index.insert(rng.normal(size=4))
        live = index.active_ids()
        index.remove(int(live[rng.integers(live.shape[0])]))
        generations.append(index.snapshot())
        for view in generations:
            ids, dists = view.knn(query, 6)
            active = view.active_ids()
            exact = sorted(
                active.tolist(),
                key=lambda i: float(np.linalg.norm(view.points[i] - query)),
            )[:6]
            assert sorted(ids.tolist()) == sorted(exact)
            assert np.all(np.diff(dists) >= 0)
