"""Structural-invariant tests for the tree indexes.

Each tree exposes ``check_invariants`` validating the properties its search
bounds rely on (covering radii, MBR containment, maxdist caches); these
tests exercise the checks across builds, mutations, and adversarial data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.indexes import CoverTreeIndex, MTreeIndex, RStarTreeIndex


class TestCoverTreeInvariants:
    def test_after_build(self, medium_mixture):
        CoverTreeIndex(medium_mixture[:300]).check_invariants()

    def test_after_inserts(self, rng):
        index = CoverTreeIndex(rng.normal(size=(50, 3)))
        for row in rng.normal(size=(100, 3)):
            index.insert(row)
        index.check_invariants()

    def test_after_removals(self, rng):
        index = CoverTreeIndex(rng.normal(size=(120, 3)))
        for victim in [0, 30, 60, 90, 119, 1, 2]:
            index.remove(victim)
        index.check_invariants()

    def test_remove_root_point(self, rng):
        points = rng.normal(size=(40, 2))
        index = CoverTreeIndex(points)
        root_id = index._root.point_id
        index.remove(root_id)
        index.check_invariants()
        seen = [pid for pid, _ in index.iter_neighbors(points[root_id])]
        assert root_id not in seen and len(seen) == 39

    def test_remove_all_points(self, rng):
        points = rng.normal(size=(10, 2))
        index = CoverTreeIndex(points)
        for i in range(10):
            index.remove(i)
        index.check_invariants()
        assert list(index.iter_neighbors(points[0])) == []

    def test_single_point_tree(self):
        index = CoverTreeIndex(np.array([[1.0, 2.0]]))
        index.check_invariants()
        assert next(iter(index.iter_neighbors(np.zeros(2))))[0] == 0

    def test_duplicates(self, duplicated_points):
        index = CoverTreeIndex(duplicated_points)
        index.check_invariants()

    @settings(max_examples=20, deadline=None)
    @given(
        points=arrays(
            np.float64,
            st.tuples(
                st.integers(min_value=2, max_value=60), st.integers(2, 4)
            ),
            elements=st.floats(min_value=-50, max_value=50),
        )
    )
    def test_property_random_builds(self, points):
        CoverTreeIndex(points).check_invariants()


class TestMTreeInvariants:
    def test_after_build_small_capacity(self, medium_mixture):
        # Small capacity forces many splits, including root splits.
        index = MTreeIndex(medium_mixture[:250], capacity=4)
        index.check_invariants()

    def test_after_inserts(self, rng):
        index = MTreeIndex(rng.normal(size=(30, 3)), capacity=5)
        for row in rng.normal(size=(150, 3)):
            index.insert(row)
        index.check_invariants()

    def test_duplicates(self, duplicated_points):
        MTreeIndex(duplicated_points, capacity=4).check_invariants()

    def test_capacity_floor(self, rng):
        with pytest.raises(ValueError, match="capacity"):
            MTreeIndex(rng.normal(size=(10, 2)), capacity=2)

    @settings(max_examples=15, deadline=None)
    @given(
        points=arrays(
            np.float64,
            st.tuples(st.integers(5, 80), st.integers(1, 3)),
            elements=st.floats(min_value=-50, max_value=50),
        )
    )
    def test_property_random_builds(self, points):
        MTreeIndex(points, capacity=4).check_invariants()


class TestRStarTreeInvariants:
    def test_bulk_load(self, medium_mixture):
        RStarTreeIndex(medium_mixture[:500], capacity=8).check_invariants()

    def test_incremental_build(self, medium_mixture):
        RStarTreeIndex(
            medium_mixture[:200], capacity=8, bulk_load=False
        ).check_invariants()

    def test_bulk_and_incremental_answer_identically(self, rng):
        points = rng.normal(size=(150, 3))
        bulk = RStarTreeIndex(points, capacity=8, bulk_load=True)
        incr = RStarTreeIndex(points, capacity=8, bulk_load=False)
        query = points[13]
        _, d1 = bulk.knn(query, 12)
        _, d2 = incr.knn(query, 12)
        assert np.allclose(np.sort(d1), np.sort(d2))

    def test_inserts_force_reinsert_and_splits(self, rng):
        index = RStarTreeIndex(rng.normal(size=(5, 2)), capacity=4, bulk_load=False)
        for row in rng.normal(size=(200, 2)):
            index.insert(row)
        index.check_invariants()
        assert index._height > 1

    @staticmethod
    def _walk_down_level(index) -> int:
        level, node = 0, index._root
        while not node.is_leaf:
            node = node.entries[0].child
            level += 1
        return level

    def test_height_bumped_on_root_splits_in_pure_insert_path(self, rng):
        """``_height`` must track every root split so levels can be derived
        from it instead of walking child pointers to a leaf per insert."""
        index = RStarTreeIndex(rng.normal(size=(1, 2)), capacity=4, bulk_load=False)
        assert index._height == 1
        seen_heights = {1}
        for row in rng.normal(size=(300, 2)):
            index.insert(row)
            assert index._height - 1 == self._walk_down_level(index)
            seen_heights.add(index._height)
        assert max(seen_heights) >= 3, "workload never split the root twice"
        index.check_invariants()

    def test_height_consistent_after_bulk_load_and_inserts(self, rng):
        index = RStarTreeIndex(rng.normal(size=(400, 3)), capacity=8)
        assert index._height - 1 == self._walk_down_level(index)
        for row in rng.normal(size=(50, 3)):
            index.insert(row)
        assert index._height - 1 == self._walk_down_level(index)
        index.check_invariants()

    def test_duplicates(self, duplicated_points):
        RStarTreeIndex(duplicated_points, capacity=4).check_invariants()

    def test_capacity_floor(self, rng):
        with pytest.raises(ValueError, match="capacity"):
            RStarTreeIndex(rng.normal(size=(10, 2)), capacity=3)

    @settings(max_examples=15, deadline=None)
    @given(
        points=arrays(
            np.float64,
            st.tuples(st.integers(5, 100), st.integers(1, 4)),
            elements=st.floats(min_value=-50, max_value=50),
        )
    )
    def test_property_random_incremental_builds(self, points):
        index = RStarTreeIndex(points, capacity=4, bulk_load=False)
        index.check_invariants()
