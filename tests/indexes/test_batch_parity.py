"""Cross-backend parity for the pruned batched ``knn_distances`` overrides.

Every index backend now answers the batched kNN-distance capability with
its own pruned block traversal (``repro.indexes.batch_tools``).  These
tests pin each override to the chunked pairwise default of the base class
— the reference semantics the batched RkNN engine was validated against —
including per-row exclusions, tie-heavy data, duplicates, and post-removal
state, and pin ``RDT.query_batch`` over every tree backend to a loop of
single ``query()`` calls.
"""

import numpy as np
import pytest

from repro.core import RDT
from repro.indexes import INDEX_REGISTRY, build_index
from repro.indexes.base import Index

INDEX_NAMES = sorted(INDEX_REGISTRY)
TREE_NAMES = [name for name in INDEX_NAMES if name != "linear-scan"]


def chunked_reference(index, queries, k, exclude_indices=None):
    """The base-class chunked pairwise scan, bypassing any override."""
    return Index.knn_distances(index, queries, k, exclude_indices)


@pytest.fixture(scope="module", params=INDEX_NAMES)
def backend(request, small_gaussian):
    return build_index(request.param, small_gaussian), small_gaussian


class TestAgainstChunkedDefault:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_raw_queries(self, backend, k, rng):
        index, data = backend
        queries = rng.normal(size=(25, data.shape[1]))
        got = index.knn_distances(queries, k)
        expected = chunked_reference(index, queries, k)
        assert np.allclose(got, expected, rtol=1e-9)

    def test_member_rows_with_exclusion(self, backend):
        index, data = backend
        rows = np.arange(0, 60, 4)
        got = index.knn_distances(data[rows], 5, exclude_indices=rows)
        expected = chunked_reference(index, data[rows], 5, exclude_indices=rows)
        assert np.allclose(got, expected, rtol=1e-9)

    def test_mixed_and_absent_exclusions(self, backend):
        index, data = backend
        rows = np.array([2, 7, 11, 13])
        # One real exclusion, one no-op, one id that is not indexed at all.
        exclude = np.array([2, -1, 10 ** 6, 13])
        got = index.knn_distances(data[rows], 4, exclude_indices=exclude)
        expected = chunked_reference(index, data[rows], 4, exclude_indices=exclude)
        assert np.allclose(got, expected, rtol=1e-9)

    def test_k_exceeding_size_is_inf(self, backend, small_gaussian):
        index, _ = backend
        got = index.knn_distances(small_gaussian[:6], index.size + 3)
        assert np.all(np.isinf(got))


@pytest.mark.parametrize("name", INDEX_NAMES)
class TestDegenerateData:
    def test_ties_and_duplicates(self, name, duplicated_points):
        index = build_index(name, duplicated_points)
        rows = np.arange(0, duplicated_points.shape[0], 5)
        got = index.knn_distances(
            duplicated_points[rows], 6, exclude_indices=rows
        )
        expected = chunked_reference(
            index, duplicated_points[rows], 6, exclude_indices=rows
        )
        assert np.allclose(got, expected, rtol=1e-9)

    def test_post_removal_state(self, name, small_gaussian):
        index = build_index(name, small_gaussian[:80])
        if not index.supports_remove:
            pytest.skip(f"{name} does not support removal")
        for victim in (3, 17, 40, 41, 42, 79):
            index.remove(victim)
        queries = small_gaussian[80:110]
        got = index.knn_distances(queries, 4)
        expected = chunked_reference(index, queries, 4)
        assert np.allclose(got, expected, rtol=1e-9)
        # Excluding a surviving member must still work after removals.
        rows = np.array([0, 10, 50])
        got = index.knn_distances(
            small_gaussian[rows], 4, exclude_indices=rows
        )
        expected = chunked_reference(
            index, small_gaussian[rows], 4, exclude_indices=rows
        )
        assert np.allclose(got, expected, rtol=1e-9)


@pytest.mark.parametrize("name", TREE_NAMES)
@pytest.mark.parametrize("filter_mode", ["auto", "sequential"])
def test_rdt_query_batch_matches_loop(name, filter_mode, medium_mixture):
    """The batched engine's refinement rides the pruned overrides; results
    must stay identical to looped single queries on every tree backend."""
    index = build_index(name, medium_mixture[:300])
    rdt = RDT(index)
    ids = np.arange(0, 300, 7, dtype=np.intp)
    batch = rdt.query_batch(query_indices=ids, k=5, t=4.0, filter_mode=filter_mode)
    for qi, result in zip(ids, batch):
        single = rdt.query(query_index=int(qi), k=5, t=4.0)
        assert np.array_equal(result.ids, single.ids)
        assert result.stats.num_candidates == single.stats.num_candidates
        assert result.stats.num_verified == single.stats.num_verified
