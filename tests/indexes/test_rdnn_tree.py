"""Tests for the RdNN-tree baseline index."""

import numpy as np
import pytest

from repro.indexes import IndexCapabilityError, RdNNTreeIndex, bulk_knn_distances
from repro.utils.tolerance import dist_le


def brute_rknn(points, k, query, exclude=None):
    dk = bulk_knn_distances(points, k)
    dists = np.linalg.norm(points - query, axis=1)
    return {
        i
        for i in range(len(points))
        if i != exclude and dist_le(float(dists[i]), float(dk[i]))
    }


class TestRknnQueries:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_member_queries_exact(self, small_gaussian, k):
        tree = RdNNTreeIndex(small_gaussian, k=k)
        for qi in [0, 77, 150, 299]:
            got = set(tree.rknn(small_gaussian[qi], exclude_index=qi).tolist())
            expected = brute_rknn(small_gaussian, k, small_gaussian[qi], exclude=qi)
            assert got == expected

    def test_external_queries_exact(self, small_gaussian, rng):
        tree = RdNNTreeIndex(small_gaussian, k=5)
        for _ in range(5):
            q = rng.normal(size=small_gaussian.shape[1])
            got = set(tree.rknn(q).tolist())
            assert got == brute_rknn(small_gaussian, 5, q)

    def test_clustered_data(self, medium_mixture):
        sub = medium_mixture[:250]
        tree = RdNNTreeIndex(sub, k=10)
        got = set(tree.rknn(sub[3], exclude_index=3).tolist())
        assert got == brute_rknn(sub, 10, sub[3], exclude=3)

    def test_results_sorted(self, small_gaussian):
        tree = RdNNTreeIndex(small_gaussian, k=8)
        ids = tree.rknn(small_gaussian[0], exclude_index=0)
        assert np.all(np.diff(ids) > 0)


class TestConstruction:
    def test_precomputed_distances_accepted(self, small_gaussian):
        dk = bulk_knn_distances(small_gaussian, 5)
        tree = RdNNTreeIndex(small_gaussian, k=5, knn_distances=dk)
        assert np.array_equal(tree.kth_distances, dk)

    def test_wrong_shape_distances_rejected(self, small_gaussian):
        with pytest.raises(ValueError, match="one entry per point"):
            RdNNTreeIndex(small_gaussian, k=5, knn_distances=np.zeros(3))

    def test_node_aggregates_cover_points(self, small_gaussian):
        tree = RdNNTreeIndex(small_gaussian, k=5)
        # Every node's max_dk must bound all its points' kNN distances.
        stack = [tree.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if entry.is_point:
                    assert tree.kth_distances[entry.point_id] <= tree.max_dk(node) + 1e-12
                else:
                    assert tree.max_dk(entry.child) <= tree.max_dk(node) + 1e-12
                    stack.append(entry.child)


class TestStaticity:
    def test_insert_refused(self, small_gaussian):
        tree = RdNNTreeIndex(small_gaussian[:50], k=3)
        with pytest.raises(IndexCapabilityError, match="static"):
            tree.insert(np.zeros(small_gaussian.shape[1]))

    def test_remove_refused(self, small_gaussian):
        tree = RdNNTreeIndex(small_gaussian[:50], k=3)
        with pytest.raises(IndexCapabilityError):
            tree.remove(0)

    def test_forward_knn_still_available(self, small_gaussian):
        tree = RdNNTreeIndex(small_gaussian[:100], k=3)
        ids, dists = tree.knn(small_gaussian[0], 5)
        assert len(ids) == 5
        assert dists[0] == pytest.approx(0.0, abs=1e-9)
