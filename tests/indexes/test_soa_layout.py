"""The structure-of-arrays flat layouts and their descent parity.

The flat int-cursor descent is an optimization of the recursive
object-tree block traversal: prune decisions, visit order, and per-leaf
kernel blocks match node for node, so ``knn_distances`` must agree with
the object walk bit-for-bit — including under exclusions, pruning caps,
removals (active-mask path), and float32 storage.  Snapshots share the
frozen arrays zero-copy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import EuclideanMetric
from repro.indexes import create_index
from repro.indexes.soa import FlatBallLayout, FlatKDLayout, flatten_kd

BACKENDS = ("kd-tree", "ball-tree")


def _make(backend, points, dtype=None):
    metric = EuclideanMetric(dtype=dtype) if dtype is not None else None
    return create_index(backend, points, metric=metric)


def _knn_both_paths(index, queries, k, **kwargs):
    flat = index.knn_distances(queries, k, **kwargs)
    index.use_flat_descent = False
    try:
        obj = index.knn_distances(queries, k, **kwargs)
    finally:
        index.use_flat_descent = True
    return flat, obj


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("dtype", [None, np.float32])
def test_flat_descent_matches_object_walk(backend, dtype, rng):
    points = rng.normal(size=(700, 5))
    queries = rng.normal(size=(40, 5))
    index = _make(backend, points, dtype=dtype)
    flat, obj = _knn_both_paths(index, queries.astype(
        index.points.dtype), k=4)
    assert np.array_equal(flat, obj)


@pytest.mark.parametrize("backend", BACKENDS)
def test_flat_descent_matches_on_ties(backend):
    rng = np.random.default_rng(41)
    points = np.round(rng.normal(size=(500, 3)), 1)
    queries = np.round(rng.normal(size=(25, 3)), 1)
    index = _make(backend, points)
    flat, obj = _knn_both_paths(index, queries, k=5)
    assert np.array_equal(flat, obj)


@pytest.mark.parametrize("backend", BACKENDS)
def test_flat_descent_respects_exclusions(backend, rng):
    points = rng.normal(size=(400, 4))
    m = 30
    queries = points[:m] + 1e-3
    exclude = np.arange(m)
    index = _make(backend, points)
    flat, obj = _knn_both_paths(index, queries, k=3, exclude_indices=exclude)
    assert np.array_equal(flat, obj)
    # Excluding a point's nearest copy must change its 1-NN distance.
    none = index.knn_distances(queries, 1)
    some = index.knn_distances(queries, 1, exclude_indices=exclude)
    assert (some >= none).all() and (some > none).any()


@pytest.mark.parametrize("backend", BACKENDS)
def test_flat_descent_after_removals_uses_active_mask(backend, rng):
    points = rng.normal(size=(300, 4))
    index = _make(backend, points)
    for point_id in (3, 77, 150, 299):
        index.remove(point_id)
    queries = rng.normal(size=(20, 4))
    flat, obj = _knn_both_paths(index, queries, k=4)
    assert np.array_equal(flat, obj)
    # Removed ids never appear: distances match a filtered linear scan.
    keep = np.ones(300, dtype=bool)
    keep[[3, 77, 150, 299]] = False
    lin = create_index("linear-scan", points[keep])
    np.testing.assert_allclose(flat, lin.knn_distances(queries, 4),
                               rtol=1e-12, atol=1e-12)


def test_flat_descent_with_prune_caps_matches(rng):
    points = rng.normal(size=(600, 5))
    queries = rng.normal(size=(30, 5))
    index = _make("kd-tree", points)
    caps = np.asarray(index.knn_distances(queries, 3), dtype=float)
    flat, obj = _knn_both_paths(index, queries, k=3, prune_caps=caps * 1.5)
    assert np.array_equal(flat, obj)


def test_snapshot_shares_layout_zero_copy(rng):
    points = rng.normal(size=(350, 4))
    index = _make("kd-tree", points)
    layout = index._flat_layout()
    snap = index.snapshot()
    assert snap._flat_layout() is layout
    queries = rng.normal(size=(10, 4))
    assert np.array_equal(
        snap.knn_distances(queries, 3), index.knn_distances(queries, 3)
    )


def test_insert_invalidates_layout(rng):
    points = rng.normal(size=(200, 3))
    index = _make("kd-tree", points)
    first = index._flat_layout()
    index.insert(rng.normal(size=3))
    second = index._flat_layout()
    assert second is not first
    queries = rng.normal(size=(8, 3))
    flat, obj = _knn_both_paths(index, queries, k=2)
    assert np.array_equal(flat, obj)


def test_layout_invariants(rng):
    points = rng.normal(size=(300, 4))
    index = _make("kd-tree", points)
    lay = index._flat_layout()
    assert isinstance(lay, FlatKDLayout)
    n = lay.left.shape[0]
    leaves = lay.left < 0
    assert np.array_equal(leaves, lay.right < 0)
    # Every point id is stored in exactly one leaf slot.
    assert np.array_equal(np.sort(lay.leaf_ids), np.arange(300))
    # id_slot inverts leaf_ids.
    assert np.array_equal(lay.leaf_ids[lay.id_slot], np.arange(300))
    # Pre-stacked child boxes equal the children's own boxes.
    internal = np.flatnonzero(~leaves)
    assert np.array_equal(lay.child_lo[internal, 0], lay.lo[lay.left[internal]])
    assert np.array_equal(lay.child_hi[internal, 1], lay.hi[lay.right[internal]])
    assert lay.nbytes > 0
    assert n == lay.lo.shape[0]


def test_leaf_stats_replicate_pairwise_bits(rng):
    points = rng.normal(size=(400, 5)) + 1e6  # forces per-leaf centering
    index = _make("kd-tree", points)
    lay = index._flat_layout()
    assert lay.leaf_pts is not None
    assert bool(lay.leaf_centered.any())
    from repro.kernels import numpy_impl

    queries = (rng.normal(size=(12, 5)) + 1e6).astype(points.dtype)
    for idx in np.flatnonzero(lay.left < 0)[:10]:
        s, e = lay.leaf_start[idx], lay.leaf_end[idx]
        if e <= s:
            continue
        ids = lay.leaf_ids[s:e]
        direct = numpy_impl.euclidean_pairwise(queries, points[ids])
        via = numpy_impl.euclidean_pairwise_stats(
            queries,
            lay.leaf_pts[s:e],
            lay.leaf_yy[s:e],
            lay.leaf_mu[idx] if lay.leaf_centered[idx] else None,
        )
        assert np.array_equal(direct, via)


def test_leaf_stats_absent_for_non_euclidean():
    from repro.distances import get_metric

    rng = np.random.default_rng(77)
    points = rng.normal(size=(150, 3))
    index = create_index("kd-tree", points, metric=get_metric("manhattan"))
    lay = index._flat_layout()
    assert lay.leaf_pts is None
    queries = rng.normal(size=(6, 3))
    flat, obj = _knn_both_paths(index, queries, k=2)
    assert np.array_equal(flat, obj)


def test_flatten_without_points_still_descends(rng):
    points = rng.normal(size=(120, 3))
    index = _make("kd-tree", points)
    lay = flatten_kd(index._root, index.dim, points.dtype)
    assert lay.leaf_pts is None and lay.id_slot is not None
    index._layout = lay
    queries = rng.normal(size=(5, 3))
    flat, obj = _knn_both_paths(index, queries, k=2)
    assert np.array_equal(flat, obj)


def test_ball_layout_types(rng):
    points = rng.normal(size=(200, 4))
    index = _make("ball-tree", points)
    lay = index._flat_layout()
    assert isinstance(lay, FlatBallLayout)
    assert np.array_equal(lay.leaf_ids[lay.id_slot], np.arange(200))
    assert lay.nbytes > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_float32_layout_keeps_storage_dtype(backend, rng):
    points = rng.normal(size=(250, 4))
    index = _make(backend, points, dtype=np.float32)
    lay = index._flat_layout()
    coords = lay.lo if hasattr(lay, "lo") else lay.centroids
    assert coords.dtype == np.float32
    if lay.leaf_pts is not None:
        assert lay.leaf_pts.dtype == np.float32
        assert lay.leaf_yy.dtype == np.float32
