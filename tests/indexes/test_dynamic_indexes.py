"""Dynamic-operation tests (insert/remove) for the indexes that support them.

After any mutation sequence, the index must answer queries identically to a
freshly built linear scan over the surviving points — the invariant RDT's
"dynamic scenarios" use case (paper Section 1) rests on.
"""

import numpy as np
import pytest

from repro.indexes import (
    CoverTreeIndex,
    IndexCapabilityError,
    KDTreeIndex,
    LinearScanIndex,
    MTreeIndex,
    RStarTreeIndex,
    VPTreeIndex,
)

DYNAMIC = [LinearScanIndex, KDTreeIndex, CoverTreeIndex, MTreeIndex, RStarTreeIndex]


def assert_same_answers(index, points, active_ids, k=5):
    """Index answers must match a scan over the active subset."""
    reference = LinearScanIndex(points[active_ids])
    for qi in range(0, len(active_ids), max(1, len(active_ids) // 5)):
        query = points[active_ids[qi]]
        _, got = index.knn(query, min(k, len(active_ids)))
        _, expected = reference.knn(query, min(k, len(active_ids)))
        assert np.allclose(np.sort(got), np.sort(expected), rtol=1e-9)


@pytest.mark.parametrize("cls", DYNAMIC, ids=lambda c: c.name)
class TestInsert:
    def test_insert_then_query(self, cls, rng):
        base = rng.normal(size=(80, 3))
        extra = rng.normal(size=(40, 3))
        index = cls(base)
        for row in extra:
            index.insert(row)
        all_points = np.vstack([base, extra])
        assert index.size == 120
        assert_same_answers(index, all_points, np.arange(120))

    def test_insert_returns_sequential_ids(self, cls, rng):
        index = cls(rng.normal(size=(10, 2)))
        assert index.insert(np.zeros(2)) == 10
        assert index.insert(np.ones(2)) == 11

    def test_insert_validates_dimension(self, cls, rng):
        index = cls(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            index.insert(np.zeros(3))


@pytest.mark.parametrize(
    "cls", [LinearScanIndex, KDTreeIndex, CoverTreeIndex], ids=lambda c: c.name
)
class TestRemove:
    def test_remove_then_query(self, cls, rng):
        points = rng.normal(size=(100, 3))
        index = cls(points)
        removed = [5, 17, 50, 99, 0]
        for rid in removed:
            index.remove(rid)
        survivors = np.array([i for i in range(100) if i not in removed])
        assert index.size == 95
        assert_same_answers(index, points, survivors)

    def test_double_remove_raises(self, cls, rng):
        index = cls(rng.normal(size=(10, 2)))
        index.remove(3)
        with pytest.raises(KeyError):
            index.remove(3)

    def test_removed_point_never_reported(self, cls, rng):
        points = rng.normal(size=(50, 2))
        index = cls(points)
        index.remove(7)
        seen = [pid for pid, _ in index.iter_neighbors(points[7])]
        assert 7 not in seen

    def test_get_point_of_removed_raises(self, cls, rng):
        index = cls(rng.normal(size=(10, 2)))
        index.remove(1)
        with pytest.raises(KeyError):
            index.get_point(1)


class TestStaticIndexRefusals:
    def test_vp_tree_refuses_insert(self, rng):
        index = VPTreeIndex(rng.normal(size=(30, 2)))
        with pytest.raises(IndexCapabilityError):
            index.insert(np.zeros(2))

    def test_vp_tree_refuses_remove(self, rng):
        index = VPTreeIndex(rng.normal(size=(30, 2)))
        with pytest.raises(IndexCapabilityError):
            index.remove(0)


class TestInterleavedMutations:
    @pytest.mark.parametrize(
        "cls", [LinearScanIndex, KDTreeIndex, CoverTreeIndex], ids=lambda c: c.name
    )
    def test_random_mutation_sequence(self, cls):
        rng = np.random.default_rng(99)
        points = rng.normal(size=(60, 3))
        index = cls(points)
        alive = set(range(60))
        store = [points[i] for i in range(60)]
        for step in range(50):
            if rng.random() < 0.5 and len(alive) > 10:
                victim = int(rng.choice(sorted(alive)))
                index.remove(victim)
                alive.discard(victim)
            else:
                new_point = rng.normal(size=3)
                new_id = index.insert(new_point)
                assert new_id == len(store)
                store.append(new_point)
                alive.add(new_id)
        all_points = np.asarray(store)
        survivors = np.array(sorted(alive))
        assert index.size == len(alive)
        assert_same_answers(index, all_points, survivors, k=4)
