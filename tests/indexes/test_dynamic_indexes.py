"""Dynamic-operation tests (insert/remove) for the indexes that support them.

After any mutation sequence, the index must answer queries identically to a
freshly built linear scan over the surviving points — the invariant RDT's
"dynamic scenarios" use case (paper Section 1) rests on.
"""

import numpy as np
import pytest

from repro.indexes import (
    CoverTreeIndex,
    IndexCapabilityError,
    KDTreeIndex,
    LinearScanIndex,
    MTreeIndex,
    RStarTreeIndex,
    VPTreeIndex,
)

DYNAMIC = [LinearScanIndex, KDTreeIndex, CoverTreeIndex, MTreeIndex, RStarTreeIndex]


def assert_same_answers(index, points, active_ids, k=5):
    """Index answers must match a scan over the active subset."""
    reference = LinearScanIndex(points[active_ids])
    for qi in range(0, len(active_ids), max(1, len(active_ids) // 5)):
        query = points[active_ids[qi]]
        _, got = index.knn(query, min(k, len(active_ids)))
        _, expected = reference.knn(query, min(k, len(active_ids)))
        assert np.allclose(np.sort(got), np.sort(expected), rtol=1e-9)


@pytest.mark.parametrize("cls", DYNAMIC, ids=lambda c: c.name)
class TestInsert:
    def test_insert_then_query(self, cls, rng):
        base = rng.normal(size=(80, 3))
        extra = rng.normal(size=(40, 3))
        index = cls(base)
        for row in extra:
            index.insert(row)
        all_points = np.vstack([base, extra])
        assert index.size == 120
        assert_same_answers(index, all_points, np.arange(120))

    def test_insert_returns_sequential_ids(self, cls, rng):
        index = cls(rng.normal(size=(10, 2)))
        assert index.insert(np.zeros(2)) == 10
        assert index.insert(np.ones(2)) == 11

    def test_insert_validates_dimension(self, cls, rng):
        index = cls(rng.normal(size=(10, 2)))
        with pytest.raises(ValueError):
            index.insert(np.zeros(3))


@pytest.mark.parametrize(
    "cls", [LinearScanIndex, KDTreeIndex, CoverTreeIndex], ids=lambda c: c.name
)
class TestRemove:
    def test_remove_then_query(self, cls, rng):
        points = rng.normal(size=(100, 3))
        index = cls(points)
        removed = [5, 17, 50, 99, 0]
        for rid in removed:
            index.remove(rid)
        survivors = np.array([i for i in range(100) if i not in removed])
        assert index.size == 95
        assert_same_answers(index, points, survivors)

    def test_double_remove_raises(self, cls, rng):
        index = cls(rng.normal(size=(10, 2)))
        index.remove(3)
        with pytest.raises(KeyError):
            index.remove(3)

    def test_removed_point_never_reported(self, cls, rng):
        points = rng.normal(size=(50, 2))
        index = cls(points)
        index.remove(7)
        seen = [pid for pid, _ in index.iter_neighbors(points[7])]
        assert 7 not in seen

    def test_get_point_of_removed_raises(self, cls, rng):
        index = cls(rng.normal(size=(10, 2)))
        index.remove(1)
        with pytest.raises(KeyError):
            index.get_point(1)


class TestStaticIndexRefusals:
    def test_vp_tree_refuses_insert(self, rng):
        index = VPTreeIndex(rng.normal(size=(30, 2)))
        with pytest.raises(IndexCapabilityError):
            index.insert(np.zeros(2))

    def test_vp_tree_refuses_remove(self, rng):
        index = VPTreeIndex(rng.normal(size=(30, 2)))
        with pytest.raises(IndexCapabilityError):
            index.remove(0)


class TestKDTreeCompaction:
    """KD-tree removal must not decay the structure without bound.

    ``remove`` only deactivates a point, so leaves accumulate tombstone
    ids and bounding boxes never tighten after insert-driven growth; the
    tree therefore rebuilds itself once the live fraction of stored ids
    drops below ``compaction_threshold``.  An insert/remove churn loop
    must keep leaf occupancy proportional to the live set while answering
    every query like a fresh linear scan.
    """

    @staticmethod
    def stored_leaf_ids(index):
        total = 0
        stack = [index._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                total += len(node.point_ids)
            else:
                stack.append(node.left)
                stack.append(node.right)
        return total

    def test_churn_keeps_leaf_occupancy_bounded(self):
        rng = np.random.default_rng(123)
        points = rng.normal(size=(120, 3))
        index = KDTreeIndex(points, leaf_size=8)
        store = [points[i] for i in range(120)]
        alive = list(range(120))
        for step in range(400):
            victim = alive.pop(step % len(alive))
            index.remove(victim)
            new_point = rng.normal(size=3)
            new_id = index.insert(new_point)
            store.append(new_point)
            alive.append(new_id)
            stored = self.stored_leaf_ids(index)
            # The live fraction of stored ids never drops below the
            # compaction threshold (up to the one removal that trips it).
            assert stored <= index.size / index.compaction_threshold + 1
        all_points = np.asarray(store)
        survivors = np.asarray(sorted(alive))
        assert index.size == 120
        assert_same_answers(index, all_points, survivors)

    def test_removal_only_churn_compacts_to_live_set(self):
        rng = np.random.default_rng(321)
        points = rng.normal(size=(200, 2))
        index = KDTreeIndex(points)
        for victim in range(150):
            index.remove(victim)
        assert index.size == 50
        assert self.stored_leaf_ids(index) <= 100
        survivors = np.arange(150, 200)
        assert_same_answers(index, points, survivors)

    def test_batched_queries_after_churn_match_chunked_default(self):
        from repro.indexes.base import Index

        rng = np.random.default_rng(77)
        points = rng.normal(size=(150, 3))
        index = KDTreeIndex(points)
        for victim in range(0, 150, 2):
            index.remove(victim)
        queries = rng.normal(size=(20, 3))
        got = index.knn_distances(queries, 5)
        expected = Index.knn_distances(index, queries, 5)
        assert np.allclose(got, expected, rtol=1e-9)


class TestInterleavedMutations:
    @pytest.mark.parametrize(
        "cls", [LinearScanIndex, KDTreeIndex, CoverTreeIndex], ids=lambda c: c.name
    )
    def test_random_mutation_sequence(self, cls):
        rng = np.random.default_rng(99)
        points = rng.normal(size=(60, 3))
        index = cls(points)
        alive = set(range(60))
        store = [points[i] for i in range(60)]
        for step in range(50):
            if rng.random() < 0.5 and len(alive) > 10:
                victim = int(rng.choice(sorted(alive)))
                index.remove(victim)
                alive.discard(victim)
            else:
                new_point = rng.normal(size=3)
                new_id = index.insert(new_point)
                assert new_id == len(store)
                store.append(new_point)
                alive.add(new_id)
        all_points = np.asarray(store)
        survivors = np.array(sorted(alive))
        assert index.size == len(alive)
        assert_same_answers(index, all_points, survivors, k=4)
