"""Conformance tests for the batched ``Index.knn_distances`` capability.

The batched form must agree with the per-point ``knn_distance`` path on
every registered backend — including per-row member exclusion and the
fewer-than-k ``inf`` convention — since the batched RkNN engine's
refinement phase decides result membership through it.
"""

import numpy as np
import pytest

from repro.indexes import INDEX_REGISTRY, LinearScanIndex, build_index
from repro.indexes.bulk_knn import bulk_knn_distances, chunked_knn_distances
from repro.distances import get_metric

INDEX_NAMES = sorted(INDEX_REGISTRY)


@pytest.fixture(scope="module", params=INDEX_NAMES)
def index_and_data(request, small_gaussian):
    return build_index(request.param, small_gaussian), small_gaussian


class TestAgainstPerPointPath:
    @pytest.mark.parametrize("k", [1, 4, 9])
    def test_matches_knn_distance(self, index_and_data, k, rng):
        index, data = index_and_data
        queries = rng.normal(size=(20, data.shape[1]))
        got = index.knn_distances(queries, k)
        expected = np.array([index.knn_distance(q, k) for q in queries])
        assert np.allclose(got, expected, rtol=1e-9)

    def test_member_rows_with_exclusion(self, index_and_data):
        index, data = index_and_data
        rows = np.arange(0, 40, 3)
        got = index.knn_distances(data[rows], 5, exclude_indices=rows)
        expected = np.array(
            [index.knn_distance(data[i], 5, exclude_index=int(i)) for i in rows]
        )
        assert np.allclose(got, expected, rtol=1e-9)

    def test_negative_exclusion_means_no_exclusion(self, index_and_data):
        index, data = index_and_data
        rows = np.arange(6)
        none_excluded = index.knn_distances(
            data[rows], 3, exclude_indices=np.full(6, -1)
        )
        plain = index.knn_distances(data[rows], 3)
        assert np.array_equal(none_excluded, plain)

    def test_mixed_exclusions(self, index_and_data):
        index, data = index_and_data
        rows = np.array([4, 9, 14])
        exclude = np.array([4, -1, 14])
        got = index.knn_distances(data[rows], 4, exclude_indices=exclude)
        expected = np.array(
            [
                index.knn_distance(data[4], 4, exclude_index=4),
                index.knn_distance(data[9], 4),
                index.knn_distance(data[14], 4, exclude_index=14),
            ]
        )
        assert np.allclose(got, expected, rtol=1e-9)


class TestFewerThanKConvention:
    @pytest.mark.parametrize("index_name", INDEX_NAMES)
    def test_k_beyond_size_is_inf(self, index_name, small_gaussian):
        index = build_index(index_name, small_gaussian[:5])
        got = index.knn_distances(small_gaussian[10:14], 9)
        assert np.all(np.isinf(got))

    @pytest.mark.parametrize("index_name", INDEX_NAMES)
    def test_exclusion_tips_row_under_k(self, index_name, small_gaussian):
        index = build_index(index_name, small_gaussian[:4])
        rows = np.array([0, 1])
        at_limit = index.knn_distances(small_gaussian[rows], 4)
        assert np.all(np.isfinite(at_limit))
        excluded = index.knn_distances(
            small_gaussian[rows], 4, exclude_indices=rows
        )
        assert np.all(np.isinf(excluded))


class TestFewerThanKAfterRemovals:
    """Removal-induced underfull rows must report ``inf`` on every pruned
    override, exactly like the chunked default (DESIGN.md fewer-than-k
    convention).

    Audit note: all keeper-based tree overrides inherit the convention
    from ``KSmallestKeeper`` (buffers start at ``inf``, so a row that
    never collects ``k`` finite candidates keeps an ``inf`` radius); the
    scenarios here — bulk- and insert-built trees, lazy and eager
    removal, mixed underfull/full batches — pin that this stays true for
    every backend's own active-point filtering.
    """

    @pytest.mark.parametrize("index_name", INDEX_NAMES)
    def test_removals_tip_all_rows_under_k(self, index_name, small_gaussian):
        index = build_index(index_name, small_gaussian[:12])
        if not index.supports_remove:
            pytest.skip(f"{index_name} does not support remove")
        for i in range(9):  # 3 active points remain
            index.remove(i)
        got = index.knn_distances(small_gaussian[20:25], 4)
        assert np.all(np.isinf(got))
        # One fewer than the live count stays finite.
        assert np.all(np.isfinite(index.knn_distances(small_gaussian[20:25], 3)))

    @pytest.mark.parametrize("index_name", INDEX_NAMES)
    def test_exclusion_plus_removal_mixed_rows(self, index_name, small_gaussian):
        """Member rows whose self-exclusion tips them under k get inf while
        sibling rows in the same batch stay finite."""
        index = build_index(index_name, small_gaussian[:10])
        if not index.supports_remove:
            pytest.skip(f"{index_name} does not support remove")
        for i in range(6):  # active: 6, 7, 8, 9
            index.remove(i)
        rows = np.array([6, 7, 8])
        exclude = np.array([6, -1, 8])
        got = index.knn_distances(small_gaussian[rows], 4, exclude_indices=exclude)
        assert np.isinf(got[0])  # 3 eligible after excluding itself
        assert np.isfinite(got[1])  # full neighborhood of 4
        assert np.isinf(got[2])

    @pytest.mark.parametrize(
        "index_name,flags",
        [("m-tree", {"bulk_build": False}), ("cover-tree", {"batch_build": False}),
         ("r-star-tree", {"bulk_load": False})],
        ids=["m-tree[insert]", "cover-tree[insert]", "r-star-tree[insert]"],
    )
    def test_insert_built_trees_honor_convention(
        self, index_name, flags, small_gaussian
    ):
        index = build_index(index_name, small_gaussian[:12], **flags)
        for i in range(10):
            index.remove(i)
        got = index.knn_distances(small_gaussian[30:33], 3)
        assert np.all(np.isinf(got))
        assert np.all(np.isfinite(index.knn_distances(small_gaussian[30:33], 2)))

    def test_all_points_removed_then_reinserted(self, small_gaussian):
        """Churn down to k-1 live points through remove+insert cycles."""
        index = build_index("kd-tree", small_gaussian[:8])
        for i in range(8):
            index.remove(i)
        new_ids = [index.insert(small_gaussian[20 + j]) for j in range(3)]
        got = index.knn_distances(small_gaussian[40:43], 4)
        assert np.all(np.isinf(got))
        excl = index.knn_distances(
            small_gaussian[new_ids], 3, exclude_indices=np.asarray(new_ids)
        )
        assert np.all(np.isinf(excl))
        assert np.all(np.isfinite(index.knn_distances(small_gaussian[40:43], 3)))


class TestShapesAndValidation:
    def test_single_row_promoted(self, index_and_data):
        index, data = index_and_data
        got = index.knn_distances(data[3], 5)
        assert got.shape == (1,)
        assert got[0] == pytest.approx(index.knn_distance(data[3], 5), rel=1e-9)

    def test_wrong_dim_raises(self, index_and_data):
        index, _ = index_and_data
        with pytest.raises(ValueError, match="shape"):
            index.knn_distances(np.zeros((3, index.dim + 1)), 2)

    def test_empty_batch(self, index_and_data):
        index, _ = index_and_data
        got = index.knn_distances(np.empty((0, index.dim)), 3)
        assert got.shape == (0,)


class TestTieRobustness:
    @pytest.mark.parametrize("index_name", INDEX_NAMES)
    def test_heavy_ties_match_linear_scan(self, index_name, duplicated_points):
        index = build_index(index_name, duplicated_points)
        reference = LinearScanIndex(duplicated_points)
        rows = np.arange(0, 30, 2)
        got = index.knn_distances(duplicated_points[rows], 6, exclude_indices=rows)
        expected = reference.knn_distances(
            duplicated_points[rows], 6, exclude_indices=rows
        )
        assert np.allclose(got, expected, rtol=1e-9)


class TestToPointMany:
    @pytest.mark.parametrize("metric_name", ["euclidean", "manhattan", "chebyshev"])
    def test_columns_bit_identical_to_to_point(self, metric_name, rng):
        """The batched filter's tie decisions rely on exact column
        equivalence between to_point_many and per-point to_point."""
        metric = get_metric(metric_name)
        X = rng.normal(size=(60, 5)) * np.pi + 1e5
        got = metric.to_point_many(X, X[:20])
        expected = np.stack([metric.to_point(X, X[j]) for j in range(20)], axis=1)
        assert np.array_equal(got, expected)


class TestRemovalAwareness:
    def test_removed_points_are_not_neighbors(self, small_gaussian):
        index = LinearScanIndex(small_gaussian[:50])
        before = index.knn_distances(small_gaussian[:3], 5)
        nearest_of_zero = int(index.knn(small_gaussian[0], 1)[0][0])
        index.remove(nearest_of_zero)
        after = index.knn_distances(small_gaussian[:3], 5)
        assert np.all(after >= before - 1e-12)
        expected = np.array(
            [index.knn_distance(small_gaussian[i], 5) for i in range(3)]
        )
        assert np.allclose(after, expected, rtol=1e-9)


class TestSharedKernel:
    def test_bulk_knn_distances_via_kernel_matches_loop(self, tiny_plane):
        metric = get_metric("euclidean")
        got = bulk_knn_distances(tiny_plane, 4, metric=metric)
        index = LinearScanIndex(tiny_plane)
        expected = np.array(
            [
                index.knn_distance(tiny_plane[i], 4, exclude_index=i)
                for i in range(len(tiny_plane))
            ]
        )
        assert np.allclose(got, expected, rtol=1e-9)

    def test_chunk_size_invariance(self, small_gaussian):
        metric = get_metric("euclidean")
        ids = np.arange(small_gaussian.shape[0], dtype=np.intp)
        a = chunked_knn_distances(
            small_gaussian, small_gaussian, 5, metric,
            point_ids=ids, exclude_ids=ids, chunk_size=7,
        )
        b = chunked_knn_distances(
            small_gaussian, small_gaussian, 5, metric,
            point_ids=ids, exclude_ids=ids, chunk_size=4096,
        )
        # BLAS matmul results are not bit-stable across block shapes, so
        # chunk invariance holds to kernel round-off, not exactly.
        assert np.allclose(a, b, rtol=1e-12, atol=1e-15)

    def test_mismatched_exclude_length_raises(self, small_gaussian):
        metric = get_metric("euclidean")
        ids = np.arange(small_gaussian.shape[0], dtype=np.intp)
        with pytest.raises(ValueError, match="one entry per query row"):
            chunked_knn_distances(
                small_gaussian[:10], small_gaussian, 3, metric,
                point_ids=ids, exclude_ids=ids[:4],
            )

    def test_exclude_requires_point_ids(self, small_gaussian):
        metric = get_metric("euclidean")
        with pytest.raises(ValueError, match="point_ids"):
            chunked_knn_distances(
                small_gaussian[:3], small_gaussian, 2, metric,
                exclude_ids=np.array([0, 1, 2]),
            )
