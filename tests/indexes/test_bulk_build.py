"""Bulk-vs-incremental construction parity for every tree backend.

Every backend now constructs through a vectorized bulk path by default;
the dynamic backends keep their insert loops.  These tests pin the
contract the overhaul promised: a bulk-built tree passes its structural
invariants, and — for every backend with both paths — answers ``knn``,
``knn_distances``, and ``RDT.query_batch`` identically to an insert-built
tree, including on tie-heavy data, exact duplicates, and post-removal
states.  Tie groups are compared as sets: the library contract lets ties
be *ordered* arbitrarily, but the distances and the membership of every
tie group must agree between construction paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RDT
from repro.indexes import (
    INDEX_REGISTRY,
    CoverTreeIndex,
    KDTreeIndex,
    MTreeIndex,
    RStarTreeIndex,
    build_index,
)

#: Backends with both a bulk and an insert-driven construction path, with
#: factories for each.  KD has no constructor flag: its insert-built twin
#: is seeded with one point and grown by inserts.
DUAL_PATH = {
    "m-tree": (
        lambda data: MTreeIndex(data),
        lambda data: MTreeIndex(data, bulk_build=False),
    ),
    "cover-tree": (
        lambda data: CoverTreeIndex(data),
        lambda data: CoverTreeIndex(data, batch_build=False),
    ),
    "r-star-tree": (
        lambda data: RStarTreeIndex(data, capacity=8),
        lambda data: RStarTreeIndex(data, capacity=8, bulk_load=False),
    ),
    "kd-tree": (
        lambda data: KDTreeIndex(data, leaf_size=8),
        lambda data: _insert_grown_kd(data),
    ),
}


def _insert_grown_kd(data) -> KDTreeIndex:
    index = KDTreeIndex(data[:1], leaf_size=8)
    for row in data[1:]:
        index.insert(row)
    return index


def assert_same_knn(result_a, result_b, tie_pool=None):
    """Two kNN answers agree: equal distances, tie groups with equal id sets.

    ``tie_pool`` maps a boundary distance to the set of *all* ids at that
    distance; the trailing tie group may be truncated differently by the
    two searches, so its ids only need to come from the same pool.
    """
    ids_a, dists_a = result_a
    ids_b, dists_b = result_b
    assert np.array_equal(dists_a, dists_b), "kNN distances differ"
    groups_a = _tie_groups(ids_a, dists_a)
    groups_b = _tie_groups(ids_b, dists_b)
    assert groups_a.keys() == groups_b.keys()
    boundary = dists_a[-1] if dists_a.shape[0] else None
    for value, members_a in groups_a.items():
        members_b = groups_b[value]
        if value == boundary and tie_pool is not None:
            pool = tie_pool.get(value, members_a | members_b)
            assert members_a <= pool and members_b <= pool
            assert len(members_a) == len(members_b)
        else:
            assert members_a == members_b, f"tie group at d={value} differs"


def _tie_groups(ids, dists):
    groups: dict[float, set[int]] = {}
    for point_id, dist in zip(ids, dists):
        groups.setdefault(float(dist), set()).add(int(point_id))
    return groups


def _tie_pool(index, query, exclude=frozenset()):
    active = index.active_ids()
    dists = index.metric.to_point(index.points[active], query)
    pool: dict[float, set[int]] = {}
    for point_id, dist in zip(active, dists):
        if int(point_id) not in exclude:
            pool.setdefault(float(dist), set()).add(int(point_id))
    return pool


@pytest.mark.parametrize("name", sorted(INDEX_REGISTRY))
class TestBulkBuildSmoke:
    """Fast-tier gate: the default (bulk) build of every backend is sound."""

    def test_invariants_at_small_n(self, name, medium_mixture):
        index = build_index(name, medium_mixture[:150])
        if hasattr(index, "check_invariants"):
            index.check_invariants()
        assert index.size == 150

    def test_duplicates(self, name, duplicated_points):
        index = build_index(name, duplicated_points)
        if hasattr(index, "check_invariants"):
            index.check_invariants()
        _, dists = index.knn(duplicated_points[0], 10)
        assert dists.shape[0] == 10 and dists[0] == 0.0


@pytest.mark.parametrize("name", sorted(DUAL_PATH))
class TestBulkVsInsertParity:
    def build_pair(self, name, data):
        bulk_factory, insert_factory = DUAL_PATH[name]
        return bulk_factory(data), insert_factory(data)

    def test_knn_parity(self, name, medium_mixture, rng):
        data = medium_mixture[:400]
        bulk, grown = self.build_pair(name, data)
        if hasattr(bulk, "check_invariants"):
            bulk.check_invariants()
            grown.check_invariants()
        for query in rng.normal(size=(10, data.shape[1])) * 3.0:
            assert_same_knn(
                bulk.knn(query, 12), grown.knn(query, 12), _tie_pool(bulk, query)
            )

    def test_knn_parity_on_ties_and_duplicates(self, name, duplicated_points):
        bulk, grown = self.build_pair(name, duplicated_points)
        for row in (0, 7, 55, 119):
            query = duplicated_points[row]
            pool = _tie_pool(bulk, query, exclude={row})
            assert_same_knn(
                bulk.knn(query, 15, exclude_index=row),
                grown.knn(query, 15, exclude_index=row),
                pool,
            )

    def test_knn_distances_parity(self, name, medium_mixture):
        data = medium_mixture[:400]
        bulk, grown = self.build_pair(name, data)
        rows = np.arange(0, 400, 11, dtype=np.intp)
        got = bulk.knn_distances(data[rows], 7, exclude_indices=rows)
        expected = grown.knn_distances(data[rows], 7, exclude_indices=rows)
        assert np.allclose(got, expected, rtol=1e-9)

    def test_knn_distances_parity_post_removal(self, name, medium_mixture):
        data = medium_mixture[:300]
        bulk, grown = self.build_pair(name, data)
        if not bulk.supports_remove:
            pytest.skip(f"{name} does not support removal")
        for victim in (2, 3, 4, 150, 299):
            bulk.remove(victim)
            grown.remove(victim)
        if hasattr(bulk, "check_invariants"):
            bulk.check_invariants()
        rows = np.array([0, 10, 100, 200], dtype=np.intp)
        got = bulk.knn_distances(data[rows], 6, exclude_indices=rows)
        expected = grown.knn_distances(data[rows], 6, exclude_indices=rows)
        assert np.allclose(got, expected, rtol=1e-9)

    def test_rdt_query_batch_parity(self, name, medium_mixture):
        data = medium_mixture[:300]
        bulk, grown = self.build_pair(name, data)
        query_ids = np.arange(0, 300, 13, dtype=np.intp)
        batch_bulk = RDT(bulk).query_batch(query_indices=query_ids, k=5, t=4.0)
        batch_grown = RDT(grown).query_batch(query_indices=query_ids, k=5, t=4.0)
        for result_bulk, result_grown in zip(batch_bulk, batch_grown):
            assert np.array_equal(result_bulk.ids, result_grown.ids)

    def test_rdt_query_batch_parity_on_duplicates(self, name, duplicated_points):
        bulk, grown = self.build_pair(name, duplicated_points)
        query_ids = np.arange(0, duplicated_points.shape[0], 9, dtype=np.intp)
        batch_bulk = RDT(bulk).query_batch(query_indices=query_ids, k=4, t=4.0)
        batch_grown = RDT(grown).query_batch(query_indices=query_ids, k=4, t=4.0)
        for result_bulk, result_grown in zip(batch_bulk, batch_grown):
            assert np.array_equal(result_bulk.ids, result_grown.ids)


class TestBulkThenDynamic:
    """Bulk-built trees must keep their invariants under later mutation."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda data: MTreeIndex(data, capacity=5),
            lambda data: CoverTreeIndex(data),
            lambda data: RStarTreeIndex(data, capacity=4),
            lambda data: KDTreeIndex(data, leaf_size=4),
        ],
        ids=["m-tree", "cover-tree", "r-star-tree", "kd-tree"],
    )
    def test_insert_then_remove_after_bulk_build(self, factory, rng):
        index = factory(rng.normal(size=(120, 3)))
        for row in rng.normal(size=(60, 3)):
            index.insert(row)
        index.check_invariants()
        if index.supports_remove:
            for victim in (0, 30, 100, 150):
                index.remove(victim)
            index.check_invariants()
