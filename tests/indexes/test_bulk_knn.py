"""Tests for the bulk kNN self-join used by the precomputation-heavy methods."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distances import get_metric
from repro.indexes import bulk_knn, bulk_knn_distances
from repro.indexes.bulk_knn import adaptive_chunk_size, chunked_knn_distances


def loop_reference(points, k, metric):
    """Slow per-point reference implementation."""
    n = len(points)
    out = np.empty((n, k))
    for i in range(n):
        d = metric.to_point(points, points[i])
        d[i] = np.inf
        out[i] = np.sort(d)[:k]
    return out


class TestBulkKnnDistances:
    def test_matches_loop_reference(self, small_gaussian):
        metric = get_metric(None)
        expected = loop_reference(small_gaussian, 5, metric)[:, -1]
        got = bulk_knn_distances(small_gaussian, 5)
        assert np.allclose(got, expected, rtol=1e-9)

    def test_chunking_invariance(self, small_gaussian):
        # BLAS kernels differ across block shapes, so equality is only up to
        # last-ulp noise — exactly the mismatch the tolerance policy absorbs.
        a = bulk_knn_distances(small_gaussian, 7, chunk_size=17)
        b = bulk_knn_distances(small_gaussian, 7, chunk_size=1024)
        assert np.allclose(a, b, rtol=1e-12, atol=1e-12)

    def test_k_equals_n_minus_one(self):
        points = np.random.default_rng(0).normal(size=(10, 2))
        got = bulk_knn_distances(points, 9)
        metric = get_metric(None)
        expected = loop_reference(points, 9, metric)[:, -1]
        assert np.allclose(got, expected)

    def test_k_too_large_raises(self):
        points = np.zeros((5, 2))
        with pytest.raises(ValueError):
            bulk_knn_distances(points, 5)

    def test_non_euclidean_metric(self, tiny_plane):
        got = bulk_knn_distances(tiny_plane, 3, metric="manhattan")
        expected = loop_reference(tiny_plane, 3, get_metric("manhattan"))[:, -1]
        assert np.allclose(got, expected, rtol=1e-9)

    def test_duplicates_have_zero_knn_distance(self):
        points = np.vstack([np.zeros((3, 2)), np.ones((2, 2))])
        dists = bulk_knn_distances(points, 2)
        assert dists[0] == pytest.approx(0.0)  # two other copies at distance 0


class TestSparseIdExclusion:
    def test_huge_ids_do_not_allocate_dense_tables(self):
        """Ids are never reused, so after heavy churn the id space dwarfs
        the live set; the exclusion lookup must stay O(n), not O(max_id).
        A dense id->column table for these labels would need ~8 GB."""
        rng = np.random.default_rng(8)
        points = rng.normal(size=(6, 2))
        point_ids = np.array([3, 7, 512, 10**6, 10**9 - 1, 10**9], dtype=np.intp)
        metric = get_metric(None)
        exclude = np.array([10**9, -1, 7, 4, 10**6, 10**9 - 1], dtype=np.intp)
        got = chunked_knn_distances(
            points, points, 2, metric, point_ids=point_ids, exclude_ids=exclude
        )
        for row in range(6):
            d = metric.to_point(points, points[row])
            if exclude[row] >= 0 and exclude[row] in point_ids:
                d = d[point_ids != exclude[row]]
            assert got[row] == pytest.approx(np.sort(d)[1], rel=1e-9)

    def test_unsorted_point_ids(self):
        rng = np.random.default_rng(9)
        points = rng.normal(size=(5, 2))
        point_ids = np.array([40, 2, 99, 7, 11], dtype=np.intp)
        metric = get_metric(None)
        exclude = np.array([99, 2, -1, 40, 11], dtype=np.intp)
        got = chunked_knn_distances(
            points, points, 1, metric, point_ids=point_ids, exclude_ids=exclude
        )
        for row in range(5):
            d = metric.to_point(points, points[row])
            d = d[point_ids != exclude[row]]
            assert got[row] == pytest.approx(np.sort(d)[0], rel=1e-9, abs=1e-12)


class TestAdaptiveChunkPolicy:
    def test_default_matches_explicit_adaptive_size(self, small_gaussian):
        n = small_gaussian.shape[0]
        auto = bulk_knn_distances(small_gaussian, 5)
        explicit = bulk_knn_distances(
            small_gaussian, 5, chunk_size=adaptive_chunk_size(n)
        )
        assert np.array_equal(auto, explicit)

    def test_bulk_knn_default_matches_explicit_adaptive_size(self, tiny_plane):
        n = tiny_plane.shape[0]
        auto_ids, auto_dists = bulk_knn(tiny_plane, 4)
        ids, dists = bulk_knn(tiny_plane, 4, chunk_size=adaptive_chunk_size(n))
        assert np.array_equal(auto_ids, ids)
        assert np.array_equal(auto_dists, dists)

    def test_adaptive_size_bounds_block_memory(self):
        from repro.indexes.bulk_knn import BLOCK_BUDGET

        for n in (1, 100, 10**5, 10**8):
            chunk = adaptive_chunk_size(n)
            assert chunk >= 16
            assert chunk == 16 or chunk * n <= BLOCK_BUDGET


class TestBulkKnnFull:
    def test_ids_and_distances_consistent(self, small_gaussian):
        ids, dists = bulk_knn(small_gaussian, 4)
        metric = get_metric(None)
        for i in [0, 100, 299]:
            recomputed = metric.to_point(small_gaussian[ids[i]], small_gaussian[i])
            assert np.allclose(recomputed, dists[i], rtol=1e-9)

    def test_rows_sorted_and_self_excluded(self, small_gaussian):
        ids, dists = bulk_knn(small_gaussian, 6)
        assert np.all(np.diff(dists, axis=1) >= -1e-12)
        assert not np.any(ids == np.arange(len(small_gaussian))[:, None])

    def test_kth_column_matches_distances_helper(self, small_gaussian):
        _, dists = bulk_knn(small_gaussian, 8)
        kth = bulk_knn_distances(small_gaussian, 8)
        assert np.allclose(dists[:, -1], kth, rtol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(
        points=arrays(
            np.float64,
            st.tuples(st.integers(4, 40), st.integers(1, 3)),
            elements=st.floats(min_value=-10, max_value=10),
        ),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_property_matches_reference(self, points, k):
        metric = get_metric(None)
        got = bulk_knn_distances(points, k, chunk_size=7)
        expected = loop_reference(points, k, metric)[:, -1]
        assert np.allclose(got, expected, rtol=1e-9, atol=1e-12)
