"""Tests for the bulk kNN self-join used by the precomputation-heavy methods."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distances import get_metric
from repro.indexes import bulk_knn, bulk_knn_distances


def loop_reference(points, k, metric):
    """Slow per-point reference implementation."""
    n = len(points)
    out = np.empty((n, k))
    for i in range(n):
        d = metric.to_point(points, points[i])
        d[i] = np.inf
        out[i] = np.sort(d)[:k]
    return out


class TestBulkKnnDistances:
    def test_matches_loop_reference(self, small_gaussian):
        metric = get_metric(None)
        expected = loop_reference(small_gaussian, 5, metric)[:, -1]
        got = bulk_knn_distances(small_gaussian, 5)
        assert np.allclose(got, expected, rtol=1e-9)

    def test_chunking_invariance(self, small_gaussian):
        # BLAS kernels differ across block shapes, so equality is only up to
        # last-ulp noise — exactly the mismatch the tolerance policy absorbs.
        a = bulk_knn_distances(small_gaussian, 7, chunk_size=17)
        b = bulk_knn_distances(small_gaussian, 7, chunk_size=1024)
        assert np.allclose(a, b, rtol=1e-12, atol=1e-12)

    def test_k_equals_n_minus_one(self):
        points = np.random.default_rng(0).normal(size=(10, 2))
        got = bulk_knn_distances(points, 9)
        metric = get_metric(None)
        expected = loop_reference(points, 9, metric)[:, -1]
        assert np.allclose(got, expected)

    def test_k_too_large_raises(self):
        points = np.zeros((5, 2))
        with pytest.raises(ValueError):
            bulk_knn_distances(points, 5)

    def test_non_euclidean_metric(self, tiny_plane):
        got = bulk_knn_distances(tiny_plane, 3, metric="manhattan")
        expected = loop_reference(tiny_plane, 3, get_metric("manhattan"))[:, -1]
        assert np.allclose(got, expected, rtol=1e-9)

    def test_duplicates_have_zero_knn_distance(self):
        points = np.vstack([np.zeros((3, 2)), np.ones((2, 2))])
        dists = bulk_knn_distances(points, 2)
        assert dists[0] == pytest.approx(0.0)  # two other copies at distance 0


class TestBulkKnnFull:
    def test_ids_and_distances_consistent(self, small_gaussian):
        ids, dists = bulk_knn(small_gaussian, 4)
        metric = get_metric(None)
        for i in [0, 100, 299]:
            recomputed = metric.to_point(small_gaussian[ids[i]], small_gaussian[i])
            assert np.allclose(recomputed, dists[i], rtol=1e-9)

    def test_rows_sorted_and_self_excluded(self, small_gaussian):
        ids, dists = bulk_knn(small_gaussian, 6)
        assert np.all(np.diff(dists, axis=1) >= -1e-12)
        assert not np.any(ids == np.arange(len(small_gaussian))[:, None])

    def test_kth_column_matches_distances_helper(self, small_gaussian):
        _, dists = bulk_knn(small_gaussian, 8)
        kth = bulk_knn_distances(small_gaussian, 8)
        assert np.allclose(dists[:, -1], kth, rtol=1e-12)

    @settings(max_examples=15, deadline=None)
    @given(
        points=arrays(
            np.float64,
            st.tuples(st.integers(4, 40), st.integers(1, 3)),
            elements=st.floats(min_value=-10, max_value=10),
        ),
        k=st.integers(min_value=1, max_value=3),
    )
    def test_property_matches_reference(self, points, k):
        metric = get_metric(None)
        got = bulk_knn_distances(points, k, chunk_size=7)
        expected = loop_reference(points, k, metric)[:, -1]
        assert np.allclose(got, expected, rtol=1e-9, atol=1e-12)
