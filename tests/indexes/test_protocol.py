"""Cross-index protocol conformance tests.

Every index must honour the incremental-NN contract RDT depends on:
nondecreasing distances, completeness, agreement with brute force on kNN
sets and range queries, and correct self-exclusion.  The suite runs the
same assertions over every registered index and every metric.
"""

import numpy as np
import pytest

from repro.distances import get_metric
from repro.indexes import INDEX_REGISTRY, LinearScanIndex, build_index

INDEX_NAMES = sorted(INDEX_REGISTRY)


def brute_knn(points, query, k, metric, exclude=None):
    dists = metric.to_point(points, query)
    ids = np.arange(len(points))
    if exclude is not None:
        keep = ids != exclude
        ids, dists = ids[keep], dists[keep]
    order = np.lexsort((ids, dists))[:k]
    return ids[order], dists[order]


@pytest.fixture(scope="module", params=INDEX_NAMES)
def index_and_data(request, small_gaussian):
    return build_index(request.param, small_gaussian), small_gaussian


class TestIncrementalOrder:
    def test_distances_nondecreasing(self, index_and_data):
        index, data = index_and_data
        query = data[17]
        last = -1.0
        for count, (_, dist) in enumerate(index.iter_neighbors(query)):
            assert dist >= last - 1e-12
            last = dist
            if count >= 120:
                break

    def test_complete_enumeration(self, index_and_data):
        index, data = index_and_data
        seen = [pid for pid, _ in index.iter_neighbors(data[0])]
        assert sorted(seen) == list(range(len(data)))

    def test_first_neighbor_of_member_is_itself(self, index_and_data):
        index, data = index_and_data
        pid, dist = next(iter(index.iter_neighbors(data[42])))
        assert dist == pytest.approx(0.0, abs=1e-9)

    def test_reported_distances_are_true_distances(self, index_and_data):
        index, data = index_and_data
        query = data[3]
        for count, (pid, dist) in enumerate(index.iter_neighbors(query)):
            true = index.metric.to_point(data[pid][None, :], query)[0]
            assert dist == pytest.approx(true, rel=1e-9, abs=1e-12)
            if count >= 30:
                break


class TestKnn:
    @pytest.mark.parametrize("k", [1, 5, 25])
    def test_matches_brute_force(self, index_and_data, k):
        index, data = index_and_data
        query = np.random.default_rng(5).normal(size=data.shape[1])
        ids, dists = index.knn(query, k)
        _, expected = brute_knn(data, query, k, index.metric)
        assert len(ids) == k
        assert np.allclose(np.sort(dists), np.sort(expected), rtol=1e-9)

    def test_exclude_index(self, index_and_data):
        index, data = index_and_data
        ids, dists = index.knn(data[10], 5, exclude_index=10)
        assert 10 not in ids
        _, expected = brute_knn(data, data[10], 5, index.metric, exclude=10)
        assert np.allclose(np.sort(dists), np.sort(expected), rtol=1e-9)

    def test_k_larger_than_n_returns_all(self, index_and_data):
        index, data = index_and_data
        ids, dists = index.knn(data[0], len(data) + 50)
        assert len(ids) == len(data)

    def test_knn_distance(self, index_and_data):
        index, data = index_and_data
        _, expected = brute_knn(data, data[1], 7, index.metric)
        assert index.knn_distance(data[1], 7) == pytest.approx(
            float(expected[-1]), rel=1e-9
        )


class TestRangeQueries:
    def test_range_count_matches_brute_force(self, index_and_data):
        index, data = index_and_data
        query = data[25]
        dists = index.metric.to_point(data, query)
        for radius in [0.1, 0.5, float(np.median(dists))]:
            expected = int(np.count_nonzero(dists <= radius * (1 + 1e-9)))
            got = index.range_count(query, radius * (1 + 1e-9))
            assert got == expected

    def test_range_search_sorted_and_complete(self, index_and_data):
        index, data = index_and_data
        query = data[2]
        radius = float(np.sort(index.metric.to_point(data, query))[20])
        ids, dists = index.range_search(query, radius * (1 + 1e-9))
        assert np.all(np.diff(dists) >= -1e-12)
        assert np.all(dists <= radius * (1 + 1e-6))
        assert len(ids) >= 21  # at least the 20 nearest plus the point itself


class TestMetricsAcrossIndexes:
    @pytest.mark.parametrize("metric_name", ["manhattan", "chebyshev"])
    @pytest.mark.parametrize("index_name", INDEX_NAMES)
    def test_non_euclidean_backends(self, index_name, metric_name, tiny_plane):
        metric = get_metric(metric_name)
        index = build_index(index_name, tiny_plane, metric=metric)
        reference = LinearScanIndex(tiny_plane, metric=get_metric(metric_name))
        query = tiny_plane[7]
        _, got = index.knn(query, 8)
        _, expected = reference.knn(query, 8)
        assert np.allclose(np.sort(got), np.sort(expected), rtol=1e-9)


class TestDuplicateRobustness:
    @pytest.mark.parametrize("index_name", INDEX_NAMES)
    def test_knn_with_heavy_ties(self, index_name, duplicated_points):
        index = build_index(index_name, duplicated_points)
        reference = LinearScanIndex(duplicated_points)
        query = duplicated_points[0]
        _, got = index.knn(query, 15)
        _, expected = reference.knn(query, 15)
        # Distance multiset must agree even when ids are ambiguous.
        assert np.allclose(np.sort(got), np.sort(expected))

    @pytest.mark.parametrize("index_name", INDEX_NAMES)
    def test_iteration_complete_with_ties(self, index_name, duplicated_points):
        index = build_index(index_name, duplicated_points)
        seen = [pid for pid, _ in index.iter_neighbors(duplicated_points[5])]
        assert sorted(seen) == list(range(len(duplicated_points)))


class TestValidationAtQueryTime:
    def test_wrong_dim_query_raises(self, index_and_data):
        index, _ = index_and_data
        with pytest.raises(ValueError, match="dimension"):
            index.knn(np.zeros(index.dim + 1), 3)

    def test_get_point_roundtrip(self, index_and_data):
        index, data = index_and_data
        assert np.array_equal(index.get_point(11), data[11])
