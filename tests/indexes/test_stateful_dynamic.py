"""Stateful property test: dynamic indexes vs a reference model.

A hypothesis rule machine drives a random interleaving of inserts, removes
and queries against a cover tree and a KD-tree simultaneously, comparing
every query against a brute-force model over the surviving points.  This is
the strongest correctness net for the mutation code paths RDT's dynamic
use-cases rely on.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.indexes import CoverTreeIndex, KDTreeIndex

DIM = 3


class DynamicIndexMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.rng = np.random.default_rng(1234)
        seed_points = self.rng.normal(size=(5, DIM))
        self.points = [row for row in seed_points]
        self.alive = set(range(5))
        self.cover = CoverTreeIndex(seed_points)
        self.kd = KDTreeIndex(seed_points, leaf_size=4)

    @rule(coord=st.floats(min_value=-5, max_value=5))
    def insert_point(self, coord):
        point = self.rng.normal(size=DIM) + coord
        expected_id = len(self.points)
        assert self.cover.insert(point) == expected_id
        assert self.kd.insert(point) == expected_id
        self.points.append(point)
        self.alive.add(expected_id)

    @precondition(lambda self: len(self.alive) > 2)
    @rule(which=st.integers(min_value=0, max_value=10**6))
    def remove_point(self, which):
        victim = sorted(self.alive)[which % len(self.alive)]
        self.cover.remove(victim)
        self.kd.remove(victim)
        self.alive.discard(victim)

    @rule(k=st.integers(min_value=1, max_value=4))
    def query_matches_model(self, k):
        query = self.rng.normal(size=DIM)
        alive = sorted(self.alive)
        coords = np.asarray([self.points[i] for i in alive])
        dists = np.linalg.norm(coords - query, axis=1)
        expected = np.sort(dists)[: min(k, len(alive))]
        for index in (self.cover, self.kd):
            _, got = index.knn(query, k)
            assert np.allclose(np.sort(got), expected, rtol=1e-9), index.name

    @invariant()
    def sizes_agree(self):
        assert self.cover.size == len(self.alive)
        assert self.kd.size == len(self.alive)

    @invariant()
    def cover_tree_structure_sound(self):
        self.cover.check_invariants()


DynamicIndexMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None, derandomize=True
)
TestDynamicIndexes = DynamicIndexMachine.TestCase
