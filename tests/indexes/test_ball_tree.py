"""Ball-tree specifics beyond the shared protocol suite."""

import numpy as np
import pytest

from repro.indexes import BallTreeIndex, IndexCapabilityError, LinearScanIndex


class TestStructure:
    def test_ball_radii_cover_subtrees(self, small_gaussian):
        index = BallTreeIndex(small_gaussian, leaf_size=8)

        def collect(node):
            if node.is_leaf:
                return list(node.point_ids)
            return collect(node.left) + collect(node.right)

        stack = [index._root]
        while stack:
            node = stack.pop()
            ids = np.asarray(collect(node), dtype=np.intp)
            dists = index.metric.to_point(small_gaussian[ids], node.centroid)
            assert float(dists.max()) <= node.radius + 1e-9
            if not node.is_leaf:
                stack.extend([node.left, node.right])

    def test_duplicate_heavy_data_builds(self, duplicated_points):
        index = BallTreeIndex(duplicated_points)
        seen = [pid for pid, _ in index.iter_neighbors(duplicated_points[0])]
        assert sorted(seen) == list(range(len(duplicated_points)))

    def test_all_identical_points(self):
        index = BallTreeIndex(np.ones((40, 3)))
        ids, dists = index.knn(np.ones(3), 5)
        assert len(ids) == 5 and np.allclose(dists, 0.0)


class TestCapabilities:
    def test_insert_refused(self, small_gaussian):
        index = BallTreeIndex(small_gaussian[:20])
        with pytest.raises(IndexCapabilityError):
            index.insert(np.zeros(small_gaussian.shape[1]))

    def test_lazy_removal(self, small_gaussian):
        index = BallTreeIndex(small_gaussian)
        index.remove(5)
        reference = LinearScanIndex(small_gaussian)
        reference.remove(5)
        q = small_gaussian[5]
        _, got = index.knn(q, 8)
        _, expected = reference.knn(q, 8)
        assert np.allclose(np.sort(got), np.sort(expected))
        assert 5 not in [pid for pid, _ in index.iter_neighbors(q)]


class TestWithRDT:
    def test_rdt_exact_over_ball_tree(self, small_gaussian, naive_k5):
        from repro.core import RDT

        rdt = RDT(BallTreeIndex(small_gaussian))
        for qi in [0, 150, 299]:
            expected = set(naive_k5.query_ids(query_index=qi).tolist())
            got = set(rdt.query(query_index=qi, k=5, t=100.0).ids.tolist())
            assert got == expected
