"""Tests for the paper-dataset stand-ins."""

import numpy as np
import pytest

from repro.datasets import DATASET_SPECS, load_standin
from repro.lid import estimate_id_mle

ALL_NAMES = sorted(DATASET_SPECS)


class TestLoader:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_default_shapes_match_specs(self, name):
        spec = DATASET_SPECS[name]
        data = load_standin(name, n=500)
        assert data.shape == (500, spec.default_dim)

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_deterministic_per_seed(self, name):
        a = load_standin(name, n=200, seed=5)
        b = load_standin(name, n=200, seed=5)
        assert np.array_equal(a, b)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_standin("imagenet22k")

    def test_finite_everywhere(self):
        for name in ALL_NAMES:
            assert np.isfinite(load_standin(name, n=300)).all()


class TestSpecs:
    def test_paper_metadata_present(self):
        spec = DATASET_SPECS["sequoia"]
        assert spec.paper_n == 62_174
        assert spec.paper_dim == 2

    def test_all_specs_have_loaders(self):
        for name in ALL_NAMES:
            assert load_standin(name, n=50).shape[0] == 50


class TestGeometry:
    def test_sequoia_is_2d(self):
        assert load_standin("sequoia", n=300).shape[1] == 2

    def test_fct_is_standardized(self):
        data = load_standin("fct", n=2000)
        assert np.allclose(data.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(data.std(axis=0), 1.0, atol=1e-6)

    def test_id_ordering_matches_paper(self):
        """Table 1's cross-dataset ordering: sequoia lowest, mnist highest."""
        ids = {
            name: estimate_id_mle(load_standin(name, n=1500), k=50)
            for name in ("sequoia", "fct", "mnist")
        }
        assert ids["sequoia"] < ids["fct"] < ids["mnist"]

    def test_sequoia_id_near_paper_value(self):
        estimate = estimate_id_mle(load_standin("sequoia", n=2000), k=100)
        assert 1.4 <= estimate <= 2.6  # paper: 1.84

    def test_imagenet_dim_configurable(self):
        data = load_standin("imagenet", n=200, dim=64)
        assert data.shape == (200, 64)
