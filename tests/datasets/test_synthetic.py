"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    clustered_manifolds,
    embedded_manifold,
    gaussian_blob,
    gaussian_mixture,
    swiss_roll,
    uniform_hypercube,
)
from repro.lid import estimate_id_mle


class TestShapesAndDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: uniform_hypercube(120, 3, seed=seed),
            lambda seed: gaussian_blob(120, 3, seed=seed),
            lambda seed: gaussian_mixture(120, 3, n_clusters=4, seed=seed),
            lambda seed: embedded_manifold(120, 10, 3, seed=seed),
            lambda seed: swiss_roll(120, seed=seed),
            lambda seed: clustered_manifolds(120, 10, 4, 2, seed=seed),
        ],
        ids=["cube", "blob", "mixture", "manifold", "swiss", "clustered"],
    )
    def test_shape_and_seed_determinism(self, factory):
        a = factory(7)
        b = factory(7)
        c = factory(8)
        assert a.shape[0] == 120
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_sizes_exact_under_uneven_division(self):
        data = clustered_manifolds(101, 8, 7, 2, seed=0)
        assert data.shape == (101, 8)
        data = gaussian_mixture(101, 4, n_clusters=7, seed=0)
        assert data.shape == (101, 4)


class TestValidation:
    def test_manifold_dim_bound(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            embedded_manifold(10, 3, 5)

    def test_swiss_roll_needs_3d(self):
        with pytest.raises(ValueError, match="ambient_dim"):
            swiss_roll(10, ambient_dim=2)

    def test_mixture_weights_validated(self):
        with pytest.raises(ValueError, match="weights"):
            gaussian_mixture(10, 2, n_clusters=3, weights=[0.5, 0.5])

    def test_positive_counts_required(self):
        with pytest.raises(ValueError):
            uniform_hypercube(0, 2)
        with pytest.raises(ValueError):
            gaussian_blob(10, 0)


class TestIntrinsicDimensionControl:
    def test_manifold_id_tracks_parameter(self):
        low = embedded_manifold(2500, 32, 2, noise=0.0, seed=0)
        high = embedded_manifold(2500, 32, 8, noise=0.0, seed=0)
        assert estimate_id_mle(low, k=50) < estimate_id_mle(high, k=50)

    def test_ambient_dim_does_not_leak(self):
        narrow = embedded_manifold(2000, 8, 3, noise=0.0, seed=1)
        wide = embedded_manifold(2000, 128, 3, noise=0.0, seed=1)
        a, b = estimate_id_mle(narrow, k=50), estimate_id_mle(wide, k=50)
        assert abs(a - b) < 1.0

    def test_swiss_roll_is_two_dimensional(self):
        data = swiss_roll(3000, noise=0.0, seed=0)
        assert estimate_id_mle(data, k=50) == pytest.approx(2.0, rel=0.2)

    def test_heavy_tailed_latents(self):
        data = embedded_manifold(500, 16, 4, heavy_tailed=True, seed=0)
        assert np.isfinite(data).all()

    def test_mixture_imbalance_respected(self):
        data = gaussian_mixture(
            5000,
            2,
            n_clusters=2,
            separation=50.0,
            weights=[0.9, 0.1],
            seed=0,
        )
        # With separation >> spread the two clusters are separable by the
        # widest gap along the first coordinate; check the 90/10 split.
        xs = np.sort(data[:, 0])
        gap_at = int(np.argmax(np.diff(xs)))
        share = max(gap_at + 1, 5000 - gap_at - 1) / 5000
        assert 0.85 < share < 0.95
