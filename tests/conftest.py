"""Shared fixtures for the test suite.

Datasets are module-scoped: building ground truth is O(n^2) and the same
few point sets serve many tests.  Sizes are chosen so the full suite stays
fast while still exercising multi-level tree structures (several hundred
points force real node splits at the default capacities).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.baselines import NaiveRkNN
from repro.datasets import gaussian_mixture, uniform_hypercube

# Property tests must behave identically on every run (no fresh random
# examples in CI): derandomize, and disable wall-clock deadlines — numpy
# kernels have high first-call variance.
settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(20170707)


@pytest.fixture(scope="module")
def small_gaussian():
    """300 x 4 standard Gaussian points (no duplicate distances)."""
    return np.random.default_rng(1).normal(size=(300, 4))


@pytest.fixture(scope="module")
def medium_mixture():
    """800 x 6 imbalanced Gaussian mixture (clustered, varied density)."""
    return gaussian_mixture(
        800,
        dim=6,
        n_clusters=5,
        separation=6.0,
        spread=1.0,
        weights=np.array([0.4, 0.3, 0.15, 0.1, 0.05]),
        seed=2,
    )


@pytest.fixture(scope="module")
def tiny_plane():
    """60 x 2 uniform points — small enough for exhaustive checks."""
    return uniform_hypercube(60, 2, seed=3)


@pytest.fixture(scope="module")
def duplicated_points():
    """Points with exact duplicates and tie-heavy structure (integer grid)."""
    rng = np.random.default_rng(4)
    grid = rng.integers(0, 4, size=(120, 3)).astype(np.float64)
    return grid


@pytest.fixture(scope="module")
def naive_k5(small_gaussian):
    return NaiveRkNN(small_gaussian, k=5)


@pytest.fixture(scope="module")
def naive_k10_mixture(medium_mixture):
    return NaiveRkNN(medium_mixture, k=10)
