"""Unit and property tests for the metric abstraction.

The RDT analysis requires genuine metrics (triangle inequality), and the
tolerance policy requires that single-pair and batched kernels agree to the
last few ulps; both are checked here with hypothesis.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distances import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    MinkowskiMetric,
    get_metric,
)

ALL_METRICS = [
    EuclideanMetric(),
    ManhattanMetric(),
    ChebyshevMetric(),
    MinkowskiMetric(p=3.0),
]

finite_points = arrays(
    np.float64,
    st.integers(min_value=1, max_value=6),
    elements=st.floats(min_value=-100, max_value=100),
)


def paired_points():
    """Three points of a shared dimension."""
    return st.integers(min_value=1, max_value=6).flatmap(
        lambda d: st.tuples(
            *(
                arrays(
                    np.float64, d, elements=st.floats(min_value=-100, max_value=100)
                )
                for _ in range(3)
            )
        )
    )


class TestRegistry:
    def test_default_is_euclidean(self):
        assert isinstance(get_metric(None), EuclideanMetric)

    def test_instance_passthrough(self):
        metric = ManhattanMetric()
        assert get_metric(metric) is metric

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("euclidean", EuclideanMetric),
            ("l2", EuclideanMetric),
            ("manhattan", ManhattanMetric),
            ("cityblock", ManhattanMetric),
            ("chebyshev", ChebyshevMetric),
            ("linf", ChebyshevMetric),
        ],
    )
    def test_names(self, name, cls):
        assert isinstance(get_metric(name), cls)

    def test_minkowski_with_p(self):
        metric = get_metric("minkowski", p=4)
        assert isinstance(metric, MinkowskiMetric)
        assert metric.p == 4.0

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="Unknown metric"):
            get_metric("cosine")

    def test_minkowski_rejects_p_below_one(self):
        with pytest.raises(ValueError):
            MinkowskiMetric(p=0.5)


class TestKnownValues:
    def test_euclidean(self):
        assert EuclideanMetric().distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_manhattan(self):
        assert ManhattanMetric().distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_chebyshev(self):
        assert ChebyshevMetric().distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_minkowski_p3(self):
        expected = (3**3 + 4**3) ** (1 / 3)
        assert MinkowskiMetric(3).distance([0, 0], [3, 4]) == pytest.approx(expected)

    def test_minkowski_p2_matches_euclidean(self):
        x, y = np.array([1.0, 2.0, 3.0]), np.array([-1.0, 0.5, 9.0])
        assert MinkowskiMetric(2).distance(x, y) == pytest.approx(
            EuclideanMetric().distance(x, y)
        )


@pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
class TestMetricAxioms:
    @settings(max_examples=50, deadline=None)
    @given(data=paired_points())
    def test_triangle_inequality(self, metric, data):
        x, y, z = data
        assert metric.distance(x, z) <= (
            metric.distance(x, y) + metric.distance(y, z) + 1e-9
        )

    @settings(max_examples=50, deadline=None)
    @given(data=paired_points())
    def test_symmetry(self, metric, data):
        x, y, _ = data
        assert metric.distance(x, y) == pytest.approx(metric.distance(y, x))

    @settings(max_examples=25, deadline=None)
    @given(point=finite_points)
    def test_identity(self, metric, point):
        assert metric.distance(point, point) == 0.0


@pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
class TestKernelConsistency:
    def test_pairwise_matches_to_point(self, metric):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 5))
        Y = rng.normal(size=(7, 5))
        full = metric.pairwise(X, Y)
        for j in range(Y.shape[0]):
            assert np.allclose(full[:, j], metric.to_point(X, Y[j]), rtol=1e-9)

    def test_distance_matches_to_point_exactly(self, metric):
        # The tolerance policy relies on these using the same kernel.
        rng = np.random.default_rng(1)
        X = rng.normal(size=(10, 4))
        y = rng.normal(size=4)
        batch = metric.to_point(X, y)
        singles = np.array([metric.distance(x, y) for x in X])
        assert np.array_equal(batch, singles)

    def test_pairwise_self_diagonal_zero(self, metric):
        X = np.random.default_rng(2).normal(size=(15, 3))
        d = metric.pairwise(X)
        assert np.allclose(np.diag(d), 0.0, atol=1e-7)

    def test_to_point_sets_matches_scalar_kernel(self, metric):
        # Row-wise candidate stacks: D[i, j] == distance(X[i], Ys[i, j]).
        rng = np.random.default_rng(3)
        X = rng.normal(size=(6, 4))
        Ys = rng.normal(size=(6, 9, 4))
        D = metric.to_point_sets(X, Ys)
        assert D.shape == (6, 9)
        for i in range(6):
            for j in range(9):
                assert D[i, j] == pytest.approx(
                    metric.distance(X[i], Ys[i, j]), rel=1e-12
                )

    def test_to_point_sets_counts_calls(self, metric):
        rng = np.random.default_rng(4)
        metric.reset_counter()
        metric.to_point_sets(rng.normal(size=(3, 2)), rng.normal(size=(3, 5, 2)))
        assert metric.num_calls == 15


class TestCallCounter:
    def test_counts_scalar_distances(self):
        metric = EuclideanMetric()
        metric.distance([0.0], [1.0])
        assert metric.num_calls == 1
        metric.to_point(np.zeros((5, 1)), np.ones(1))
        assert metric.num_calls == 6
        metric.pairwise(np.zeros((3, 1)), np.zeros((4, 1)))
        assert metric.num_calls == 6 + 12

    def test_reset(self):
        metric = EuclideanMetric()
        metric.distance([0.0], [1.0])
        metric.reset_counter()
        assert metric.num_calls == 0


class TestBaseClass:
    def test_abstract_kernel_raises(self):
        with pytest.raises(NotImplementedError):
            Metric().distance([0.0], [1.0])
