"""Float32 conformance against the float64 brute-force boundary.

Float32 storage quantizes coordinates at build time, so the reference
truth is the float64 brute force over the *quantized* dataset.  The
library's stated float32 contract (``repro.utils.tolerance``) is that
distance decisions are exact outside the wide tolerance band
``FLOAT32_DIST_RTOL * d + FLOAT32_DIST_ATOL``; inside it, reduced
precision may legitimately flip a membership.  The sweep therefore
asserts that every disagreement with the float64 truth lies within the
band — on the same adversarial shapes as the float64 oracle (ties,
duplicates, catastrophic offsets, 1-d, removal churn).
"""

import numpy as np
import pytest

from repro.baselines import NaiveRkNN
from repro.core import RDT
from repro.distances import EuclideanMetric
from repro.indexes import create_index
from repro.utils.tolerance import FLOAT32_DIST_ATOL, FLOAT32_DIST_RTOL

#: Exhaustive regime: the filter retrieves everything, refinement decides
#: (same argument as the float64 oracle's module docstring).
T_EXACT = 1e30
K = 5

BACKENDS = ("linear-scan", "kd-tree", "ball-tree")


def _gaussian(rng):
    return rng.normal(size=(120, 4)), []


def _tie_rich(rng):
    return rng.integers(0, 3, size=(110, 3)).astype(np.float64), []


def _exact_duplicates(rng):
    base = rng.normal(size=(40, 3))
    reps = rng.integers(2, 5, size=40)
    return np.repeat(base, reps, axis=0), []


def _post_removal_churn(rng):
    base = rng.normal(size=(50, 3))
    data = np.repeat(base, 3, axis=0)
    remove = rng.choice(data.shape[0], size=45, replace=False)
    return data, remove.tolist()


def _offset_1e6(rng):
    return rng.normal(size=(120, 4)) + 1e6, []


def _d1(rng):
    values = rng.normal(size=(90, 1))
    values[::7] = values[0]
    return values, []


WORKLOADS = {
    "gaussian": _gaussian,
    "tie-rich": _tie_rich,
    "exact-duplicates": _exact_duplicates,
    "post-removal-churn": _post_removal_churn,
    "offset-1e6": _offset_1e6,
    "d1": _d1,
}

_cache: dict[str, tuple] = {}


def _workload(name):
    """Quantized data, removals, and float64 truth + margins per query."""
    if name not in _cache:
        rng = np.random.default_rng(
            np.frombuffer(name.encode().ljust(8, b"x")[:8], dtype=np.uint32)
        )
        raw, remove_ids = WORKLOADS[name](rng)
        # Quantize exactly as float32 storage will, then reason in float64.
        data = raw.astype(np.float32).astype(np.float64)
        mask = np.ones(data.shape[0], dtype=bool)
        mask[np.asarray(remove_ids, dtype=np.intp)] = False
        active = np.flatnonzero(mask)
        live = data[active]
        naive = NaiveRkNN(live, k=K)
        truth = {
            int(active[local]): set(
                active[naive.query_ids(query_index=local)].tolist()
            )
            for local in range(active.shape[0])
        }
        # Exact float64 geometry for the band check: d(q, x) and d_k(x).
        diff = live[:, None, :] - live[None, :, :]
        dists = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        np.fill_diagonal(dists, np.inf)  # self never witnesses
        dk = np.partition(dists, K - 1, axis=1)[:, K - 1]
        _cache[name] = (data, remove_ids, active, truth, dists, dk)
    return _cache[name]


def _margin_ok(name, query_id, point_id):
    """Whether (query, point) lies inside the float32 tolerance band."""
    data, remove_ids, active, truth, dists, dk = _workload(name)
    lookup = {int(g): i for i, g in enumerate(active)}
    qi, xi = lookup[query_id], lookup[point_id]
    d, bound = dists[xi, qi], dk[xi]
    band = 2.0 * (FLOAT32_DIST_RTOL * max(d, bound) + FLOAT32_DIST_ATOL)
    return abs(d - bound) <= band


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize("backend", BACKENDS)
def test_float32_engine_matches_truth_outside_the_band(
    backend, workload_name
):
    data, remove_ids, active, truth, dists, dk = _workload(workload_name)
    index = create_index(
        backend, data, metric=EuclideanMetric(dtype=np.float32)
    )
    if remove_ids and not index.supports_remove:
        pytest.skip(f"{backend} does not support remove")
    for point_id in remove_ids:
        index.remove(int(point_id))
    rdt = RDT(index)

    results = rdt.query_all(k=K, t=T_EXACT)
    assert set(results) == {int(i) for i in active}
    for query_id, result in results.items():
        got = set(result.ids.tolist())
        for point_id in got ^ truth[query_id]:
            assert _margin_ok(workload_name, query_id, point_id), (
                f"float32 {backend} differs from the float64 boundary "
                f"outside the tolerance band on {workload_name!r}: "
                f"query {query_id}, point {point_id}"
            )


@pytest.mark.parametrize("backend", BACKENDS)
def test_float32_matches_truth_exactly_on_comfortable_margins(backend):
    """Queries whose every membership margin clears the band must
    reproduce the float64 answer id-for-id (most of the gaussian sweep)."""
    name = "gaussian"
    data, remove_ids, active, truth, dists, dk = _workload(name)
    band = FLOAT32_DIST_RTOL * np.maximum(dists, dk[:, None]) + (
        FLOAT32_DIST_ATOL
    )
    tight = np.isfinite(dists) & (
        np.abs(dists - dk[:, None]) <= 2.0 * band
    )  # (point, query); the inf diagonal is a self-pair, never a member
    comfortable = {
        int(active[qi])
        for qi in range(active.shape[0])
        if not tight[:, qi].any()
    }
    assert len(comfortable) > active.shape[0] // 4, (
        "seed leaves too few band-free queries to be a meaningful check"
    )
    index = create_index(
        backend, data, metric=EuclideanMetric(dtype=np.float32)
    )
    results = RDT(index).query_all(k=K, t=T_EXACT)
    for query_id in comfortable:
        assert set(results[query_id].ids.tolist()) == truth[query_id]


def test_float32_storage_halves_the_matrix():
    rng = np.random.default_rng(3)
    pts = rng.normal(size=(512, 8))
    f64 = create_index("kd-tree", pts)
    f32 = create_index(
        "kd-tree", pts, metric=EuclideanMetric(dtype=np.float32)
    )
    assert f32.points.nbytes * 2 == f64.points.nbytes
