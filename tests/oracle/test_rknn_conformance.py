"""Randomized brute-force oracle: the library-wide conformance backstop.

Every engine path — each registry backend, looped and batched execution,
bulk- and insert-built trees — must agree with the brute-force reference
(:mod:`repro.baselines.naive`) on RkNN membership, on seeded *adversarial*
workloads: tie-rich grids, exact duplicates, post-removal churn, far-from-
origin offsets, one-dimensional and near-degenerate data.  Feature tests
pin kernel-level details (bit-identical ties, stats attribution); this
module pins the one thing every past and future execution strategy must
preserve — the answer — in a single parametrized sweep, so a new backend
or engine is conformance-tested by adding one entry, not a test file.

Exactness argument for the RDT side: the scale parameter is set to
``T_EXACT = 1e30``, for which ``(s/k')^(1/t)`` rounds to exactly 1.0 in
float64, so the omega bound never tightens and the rank cap equals ``n``
(``DimensionalTest`` treats t > 60 that way) — the filter provably
retrieves *every* active point and the refinement decides membership
exactly.  This holds on any data, including near-degenerate sets whose
generalized expansion dimension exceeds any practical ``t`` (where merely
"large" values like t=100 do miss members — that is a property of the
algorithm, not a bug, which is why the oracle pins the exhaustive
regime).

The same workloads serve as the recall/precision oracle for the
approximate subsystem (:mod:`repro.approx`): the sampled estimator's
shortlist bound makes ``recall == 1`` a *deterministic* guarantee, and
the LSH filter's verify-everything design makes ``precision == 1`` one;
both are asserted exactly here, per workload.
"""

import numpy as np
import pytest

from repro.approx import ApproxRkNN
from repro.baselines import NaiveRkNN
from repro.core import RDT, RkNNEngine
from repro.core.result import RkNNResult
from repro.engines import ENGINE_REGISTRY
from repro.evaluation.metrics import precision as precision_metric
from repro.evaluation.metrics import recall as recall_metric
from repro.evaluation.precompute import INSERT_PATH_FLAGS
from repro.indexes import INDEX_REGISTRY, build_index
from repro.service import QuerySpec, Service

#: Scale parameter in the provably exhaustive regime (see module docstring).
T_EXACT = 1e30
K = 5
#: Every N-th active point is additionally queried through the looped path.
LOOP_STRIDE = 17


def _gaussian(rng):
    return rng.normal(size=(120, 4)), []


def _tie_rich(rng):
    """Integer grid: almost every distance is shared by many pairs."""
    return rng.integers(0, 3, size=(110, 3)).astype(np.float64), []


def _exact_duplicates(rng):
    """Every point appears 2-4 times; duplicate groups straddle answers."""
    base = rng.normal(size=(40, 3))
    reps = rng.integers(2, 5, size=40)
    return np.repeat(base, reps, axis=0), []


def _post_removal_churn(rng):
    """Duplicates + scattered removals, including partial duplicate groups."""
    base = rng.normal(size=(50, 3))
    data = np.repeat(base, 3, axis=0)
    remove = rng.choice(data.shape[0], size=45, replace=False)
    return data, remove.tolist()


def _offset_1e6(rng):
    """Small spread far from the origin: kernel-cancellation territory."""
    return rng.normal(size=(120, 4)) + 1e6, []


def _d1(rng):
    """One-dimensional data with repeats — degenerate split geometry."""
    values = rng.normal(size=(90, 1))
    values[::7] = values[0]
    return values, []


def _near_degenerate(rng):
    """A 1e-5-wide cluster plus far outliers: the expansion-dimension
    blow-up shape that defeats any merely 'large' t (see docstring).

    The cluster scale stays above the tolerance slack (1e-9 relative) on
    purpose: below it, *true* distance gaps fall inside the tolerance
    band and the strict witness rules provably diverge from the tolerant
    brute-force boundary — outside the library's stated domain
    (DESIGN.md tolerance policy)."""
    cluster = rng.normal(scale=1e-5, size=(100, 3))
    outliers = rng.normal(size=(8, 3)) + 2.0
    return np.vstack([cluster, outliers]), []


WORKLOADS = {
    "gaussian": _gaussian,
    "tie-rich": _tie_rich,
    "exact-duplicates": _exact_duplicates,
    "post-removal-churn": _post_removal_churn,
    "offset-1e6": _offset_1e6,
    "d1": _d1,
    "near-degenerate": _near_degenerate,
}

#: (backend, constructor flags) — the bulk default plus every retained
#: insert-loop construction path.
BUILD_PATHS = [(name, {}) for name in sorted(INDEX_REGISTRY)] + [
    (name, dict(flags)) for name, flags in sorted(INSERT_PATH_FLAGS.items())
]

_truth_cache: dict[str, tuple] = {}


def _workload(name):
    """Deterministic (data, remove_ids, active, truth) per workload."""
    if name not in _truth_cache:
        # Seed derived from the workload name only — stable across runs
        # and interpreter sessions (unlike built-in hash()).
        rng = np.random.default_rng(
            np.frombuffer(name.encode().ljust(8, b"x")[:8], dtype=np.uint32)
        )
        data, remove_ids = WORKLOADS[name](rng)
        mask = np.ones(data.shape[0], dtype=bool)
        mask[np.asarray(remove_ids, dtype=np.intp)] = False
        active = np.flatnonzero(mask)
        naive = NaiveRkNN(data[active], k=K)
        truth = {
            int(active[local]): set(
                active[naive.query_ids(query_index=local)].tolist()
            )
            for local in range(active.shape[0])
        }
        _truth_cache[name] = (data, remove_ids, active, truth)
    return _truth_cache[name]


def _build(backend, flags, name):
    data, remove_ids, active, truth = _workload(name)
    index = build_index(backend, data, **flags)
    if remove_ids and not index.supports_remove:
        pytest.skip(f"{backend} does not support remove")
    for point_id in remove_ids:
        index.remove(int(point_id))
    return index, active, truth


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
@pytest.mark.parametrize(
    "backend,flags",
    BUILD_PATHS,
    ids=[
        name + ("[insert]" if flags else "")
        for name, flags in BUILD_PATHS
    ],
)
def test_backend_agrees_with_brute_force(backend, flags, workload_name):
    index, active, truth = _build(backend, flags, workload_name)
    rdt = RDT(index)

    batched = rdt.query_all(k=K, t=T_EXACT)
    assert set(batched) == {int(i) for i in active}
    for point_id, result in batched.items():
        assert set(result.ids.tolist()) == truth[point_id], (
            f"batched {backend}{'[insert]' if flags else ''} disagrees with "
            f"brute force on workload {workload_name!r}, query {point_id}"
        )

    # Looped single-query path on a stride of the same workload.
    for point_id in active[::LOOP_STRIDE]:
        result = rdt.query(query_index=int(point_id), k=K, t=T_EXACT)
        assert set(result.ids.tolist()) == truth[int(point_id)], (
            f"looped {backend} disagrees with brute force on workload "
            f"{workload_name!r}, query {int(point_id)}"
        )


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_rdt_plus_never_loses_members(workload_name):
    """RDT+ may lose precision (Section 4.3), never recall, in the
    exhaustive regime: the excluded candidates are provable non-members."""
    index, active, truth = _build("linear-scan", {}, workload_name)
    rdt_plus = RDT(index, variant="rdt+")
    for point_id, result in rdt_plus.query_all(k=K, t=T_EXACT).items():
        assert truth[point_id] <= set(result.ids.tolist())


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_sampled_strategy_has_exact_recall(workload_name):
    """The tentpole's recall oracle: the sampled estimator's upper-bound
    shortlist makes full recall deterministic on every workload shape."""
    index, active, truth = _build("linear-scan", {}, workload_name)
    engine = ApproxRkNN(index, "sampled", sample_size=48, seed=7)
    results = engine.query_all(k=K)
    for point_id, result in results.items():
        assert recall_metric(truth[point_id], result.ids) == 1.0


# ----------------------------------------------------------------------
# Registry-wide engine conformance, driven through the Service facade
# ----------------------------------------------------------------------

#: What each guarantee flag lets the oracle assert against the exact
#: reference set (every comparison in the exhaustive-t regime).
_GUARANTEE_CHECKS = {
    "exact": "equal",
    "scale-exact": "equal",      # t = T_EXACT dominates any expansion dim
    "scale-recall": "superset",  # RDT+ may lose precision, never recall
    "recall": "superset",
    "precision": "subset",
    "heuristic": "contract-only",
}

#: Every monochromatic registry engine is swept; the bichromatic engine
#: has no member self-join and gets its own contract test below.
ENGINE_ROSTER = sorted(name for name in ENGINE_REGISTRY if name != "bichromatic")

#: Workloads for the engine sweep: the plain shape, the tie-heavy shape,
#: and the churn shape (which additionally exercises the Service's id
#: translation for snapshot engines).
ENGINE_WORKLOADS = ("gaussian", "exact-duplicates", "post-removal-churn")


def _service_for(engine_name, workload_name):
    data, remove_ids, active, truth = _workload(workload_name)
    service = Service(
        data,
        backend="kd",
        engine=engine_name,
        defaults=QuerySpec(k=K, t=T_EXACT),
    )
    for point_id in remove_ids:
        service.remove(int(point_id))
    return service, active, truth


def _assert_result_contract(result, query_id, k):
    """The protocol's result contract, engine-independent."""
    assert isinstance(result, RkNNResult)
    ids = result.ids
    assert ids.dtype == np.intp
    assert np.all(np.diff(ids) > 0), "ids must be strictly ascending"
    assert query_id not in ids.tolist(), "a member is never its own answer"
    assert result.k == k
    assert result.stats.terminated_by != "unknown"


@pytest.mark.parametrize("workload_name", ENGINE_WORKLOADS)
@pytest.mark.parametrize("engine_name", ENGINE_ROSTER)
def test_engine_registry_conforms_to_oracle(engine_name, workload_name):
    """Every registry engine, built and queried through the Service
    facade, must honor both the protocol's result contract and whatever
    set relation its ``guarantee`` flag claims against brute force."""
    service, active, truth = _service_for(engine_name, workload_name)
    engine = service.engine()
    assert isinstance(engine, RkNNEngine)
    assert engine.engine_name == engine_name
    check = _GUARANTEE_CHECKS[engine.guarantee]

    results = service.query_all()
    assert set(results) == {int(i) for i in active}
    for point_id, result in results.items():
        _assert_result_contract(result, point_id, K)
        got = set(result.ids.tolist())
        assert got <= {int(i) for i in active}, "answers must be live ids"
        label = (
            f"{engine_name} ({check}) vs brute force, workload "
            f"{workload_name!r}, query {point_id}"
        )
        if check == "equal":
            assert got == truth[point_id], label
        elif check == "superset":
            assert truth[point_id] <= got, label
        elif check == "subset":
            assert got <= truth[point_id], label


def test_bichromatic_contract_through_service():
    """The bichromatic engine answers raw service locations only, through
    Service.query_bichromatic, and matches its brute-force reference."""
    from repro.core import bichromatic_brute_force

    rng = np.random.default_rng(11)
    services = rng.normal(size=(80, 3))
    clients = rng.normal(size=(60, 3))
    queries = rng.normal(size=(5, 3))
    service = Service(
        services, backend="kd", defaults=QuerySpec(k=3, t=T_EXACT)
    )
    results = service.query_bichromatic(queries, clients)
    assert len(results) == queries.shape[0]
    for row, result in enumerate(results):
        assert isinstance(result, RkNNResult)
        expected = bichromatic_brute_force(clients, services, queries[row], k=3)
        assert np.array_equal(result.ids, expected)
    single = service.query_bichromatic(queries[0], clients)
    assert np.array_equal(single.ids, results[0].ids)


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_lsh_strategy_has_exact_precision(workload_name):
    """The LSH filter verifies every candidate, so whatever it returns is
    a true reverse neighbor — on ties, duplicates, and offsets included."""
    index, active, truth = _build("linear-scan", {}, workload_name)
    engine = ApproxRkNN(index, "lsh", n_tables=4, seed=7)
    results = engine.query_all(k=K)
    for point_id, result in results.items():
        assert precision_metric(truth[point_id], result.ids) == 1.0


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_graph_strategy_has_exact_precision(workload_name):
    """The graph strategy also verifies every shortlisted candidate —
    precision is exactly 1 on every workload shape.  For k <= graph_m the
    reverse adjacency is additionally a *complete* shortlist up to
    k-th-distance ties, so on the tie-free workloads recall is 1 too."""
    index, active, truth = _build("linear-scan", {}, workload_name)
    engine = ApproxRkNN(index, "graph", graph_m=8, ef=32, seed=7)
    results = engine.query_all(k=K)
    for point_id, result in results.items():
        assert precision_metric(truth[point_id], result.ids) == 1.0
    if workload_name in ("gaussian", "offset-1e6", "near-degenerate"):
        for point_id, result in results.items():
            assert recall_metric(truth[point_id], result.ids) == 1.0


# ----------------------------------------------------------------------
# Multi-core execution conformance (repro.parallel)
# ----------------------------------------------------------------------
# Cross-process answers go through worker-side index rebuilds over
# shared-memory arrays; these sweeps pin that no adversarial shape and
# no worker/shard configuration can change a single id.

from repro.parallel import SHARD_STRATEGIES, ParallelExecutor, ShardedService  # noqa: E402

#: The adversarial subset of the workloads the parallel sweeps run
#: (the full matrix × pool setups would dominate the tier's runtime;
#: these four cover ties, duplicates, churn and kernel cancellation).
PARALLEL_WORKLOADS = (
    "tie-rich", "exact-duplicates", "post-removal-churn", "offset-1e6"
)


def _parallel_service(workload_name, engine_name):
    data, remove_ids, active, truth = _workload(workload_name)
    service = Service(
        data, backend="kd", engine=engine_name,
        defaults=QuerySpec(k=K, t=T_EXACT),
    )
    for point_id in remove_ids:
        service.remove(int(point_id))
    return service, active, truth


@pytest.mark.parametrize("workers", (1, 2, 4))
@pytest.mark.parametrize("workload_name", PARALLEL_WORKLOADS)
def test_parallel_executor_bit_matches_service(workload_name, workers):
    """Tier 1 (query-parallel): worker answers are the *same engine's*
    answers — fan-out must be invisible, bit for bit."""
    service, active, truth = _parallel_service(workload_name, "rdt+")
    expected = service.query_all()
    with ParallelExecutor(service, workers=workers) as executor:
        _, results = executor.query_all_versioned()
    assert set(results) == set(expected)
    for point_id, want in expected.items():
        assert np.array_equal(want.ids, results[point_id].ids), (
            f"workload {workload_name!r}, workers={workers}, "
            f"query {point_id}"
        )


@pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
@pytest.mark.parametrize("workload_name", PARALLEL_WORKLOADS)
def test_sharded_service_matches_brute_force(workload_name, strategy):
    """Tier 2 (data-parallel): the global verification merge makes the
    sharded answer exactly the brute-force membership on every shape."""
    service, active, truth = _parallel_service(workload_name, "rdt")
    with ShardedService(service, shards=3, strategy=strategy) as sharded:
        _, results = sharded.query_all_versioned()
    assert set(results) == {int(i) for i in active}
    for point_id, result in results.items():
        assert set(result.ids.tolist()) == truth[point_id], (
            f"workload {workload_name!r}, strategy {strategy!r}, "
            f"query {point_id}"
        )


@pytest.mark.parametrize("workload_name", PARALLEL_WORKLOADS)
def test_sharded_service_bit_matches_single_process(workload_name):
    """The acceptance pin: sharded query_all ids equal the single-process
    Service's on every oracle workload (exact-guarantee engine, so the
    single-process answer *is* the brute-force membership)."""
    service, active, truth = _parallel_service(workload_name, "rdt")
    expected = service.query_all()
    with ShardedService(service, shards=2) as sharded:
        _, results = sharded.query_all_versioned()
    for point_id, want in expected.items():
        assert np.array_equal(want.ids, results[point_id].ids), (
            f"workload {workload_name!r}, query {point_id}"
        )
