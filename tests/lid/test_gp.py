"""Tests for the Grassberger–Procaccia correlation-dimension estimator."""

import numpy as np
import pytest

from repro.datasets import uniform_hypercube
from repro.lid import correlation_integral, estimate_id_gp, pairwise_sample_distances


class TestCorrelationIntegral:
    def test_counts_fraction_below_radius(self):
        dists = np.array([0.1, 0.2, 0.3, 0.4])
        c = correlation_integral(dists, np.array([0.25]))
        assert c[0] == pytest.approx(0.5)

    def test_strictly_below(self):
        # Heaviside H(r - d) with H(0) = 1 means d < r counts; we use
        # side='left' searching, so d == r does not count.
        dists = np.array([0.5, 0.5])
        assert correlation_integral(dists, np.array([0.5]))[0] == 0.0

    def test_monotone_in_radius(self):
        rng = np.random.default_rng(0)
        dists = rng.uniform(size=500)
        radii = np.linspace(0.05, 1.0, 10)
        c = correlation_integral(dists, radii)
        assert np.all(np.diff(c) >= 0)


class TestPairwiseSample:
    def test_condensed_size(self):
        data = uniform_hypercube(50, 2, seed=0)
        dists = pairwise_sample_distances(data, sample_size=100)
        assert dists.shape == (50 * 49 // 2,)

    def test_sampling_caps_size(self):
        data = uniform_hypercube(500, 2, seed=0)
        dists = pairwise_sample_distances(data, sample_size=40)
        assert dists.shape == (40 * 39 // 2,)


class TestGPEstimates:
    @pytest.mark.parametrize("dim", [1, 2, 4])
    def test_recovers_hypercube_dimension(self, dim):
        data = uniform_hypercube(2500, dim, seed=dim)
        estimate = estimate_id_gp(data, sample_size=1500)
        assert estimate == pytest.approx(dim, rel=0.3)

    def test_degenerate_data_gives_nan(self):
        assert np.isnan(estimate_id_gp(np.zeros((100, 3))))

    def test_deterministic_under_seed(self):
        data = uniform_hypercube(800, 3, seed=0)
        assert estimate_id_gp(data, seed=3) == estimate_id_gp(data, seed=3)

    def test_scale_invariance(self):
        data = uniform_hypercube(1200, 3, seed=1)
        a = estimate_id_gp(data, seed=0)
        b = estimate_id_gp(data * 1000.0, seed=0)
        assert a == pytest.approx(b, rel=0.05)

    def test_n_radii_validated(self):
        with pytest.raises(ValueError):
            estimate_id_gp(uniform_hypercube(50, 2, seed=0), n_radii=0)
