"""Tests for the generalized expansion dimension and MaxGED."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lid import ged, max_ged, max_ged_for_query


class TestGed:
    def test_formula_by_hand(self):
        # Doubling the radius quadruples the count: dimension 2.
        assert ged(1.0, 4, 2.0, 16) == pytest.approx(2.0)

    def test_expansion_dimension_special_case(self):
        # Karger-Ruhl expansion: r2 = 2 r1; count ratio 2^d.
        assert ged(0.5, 3, 1.0, 24) == pytest.approx(3.0)

    def test_equal_counts_give_zero(self):
        assert ged(1.0, 5, 3.0, 5) == 0.0

    def test_invalid_radii(self):
        with pytest.raises(ValueError):
            ged(2.0, 1, 1.0, 2)
        with pytest.raises(ValueError):
            ged(0.0, 1, 1.0, 2)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            ged(1.0, 0, 2.0, 2)
        with pytest.raises(ValueError):
            ged(1.0, 5, 2.0, 4)


class TestMaxGed:
    def test_uniform_line_close_to_one(self):
        """Evenly spaced points on a line expand one-dimensionally."""
        data = np.linspace(0, 1, 200)[:, None]
        value = max_ged(data, k=5)
        # Boundary effects push above 1, but nowhere near 2.
        assert 0.9 <= value <= 2.0

    def test_hand_computed_tiny_case(self):
        # Points at 0, 1, 10 on a line; k=1.
        # Center 0: sorted dists [0, 1, 10]; d1=0 -> skipped (zero radius uses
        # next center logic), actually d_k with k=1 is 0 (self) -> contributes 0.
        # With k=2: center 0 has dk=1 (count 2), outer s=3: d=10 count 3:
        # ged = ln(3/2)/ln(10).
        data = np.array([[0.0], [1.0], [10.0]])
        expected_center0 = np.log(3 / 2) / np.log(10 / 1)
        # Center 1: dists sorted [0,1,9]: dk=1 count 2, outer d=9 count 3.
        expected_center1 = np.log(3 / 2) / np.log(9 / 1)
        # Center 10: dists [0,9,10]: dk=9 count 2, outer 10 count 3.
        expected_center2 = np.log(3 / 2) / np.log(10 / 9)
        expected = max(expected_center0, expected_center1, expected_center2)
        assert max_ged(data, k=2) == pytest.approx(expected)

    def test_ties_use_physical_counts(self):
        # Four corners of a square + center: ties everywhere must not crash
        # and counts must include all tied points.
        data = np.array([[0, 0], [1, 0], [0, 1], [1, 1], [0.5, 0.5]], dtype=float)
        value = max_ged(data, k=2)
        assert np.isfinite(value) and value >= 0

    def test_duplicates_handled(self):
        data = np.vstack([np.zeros((5, 2)), np.ones((5, 2)), np.eye(2) * 7])
        value = max_ged(data, k=2)
        assert np.isfinite(value)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            max_ged(np.zeros((5, 2)) + np.arange(5)[:, None], k=6)

    def test_query_augmentation(self):
        data = np.random.default_rng(0).normal(size=(50, 2))
        base = max_ged(data, k=3)
        outlier_query = np.array([100.0, 100.0])
        augmented = max_ged_for_query(data, outlier_query, k=3)
        # Adding a far outlier can only reveal more expansion, never less.
        assert augmented >= base - 1e-12

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_nonnegative_finite(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(rng.integers(5, 60), rng.integers(1, 4)))
        value = max_ged(data, k=2)
        assert np.isfinite(value) and value >= 0.0
