"""Tests for the Takens correlation-dimension estimator."""

import numpy as np
import pytest

from repro.datasets import uniform_hypercube
from repro.lid import estimate_id_takens, takens_from_distances


class TestTakensFromDistances:
    def test_closed_form_by_hand(self):
        dists = np.array([0.25, 0.5])
        expected = -1.0 / np.mean(np.log(dists / 1.0))
        assert takens_from_distances(dists, r=1.0) == pytest.approx(expected)

    def test_only_pairs_below_threshold_used(self):
        dists = np.array([0.25, 0.5, 5.0, 9.0])
        assert takens_from_distances(dists, r=1.0) == pytest.approx(
            takens_from_distances(np.array([0.25, 0.5]), r=1.0)
        )

    def test_power_law_recovery(self):
        rng = np.random.default_rng(2)
        for m in (2.0, 5.0):
            dists = rng.uniform(size=50_000) ** (1.0 / m)
            assert takens_from_distances(dists, r=1.0) == pytest.approx(m, rel=0.05)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError, match="positive"):
            takens_from_distances(np.array([0.1]), r=0.0)

    def test_degenerate_gives_nan(self):
        assert np.isnan(takens_from_distances(np.array([]), r=1.0))
        assert np.isnan(takens_from_distances(np.array([0.0, 0.0]), r=1.0))


class TestDatasetLevelTakens:
    @pytest.mark.parametrize("dim", [1, 2, 4])
    def test_recovers_hypercube_dimension(self, dim):
        data = uniform_hypercube(2500, dim, seed=dim)
        estimate = estimate_id_takens(data, sample_size=1500)
        assert estimate == pytest.approx(dim, rel=0.35)

    def test_r_quantile_validated(self):
        data = uniform_hypercube(100, 2, seed=0)
        with pytest.raises(ValueError, match="r_quantile"):
            estimate_id_takens(data, r_quantile=1.5)

    def test_degenerate_data_gives_nan(self):
        assert np.isnan(estimate_id_takens(np.zeros((100, 2))))

    def test_deterministic_under_seed(self):
        data = uniform_hypercube(700, 3, seed=0)
        assert estimate_id_takens(data, seed=1) == estimate_id_takens(data, seed=1)
