"""Tests for the estimator registry/dispatch."""

import pytest

from repro.datasets import uniform_hypercube
from repro.lid import ESTIMATORS, estimate_id


class TestDispatch:
    def test_registry_complete(self):
        assert set(ESTIMATORS) == {"mle", "gp", "takens"}

    @pytest.mark.parametrize("method", sorted(ESTIMATORS))
    def test_dispatch_matches_direct_call(self, method):
        data = uniform_hypercube(600, 3, seed=0)
        assert estimate_id(data, method=method, seed=1) == ESTIMATORS[method](
            data, seed=1
        )

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            estimate_id(uniform_hypercube(10, 2, seed=0), method="two-nn")

    def test_kwargs_forwarded(self):
        data = uniform_hypercube(800, 2, seed=0)
        a = estimate_id(data, method="mle", k=20, seed=0)
        b = estimate_id(data, method="mle", k=100, seed=0)
        assert a != b  # different neighborhood sizes, different estimates
