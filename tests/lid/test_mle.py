"""Tests for the Hill/MLE estimator of local intrinsic dimensionality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import uniform_hypercube
from repro.lid import estimate_id_mle, hill_estimator


class TestHillEstimator:
    def test_closed_form_by_hand(self):
        # distances d, w: ID = -1 / mean(ln(d_i / w))
        dists = np.array([0.5, 1.0, 2.0])
        expected = -1.0 / np.mean(np.log(dists / 2.0))
        assert hill_estimator(dists) == pytest.approx(expected)

    def test_explicit_w(self):
        dists = np.array([0.5, 1.0])
        expected = -1.0 / np.mean(np.log(dists / 4.0))
        assert hill_estimator(dists, w=4.0) == pytest.approx(expected)

    def test_scale_invariance(self):
        """LID is scale-free: multiplying all distances changes nothing."""
        rng = np.random.default_rng(0)
        dists = rng.uniform(0.1, 1.0, size=50)
        assert hill_estimator(dists) == pytest.approx(hill_estimator(dists * 37.0))

    def test_power_law_recovery(self):
        """Distances with F(r) ~ r^m give ID ~ m."""
        rng = np.random.default_rng(1)
        for m in (1.0, 3.0, 7.0):
            # Inverse-CDF sampling of r in (0, 1] with F(r) = r^m.
            dists = rng.uniform(size=20_000) ** (1.0 / m)
            assert hill_estimator(dists, w=1.0) == pytest.approx(m, rel=0.05)

    def test_zero_distances_dropped(self):
        dists = np.array([0.0, 0.0, 0.5, 1.0])
        expected = hill_estimator(np.array([0.5, 1.0]))
        assert hill_estimator(dists) == pytest.approx(expected)

    def test_degenerate_inputs_give_nan(self):
        assert np.isnan(hill_estimator(np.array([])))
        assert np.isnan(hill_estimator(np.array([0.0, 0.0])))
        assert np.isnan(hill_estimator(np.array([1.0, 1.0])))  # no growth info

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError, match="1-D"):
            hill_estimator(np.ones((3, 3)))

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=1e-6, max_value=1e6), min_size=3, max_size=100
        )
    )
    def test_property_positive_or_nan(self, dists):
        value = hill_estimator(np.asarray(dists))
        assert np.isnan(value) or value > 0


class TestDatasetLevelMLE:
    @pytest.mark.parametrize("dim", [1, 2, 5])
    def test_recovers_hypercube_dimension(self, dim):
        data = uniform_hypercube(3000, dim, seed=dim)
        estimate = estimate_id_mle(data, k=100, seed=0)
        assert estimate == pytest.approx(dim, rel=0.25)

    def test_representational_dim_irrelevant(self):
        """A 2-manifold in 30-D must read ~2, not ~30."""
        rng = np.random.default_rng(5)
        latent = rng.uniform(size=(2000, 2))
        basis, _ = np.linalg.qr(rng.normal(size=(30, 30)))
        data = latent @ basis[:2]
        assert estimate_id_mle(data, k=100) == pytest.approx(2.0, rel=0.25)

    def test_deterministic_under_seed(self):
        data = uniform_hypercube(800, 3, seed=0)
        assert estimate_id_mle(data, seed=7) == estimate_id_mle(data, seed=7)

    def test_all_duplicates_give_nan(self):
        assert np.isnan(estimate_id_mle(np.zeros((300, 4)), k=10))

    def test_k_clamped_to_dataset(self):
        data = uniform_hypercube(30, 2, seed=0)
        estimate = estimate_id_mle(data, k=100)  # k > n: clamp, don't raise
        assert np.isfinite(estimate)

    def test_rejects_tiny_neighborhoods(self):
        with pytest.raises(ValueError, match="at least 2"):
            estimate_id_mle(np.array([[0.0], [1.0]]), k=1)

    def test_sample_fraction_validated(self):
        data = uniform_hypercube(100, 2, seed=0)
        with pytest.raises(ValueError):
            estimate_id_mle(data, sample_fraction=0.0)
