"""Tests for the RdNN-tree query wrapper."""

import numpy as np
import pytest

from repro.baselines import NaiveRkNN, RdNN
from repro.indexes import LinearScanIndex, RdNNTreeIndex


@pytest.fixture(scope="module")
def rdnn_small(small_gaussian):
    return RdNN(RdNNTreeIndex(small_gaussian, k=5))


class TestExactness:
    def test_matches_naive(self, small_gaussian, rdnn_small, naive_k5):
        for qi in range(0, 300, 43):
            expected = set(naive_k5.query_ids(query_index=qi).tolist())
            got = set(rdnn_small.query(query_index=qi).ids.tolist())
            assert got == expected

    def test_external_queries(self, small_gaussian, rdnn_small, naive_k5, rng):
        q = rng.normal(size=small_gaussian.shape[1])
        assert set(rdnn_small.query(q).ids.tolist()) == set(
            naive_k5.query_ids(q).tolist()
        )

    def test_clustered_data(self, medium_mixture, naive_k10_mixture):
        rdnn = RdNN(RdNNTreeIndex(medium_mixture, k=10))
        for qi in [0, 400, 799]:
            expected = set(naive_k10_mixture.query_ids(query_index=qi).tolist())
            got = set(rdnn.query(query_index=qi).ids.tolist())
            assert got == expected


class TestFixedK:
    def test_defaults_to_tree_k(self, rdnn_small):
        assert rdnn_small.query(query_index=0).k == 5

    def test_other_k_rejected(self, rdnn_small):
        with pytest.raises(ValueError, match="precomputed for k=5"):
            rdnn_small.query(query_index=0, k=10)

    def test_matching_k_accepted(self, rdnn_small):
        assert rdnn_small.query(query_index=0, k=5).k == 5


class TestInterface:
    def test_requires_rdnn_index(self, small_gaussian):
        with pytest.raises(TypeError, match="RdNNTreeIndex"):
            RdNN(LinearScanIndex(small_gaussian))

    def test_requires_one_query_form(self, rdnn_small, small_gaussian):
        with pytest.raises(ValueError, match="exactly one"):
            rdnn_small.query(small_gaussian[0], query_index=0)
