"""Additional MRkNNCoP coverage: custom verify index, aggregation soundness."""

import math

import numpy as np
import pytest

from repro.baselines import MRkNNCoP, NaiveRkNN
from repro.indexes import CoverTreeIndex


class TestVerifyIndexParameter:
    def test_external_forward_index_for_refinement(self, small_gaussian):
        cop = MRkNNCoP(small_gaussian, k_max=20)
        cover = CoverTreeIndex(small_gaussian)
        naive = NaiveRkNN(small_gaussian, k=10)
        for qi in [0, 123]:
            expected = set(naive.query_ids(query_index=qi).tolist())
            got = set(
                cop.query(query_index=qi, k=10, verify_index=cover).ids.tolist()
            )
            assert got == expected


class TestAggregatedBounds:
    def test_node_coefficients_dominate_members(self, small_gaussian):
        """Every node's (slope, intercept) pair bounds all member lines on
        z = ln k >= 0 — the condition the subtree pruning relies on."""
        cop = MRkNNCoP(small_gaussian, k_max=20)

        def collect(node):
            ids = []
            stack = [node]
            while stack:
                current = stack.pop()
                for entry in current.entries:
                    if entry.is_leaf_entry:
                        ids.append(entry.center_id)
                    else:
                        stack.append(entry.child)
            return ids

        stack = [cop.tree.root]
        while stack:
            node = stack.pop()
            member_ids = collect(node)
            max_a = cop._node_max_slope[id(node)]
            max_b = cop._node_max_intercept[id(node)]
            for k in (1, 5, 20):
                z = math.log(k)
                node_bound = math.exp(max_a * z + max_b)
                for pid in member_ids:
                    assert node_bound >= cop.upper_bound(pid, k) * (1 - 1e-9)
            for entry in node.entries:
                if not entry.is_leaf_entry:
                    stack.append(entry.child)

    def test_per_object_bounds_bracket_true_distances(self, small_gaussian):
        from repro.indexes import bulk_knn

        cop = MRkNNCoP(small_gaussian, k_max=20)
        _, knn_dists = bulk_knn(small_gaussian, 20)
        for pid in range(0, 300, 50):
            for k in (1, 7, 20):
                true = knn_dists[pid, k - 1]
                assert cop.lower_bound(pid, k) <= true * (1 + 1e-9)
                assert cop.upper_bound(pid, k) >= true * (1 - 1e-9)
