"""Tests for the SFT baseline (Singh et al. 2003)."""

import numpy as np
import pytest

from repro.baselines import SFT, NaiveRkNN
from repro.evaluation.metrics import precision, recall
from repro.indexes import CoverTreeIndex, LinearScanIndex


@pytest.fixture(scope="module")
def sft_mixture(medium_mixture):
    return SFT(LinearScanIndex(medium_mixture))


class TestPrecision:
    def test_never_false_positives(self, sft_mixture, naive_k10_mixture):
        """Count range queries verify every reported point: precision 1."""
        for qi in range(0, 800, 100):
            truth = naive_k10_mixture.query_ids(query_index=qi)
            for alpha in (1.0, 2.0, 8.0):
                got = sft_mixture.query(query_index=qi, k=10, alpha=alpha).ids
                assert precision(truth, got) == 1.0


class TestRecall:
    def test_monotone_in_alpha(self, sft_mixture, naive_k10_mixture):
        means = []
        for alpha in (1.0, 4.0, 16.0):
            values = [
                recall(
                    naive_k10_mixture.query_ids(query_index=qi),
                    sft_mixture.query(query_index=qi, k=10, alpha=alpha).ids,
                )
                for qi in range(0, 800, 100)
            ]
            means.append(np.mean(values))
        assert means[0] <= means[1] + 0.05 and means[1] <= means[2] + 0.05

    def test_full_pool_is_exact(self, small_gaussian, naive_k5):
        """alpha*k >= n degenerates to an exact method."""
        sft = SFT(LinearScanIndex(small_gaussian))
        for qi in [0, 123, 299]:
            truth = set(naive_k5.query_ids(query_index=qi).tolist())
            got = set(
                sft.query(query_index=qi, k=5, alpha=len(small_gaussian)).ids.tolist()
            )
            assert got == truth

    def test_misses_only_high_forward_rank_members(
        self, medium_mixture, naive_k10_mixture, sft_mixture
    ):
        """SFT's misses are exactly the members outside the alpha*k pool."""
        qi, alpha, k = 40, 2.0, 10
        truth = set(naive_k10_mixture.query_ids(query_index=qi).tolist())
        got = set(sft_mixture.query(query_index=qi, k=k, alpha=alpha).ids.tolist())
        pool = int(np.ceil(alpha * k))
        dists = np.linalg.norm(medium_mixture - medium_mixture[qi], axis=1)
        order = np.argsort(dists)
        reachable = set(order[: pool + 1].tolist()) - {qi}
        assert truth & reachable <= got | (truth - reachable)
        assert truth - reachable == truth - got


class TestInterface:
    def test_alpha_below_one_rejected(self, sft_mixture):
        with pytest.raises(ValueError, match="alpha"):
            sft_mixture.query(query_index=0, k=5, alpha=0.5)

    def test_requires_one_query_form(self, sft_mixture, medium_mixture):
        with pytest.raises(ValueError, match="exactly one"):
            sft_mixture.query(medium_mixture[0], query_index=0, k=5)

    def test_external_queries(self, medium_mixture, sft_mixture, rng):
        q = rng.normal(size=medium_mixture.shape[1])
        result = sft_mixture.query(q, k=5, alpha=8.0)
        naive = NaiveRkNN(medium_mixture, k=5)
        assert precision(naive.query_ids(q), result.ids) == 1.0

    def test_stats_populated(self, sft_mixture):
        result = sft_mixture.query(query_index=0, k=10, alpha=4.0)
        s = result.stats
        assert s.num_candidates == 40
        assert s.num_lazy_rejects + s.num_verified == s.num_candidates

    def test_tree_backend(self, medium_mixture, naive_k10_mixture):
        sft = SFT(CoverTreeIndex(medium_mixture[:300]))
        naive = NaiveRkNN(medium_mixture[:300], k=5)
        truth = naive.query_ids(query_index=10)
        got = sft.query(query_index=10, k=5, alpha=60.0).ids
        assert recall(truth, got) == 1.0 and precision(truth, got) == 1.0
