"""Tests for the TPL baseline (Tao et al. 2004, k-trim flavour)."""

import numpy as np
import pytest

from repro.baselines import TPL, NaiveRkNN
from repro.distances import get_metric
from repro.indexes import LinearScanIndex, RStarTreeIndex


@pytest.fixture(scope="module")
def tpl_small(small_gaussian):
    return TPL(RStarTreeIndex(small_gaussian))


class TestExactness:
    @pytest.mark.parametrize("k", [1, 5, 15])
    def test_matches_naive(self, small_gaussian, tpl_small, k):
        naive = NaiveRkNN(small_gaussian, k=k)
        for qi in [0, 77, 299]:
            expected = set(naive.query_ids(query_index=qi).tolist())
            got = set(tpl_small.query(query_index=qi, k=k).ids.tolist())
            assert got == expected

    def test_low_dimensional_data(self, tiny_plane):
        tpl = TPL(RStarTreeIndex(tiny_plane, capacity=8))
        naive = NaiveRkNN(tiny_plane, k=3)
        for qi in range(0, 60, 12):
            expected = set(naive.query_ids(query_index=qi).tolist())
            got = set(tpl.query(query_index=qi, k=3).ids.tolist())
            assert got == expected

    def test_external_queries(self, small_gaussian, tpl_small, rng):
        naive = NaiveRkNN(small_gaussian, k=5)
        q = rng.normal(size=small_gaussian.shape[1])
        assert set(tpl_small.query(q, k=5).ids.tolist()) == set(
            naive.query_ids(q).tolist()
        )

    def test_duplicates(self, duplicated_points):
        tpl = TPL(RStarTreeIndex(duplicated_points, capacity=8))
        naive = NaiveRkNN(duplicated_points, k=4)
        expected = set(naive.query_ids(query_index=7).tolist())
        got = set(tpl.query(query_index=7, k=4).ids.tolist())
        assert got == expected

    def test_non_euclidean_metric_conservative_pruning(self, tiny_plane):
        metric = get_metric("manhattan")
        tpl = TPL(RStarTreeIndex(tiny_plane, metric=metric, capacity=8))
        naive = NaiveRkNN(tiny_plane, k=3, metric="manhattan")
        for qi in [0, 30, 59]:
            expected = set(naive.query_ids(query_index=qi).tolist())
            got = set(tpl.query(query_index=qi, k=3).ids.tolist())
            assert got == expected


class TestPruningBehaviour:
    def test_bisector_pruning_reduces_candidates(self, tiny_plane):
        """In 2-D the half-space tests must prune most of the dataset."""
        tpl = TPL(RStarTreeIndex(tiny_plane, capacity=8))
        result = tpl.query(query_index=5, k=2)
        assert result.stats.num_candidates < len(tiny_plane) / 2

    def test_trim_size_controls_cost_not_correctness(self, small_gaussian):
        naive = NaiveRkNN(small_gaussian, k=5)
        expected = set(naive.query_ids(query_index=11).tolist())
        for trim in (1, 5, 100):
            tpl = TPL(RStarTreeIndex(small_gaussian), trim_size=trim)
            got = set(tpl.query(query_index=11, k=5).ids.tolist())
            assert got == expected


class TestInterface:
    def test_requires_rstar_index(self, small_gaussian):
        with pytest.raises(TypeError, match="R\\*-tree"):
            TPL(LinearScanIndex(small_gaussian))

    def test_requires_one_query_form(self, tpl_small, small_gaussian):
        with pytest.raises(ValueError, match="exactly one"):
            tpl_small.query(small_gaussian[0], query_index=0, k=5)

    def test_stats_populated(self, tpl_small):
        result = tpl_small.query(query_index=0, k=5)
        s = result.stats
        assert s.num_retrieved > 0
        assert s.num_verified == s.num_candidates
