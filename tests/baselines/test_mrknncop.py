"""Tests for the MRkNNCoP baseline (Achtert et al. 2006)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import MRkNNCoP, NaiveRkNN, fit_log_bounds
from repro.indexes import bulk_knn


class TestLogBounds:
    def test_bounds_enclose_all_samples(self, small_gaussian):
        _, knn_dists = bulk_knn(small_gaussian, 20)
        ks = np.arange(1, 21)
        for row in knn_dists[:50]:
            a_u, b_u, a_l, b_l = fit_log_bounds(row)
            upper = np.exp(a_u * np.log(ks) + b_u)
            lower = np.exp(a_l * np.log(ks) + b_l)
            assert np.all(upper >= row * (1 - 1e-9))
            assert np.all(lower <= row * (1 + 1e-9))

    def test_single_k(self):
        a_u, b_u, a_l, b_l = fit_log_bounds(np.array([2.0]))
        assert np.exp(b_u) == pytest.approx(2.0)
        assert np.exp(b_l) == pytest.approx(2.0)

    def test_perfect_power_law_is_tight(self):
        ks = np.arange(1, 50, dtype=float)
        dists = 0.3 * ks ** (1 / 4)  # exact fractal model, dimension 4
        a_u, b_u, a_l, b_l = fit_log_bounds(dists)
        assert a_u == pytest.approx(1 / 4, rel=1e-6)
        assert b_u == pytest.approx(b_l, abs=1e-9)

    def test_zero_distances_safe(self):
        dists = np.array([0.0, 0.0, 1.0, 2.0])
        a_u, b_u, a_l, b_l = fit_log_bounds(dists)
        ks = np.arange(1, 5)
        upper = np.exp(a_u * np.log(ks) + b_u)
        assert np.all(upper >= dists - 1e-12)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 500), kmax=st.integers(2, 30))
    def test_property_bounds_valid(self, seed, kmax):
        rng = np.random.default_rng(seed)
        dists = np.sort(rng.uniform(0.01, 10.0, size=kmax))
        a_u, b_u, a_l, b_l = fit_log_bounds(dists)
        ks = np.arange(1, kmax + 1)
        upper = np.exp(a_u * np.log(ks) + b_u)
        lower = np.exp(a_l * np.log(ks) + b_l)
        assert np.all(upper >= dists * (1 - 1e-9))
        assert np.all(lower <= dists * (1 + 1e-9))


@pytest.fixture(scope="module")
def cop_small(small_gaussian):
    return MRkNNCoP(small_gaussian, k_max=30)


class TestExactness:
    @pytest.mark.parametrize("k", [1, 5, 15, 30])
    def test_matches_naive_all_k(self, small_gaussian, cop_small, k):
        naive = NaiveRkNN(small_gaussian, k=k)
        for qi in [0, 99, 200, 299]:
            expected = set(naive.query_ids(query_index=qi).tolist())
            got = set(cop_small.query(query_index=qi, k=k).ids.tolist())
            assert got == expected

    def test_clustered_data(self, medium_mixture):
        cop = MRkNNCoP(medium_mixture[:300], k_max=20)
        naive = NaiveRkNN(medium_mixture[:300], k=10)
        for qi in [0, 150, 299]:
            expected = set(naive.query_ids(query_index=qi).tolist())
            got = set(cop.query(query_index=qi, k=10).ids.tolist())
            assert got == expected

    def test_external_queries(self, small_gaussian, cop_small, rng):
        naive = NaiveRkNN(small_gaussian, k=10)
        q = rng.normal(size=small_gaussian.shape[1])
        assert set(cop_small.query(q, k=10).ids.tolist()) == set(
            naive.query_ids(q).tolist()
        )

    def test_lazy_accepts_are_true_hits(self, small_gaussian, cop_small):
        naive = NaiveRkNN(small_gaussian, k=10)
        for qi in [5, 50]:
            truth = set(naive.query_ids(query_index=qi).tolist())
            result = cop_small.query(query_index=qi, k=10)
            assert set(result.lazy_accepted_ids.tolist()) <= truth


class TestCostProfile:
    def test_verification_far_below_candidates(self, cop_small):
        """The model prunes most points without a kNN query."""
        result = cop_small.query(query_index=0, k=10)
        assert result.stats.num_verified < 0.25 * len(cop_small.points)

    def test_preprocessing_time_recorded(self, cop_small):
        assert cop_small.preprocessing_seconds > 0.0
        assert cop_small._knn_table_seconds <= cop_small.preprocessing_seconds


class TestInterface:
    def test_k_beyond_kmax_rejected(self, cop_small):
        with pytest.raises(ValueError, match="exceeds"):
            cop_small.query(query_index=0, k=31)

    def test_requires_one_query_form(self, cop_small, small_gaussian):
        with pytest.raises(ValueError, match="exactly one"):
            cop_small.query(small_gaussian[0], query_index=0, k=5)

    def test_duplicates(self, duplicated_points):
        cop = MRkNNCoP(duplicated_points, k_max=10)
        naive = NaiveRkNN(duplicated_points, k=5)
        expected = set(naive.query_ids(query_index=0).tolist())
        got = set(cop.query(query_index=0, k=5).ids.tolist())
        assert got == expected
