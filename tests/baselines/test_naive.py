"""Tests for the brute-force reference: these pin the library's semantics."""

import numpy as np
import pytest

from repro.baselines import NaiveRkNN, rknn_brute_force


class TestDefinition:
    def test_line_example_by_hand(self):
        # Points 0, 1, 3, 7 on a line, k=1.
        points = np.array([[0.0], [1.0], [3.0], [7.0]])
        naive = NaiveRkNN(points, k=1)
        # Query at index 1 (x=1): who has x=1 as their single nearest other?
        # p0: d(p0,q)=1, d1(p0)=1 (p1 is its NN) -> boundary tie, included.
        # p2: d=2, 1NN dist of p2 is 2 (to p1) -> included (tie).
        # p3: d=6, 1NN dist is 4 -> excluded.
        assert set(naive.query_ids(query_index=1).tolist()) == {0, 2}

    def test_asymmetry_of_rknn(self):
        """A point's kNN and RkNN differ: the classic 1-D counterexample."""
        points = np.array([[0.0], [1.0], [2.5], [6.0]])
        naive = NaiveRkNN(points, k=1)
        # p3 (x=6): nearest other is p2; but p2's nearest is p1, so RkNN(p3)
        # is empty while kNN(p3) is not.
        assert naive.query_ids(query_index=3).size == 0

    def test_self_never_included(self, small_gaussian, naive_k5):
        for qi in [0, 100, 299]:
            assert qi not in naive_k5.query_ids(query_index=qi)

    def test_external_query(self, small_gaussian, naive_k5, rng):
        q = rng.normal(size=small_gaussian.shape[1])
        result = naive_k5.query_ids(q)
        dists = np.linalg.norm(small_gaussian - q, axis=1)
        for i in result:
            assert dists[i] <= naive_k5.knn_distances[i] * (1 + 1e-8)

    def test_k_equals_one_symmetric_pair(self):
        """Two isolated mutual NNs are each other's R1NN."""
        points = np.array([[0.0, 0.0], [0.1, 0.0], [50.0, 50.0], [50.2, 50.0]])
        naive = NaiveRkNN(points, k=1)
        assert set(naive.query_ids(query_index=0).tolist()) == {1}
        assert set(naive.query_ids(query_index=1).tolist()) == {0}

    def test_duplicates_are_mutual_members(self):
        points = np.vstack([np.zeros((3, 2)), np.ones((1, 2)) * 9])
        naive = NaiveRkNN(points, k=1)
        # The two co-located duplicates have 1-NN distance 0 = d(x, q).
        # The far point is *equidistant* to all three duplicates, so its
        # 1-NN distance equals its query distance: a boundary tie, included
        # under the library's inclusive convention.
        assert set(naive.query_ids(query_index=0).tolist()) == {1, 2, 3}


class TestResultSizeBounds:
    def test_result_size_unbounded_by_k(self):
        """|RkNN| can exceed k — a hub point in a star configuration.

        Five spokes at radius 10: adjacent spokes are 2*10*sin(pi/5) ~ 11.8
        apart, farther than the hub, so the hub is every spoke's nearest
        neighbor and R1NN(hub) has five members.
        """
        center = np.zeros((1, 2))
        angles = 2 * np.pi * np.arange(5) / 5
        spokes = 10 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
        points = np.vstack([center, spokes])
        naive = NaiveRkNN(points, k=1)
        assert naive.query_ids(query_index=0).size == 5

    def test_empty_results_possible(self):
        points = np.array([[0.0], [1.0], [2.5], [6.0]])
        assert rknn_brute_force(points, 1, query_index=3).size == 0


class TestInterface:
    def test_requires_one_query_form(self, small_gaussian, naive_k5):
        with pytest.raises(ValueError, match="exactly one"):
            naive_k5.query_ids(small_gaussian[0], query_index=0)
        with pytest.raises(ValueError, match="exactly one"):
            naive_k5.query_ids()

    def test_k_validated_against_n(self):
        with pytest.raises(ValueError):
            NaiveRkNN(np.zeros((5, 2)) + np.arange(5)[:, None], k=5)

    def test_metric_parameter(self, tiny_plane):
        manhattan = NaiveRkNN(tiny_plane, k=3, metric="manhattan")
        euclid = NaiveRkNN(tiny_plane, k=3)
        # Different metrics genuinely change the answer somewhere.
        differs = any(
            set(manhattan.query_ids(query_index=qi).tolist())
            != set(euclid.query_ids(query_index=qi).tolist())
            for qi in range(20)
        )
        assert differs

    def test_results_sorted_ascending(self, naive_k5):
        ids = naive_k5.query_ids(query_index=13)
        assert np.all(np.diff(ids) > 0)
