"""Tests for recall/precision/F1."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import f1_score, precision, recall, set_metrics


class TestRecall:
    def test_perfect(self):
        assert recall([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert recall([1, 2], [1, 9]) == 0.5

    def test_empty_truth_is_one(self):
        assert recall([], [1, 2]) == 1.0

    def test_numpy_inputs(self):
        assert recall(np.array([1, 2]), np.array([2])) == 0.5


class TestPrecision:
    def test_false_positives_counted(self):
        assert precision([1], [1, 2]) == 0.5

    def test_empty_result_is_one(self):
        assert precision([1, 2], []) == 1.0


class TestF1:
    def test_harmonic_mean(self):
        r, p = recall([1, 2], [1, 9]), precision([1, 2], [1, 9])
        assert f1_score([1, 2], [1, 9]) == pytest.approx(2 * r * p / (r + p))

    def test_zero_when_disjoint(self):
        assert f1_score([1], [2]) == 0.0


class TestSetMetrics:
    def test_bundle(self):
        metrics = set_metrics([1, 2], [2, 3])
        assert metrics["recall"] == 0.5
        assert metrics["precision"] == 0.5


@given(
    st.sets(st.integers(0, 50)),
    st.sets(st.integers(0, 50)),
)
def test_property_bounds_and_symmetries(truth, result):
    r, p = recall(truth, result), precision(truth, result)
    assert 0.0 <= r <= 1.0 and 0.0 <= p <= 1.0
    # recall(A, B) == precision(B, A)
    assert r == precision(result, truth)
