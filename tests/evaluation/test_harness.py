"""Tests for ground truth, the runner, reporting and precompute accounting."""

import json

import numpy as np
import pytest

from repro.core import RDT, BichromaticRDT, bichromatic_brute_force
from repro.evaluation import (
    BuildRecord,
    GroundTruth,
    MethodRun,
    TradeoffCurve,
    bench_payload,
    format_table,
    index_builders,
    measure_precompute,
    queries_per_budget,
    render_curves,
    render_kv_section,
    run_bichromatic_batched,
    run_method,
    run_precompute_suite,
    run_tradeoff,
    sample_query_indices,
    write_bench_json,
)
from repro.indexes import LinearScanIndex


class TestSampleQueries:
    def test_without_replacement_and_sorted(self):
        ids = sample_query_indices(1000, 100, seed=0)
        assert len(set(ids.tolist())) == 100
        assert np.all(np.diff(ids) > 0)

    def test_small_population_returns_all(self):
        assert np.array_equal(sample_query_indices(5, 100), np.arange(5))

    def test_deterministic(self):
        a = sample_query_indices(500, 50, seed=3)
        b = sample_query_indices(500, 50, seed=3)
        assert np.array_equal(a, b)


class TestGroundTruth:
    def test_answers_match_naive(self, small_gaussian, naive_k5):
        truth = GroundTruth(small_gaussian)
        for qi in [0, 12, 299]:
            assert np.array_equal(truth.answer(qi, 5), naive_k5.query_ids(query_index=qi))

    def test_caching_returns_same_object(self, small_gaussian):
        truth = GroundTruth(small_gaussian)
        assert truth.answer(3, 5) is truth.answer(3, 5)
        assert truth.solver(5) is truth.solver(5)

    def test_batch_answers(self, small_gaussian):
        truth = GroundTruth(small_gaussian)
        answers = truth.answers([1, 2, 3], 5)
        assert set(answers) == {1, 2, 3}


class TestRunner:
    def test_exact_method_scores_one(self, small_gaussian):
        truth = GroundTruth(small_gaussian)
        rdt = RDT(LinearScanIndex(small_gaussian))
        run = run_method(
            "rdt-exact",
            lambda qi: rdt.query(query_index=qi, k=5, t=100.0),
            [0, 10, 20],
            truth,
            k=5,
        )
        assert run.mean_recall == 1.0
        assert run.mean_precision == 1.0
        assert run.mean_seconds > 0.0
        assert run.total_seconds >= run.mean_seconds

    def test_accepts_raw_id_arrays(self, small_gaussian, naive_k5):
        truth = GroundTruth(small_gaussian)
        run = run_method(
            "naive",
            lambda qi: naive_k5.query_ids(query_index=qi),
            [0, 1],
            truth,
            k=5,
        )
        assert run.mean_recall == 1.0

    def test_bichromatic_batched_scores_one_at_huge_t(self, rng):
        clients = rng.normal(size=(120, 2))
        services = rng.normal(size=(50, 2))
        engine = BichromaticRDT(
            LinearScanIndex(clients), LinearScanIndex(services)
        )
        queries = rng.normal(size=(8, 2))
        run = run_bichromatic_batched(
            "brdt",
            lambda pts: engine.query_batch(pts, k=4, t=100.0),
            queries,
            lambda q: bichromatic_brute_force(clients, services, q, k=4),
            k=4,
            parameter=100.0,
        )
        assert len(run.records) == 8
        assert run.mean_recall == 1.0
        assert run.mean_precision == 1.0
        assert [r.query_index for r in run.records] == list(range(8))

    def test_bichromatic_batched_length_mismatch_raises(self, rng):
        queries = rng.normal(size=(3, 2))
        with pytest.raises(ValueError, match="results"):
            run_bichromatic_batched(
                "broken",
                lambda pts: [],
                queries,
                lambda q: np.array([], dtype=np.intp),
                k=2,
            )

    def test_tradeoff_shape(self, small_gaussian):
        truth = GroundTruth(small_gaussian)
        rdt = RDT(LinearScanIndex(small_gaussian))
        curve = run_tradeoff(
            "rdt",
            lambda t: (lambda qi: rdt.query(query_index=qi, k=5, t=t)),
            [1.0, 4.0],
            [0, 5],
            truth,
            k=5,
        )
        assert curve.parameters() == [1.0, 4.0]
        assert len(curve.recalls()) == 2
        assert all(t >= 0 for t in curve.times())

    def test_empty_run_defaults(self):
        run = MethodRun(method="x", k=1, parameter=0.0)
        assert run.mean_recall == 0.0 and run.mean_precision == 1.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_curves_contains_all_methods(self):
        curve = TradeoffCurve(method="rdt", k=5)
        curve.runs.append(MethodRun(method="rdt", k=5, parameter=2.0))
        text = render_curves("Figure X", [curve])
        assert "Figure X" in text and "[rdt, k=5]" in text

    def test_render_kv_section(self):
        text = render_kv_section("costs", [("build", 1.5), ("query", 0.001)])
        assert "costs" in text and "build" in text

    def test_nan_formatting(self):
        assert "-" in format_table(["x"], [[float("nan")]])


class TestPrecompute:
    def test_measures_build_time(self):
        report = measure_precompute("sleepy", lambda: sum(range(100_000)))
        assert report.seconds > 0.0
        assert report.artifact == sum(range(100_000))

    def test_queries_per_budget(self):
        assert queries_per_budget(10.0, 0.1) == pytest.approx(100.0)
        assert queries_per_budget(10.0, 0.0) == float("inf")

    def test_index_builders_cover_registry(self, small_gaussian):
        from repro.indexes import INDEX_REGISTRY, Index

        builders = index_builders(small_gaussian[:60])
        assert sorted(builders) == sorted(INDEX_REGISTRY)
        index = builders["kd-tree"]()
        assert isinstance(index, Index) and index.size == 60

    def test_index_builders_insert_paths(self, small_gaussian):
        builders = index_builders(
            small_gaussian[:50],
            backends=["m-tree", "kd-tree"],
            include_insert_paths=True,
        )
        # kd-tree has no retained insert-loop constructor; m-tree does.
        assert sorted(builders) == ["kd-tree", "m-tree", "m-tree[insert]"]
        assert builders["m-tree[insert]"]().size == 50

    def test_index_builders_rejects_unknown(self, small_gaussian):
        with pytest.raises(ValueError, match="unknown index"):
            index_builders(small_gaussian, backends=["b-tree"])

    def test_run_precompute_suite_order_and_artifacts(self, small_gaussian):
        builders = index_builders(small_gaussian[:40], backends=["kd-tree", "vp-tree"])
        reports = run_precompute_suite(builders)
        assert [r.method for r in reports] == ["kd-tree", "vp-tree"]
        assert all(r.artifact is None and r.seconds > 0.0 for r in reports)
        kept = run_precompute_suite(builders, keep_artifacts=True)
        assert all(r.artifact is not None for r in kept)

    def test_bench_payload_and_json_roundtrip(self, tmp_path):
        records = [
            BuildRecord(backend="m-tree", n=100, dim=4, mode="bulk", seconds=0.5),
            BuildRecord(backend="m-tree", n=100, dim=4, mode="insert", seconds=5.0),
            BuildRecord(backend="vp-tree", n=100, dim=4, mode="bulk", seconds=0.2),
        ]
        payload = bench_payload(records, extra={"note": "test"})
        assert payload["bulk_speedup"] == {"m-tree@100": pytest.approx(10.0)}
        assert payload["note"] == "test"
        path = write_bench_json(tmp_path / "BENCH_build.json", payload)
        loaded = json.loads(path.read_text())
        assert loaded["records"][0]["backend"] == "m-tree"
        assert loaded["schema_version"] == 1


class TestApproxTradeoff:
    @pytest.fixture(scope="class")
    def setting(self, medium_mixture):
        from repro.approx import ApproxRkNN

        data = medium_mixture[:300]
        index = LinearScanIndex(data)
        truth = GroundTruth(data)
        queries = sample_query_indices(300, 24, seed=1)
        rdt = RDT(index)

        def for_parameter(sample_size):
            engine = ApproxRkNN(
                index, "sampled", sample_size=int(sample_size), seed=2
            )
            return lambda qis: engine.query_batch(query_indices=qis, k=4)

        return index, truth, queries, rdt, for_parameter

    def test_sweep_shapes_and_gating(self, setting):
        from repro.evaluation import run_approx_tradeoff

        index, truth, queries, rdt, for_parameter = setting
        tradeoff = run_approx_tradeoff(
            "sampled",
            for_parameter,
            (32, 128),
            queries,
            truth,
            4,
            exact_batch_fn=lambda qis: rdt.query_batch(
                query_indices=qis, k=4, t=8.0
            ),
        )
        assert tradeoff.exact_seconds > 0.0
        assert tradeoff.parameters() == [32.0, 128.0]
        assert all(0.0 <= r <= 1.0 for r in tradeoff.recalls())
        # The sampled strategy's recall guarantee holds in the sweep too.
        assert tradeoff.recalls() == [1.0, 1.0]
        for run in tradeoff.runs:
            assert run.seconds > 0.0
            assert run.speedup == pytest.approx(
                tradeoff.exact_seconds / run.seconds
            )
        best = tradeoff.best_gated(0.95)
        assert best is not None and best.speedup == max(tradeoff.speedups())
        assert tradeoff.best_gated(1.1) is None

    def test_shared_exact_seconds(self, setting):
        from repro.evaluation import run_approx_tradeoff

        index, truth, queries, rdt, for_parameter = setting
        tradeoff = run_approx_tradeoff(
            "sampled", for_parameter, (64,), queries, truth, 4,
            exact_seconds=2.0,
        )
        assert tradeoff.exact_seconds == 2.0

    def test_baseline_argument_validation(self, setting):
        from repro.evaluation import run_approx_tradeoff

        index, truth, queries, rdt, for_parameter = setting
        with pytest.raises(ValueError, match="exactly one"):
            run_approx_tradeoff(
                "sampled", for_parameter, (64,), queries, truth, 4
            )
        with pytest.raises(ValueError, match="exactly one"):
            run_approx_tradeoff(
                "sampled", for_parameter, (64,), queries, truth, 4,
                exact_seconds=1.0,
                exact_batch_fn=lambda qis: [],
            )

    def test_mismatched_result_count_raises(self, setting):
        from repro.evaluation import run_approx_tradeoff

        index, truth, queries, rdt, for_parameter = setting
        with pytest.raises(ValueError, match="results for"):
            run_approx_tradeoff(
                "bad",
                lambda p: (lambda qis: []),
                (1,),
                queries,
                truth,
                4,
                exact_seconds=1.0,
            )

    def test_render_approx_tradeoffs(self, setting):
        from repro.evaluation import render_approx_tradeoffs, run_approx_tradeoff

        index, truth, queries, rdt, for_parameter = setting
        tradeoff = run_approx_tradeoff(
            "sampled", for_parameter, (32, 64), queries, truth, 4,
            exact_seconds=1.0,
        )
        text = render_approx_tradeoffs("title line", [tradeoff])
        assert text.startswith("title line")
        assert "[sampled, k=4] exact engine: 1.000 s" in text
        for column in ("param", "recall", "precision", "batch_s", "speedup"):
            assert column in text
        assert text.count("x") >= 2  # speedup cells carry the multiplier


class TestSpeedupMetric:
    def test_ratio_and_zero_handling(self):
        from repro.evaluation import speedup

        assert speedup(4.0, 2.0) == 2.0
        assert speedup(1.0, 0.0) == float("inf")
