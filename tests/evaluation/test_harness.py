"""Tests for ground truth, the runner, reporting and precompute accounting."""

import numpy as np
import pytest

from repro.core import RDT, BichromaticRDT, bichromatic_brute_force
from repro.evaluation import (
    GroundTruth,
    MethodRun,
    TradeoffCurve,
    format_table,
    measure_precompute,
    queries_per_budget,
    render_curves,
    render_kv_section,
    run_bichromatic_batched,
    run_method,
    run_tradeoff,
    sample_query_indices,
)
from repro.indexes import LinearScanIndex


class TestSampleQueries:
    def test_without_replacement_and_sorted(self):
        ids = sample_query_indices(1000, 100, seed=0)
        assert len(set(ids.tolist())) == 100
        assert np.all(np.diff(ids) > 0)

    def test_small_population_returns_all(self):
        assert np.array_equal(sample_query_indices(5, 100), np.arange(5))

    def test_deterministic(self):
        a = sample_query_indices(500, 50, seed=3)
        b = sample_query_indices(500, 50, seed=3)
        assert np.array_equal(a, b)


class TestGroundTruth:
    def test_answers_match_naive(self, small_gaussian, naive_k5):
        truth = GroundTruth(small_gaussian)
        for qi in [0, 12, 299]:
            assert np.array_equal(truth.answer(qi, 5), naive_k5.query(query_index=qi))

    def test_caching_returns_same_object(self, small_gaussian):
        truth = GroundTruth(small_gaussian)
        assert truth.answer(3, 5) is truth.answer(3, 5)
        assert truth.solver(5) is truth.solver(5)

    def test_batch_answers(self, small_gaussian):
        truth = GroundTruth(small_gaussian)
        answers = truth.answers([1, 2, 3], 5)
        assert set(answers) == {1, 2, 3}


class TestRunner:
    def test_exact_method_scores_one(self, small_gaussian):
        truth = GroundTruth(small_gaussian)
        rdt = RDT(LinearScanIndex(small_gaussian))
        run = run_method(
            "rdt-exact",
            lambda qi: rdt.query(query_index=qi, k=5, t=100.0),
            [0, 10, 20],
            truth,
            k=5,
        )
        assert run.mean_recall == 1.0
        assert run.mean_precision == 1.0
        assert run.mean_seconds > 0.0
        assert run.total_seconds >= run.mean_seconds

    def test_accepts_raw_id_arrays(self, small_gaussian, naive_k5):
        truth = GroundTruth(small_gaussian)
        run = run_method(
            "naive",
            lambda qi: naive_k5.query(query_index=qi),
            [0, 1],
            truth,
            k=5,
        )
        assert run.mean_recall == 1.0

    def test_bichromatic_batched_scores_one_at_huge_t(self, rng):
        clients = rng.normal(size=(120, 2))
        services = rng.normal(size=(50, 2))
        engine = BichromaticRDT(
            LinearScanIndex(clients), LinearScanIndex(services)
        )
        queries = rng.normal(size=(8, 2))
        run = run_bichromatic_batched(
            "brdt",
            lambda pts: engine.query_batch(pts, k=4, t=100.0),
            queries,
            lambda q: bichromatic_brute_force(clients, services, q, k=4),
            k=4,
            parameter=100.0,
        )
        assert len(run.records) == 8
        assert run.mean_recall == 1.0
        assert run.mean_precision == 1.0
        assert [r.query_index for r in run.records] == list(range(8))

    def test_bichromatic_batched_length_mismatch_raises(self, rng):
        queries = rng.normal(size=(3, 2))
        with pytest.raises(ValueError, match="results"):
            run_bichromatic_batched(
                "broken",
                lambda pts: [],
                queries,
                lambda q: np.array([], dtype=np.intp),
                k=2,
            )

    def test_tradeoff_shape(self, small_gaussian):
        truth = GroundTruth(small_gaussian)
        rdt = RDT(LinearScanIndex(small_gaussian))
        curve = run_tradeoff(
            "rdt",
            lambda t: (lambda qi: rdt.query(query_index=qi, k=5, t=t)),
            [1.0, 4.0],
            [0, 5],
            truth,
            k=5,
        )
        assert curve.parameters() == [1.0, 4.0]
        assert len(curve.recalls()) == 2
        assert all(t >= 0 for t in curve.times())

    def test_empty_run_defaults(self):
        run = MethodRun(method="x", k=1, parameter=0.0)
        assert run.mean_recall == 0.0 and run.mean_precision == 1.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_curves_contains_all_methods(self):
        curve = TradeoffCurve(method="rdt", k=5)
        curve.runs.append(MethodRun(method="rdt", k=5, parameter=2.0))
        text = render_curves("Figure X", [curve])
        assert "Figure X" in text and "[rdt, k=5]" in text

    def test_render_kv_section(self):
        text = render_kv_section("costs", [("build", 1.5), ("query", 0.001)])
        assert "costs" in text and "build" in text

    def test_nan_formatting(self):
        assert "-" in format_table(["x"], [[float("nan")]])


class TestPrecompute:
    def test_measures_build_time(self):
        report = measure_precompute("sleepy", lambda: sum(range(100_000)))
        assert report.seconds > 0.0
        assert report.artifact == sum(range(100_000))

    def test_queries_per_budget(self):
        assert queries_per_budget(10.0, 0.1) == pytest.approx(100.0)
        assert queries_per_budget(10.0, 0.0) == float("inf")
