"""Public-API stability check (runs in the fast tier).

Two invariants the CI gate pins:

1. ``repro.__all__`` matches the documented surface below, verbatim.  A
   new export is an API decision — make it deliberately: update
   DESIGN.md ("The public surface") and this list in the same change.
2. Every registry name actually works: each engine constructs through
   :func:`repro.create_engine` and answers a tiny query with a valid
   :class:`repro.RkNNResult`; each index name and alias constructs
   through :func:`repro.create_index` and answers a kNN probe.
"""

import numpy as np
import pytest

import repro

#: The documented public surface (DESIGN.md "The public surface").
DOCUMENTED_SURFACE = [
    "__version__",
    # front door
    "Service",
    "QuerySpec",
    "create_engine",
    "create_index",
    "ENGINE_REGISTRY",
    "INDEX_REGISTRY",
    "INDEX_ALIASES",
    "RkNNEngine",
    "EngineBase",
    "EngineCapabilityError",
    "GUARANTEES",
    # distances
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "get_metric",
    # indexes
    "Index",
    "IndexCapabilityError",
    "LinearScanIndex",
    "KDTreeIndex",
    "CoverTreeIndex",
    "VPTreeIndex",
    "BallTreeIndex",
    "MTreeIndex",
    "RStarTreeIndex",
    "RdNNTreeIndex",
    "build_index",
    "bulk_knn",
    "bulk_knn_distances",
    # core algorithm
    "RDT",
    "AdaptiveRDT",
    "BichromaticRDT",
    "bichromatic_brute_force",
    "RkNNResult",
    "QueryStats",
    "suggest_scale",
    # approximate engine
    "ApproxRkNN",
    "APPROX_STRATEGIES",
    "LSHFilter",
    "SampledKNNEstimator",
    "build_strategy",
    # baselines
    "NaiveRkNN",
    "rknn_brute_force",
    "SFT",
    "MRkNNCoP",
    "RdNN",
    "TPL",
    # intrinsic dimensionality
    "estimate_id",
    "estimate_id_mle",
    "estimate_id_gp",
    "estimate_id_takens",
    "ged",
    "max_ged",
    # datasets & evaluation
    "load_standin",
    "GroundTruth",
    "run_engine",
    "run_engine_suite",
    "run_method",
    "run_method_batched",
    "run_approx_tradeoff",
    "run_bichromatic_batched",
    "run_precompute_suite",
    "run_tradeoff",
    "run_tradeoff_batched",
    "index_builders",
    "measure_precompute",
    # serving
    "QueryCoalescer",
    "ResultCache",
    "run_open_loop",
    # parallel execution
    "ParallelExecutor",
    "ShardedService",
    # mining applications
    "rknn_self_join",
    "odin_scores",
    "odin_outliers",
    "influence_set",
    "hubness_counts",
    "hubness_skewness",
    "knn_digraph",
]

#: Names create_engine must resolve (the acceptance floor is 8; the
#: registry carries all eleven engine families).
REQUIRED_ENGINE_NAMES = {
    "rdt", "rdt+", "adaptive", "bichromatic", "approx-sampled", "approx-lsh",
    "approx-graph", "naive", "sft", "mrknncop", "rdnn", "tpl",
}


@pytest.fixture(scope="module")
def tiny():
    return np.random.default_rng(0).normal(size=(40, 3))


def test_all_matches_documented_surface():
    assert sorted(repro.__all__) == sorted(DOCUMENTED_SURFACE)
    assert len(set(repro.__all__)) == len(repro.__all__), "duplicate exports"


def test_every_export_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_engine_registry_covers_required_names():
    assert REQUIRED_ENGINE_NAMES == set(repro.ENGINE_REGISTRY)


#: per-engine construction kwargs for the tiny probe (fixed-k and
#: k_max-bounded engines must be told the probed k up front)
ENGINE_PROBE_KWARGS = {"rdnn": {"k": 2}, "mrknncop": {"k_max": 4}}


@pytest.mark.parametrize("name", sorted(REQUIRED_ENGINE_NAMES))
def test_every_engine_name_constructs_and_answers(name, tiny):
    if name == "bichromatic":
        engine = repro.create_engine(name, tiny[:30], clients=tiny[30:])
        result = engine.query(tiny[0] + 0.01, k=2, t=4.0)
    else:
        engine = repro.create_engine(
            name, tiny, **ENGINE_PROBE_KWARGS.get(name, {})
        )
        knobs = {"t": 4.0} if "t" in engine.query_knobs else {}
        result = engine.query(query_index=1, k=2, **knobs)
    assert isinstance(engine, repro.RkNNEngine)
    assert isinstance(result, repro.RkNNResult)
    assert result.ids.dtype == np.intp


@pytest.mark.parametrize(
    "name", sorted(set(repro.INDEX_REGISTRY) | set(repro.INDEX_ALIASES))
)
def test_every_index_name_constructs_and_answers(name, tiny):
    kwargs = {"k": 2} if repro.INDEX_ALIASES.get(name, name) == "rdnn-tree" else {}
    index = repro.create_index(name, tiny, **kwargs)
    ids, dists = index.knn(tiny[0], 3, exclude_index=0)
    assert ids.shape == (3,)
    assert np.all(np.diff(dists) >= 0)
