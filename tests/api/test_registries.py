"""The engine/index registries and the protocol surface behind them."""

import numpy as np
import pytest

import repro
from repro.core import EngineCapabilityError
from repro.core.protocol import EngineBase
from repro.engines import ENGINE_REGISTRY, create_engine
from repro.indexes import (
    INDEX_ALIASES,
    INDEX_REGISTRY,
    KDTreeIndex,
    RdNNTreeIndex,
    create_index,
    resolve_index_name,
)


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(3).normal(size=(120, 3))


class TestIndexRegistry:
    def test_aliases_resolve_to_canonical_names(self):
        for alias, canonical in INDEX_ALIASES.items():
            assert resolve_index_name(alias) == canonical

    def test_create_index_accepts_aliases(self, points):
        kd = create_index("kd", points)
        assert isinstance(kd, KDTreeIndex)
        assert np.array_equal(
            kd.knn(points[0], 4, exclude_index=0)[0],
            create_index("kd-tree", points).knn(points[0], 4, exclude_index=0)[0],
        )

    def test_create_index_builds_rdnn_tree(self, points):
        tree = create_index("rdnn", points, k=4)
        assert isinstance(tree, RdNNTreeIndex)
        assert tree.k == 4

    def test_unknown_name_lists_known_and_aliases(self, points):
        with pytest.raises(ValueError, match="aliases"):
            create_index("quadtree", points)

    def test_registry_names_all_construct(self, points):
        for name in INDEX_REGISTRY:
            index = create_index(name, points)
            assert index.size == points.shape[0]


class TestEngineRegistry:
    def test_unknown_engine(self, points):
        with pytest.raises(ValueError, match="unknown engine"):
            create_engine("simplex", points)

    def test_every_entry_reports_identity_flags(self, points):
        for name, spec in ENGINE_REGISTRY.items():
            assert spec.name == name
            assert spec.summary
            assert spec.needs in ("index", "data", "rstar-index", "two-colors")

    def test_engines_share_the_index_they_are_given(self, points):
        index = create_index("vp", points)
        engine = create_engine("rdt+", index)
        assert engine.index is index

    def test_metric_rejected_alongside_prebuilt_index(self, points):
        index = create_index("kd", points)
        with pytest.raises(ValueError, match="already carries one"):
            create_engine("rdt", index, metric="manhattan")

    def test_backend_kwargs_reach_the_built_backend(self, points):
        engine = create_engine(
            "rdt", points, backend="kd", backend_kwargs={"leaf_size": 4}
        )
        assert engine.index.leaf_size == 4

    def test_snapshot_engine_refuses_index_with_removals(self, points):
        index = create_index("kd", points)
        index.remove(5)
        with pytest.raises(ValueError, match="removed points"):
            create_engine("naive", index, k=4)

    def test_snapshot_engine_adopts_clean_index_points_and_metric(self, points):
        index = create_index("kd", points, metric="manhattan")
        engine = create_engine("naive", index, k=4)
        assert engine.metric.name == "manhattan"
        assert engine.points is index.points

    def test_tpl_requires_rstar(self, points):
        with pytest.raises(ValueError, match="RStarTreeIndex"):
            create_engine("tpl", create_index("kd", points))
        engine = create_engine("tpl", create_index("rstar", points))
        assert engine.index.name == "r-star-tree"

    def test_rdnn_wraps_prebuilt_tree_with_matching_k(self, points):
        tree = create_index("rdnn", points, k=4)
        engine = create_engine("rdnn", tree, k=4)
        assert engine.index is tree
        with pytest.raises(ValueError, match="fixed k"):
            create_engine("rdnn", tree, k=7)

    def test_bichromatic_requires_clients(self, points):
        with pytest.raises(ValueError, match="clients"):
            create_engine("bichromatic", points)


class TestEngineProtocolDefaults:
    class _OneHit(EngineBase):
        """A minimal engine: answers {0} for every query."""

        engine_name = "one-hit"

        def __init__(self, index):
            self.index = index

        def query(self, query=None, *, query_index=None, k=None):
            return repro.RkNNResult(
                ids=np.asarray([0], dtype=np.intp), k=k, t=float("nan")
            )

    def test_looped_batch_and_query_all(self, points):
        engine = self._OneHit(create_index("linear", points[:10]))
        results = engine.query_batch(query_indices=[1, 2, 3], k=2)
        assert [r.ids.tolist() for r in results] == [[0], [0], [0]]
        results = engine.query_batch(points[:2], k=2)
        assert len(results) == 2
        allres = engine.query_all(k=2)
        assert set(allres) == set(range(10))

    def test_batch_argument_validation(self, points):
        engine = self._OneHit(create_index("linear", points[:10]))
        with pytest.raises(ValueError, match="exactly one"):
            engine.query_batch(k=2)
        with pytest.raises(ValueError, match="exactly one"):
            engine.query_batch(points[:2], query_indices=[0], k=2)
        with pytest.raises(ValueError, match="2-D"):
            engine.query_batch(points[0], k=2)

    def test_member_ids_requires_an_index(self):
        class Bare(EngineBase):
            pass

        with pytest.raises(EngineCapabilityError, match="member_ids"):
            Bare().query_all(k=2)

    def test_bichromatic_rejects_member_query_forms(self, points):
        engine = create_engine(
            "bichromatic", points[:80], clients=points[80:]
        )
        with pytest.raises(EngineCapabilityError, match="never members"):
            engine.query(query_index=3, k=2, t=4.0)
        with pytest.raises(EngineCapabilityError, match="never members"):
            engine.query_batch(query_indices=[1, 2], k=2, t=4.0)
        with pytest.raises(EngineCapabilityError, match="self-join"):
            engine.query_all(k=2)

    def test_runtime_checkable_protocol(self, points):
        for name in ("rdt", "naive", "approx-lsh"):
            engine = create_engine(name, points)
            assert isinstance(engine, repro.RkNNEngine)

    def test_guarantees_vocabulary_covers_every_engine(self, points):
        from repro.core import GUARANTEES

        for name in sorted(ENGINE_REGISTRY):
            kwargs = {"clients": points[:20]} if name == "bichromatic" else {}
            engine = create_engine(name, points, **kwargs)
            assert engine.guarantee in GUARANTEES, name


class TestRunEngine:
    def test_run_engine_by_name_and_instance(self, points):
        from repro.evaluation import GroundTruth, run_engine

        truth = GroundTruth(points)
        queries = np.arange(0, 120, 30)
        by_name = run_engine("rdt", queries, truth, 4, data=points,
                             spec=repro.QuerySpec(k=4, t=1e30))
        assert by_name.method == "rdt"
        assert by_name.mean_recall == 1.0 and by_name.mean_precision == 1.0
        engine = create_engine("naive", points, k=4)
        by_instance = run_engine(engine, queries, truth, 4)
        assert by_instance.mean_recall == 1.0

    def test_run_engine_argument_validation(self, points):
        from repro.evaluation import GroundTruth, run_engine

        truth = GroundTruth(points)
        with pytest.raises(ValueError, match="needs `data`"):
            run_engine("rdt", [0], truth, 4)
        engine = create_engine("naive", points, k=4)
        with pytest.raises(ValueError, match="registry name"):
            run_engine(engine, [0], truth, 4, engine_kwargs={"k_max": 5})

    def test_run_engine_injects_k_for_fixed_k_engines(self, points):
        # by-name construction must honor the harness k: rdnn builds its
        # tree for exactly that k, mrknncop fits up to it
        from repro.evaluation import GroundTruth, run_engine

        truth = GroundTruth(points)
        queries = np.arange(0, 120, 40)
        for name in ("rdnn", "mrknncop"):
            run = run_engine(name, queries, truth, 5, data=points)
            assert run.mean_recall == 1.0 and run.mean_precision == 1.0, name

    def test_run_engine_suite_enumerates_names_and_instances(self, points):
        from repro.evaluation import GroundTruth, run_engine_suite

        truth = GroundTruth(points)
        queries = np.arange(0, 120, 40)
        runs = run_engine_suite(
            ["rdt", "naive", "sft"],
            queries,
            truth,
            4,
            data=points,
            spec=repro.QuerySpec(k=4, t=1e30),
            engine_kwargs={"naive": {"k": 4}},
        )
        assert [run.method for run in runs] == ["rdt", "naive", "sft"]
        assert runs[0].mean_recall == 1.0 and runs[1].mean_recall == 1.0
        named = run_engine_suite(
            {"reference": create_engine("naive", points, k=4)},
            queries,
            truth,
            4,
        )
        assert named[0].method == "reference"


class TestMiningThroughRegistry:
    def test_self_join_accepts_engine_names(self, points):
        from repro.mining import rknn_self_join

        index = create_index("kd", points)
        exact = rknn_self_join(index, k=4, t=1e30)
        approx = rknn_self_join(index, k=4, t=1e30, engine="approx-sampled")
        assert exact.neighborhoods.keys() == approx.neighborhoods.keys()
        for pid, ids in exact.neighborhoods.items():
            # sampled strategy: recall 1 by construction
            assert set(ids.tolist()) <= set(approx.neighborhoods[pid].tolist())

    def test_self_join_rejects_conflicting_selectors(self, points):
        from repro.mining import rknn_self_join

        index = create_index("kd", points)
        with pytest.raises(ValueError, match="at most one"):
            rknn_self_join(index, k=4, t=8.0, variant="rdt", engine="rdt+")

    def test_self_join_rejects_bichromatic(self, points):
        from repro.mining import rknn_self_join

        index = create_index("kd", points[:80])
        engine = create_engine("bichromatic", index, clients=points[80:])
        with pytest.raises(ValueError, match="member queries"):
            rknn_self_join(index, k=4, t=8.0, engine=engine)

    def test_mining_forwards_k_to_fixed_k_engines(self, points):
        from repro.mining import odin_scores, rknn_self_join

        index = create_index("kd", points)
        # rdnn is built for exactly the join's k — no k=10 default clash
        join = rknn_self_join(index, k=5, t=1e30, engine="rdnn")
        exact = rknn_self_join(index, k=5, t=1e30)
        for pid in exact.neighborhoods:
            assert np.array_equal(
                join.neighborhoods[pid], exact.neighborhoods[pid]
            )
        scores = odin_scores(index, k=5, t=1e30, engine="rdnn")
        assert scores.shape[0] == points.shape[0]

    def test_influence_set_through_engine(self, points):
        from repro.mining import influence_set

        index = create_index("kd", points)
        via_variant = influence_set(index, 7, k=4, t=1e30)
        via_engine = influence_set(index, 7, k=4, t=1e30, engine="naive")
        assert np.array_equal(via_variant, via_engine)
        with pytest.raises(ValueError, match="at most one"):
            influence_set(index, 7, k=4, t=8.0, variant="rdt", engine="naive")
