"""The Service facade: spec routing, lifecycle, persistence, shims."""

import numpy as np
import pytest

import repro
from repro.service import QuerySpec, Service


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(9).normal(size=(150, 3))


@pytest.fixture()
def svc(points):
    return Service(points, backend="kd", engine="rdt+",
                   defaults=QuerySpec(k=5, t=1e30))


class TestQuerySpec:
    def test_defaults_validate(self):
        spec = QuerySpec()
        assert spec.k == 10 and spec.t == 8.0 and spec.filter_mode == "auto"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"t": 0.0},
            {"filter_mode": "eager"},
            {"alpha": 0.5},
            {"margin": 1.5},
            {"sample_size": 0},
            {"n_tables": -1},
            {"ef": 0},
            {"graph_m": -2},
        ],
    )
    def test_invalid_fields_raise(self, kwargs):
        with pytest.raises(ValueError):
            QuerySpec(**kwargs)

    def test_replace_revalidates(self):
        spec = QuerySpec(k=5)
        assert spec.replace(t=2.0).t == 2.0
        with pytest.raises(ValueError):
            spec.replace(k=-1)

    def test_replace_rejects_unknown_knobs(self):
        # Regression: unknown overrides used to surface as a raw
        # dataclasses.replace TypeError naming QuerySpec.__init__.
        spec = QuerySpec(k=5)
        with pytest.raises(TypeError, match="unknown query knob 'kk'"):
            spec.replace(kk=3)
        with pytest.raises(TypeError, match="pass query_index"):
            spec.replace(member=3)

    def test_knobs_route_by_engine_capability(self, points):
        spec = QuerySpec(k=5, t=4.0, alpha=2.0, filter_mode="sequential")
        rdt = repro.create_engine("rdt", points)
        sft = repro.create_engine("sft", points)
        approx = repro.create_engine("approx-lsh", points)
        assert spec.knobs_for(rdt) == {"t": 4.0}
        assert spec.knobs_for(rdt, batch=True) == {
            "t": 4.0, "filter_mode": "sequential"
        }
        assert spec.knobs_for(sft) == {"alpha": 2.0}
        assert spec.knobs_for(approx) == {}

    def test_strategy_kwargs_subset(self):
        spec = QuerySpec(margin=0.5, n_tables=6)
        assert spec.strategy_kwargs() == {"margin": 0.5, "n_tables": 6}


class TestConstruction:
    def test_unknown_engine_and_backend(self, points):
        with pytest.raises(ValueError, match="unknown engine"):
            Service(points, engine="simplex")
        with pytest.raises(ValueError, match="unknown index"):
            Service(points, backend="quadtree")

    def test_bichromatic_not_a_primary_engine(self, points):
        with pytest.raises(ValueError, match="query_bichromatic"):
            Service(points, engine="bichromatic")

    def test_defaults_must_be_a_spec(self, points):
        with pytest.raises(TypeError, match="QuerySpec"):
            Service(points, defaults={"k": 5})

    def test_adopts_prebuilt_index(self, points):
        index = repro.create_index("vp", points)
        svc = Service(index, engine="rdt")
        assert svc.index is index
        assert svc.backend_name == "vp-tree"
        with pytest.raises(ValueError, match="already carries one"):
            Service(index, metric="manhattan")

    def test_introspection(self, svc, points):
        assert len(svc) == svc.size == points.shape[0]
        assert svc.dim == 3
        assert svc.metric.name == "euclidean"
        assert np.array_equal(svc.active_ids(), np.arange(points.shape[0]))


class TestQueryRouting:
    def test_matches_direct_engine(self, svc, points):
        direct = repro.RDT(svc.index, variant="rdt+")
        expected = direct.query(query_index=3, k=5, t=1e30)
        got = svc.query(query_index=3)
        assert np.array_equal(got.ids, expected.ids)
        raw = svc.query(points[3] + 0.01)
        assert raw.k == 5

    def test_per_call_overrides(self, svc):
        tight = svc.query(query_index=3, k=2, t=2.0)
        assert tight.k == 2 and tight.t == 2.0
        with pytest.raises(ValueError):
            svc.query(query_index=3, k=-2)
        with pytest.raises(TypeError, match="QuerySpec"):
            svc.query(query_index=3, spec={"k": 2})

    def test_batch_and_all_match_loop(self, svc):
        ids = [0, 7, 40]
        batch = svc.query_batch(query_indices=ids)
        for qi, result in zip(ids, batch):
            assert np.array_equal(result.ids, svc.query(query_index=qi).ids)
        everything = svc.query_all()
        assert set(everything) == set(svc.active_ids().tolist())
        assert np.array_equal(everything[7].ids, batch[1].ids)

    def test_alpha_reaches_sft(self, points):
        svc = Service(points, engine="sft", defaults=QuerySpec(k=5, alpha=16.0))
        direct = repro.create_engine("sft", svc.index)
        expected = direct.query(query_index=2, k=5, alpha=16.0)
        assert np.array_equal(svc.query(query_index=2).ids, expected.ids)

    def test_strategy_knobs_never_reach_other_engine_constructors(self, points):
        # QuerySpec's contract: knobs an engine does not understand are
        # carried but never forwarded — margin on rdt must not rebuild
        # (or crash) the engine, and lsh must not receive sample_size
        svc = Service(points, engine="rdt",
                      defaults=QuerySpec(k=4, t=1e30, margin=0.5, n_tables=3))
        baseline = Service(points, engine="rdt", defaults=QuerySpec(k=4, t=1e30))
        assert np.array_equal(
            svc.query(query_index=1).ids, baseline.query(query_index=1).ids
        )
        lsh = Service(points, engine="approx-lsh",
                      defaults=QuerySpec(k=4, n_tables=3, sample_size=99))
        assert lsh.engine().strategy.n_tables == 3
        sampled = Service(points, engine="approx-sampled",
                          defaults=QuerySpec(k=4, sample_size=32, n_tables=99))
        assert sampled.engine().strategy.sample_size == 32

    def test_strategy_knob_change_rebuilds_engine(self, points):
        svc = Service(points, engine="approx-sampled",
                      defaults=QuerySpec(k=5, sample_size=32))
        first = svc.engine()
        assert first.strategy.sample_size == 32
        # an override rebuilds for the overridden spec...
        svc.query(query_index=0, sample_size=64)
        assert svc.engine(QuerySpec(k=5, sample_size=64)).strategy.sample_size == 64
        # ...and the defaults rebuild back on the next default call
        assert svc.engine().strategy.sample_size == 32
        assert svc.engine() is not first

    def test_rdnn_rebuilds_for_new_k(self, points):
        svc = Service(points, engine="rdnn", defaults=QuerySpec(k=5))
        assert svc.engine().index.k == 5
        result = svc.query(query_index=0, k=3)
        assert result.k == 3
        assert svc.engine(QuerySpec(k=3)).index.k == 3

    def test_mrknncop_rebuilds_when_k_exceeds_kmax(self, points):
        svc = Service(points, engine="mrknncop", defaults=QuerySpec(k=3))
        assert svc.engine().k_max == 3
        svc.query(query_index=0, k=6)
        assert svc.engine(QuerySpec(k=6)).k_max >= 6

    def test_user_pinned_k_conflicts_fail_instead_of_rebuild_looping(self, points):
        # a pinned k/k_max would survive any rebuild, so an out-of-range
        # spec must fail with a clear message, not churn O(n^2) rebuilds
        svc = Service(points, engine="mrknncop",
                      engine_kwargs={"k_max": 5}, defaults=QuerySpec(k=5))
        svc.query(query_index=0)
        first = svc.engine()
        with pytest.raises(ValueError, match="pinned in engine_kwargs"):
            svc.query(query_index=0, k=10)
        assert svc.engine() is first  # no rebuild happened
        assert len(svc.query(query_index=0)) >= 0  # still serviceable
        rdnn = Service(points, engine="rdnn",
                       engine_kwargs={"k": 5}, defaults=QuerySpec(k=5))
        rdnn.query(query_index=0)
        with pytest.raises(ValueError, match="pinned in engine_kwargs"):
            rdnn.query(query_index=0, k=4)


class TestChurnAndTranslation:
    @pytest.mark.parametrize("engine", ["naive", "rdnn", "mrknncop", "tpl"])
    def test_snapshot_engines_follow_churn(self, points, engine):
        svc = Service(points, backend="kd", engine=engine,
                      defaults=QuerySpec(k=4, t=1e30))
        svc.query(query_index=0)  # build once
        for pid in (2, 3, 50):
            svc.remove(pid)
        new_id = svc.insert(np.zeros(3))
        assert new_id == points.shape[0]
        live = svc.active_ids()
        reference = repro.create_engine("naive", svc.index.points[live], k=4)
        for qi in (0, int(new_id)):
            got = svc.query(query_index=qi)
            local = int(np.searchsorted(live, qi))
            expected = live[reference.query_ids(query_index=local)]
            assert np.array_equal(np.sort(got.ids), expected), engine
        results = svc.query_all()
        assert set(results) == set(live.tolist())

    def test_removed_member_query_raises(self, points):
        svc = Service(points, engine="naive", defaults=QuerySpec(k=4))
        svc.remove(5)
        with pytest.raises(KeyError, match="removed"):
            svc.query(query_index=5)
        # live engines hit the index's own guard
        svc_live = Service(points, engine="rdt", defaults=QuerySpec(k=4))
        svc_live.remove(5)
        with pytest.raises(KeyError, match="removed"):
            svc_live.query(query_index=5)

    def test_compact_pass_through(self, points):
        assert Service(points, backend="kd").compact() is True
        assert Service(points, backend="linear").compact() is False

    def test_compact_survives_emptying_the_index(self, points):
        svc = Service(points[:5], backend="kd", defaults=QuerySpec(k=2))
        for pid in range(5):
            svc.remove(pid)
        assert svc.compact() is True  # no-op rebuild, must not crash
        assert svc.size == 0


class TestBichromatic:
    def test_matches_direct_engine(self, points):
        services, clients = points[:90], points[90:]
        svc = Service(services, backend="kd", defaults=QuerySpec(k=3, t=1e30))
        queries = points[:4] + 0.05
        got = svc.query_bichromatic(queries, clients)
        direct = svc.bichromatic(clients)
        expected = direct.query_batch(queries, k=3, t=1e30)
        for g, e in zip(got, expected):
            assert np.array_equal(g.ids, e.ids)
        single = svc.query_bichromatic(queries[0], clients, k=2)
        assert single.k == 2

    def test_accepts_prebuilt_client_index(self, points):
        svc = Service(points[:90], defaults=QuerySpec(k=3))
        clients = repro.create_index("ball", points[90:])
        engine = svc.bichromatic(clients)
        assert engine.clients is clients
        assert engine.services is svc.index


class TestPersistence:
    def test_round_trip_is_bit_identical(self, points, tmp_path):
        svc = Service(points, backend="kd", engine="rdt+",
                      defaults=QuerySpec(k=5, t=1e30),
                      backend_kwargs={"leaf_size": 8})
        for pid in (1, 17, 60):
            svc.remove(pid)
        svc.insert(np.full(3, 0.25))
        path = svc.save(tmp_path / "svc.npz")
        loaded = Service.load(path)
        assert loaded.backend_name == "kd-tree"
        assert loaded.engine_name == "rdt+"
        assert loaded.defaults == svc.defaults
        assert loaded.index.leaf_size == 8
        assert np.array_equal(loaded.active_ids(), svc.active_ids())
        before = svc.query_all()
        after = loaded.query_all()
        assert before.keys() == after.keys()
        for pid in before:
            assert np.array_equal(before[pid].ids, after[pid].ids)

    def test_round_trip_preserves_metric(self, points, tmp_path):
        svc = Service(points, engine="naive", metric="minkowski",
                      backend="linear", defaults=QuerySpec(k=4),
                      backend_kwargs=None)
        path = svc.save(tmp_path / "svc.npz")
        loaded = Service.load(path)
        assert loaded.metric.name == "minkowski"
        assert loaded.metric.p == 2.0
        assert np.array_equal(
            loaded.query(query_index=3).ids, svc.query(query_index=3).ids
        )

    def test_version_guard(self, points, tmp_path):
        import json

        svc = Service(points)
        path = svc.save(tmp_path / "svc.npz")
        with np.load(path) as payload:
            meta = json.loads(str(payload["meta"][()]))
            arrays = {k: payload[k] for k in payload.files if k != "meta"}
        meta["format_version"] = 99
        with open(path, "wb") as fh:
            np.savez(fh, meta=np.asarray(json.dumps(meta)), **arrays)
        with pytest.raises(ValueError, match="version"):
            Service.load(path)

    def test_unserializable_kwargs_fail_loudly(self, points, tmp_path):
        svc = Service(points, engine_kwargs={"seed": object()})
        with pytest.raises(TypeError, match="JSON-serializable"):
            svc.save(tmp_path / "svc.npz")

    def test_adopted_index_knobs_survive_round_trip(self, points, tmp_path):
        # an adopted tree's recoverable constructor knobs are captured at
        # adoption, so load() can rebuild an equivalent backend — the
        # RdNN-tree's required k included
        tree = repro.RdNNTreeIndex(points, k=4, capacity=8)
        svc = Service(tree, engine="rdnn", defaults=QuerySpec(k=4))
        loaded = Service.load(svc.save(tmp_path / "rdnn.npz"))
        assert loaded.index.k == 4 and loaded.index.capacity == 8
        assert np.array_equal(
            loaded.query(query_index=3).ids, svc.query(query_index=3).ids
        )
        kd = repro.KDTreeIndex(points, leaf_size=4)
        svc_kd = Service(kd, engine="rdt", defaults=QuerySpec(k=4))
        loaded_kd = Service.load(svc_kd.save(tmp_path / "kd.npz"))
        assert loaded_kd.index.leaf_size == 4

    def test_graph_round_trip_adopts_stored_adjacency(self, points, tmp_path):
        svc = Service(points, backend="kd", engine="approx-graph",
                      defaults=QuerySpec(k=5, ef=32, graph_m=10))
        svc.remove(7)
        before = svc.query_all()
        path = svc.save(tmp_path / "graph.npz")
        with np.load(path, allow_pickle=False) as payload:
            assert {"graph_node_ids", "graph_levels", "graph_neighbors",
                    "graph_neighbor_dists"} <= set(payload.files)
        loaded = Service.load(path)
        strategy = loaded.engine().strategy
        # Adoption happened at load time: the graph is already current,
        # with no lazy rebuild pending.
        assert strategy._built_version == loaded.index.version
        after = loaded.query_all()
        assert before.keys() == after.keys()
        for pid in before:
            assert np.array_equal(before[pid].ids, after[pid].ids)

    def test_graph_legacy_payload_falls_back_to_rebuild(
        self, points, tmp_path
    ):
        import json

        svc = Service(points, backend="kd", engine="approx-graph",
                      defaults=QuerySpec(k=5, ef=32, graph_m=10))
        before = svc.query_all()
        path = svc.save(tmp_path / "graph.npz")
        # Rewrite as a version-2 payload without the adjacency arrays —
        # what a pre-graph library version would have produced.
        with np.load(path, allow_pickle=False) as payload:
            meta = json.loads(str(payload["meta"][()]))
            pts = np.array(payload["points"])
            active = np.array(payload["active"])
        meta["format_version"] = 2
        meta.pop("graph")
        with open(path, "wb") as fh:
            np.savez(fh, points=pts, active=active,
                     meta=np.asarray(json.dumps(meta, sort_keys=True)))
        loaded = Service.load(path)
        after = loaded.query_all()
        for pid in before:
            assert np.array_equal(before[pid].ids, after[pid].ids)

    def test_graph_knob_mismatch_skips_adoption(self, points, tmp_path):
        import json

        svc = Service(points, backend="kd", engine="approx-graph",
                      defaults=QuerySpec(k=5, graph_m=10))
        before = svc.query_all()
        path = svc.save(tmp_path / "graph.npz")
        # Corrupt the stored knob header: adoption must be refused and
        # the deterministic rebuild must still answer identically.
        with np.load(path, allow_pickle=False) as payload:
            meta = json.loads(str(payload["meta"][()]))
            arrays = {k: np.array(payload[k])
                      for k in payload.files if k != "meta"}
        meta["graph"]["seed"] = 999
        with open(path, "wb") as fh:
            np.savez(fh, meta=np.asarray(json.dumps(meta, sort_keys=True)),
                     **arrays)
        loaded = Service.load(path)
        after = loaded.query_all()
        for pid in before:
            assert np.array_equal(before[pid].ids, after[pid].ids)


class TestShims:
    """Old constructors keep working and agree with their registry twins."""

    def test_rdt_constructor_shim(self, points):
        index = repro.LinearScanIndex(points)
        old = repro.RDT(index, variant="rdt+")
        new = repro.create_engine("rdt+", index)
        a = old.query(query_index=4, k=5, t=8.0)
        b = new.query(query_index=4, k=5, t=8.0)
        assert np.array_equal(a.ids, b.ids)

    def test_approx_constructor_shim(self, points):
        index = repro.LinearScanIndex(points)
        old = repro.ApproxRkNN(index, "sampled", sample_size=32, seed=1)
        new = repro.create_engine(
            "approx-sampled", index, sample_size=32, seed=1
        )
        a = old.query(query_index=4, k=5)
        b = new.query(query_index=4, k=5)
        assert np.array_equal(a.ids, b.ids)
        assert old.engine_name == new.engine_name == "approx-sampled"

    def test_baseline_constructor_shims(self, points):
        naive = repro.NaiveRkNN(points, k=5)
        assert np.array_equal(
            naive.query(query_index=2).ids,
            repro.create_engine("naive", points, k=5).query(query_index=2).ids,
        )
        sft = repro.SFT(repro.LinearScanIndex(points))
        assert sft.query(query_index=2, k=5).k == 5

    def test_mining_variant_shim(self, points):
        from repro.mining import rknn_self_join

        index = repro.KDTreeIndex(points)
        via_variant = rknn_self_join(index, k=4, t=1e30, variant="rdt+")
        via_engine = rknn_self_join(index, k=4, t=1e30, engine="rdt+")
        for pid in via_variant.neighborhoods:
            assert np.array_equal(
                via_variant.neighborhoods[pid], via_engine.neighborhoods[pid]
            )
