"""Mixed-dtype handling across engines and the Service dtype knob.

The metric owns the numeric policy: every operand is coerced to the
storage dtype on entry, so a float32 query against a float64 index (and
vice versa) answers exactly as the pre-cast query would.  The Service
carries the knob through construction, spec validation, and the
format-version-2 save/load payload.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.rdt import RDT
from repro.distances import EuclideanMetric
from repro.indexes import create_index
from repro.service import (
    SERVICE_FORMAT_VERSION,
    QuerySpec,
    Service,
)

BACKENDS = ("linear-scan", "kd-tree", "ball-tree")


def _engine(backend, points, dtype):
    metric = EuclideanMetric(dtype=dtype)
    return RDT(create_index(backend, points.astype(dtype), metric=metric))


def _same_results(a, b):
    assert list(a.ids) == list(b.ids)
    assert a.stats.num_retrieved == b.stats.num_retrieved
    assert a.stats.terminated_by == b.stats.terminated_by


# ----------------------------------------------------------------------
# Engine layer: queries are coerced to the index's storage dtype
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("storage", [np.float64, np.float32])
def test_query_coerces_foreign_dtype(backend, storage, rng):
    points = rng.normal(size=(300, 4))
    engine = _engine(backend, points, storage)
    foreign = np.float32 if storage == np.float64 else np.float64
    q = rng.normal(size=4).astype(foreign)
    got = engine.query(q, k=4, t=4.0)
    want = engine.query(q.astype(storage), k=4, t=4.0)
    _same_results(got, want)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("storage", [np.float64, np.float32])
def test_query_batch_coerces_foreign_dtype(backend, storage, rng):
    points = rng.normal(size=(300, 4))
    engine = _engine(backend, points, storage)
    foreign = np.float32 if storage == np.float64 else np.float64
    qs = rng.normal(size=(12, 4)).astype(foreign)
    got = engine.query_batch(qs, k=4, t=4.0)
    want = engine.query_batch(qs.astype(storage), k=4, t=4.0)
    for a, b in zip(got, want):
        _same_results(a, b)


@pytest.mark.parametrize("backend", BACKENDS)
def test_query_all_matches_across_storage_dtypes_on_exact_data(backend):
    # Float32-native coordinates are exactly representable at both storage
    # dtypes, so with this seed's comfortable decision margins the
    # self-join answers agree id-for-id.
    rng = np.random.default_rng(21)
    points = rng.normal(size=(200, 3)).astype(np.float32).astype(np.float64)
    f64 = _engine(backend, points, np.float64)
    f32 = _engine(backend, points, np.float32)
    a = f64.query_all(k=3, t=4.0)
    b = f32.query_all(k=3, t=4.0)
    assert sorted(a) == sorted(b)
    for key in a:
        assert sorted(a[key].ids) == sorted(b[key].ids), key


def test_metric_dtype_governs_storage(rng):
    points = rng.normal(size=(50, 3))  # float64 input
    index = create_index(
        "kd-tree", points, metric=EuclideanMetric(dtype=np.float32)
    )
    assert index.points.dtype == np.float32
    assert index.metric.dtype == np.float32


# ----------------------------------------------------------------------
# Service dtype knob
# ----------------------------------------------------------------------
def test_service_dtype_knob_builds_float32(rng):
    points = rng.normal(size=(200, 4)).astype(np.float32)
    svc = Service(points, dtype="float32")
    assert svc.index.points.dtype == np.float32
    assert svc.metric.dtype == np.float32
    result = svc.query(rng.normal(size=4).astype(np.float32), k=3)
    assert result.k == 3
    assert all(0 <= i < 200 for i in result.ids)


def test_service_default_dtype_stays_float64(rng):
    svc = Service(rng.normal(size=(100, 3)))
    assert svc.index.points.dtype == np.float64
    assert svc.metric.dtype == np.float64


def test_service_dtype_conflicts_with_metric_instance(rng):
    with pytest.raises(ValueError):
        Service(
            rng.normal(size=(50, 3)),
            metric=EuclideanMetric(dtype=np.float64),
            dtype="float32",
        )


def test_service_adopted_index_dtype_cross_check(rng):
    points = rng.normal(size=(80, 3))
    index = create_index(
        "kd-tree", points, metric=EuclideanMetric(dtype=np.float32)
    )
    svc = Service(index, dtype="float32")  # matching: fine
    assert svc.index is index
    with pytest.raises(ValueError, match="conflicts with the adopted"):
        Service(index, dtype="float64")


def test_query_spec_validates_dtype_name():
    assert QuerySpec(dtype="float32").dtype == "float32"
    assert QuerySpec(dtype=None).dtype is None
    with pytest.raises(ValueError, match="dtype"):
        QuerySpec(dtype="int32")


def test_spec_dtype_mismatch_raises(rng):
    points = rng.normal(size=(120, 3)).astype(np.float32)
    svc = Service(points, dtype="float32")
    q = rng.normal(size=3).astype(np.float32)
    svc.query(q, k=3, spec=QuerySpec(dtype="float32"))  # matching: fine
    with pytest.raises(ValueError, match="stores 'float32' points"):
        svc.query(q, k=3, spec=QuerySpec(dtype="float64"))


def test_float32_service_save_load_round_trip(tmp_path, rng):
    points = rng.normal(size=(250, 4)).astype(np.float32)
    svc = Service(points, dtype="float32")
    svc.remove(7)
    path = svc.save(tmp_path / "svc32.npz")
    back = Service.load(path)
    assert back.index.points.dtype == np.float32
    assert back.metric.dtype == np.float32
    a = svc.query_all(k=3)
    b = back.query_all(k=3)
    assert sorted(a) == sorted(b)
    for key in a:
        assert list(a[key].ids) == list(b[key].ids), key


def test_save_header_records_dtype(tmp_path, rng):
    svc = Service(rng.normal(size=(60, 3)).astype(np.float32), dtype="float32")
    path = svc.save(tmp_path / "svc.npz")
    with np.load(path, allow_pickle=False) as payload:
        meta = json.loads(str(payload["meta"][()]))
    assert meta["format_version"] == SERVICE_FORMAT_VERSION == 3
    assert meta["dtype"] == "float32"
    assert meta["metric"]["dtype"] == "float32"


def _rewrite_payload(src, dst, mutate):
    with np.load(src, allow_pickle=False) as payload:
        arrays = {name: np.array(payload[name]) for name in payload.files}
    meta = json.loads(str(arrays["meta"][()]))
    mutate(arrays, meta)
    arrays["meta"] = np.asarray(json.dumps(meta, sort_keys=True))
    with open(dst, "wb") as fh:
        np.savez(fh, **arrays)
    return dst


def test_version1_payload_loads_as_float64(tmp_path, rng):
    svc = Service(rng.normal(size=(90, 3)))
    path = svc.save(tmp_path / "v2.npz")

    def make_v1(arrays, meta):
        # Version-1 payloads predate the dtype knob entirely.
        meta["format_version"] = 1
        del meta["dtype"]
        del meta["metric"]["dtype"]
        arrays["points"] = arrays["points"].astype(np.float32)

    legacy = _rewrite_payload(path, tmp_path / "v1.npz", make_v1)
    back = Service.load(legacy)
    assert back.index.points.dtype == np.float64
    assert back.metric.dtype == np.float64


def test_corrupt_dtype_header_rejected(tmp_path, rng):
    svc = Service(rng.normal(size=(40, 3)))
    path = svc.save(tmp_path / "ok.npz")

    def corrupt(arrays, meta):
        meta["dtype"] = "float32"  # header no longer matches the matrix

    bad = _rewrite_payload(path, tmp_path / "bad.npz", corrupt)
    with pytest.raises(ValueError, match="corrupt Service payload"):
        Service.load(bad)


def test_unknown_format_version_rejected(tmp_path, rng):
    svc = Service(rng.normal(size=(40, 3)))
    path = svc.save(tmp_path / "ok.npz")

    def bump(arrays, meta):
        meta["format_version"] = 99

    bad = _rewrite_payload(path, tmp_path / "future.npz", bump)
    with pytest.raises(ValueError, match="format_version"):
        Service.load(bad)
