"""Input-validation parity across every engine in the registry.

Every engine sits behind the same Service facade, so malformed input
must fail the same way no matter which engine is active: one error type,
one message, raised before any engine-specific machinery runs.  These
tests sweep the whole :data:`repro.engines.ENGINE_REGISTRY` (bichromatic
excluded — it is not a primary engine) and assert the *exact* parity,
which is what keeps callers' error handling engine-agnostic.

Two of the cases are regressions:

* scalar queries (``sv.query(np.float64(3.0))``) used to crash the
  approximate engines with a bare ``IndexError`` from the batch
  promotion instead of the shared ``ValueError``;
* unknown :class:`~repro.service.QuerySpec` override kwargs
  (``sv.query(query_index=0, kk=3)``) used to surface as a raw
  ``dataclasses.replace`` TypeError naming ``QuerySpec.__init__``.
"""

import numpy as np
import pytest

from repro.engines import ENGINE_REGISTRY
from repro.service import QuerySpec, Service

DIM = 3
K = 3

ENGINES = sorted(name for name in ENGINE_REGISTRY if name != "bichromatic")


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(42).normal(size=(60, DIM))


@pytest.fixture(scope="module", params=ENGINES)
def svc(request, points):
    return Service(
        points,
        backend="kd",
        engine=request.param,
        defaults=QuerySpec(k=K, t=1e30),
    )


class TestQueryPointValidation:
    def test_scalar_query_rejected_identically(self, svc):
        with pytest.raises(
            ValueError, match=r"query must be a single point, got shape \(\)"
        ) as exc:
            svc.query(np.float64(3.0))
        assert type(exc.value) is ValueError

    def test_wrong_dimension_rejected_identically(self, svc):
        with pytest.raises(ValueError, match="dimension") as exc:
            svc.query(np.zeros(DIM + 2))
        assert type(exc.value) is ValueError

    def test_non_finite_query_rejected(self, svc):
        with pytest.raises(ValueError, match="NaN or infinite"):
            svc.query(np.full(DIM, np.nan))

    def test_three_dim_array_rejected(self, svc):
        with pytest.raises(ValueError, match="single point"):
            svc.query(np.zeros((2, 2, DIM)))


class TestKValidation:
    def test_k_zero_rejected(self, svc):
        with pytest.raises(ValueError, match=">= 1"):
            svc.query(query_index=0, k=0)

    def test_k_negative_rejected(self, svc):
        with pytest.raises(ValueError, match=">= 1"):
            svc.query(query_index=0, k=-2)

    def test_k_non_integer_rejected(self, svc):
        with pytest.raises(TypeError, match="integer"):
            svc.query(query_index=0, k=2.5)


class TestBatchValidation:
    def test_empty_index_batch_returns_empty_list(self, svc):
        assert svc.query_batch(query_indices=[]) == []

    def test_empty_raw_batch_returns_empty_list(self, svc):
        assert svc.query_batch(np.empty((0, DIM))) == []

    def test_both_queries_and_indices_rejected(self, svc):
        with pytest.raises(ValueError, match="exactly one"):
            svc.query_batch(np.zeros((1, DIM)), query_indices=[0])


class TestSpecKnobValidation:
    def test_unknown_knob_named_in_error(self, svc):
        with pytest.raises(TypeError, match="unknown query knob 'kk'"):
            svc.query(query_index=0, kk=3)

    def test_unknown_knob_suggests_closest(self, svc):
        with pytest.raises(TypeError, match=r"did you mean 'k'\?"):
            svc.query(query_index=0, kk=3)

    def test_member_alias_points_at_query_index(self, svc):
        with pytest.raises(TypeError, match="pass query_index"):
            svc.query(query_index=0, member=3)

    def test_query_id_alias_points_at_query_index(self, svc):
        with pytest.raises(TypeError, match="pass query_index"):
            svc.query_batch(query_indices=[0], query_id=3)

    def test_error_lists_valid_knobs(self, svc):
        with pytest.raises(TypeError, match="valid knobs:.*margin.*t"):
            svc.query(query_index=0, bogus=1)

    def test_known_knobs_still_validate(self, svc):
        with pytest.raises(ValueError, match=">= 1"):
            svc.query(query_index=0, sample_size=0)


def test_sweep_covers_whole_registry():
    # The parametrized fixture above must not silently shrink when
    # engines are added: everything except bichromatic is swept.
    assert set(ENGINES) == set(ENGINE_REGISTRY) - {"bichromatic"}
    assert "approx-graph" in ENGINES


def test_scalar_message_identical_across_engines(points):
    """The cross-engine parity check proper: one message, verbatim."""
    messages = set()
    for name in ENGINES:
        svc = Service(
            points, backend="kd", engine=name, defaults=QuerySpec(k=K, t=1e30)
        )
        with pytest.raises(ValueError) as exc:
            svc.query(np.float64(3.0))
        messages.add(str(exc.value))
    assert messages == {"query must be a single point, got shape ()"}
