"""Unit tests for the approximate-search strategies.

The deterministic halves of each strategy's contract are asserted exactly
(they are guarantees, not statistics): the sampled estimator's shortlist
is a superset of the true result set (its sampled table is a provable
upper bound), and the LSH filter never emits an unverified id.  The
statistical halves (recall of LSH, precision of the sampled accept path)
are exercised on seeded data in the oracle harness (``tests/oracle``) and
the evaluation benchmark.
"""

import numpy as np
import pytest

from repro.approx import (
    APPROX_STRATEGIES,
    ApproxRkNN,
    LSHFilter,
    SampledKNNEstimator,
    build_strategy,
)
from repro.baselines import NaiveRkNN
from repro.indexes import LinearScanIndex


@pytest.fixture(scope="module")
def index(medium_mixture):
    return LinearScanIndex(medium_mixture)


@pytest.fixture(scope="module")
def naive(medium_mixture):
    return NaiveRkNN(medium_mixture, k=7)


class TestRegistry:
    def test_build_by_name(self, index):
        assert isinstance(build_strategy("lsh", index), LSHFilter)
        assert isinstance(build_strategy("sampled", index), SampledKNNEstimator)

    def test_unknown_name_raises(self, index):
        with pytest.raises(ValueError, match="unknown approximate strategy"):
            build_strategy("annoy", index)

    def test_registry_names_match_classes(self):
        for name, cls in APPROX_STRATEGIES.items():
            assert cls.name == name


class TestSampledEstimator:
    def test_upper_bound_dominates_exact(self, index, medium_mixture):
        """The sampled table must upper-bound the true kNN distance
        everywhere — this is the recall guarantee."""
        strategy = SampledKNNEstimator(index, sample_size=100, seed=5)
        strategy.ensure_current()
        upper, _ = strategy._table(7)
        exact = index.knn_distances(
            medium_mixture, 7, exclude_indices=np.arange(len(medium_mixture))
        )
        assert np.all(upper >= exact - 1e-9 * np.abs(exact))

    def test_full_sample_degenerates_to_exact(self, index, naive, medium_mixture):
        """sample_size >= n makes the upper bound exact, so with the accept
        path disabled the strategy answers exactly."""
        engine = ApproxRkNN(
            index, "sampled", sample_size=len(medium_mixture), margin=1.0, seed=0
        )
        for qi in range(0, len(medium_mixture), 97):
            got = engine.query(query_index=qi, k=7)
            assert np.array_equal(got.ids, naive.query_ids(query_index=qi))

    def test_shortlist_is_superset_of_truth(self, index, naive, medium_mixture):
        engine = ApproxRkNN(index, "sampled", sample_size=64, seed=3)
        results = engine.query_batch(
            query_indices=np.arange(0, len(medium_mixture), 13), k=7
        )
        for qi, result in zip(range(0, len(medium_mixture), 13), results):
            truth = set(naive.query_ids(query_index=qi).tolist())
            assert truth <= set(result.ids.tolist())

    def test_margin_one_never_accepts(self, index):
        engine = ApproxRkNN(index, "sampled", sample_size=64, margin=1.0, seed=3)
        results = engine.query_batch(query_indices=np.arange(40), k=7)
        assert all(r.stats.num_lazy_accepts == 0 for r in results)
        assert all(r.lazy_accepted_ids.shape[0] == 0 for r in results)

    def test_margin_validation(self, index):
        with pytest.raises(ValueError, match="margin"):
            SampledKNNEstimator(index, margin=1.5)
        with pytest.raises(ValueError, match="margin"):
            SampledKNNEstimator(index, margin=-0.1)

    def test_correction_factor_is_contractive(self, index):
        """The sampled bound over-estimates, so calibration must measure a
        correction at most ~1."""
        strategy = SampledKNNEstimator(index, sample_size=100, seed=5)
        strategy.ensure_current()
        strategy._table(7)
        assert 0.0 < strategy.corrections[7] <= 1.0 + 1e-9

    def test_tables_cached_per_k(self, index):
        strategy = SampledKNNEstimator(index, sample_size=64, seed=5)
        strategy.ensure_current()
        first = strategy._table(5)
        assert strategy._table(5) is first
        assert strategy._table(6) is not first

    def test_deterministic_given_seed(self, medium_mixture):
        a = ApproxRkNN(LinearScanIndex(medium_mixture), "sampled", seed=9)
        b = ApproxRkNN(LinearScanIndex(medium_mixture), "sampled", seed=9)
        ra = a.query_batch(query_indices=np.arange(30), k=5)
        rb = b.query_batch(query_indices=np.arange(30), k=5)
        for x, y in zip(ra, rb):
            assert np.array_equal(x.ids, y.ids)


class TestLSHFilter:
    def test_everything_is_verified(self, index):
        """LSH never accepts unverified — precision-1 by construction."""
        engine = ApproxRkNN(index, "lsh", n_tables=4, seed=2)
        results = engine.query_batch(query_indices=np.arange(50), k=7)
        for result in results:
            assert result.stats.num_lazy_accepts == 0
            assert result.stats.num_verified == result.stats.num_candidates

    def test_results_subset_of_truth(self, index, naive):
        """Every reported id passes the exact membership test."""
        engine = ApproxRkNN(index, "lsh", n_tables=4, seed=2)
        results = engine.query_batch(query_indices=np.arange(0, 800, 11), k=7)
        for qi, result in zip(range(0, 800, 11), results):
            truth = set(naive.query_ids(query_index=qi).tolist())
            assert set(result.ids.tolist()) <= truth

    def test_more_tables_never_lose_candidates(self, index):
        few = LSHFilter(index, n_tables=2, seed=4)
        many = LSHFilter(index, n_tables=6, seed=4)
        queries = index.points[:40]
        exclude = np.arange(40, dtype=np.intp)
        d_few = few.decide_batch(queries, exclude, 7)
        d_many = many.decide_batch(queries, exclude, 7)
        for a, b in zip(d_few, d_many):
            # Same seed: the first 2 tables of `many` are `few`'s tables.
            assert set(a.pending_ids.tolist()) <= set(b.pending_ids.tolist())

    def test_duplicate_data_shares_buckets(self, duplicated_points):
        """Exact duplicates always collide, so recall on duplicate-heavy
        data cannot be lost to hashing between duplicates."""
        index = LinearScanIndex(duplicated_points)
        strategy = LSHFilter(index, n_tables=1, seed=0)
        strategy.ensure_current()
        dup_rows = np.flatnonzero(
            (duplicated_points == duplicated_points[0]).all(axis=1)
        )
        decision = strategy.decide_batch(
            duplicated_points[:1], np.asarray([-1], dtype=np.intp), 3
        )[0]
        assert set(dup_rows.tolist()) <= set(decision.pending_ids.tolist())

    def test_bucket_width_validation(self, index):
        with pytest.raises(ValueError, match="bucket_width"):
            LSHFilter(index, bucket_width=0.0)

    def test_explicit_width_used(self, index):
        strategy = LSHFilter(index, bucket_width=2.5)
        strategy.ensure_current()
        assert strategy.width == 2.5


class TestCacheInvalidation:
    @pytest.mark.parametrize("name", sorted(APPROX_STRATEGIES))
    def test_rebuild_after_insert_and_remove(self, name, small_gaussian):
        index = LinearScanIndex(small_gaussian[:100])
        engine = ApproxRkNN(index, name, seed=6)
        before = engine.query(query_index=0, k=4)
        assert 7 in before or 7 not in before  # materialize
        new_id = index.insert(small_gaussian[150])
        index.remove(1)
        after = engine.query(query_index=0, k=4)
        # The fresh structure must know about the new point and must have
        # dropped the removed one.
        naive_after = NaiveRkNN(
            index.points[index.active_ids()], k=4
        )
        active = index.active_ids()
        expected = active[naive_after.query_ids(
            query_index=int(np.searchsorted(active, 0))
        )]
        assert 1 not in after.ids
        # sampled guarantees the full truth; lsh at least never reports
        # the removed id and stays a subset of the active set.
        assert set(after.ids.tolist()) <= set(active.tolist())
        if name == "sampled":
            assert set(expected.tolist()) <= set(after.ids.tolist())
        assert new_id in {int(i) for i in active}
