"""Engine-level tests: RDT parity of shape/semantics for ApproxRkNN.

``ApproxRkNN.query_batch`` must honor the exact engine's calling
convention — same argument validation, same result containers, same
input-order/shape guarantees — so harness code can swap engines freely.
"""

import numpy as np
import pytest

from repro.approx import ApproxRkNN, SampledKNNEstimator
from repro.core import RDT, RkNNResult
from repro.indexes import LinearScanIndex


@pytest.fixture(scope="module")
def index(medium_mixture):
    return LinearScanIndex(medium_mixture)


@pytest.fixture(scope="module")
def engine(index):
    return ApproxRkNN(index, "sampled", sample_size=128, seed=1)


class TestCallingConvention:
    def test_both_query_forms_raise(self, engine):
        with pytest.raises(ValueError, match="exactly one"):
            engine.query(np.zeros(6), query_index=3, k=4)
        with pytest.raises(ValueError, match="exactly one"):
            engine.query(k=4)

    def test_batch_both_forms_raise(self, engine):
        with pytest.raises(ValueError, match="exactly one"):
            engine.query_batch(np.zeros((2, 6)), query_indices=[0, 1], k=4)
        with pytest.raises(ValueError, match="exactly one"):
            engine.query_batch(k=4)

    def test_out_of_range_indices_raise(self, engine):
        with pytest.raises(IndexError, match="out of range"):
            engine.query_batch(query_indices=[10**6], k=4)

    def test_removed_index_raises(self, medium_mixture):
        index = LinearScanIndex(medium_mixture[:50])
        index.remove(3)
        eng = ApproxRkNN(index, "sampled", seed=0)
        with pytest.raises(KeyError, match="removed"):
            eng.query_batch(query_indices=[3], k=4)

    def test_wrong_dim_raises(self, engine):
        with pytest.raises(ValueError, match="shape"):
            engine.query_batch(np.zeros((2, 3)), k=4)

    def test_empty_batches(self, engine):
        assert engine.query_batch(query_indices=[], k=4) == []
        assert engine.query_batch(np.empty((0, 6)), k=4) == []

    def test_bad_k_raises(self, engine):
        with pytest.raises(ValueError, match="k"):
            engine.query_batch(query_indices=[0], k=0)

    def test_strategy_instance_with_kwargs_raises(self, index):
        strategy = SampledKNNEstimator(index, seed=0)
        with pytest.raises(ValueError, match="strategy_kwargs"):
            ApproxRkNN(index, strategy, sample_size=32)

    def test_strategy_bound_to_other_index_raises(self, index, small_gaussian):
        other = LinearScanIndex(small_gaussian)
        strategy = SampledKNNEstimator(other, seed=0)
        with pytest.raises(ValueError, match="different index"):
            ApproxRkNN(index, strategy)


class TestResultShape:
    def test_results_in_input_order(self, engine):
        qis = np.array([40, 3, 77, 3], dtype=np.intp)
        results = engine.query_batch(query_indices=qis, k=5)
        assert len(results) == 4
        # Duplicate query indices get identical answers.
        assert np.array_equal(results[1].ids, results[3].ids)
        for result in results:
            assert isinstance(result, RkNNResult)
            assert result.k == 5
            assert np.isnan(result.t)
            assert np.all(np.diff(result.ids) > 0)  # sorted, unique

    def test_single_query_equals_batch_row(self, engine):
        single = engine.query(query_index=11, k=5)
        batch = engine.query_batch(query_indices=[11, 12], k=5)[0]
        assert np.array_equal(single.ids, batch.ids)

    def test_raw_point_query(self, engine, medium_mixture):
        """A raw query equal to a member must include that member (no
        self-exclusion for non-member queries)."""
        result = engine.query(medium_mixture[5], k=5)
        member = engine.query(query_index=5, k=5)
        assert 5 not in member
        got = set(result.ids.tolist())
        assert got >= set(member.ids.tolist())

    def test_query_all_covers_active_points(self, medium_mixture):
        index = LinearScanIndex(medium_mixture[:60])
        index.remove(7)
        eng = ApproxRkNN(index, "sampled", sample_size=59, seed=0)
        results = eng.query_all(k=4)
        assert set(results) == set(index.active_ids().tolist())
        assert all(7 not in r.ids for r in results.values())

    def test_shape_matches_rdt_batch(self, engine, index):
        """Same workload through RDT and ApproxRkNN: same container shapes."""
        qis = np.arange(0, 100, 9, dtype=np.intp)
        exact = RDT(index).query_batch(query_indices=qis, k=4, t=8.0)
        approx = engine.query_batch(query_indices=qis, k=4)
        assert len(exact) == len(approx)
        for e, a in zip(exact, approx):
            assert type(e) is type(a)
            assert e.ids.dtype == a.ids.dtype


class TestUnderfullActiveSet:
    @pytest.mark.parametrize("name", ["sampled", "lsh"])
    def test_query_never_its_own_reverse_neighbor(self, name, small_gaussian):
        """Regression: with fewer than k other active points every kNN
        distance is inf, so every member (tolerantly) contains every
        query — including, formerly, the query itself in the sampled
        path (inf <= inf passed the candidate test on the masked own
        column)."""
        index = LinearScanIndex(small_gaussian[:20])
        for i in range(15):
            index.remove(i)
        engine = ApproxRkNN(index, name, seed=0)
        for qi in index.active_ids():
            result = engine.query(query_index=int(qi), k=6)
            assert int(qi) not in result.ids
        # Parity with the exact engine in the same regime.
        rdt = RDT(index)
        approx = engine.query_batch(query_indices=index.active_ids(), k=6)
        exact = rdt.query_batch(query_indices=index.active_ids(), k=6, t=1e30)
        for a, e in zip(approx, exact):
            if name == "sampled":
                assert np.array_equal(a.ids, e.ids)
            else:
                assert set(a.ids.tolist()) <= set(e.ids.tolist())


class TestStats:
    def test_counter_identities(self, engine):
        results = engine.query_batch(query_indices=np.arange(60), k=6)
        for result in results:
            stats = result.stats
            assert stats.terminated_by == "approx-sampled"
            assert (
                stats.num_lazy_accepts + stats.num_verified
                == stats.num_candidates
            )
            assert stats.num_verified_hits <= stats.num_verified
            assert len(result) == stats.num_lazy_accepts + stats.num_verified_hits
            assert stats.num_retrieved == engine.index.size
            assert stats.filter_seconds >= 0.0
            assert stats.total_seconds >= stats.refine_seconds

    def test_distance_calls_attributed(self, engine):
        metric = engine.index.metric
        before = metric.num_calls
        results = engine.query_batch(query_indices=np.arange(40), k=6)
        spent = metric.num_calls - before
        attributed = sum(r.stats.num_distance_calls for r in results)
        # Even per-query attribution of shared kernels, up to rounding.
        assert attributed == pytest.approx(spent, rel=0.01, abs=len(results))


class TestKthReuse:
    def test_member_batch_skips_index_verification(self, medium_mixture):
        """In an all-members batch, every pending candidate is a query row
        whose exact kNN distance fell out of the strategy scan — the engine
        must not issue per-candidate knn_distances work on the index."""
        index = LinearScanIndex(medium_mixture[:200])
        eng = ApproxRkNN(index, "sampled", sample_size=64, seed=2)
        eng.strategy.ensure_current()
        eng.strategy._table(5)

        calls = {"n": 0}
        original = index.knn_distances

        def counting(points, k, exclude_indices=None):
            calls["n"] += 1
            return original(points, k, exclude_indices=exclude_indices)

        index.knn_distances = counting
        try:
            results = eng.query_batch(
                query_indices=index.active_ids(), k=5
            )
        finally:
            del index.knn_distances
        assert len(results) == 200
        assert calls["n"] == 0

    def test_reused_kth_matches_fresh_verification(self, medium_mixture):
        """Raw-point batches (no reuse possible) and member batches must
        agree on the members' neighborhoods."""
        index = LinearScanIndex(medium_mixture[:150])
        eng = ApproxRkNN(index, "sampled", sample_size=64, seed=2)
        member = eng.query_batch(query_indices=np.arange(150), k=5)
        raw = eng.query_batch(medium_mixture[:150], k=5)
        for qi, (mem, r) in enumerate(zip(member, raw)):
            raw_ids = set(r.ids.tolist()) - {qi}
            assert raw_ids == set(mem.ids.tolist())
