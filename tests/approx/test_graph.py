"""Unit tests for the HRNN-style graph strategy.

The graph's deterministic contracts are asserted exactly: the base-layer
edge distances are the exact self-excluded kNN distances (the d_k cache),
the reverse adjacency is the transpose of the forward edges, member
queries with ``k <= graph_m`` recover the *exact* RkNN answer (the
reverse list is a complete shortlist up to k-th-distance ties), and every
reported id — member or navigated — survives the exact membership test
(precision 1, like the LSH filter).  Statistical recall of the navigated
path is measured in the oracle harness and ``BENCH_approx.json``.
"""

import numpy as np
import pytest

from repro.approx import ApproxRkNN, GraphRkNNStrategy, build_strategy
from repro.baselines import NaiveRkNN
from repro.indexes import LinearScanIndex

K = 7


@pytest.fixture(scope="module")
def index(medium_mixture):
    return LinearScanIndex(medium_mixture)


@pytest.fixture(scope="module")
def naive(medium_mixture):
    return NaiveRkNN(medium_mixture, k=K)


@pytest.fixture(scope="module")
def built(index):
    strategy = GraphRkNNStrategy(index, graph_m=12, ef=48, seed=5)
    strategy.ensure_current()
    return strategy


class TestConstruction:
    def test_build_by_name(self, index):
        assert isinstance(build_strategy("graph", index), GraphRkNNStrategy)

    def test_knob_validation(self, index):
        with pytest.raises(ValueError, match="graph_m"):
            GraphRkNNStrategy(index, graph_m=0)
        with pytest.raises(ValueError, match="ef"):
            GraphRkNNStrategy(index, ef=-3)
        with pytest.raises(TypeError, match="ef"):
            GraphRkNNStrategy(index, ef=2.5)

    def test_deterministic_given_seed(self, medium_mixture):
        a = GraphRkNNStrategy(LinearScanIndex(medium_mixture), seed=9)
        b = GraphRkNNStrategy(LinearScanIndex(medium_mixture), seed=9)
        a.ensure_current()
        b.ensure_current()
        assert np.array_equal(a._nbr, b._nbr)
        assert np.array_equal(a._levels, b._levels)
        assert a._entry == b._entry

    def test_seed_changes_levels_not_edges(self, medium_mixture):
        a = GraphRkNNStrategy(LinearScanIndex(medium_mixture), seed=1)
        b = GraphRkNNStrategy(LinearScanIndex(medium_mixture), seed=2)
        a.ensure_current()
        b.ensure_current()
        # The base layer is exact kNN — seed-independent; only the layer
        # hierarchy is randomized.
        assert np.array_equal(a._nbr, b._nbr)
        assert not np.array_equal(a._levels, b._levels)


class TestGraphInvariants:
    def test_edge_distances_are_exact_knn(self, built, index, medium_mixture):
        """The sorted neighbor distances ARE the exact d_k cache."""
        n = len(medium_mixture)
        for k in (1, 5, built.degree):
            exact = index.knn_distances(
                medium_mixture, k, exclude_indices=np.arange(n)
            )
            np.testing.assert_allclose(built._nbr_dist[:, k - 1], exact)

    def test_reverse_adjacency_is_edge_transpose(self, built):
        n = built._active.shape[0]
        for q in range(0, n, 53):
            lo, hi = built._rev_indptr[q], built._rev_indptr[q + 1]
            from_csr = set(built._rev_indices[lo:hi].tolist())
            from_edges = set(np.flatnonzero((built._nbr == q).any(axis=1)))
            assert from_csr == from_edges

    def test_layers_nest(self, built):
        prev = np.arange(built._active.shape[0])
        for members, nbrs in built._layers:
            assert np.isin(members, prev).all()
            assert members.shape[0] < prev.shape[0]
            assert nbrs.shape[0] == members.shape[0]
            prev = members
        assert built._levels[built._entry] == built._levels.max()

    def test_no_self_edges(self, built):
        n = built._active.shape[0]
        own = np.arange(n)[:, None]
        assert not (built._nbr == own).any()


class TestMemberQueries:
    def test_join_matches_naive_exactly(self, index, naive, medium_mixture):
        """k <= graph_m: the reverse list is a complete shortlist, so the
        verified answer is the exact RkNN result."""
        engine = ApproxRkNN(index, "graph", graph_m=12, ef=48, seed=5)
        results = engine.query_all(k=K)
        for qi in range(len(medium_mixture)):
            expected = naive.query_ids(query_index=qi)
            assert np.array_equal(results[qi].ids, expected), qi

    def test_join_needs_no_knn_distance_calls(self, medium_mixture, monkeypatch):
        """query_kth reuse: the self-join verifies entirely from the d_k
        cache the build produced — zero knn_distances calls."""
        index = LinearScanIndex(medium_mixture)
        engine = ApproxRkNN(index, "graph", graph_m=12, seed=5)
        engine.strategy.ensure_current()

        def boom(*args, **kwargs):
            raise AssertionError("query_all must not call knn_distances")

        monkeypatch.setattr(index, "knn_distances", boom)
        results = engine.query_all(k=K)
        assert len(results) == len(medium_mixture)

    def test_large_k_still_subset_of_truth(self, index, medium_mixture):
        """k > graph_m falls back to beam search; precision stays 1."""
        k = 20
        truth = NaiveRkNN(medium_mixture, k=k)
        engine = ApproxRkNN(index, "graph", graph_m=12, ef=64, seed=5)
        for qi in range(0, len(medium_mixture), 61):
            got = set(engine.query(query_index=qi, k=k).ids.tolist())
            assert got <= set(truth.query_ids(query_index=qi).tolist())

    def test_never_accepts_unverified(self, index):
        engine = ApproxRkNN(index, "graph", seed=2)
        results = engine.query_batch(query_indices=np.arange(50), k=K)
        for result in results:
            assert result.stats.num_lazy_accepts == 0
            assert result.stats.num_verified == result.stats.num_candidates


class TestRawQueries:
    def test_results_subset_of_truth(self, index, naive, medium_mixture):
        """Raw (navigated) queries: precision 1 by construction."""
        engine = ApproxRkNN(index, "graph", graph_m=12, ef=48, seed=5)
        rng = np.random.default_rng(11)
        queries = medium_mixture[rng.integers(0, 800, 25)] + 0.05
        results = engine.query_batch(queries, k=K)
        for query, result in zip(queries, results):
            truth = naive.query_ids(query)
            assert set(result.ids.tolist()) <= set(truth.tolist())

    def test_wider_ef_recovers_truth(self, small_gaussian):
        """ef = n on a connected graph (single Gaussian) degenerates the
        beam into an exhaustive scan: the navigated shortlist covers every
        reachable node and the answer is exact.  (On multi-cluster data
        the kNN graph can disconnect — recall is then bounded by the
        query's component, which is the documented approximation.)"""
        index = LinearScanIndex(small_gaussian)
        naive = NaiveRkNN(small_gaussian, k=K)
        engine = ApproxRkNN(
            index, "graph", graph_m=12, ef=len(small_gaussian), seed=5
        )
        rng = np.random.default_rng(12)
        queries = small_gaussian[rng.integers(0, 300, 10)] * 0.97
        results = engine.query_batch(queries, k=K)
        for query, result in zip(queries, results):
            truth = naive.query_ids(query)
            assert np.array_equal(result.ids, np.sort(truth))


class TestDynamics:
    def test_rebuild_after_churn_matches_naive(self, small_gaussian):
        index = LinearScanIndex(small_gaussian[:120])
        engine = ApproxRkNN(index, "graph", graph_m=10, seed=3)
        engine.query(query_index=0, k=4)  # build once
        index.insert(small_gaussian[200])
        index.remove(1)
        index.remove(60)
        active = index.active_ids()
        truth = NaiveRkNN(index.points[active], k=4)
        results = engine.query_batch(query_indices=active, k=4)
        for row, (pid, result) in enumerate(zip(active, results)):
            expected = active[truth.query_ids(query_index=row)]
            assert np.array_equal(result.ids, expected), pid

    def test_duplicate_heavy_data(self, duplicated_points):
        """Tie-rich integer-grid data: precision stays exactly 1, and
        every member *strictly* inside its d_k is found.  (Members tied
        exactly at the k-th distance can be lost to argpartition tie
        breaks during the edge build — the documented recall caveat.)"""
        k = 3
        index = LinearScanIndex(duplicated_points)
        truth = NaiveRkNN(duplicated_points, k=k)
        table = truth.knn_distances  # exact self-excluded d_k per member
        engine = ApproxRkNN(index, "graph", graph_m=8, seed=0)
        results = engine.query_all(k=k)
        for qi in range(len(duplicated_points)):
            expected = truth.query_ids(query_index=qi)
            got = results[qi].ids
            assert set(got.tolist()) <= set(expected.tolist()), qi
            dists = np.linalg.norm(
                duplicated_points - duplicated_points[qi], axis=1
            )
            strict = np.flatnonzero(dists < table - 1e-9)
            strict = strict[strict != qi]
            assert set(strict.tolist()) <= set(got.tolist()), qi


class TestTinyInputs:
    def test_two_points(self):
        index = LinearScanIndex(np.array([[0.0, 0.0], [1.0, 0.0]]))
        engine = ApproxRkNN(index, "graph", seed=0)
        result = engine.query(query_index=0, k=1)
        assert result.ids.tolist() == [1]

    def test_k_exceeds_eligible_set(self):
        """k > n - 1: every member's d_k is inf, so everyone matches."""
        points = np.random.default_rng(0).normal(size=(5, 3))
        index = LinearScanIndex(points)
        engine = ApproxRkNN(index, "graph", seed=0)
        result = engine.query(query_index=2, k=10)
        assert result.ids.tolist() == [0, 1, 3, 4]


class TestPersistenceHooks:
    def test_serialized_round_trip(self, medium_mixture, built):
        payload = built.serialized_graph()
        fresh = GraphRkNNStrategy(
            LinearScanIndex(medium_mixture), graph_m=12, ef=48, seed=5
        )
        assert fresh.adopt_graph(
            payload["graph_node_ids"],
            payload["graph_levels"],
            payload["graph_neighbors"],
            payload["graph_neighbor_dists"],
        )
        # Adoption recomputes layers/CSR deterministically: identical state.
        assert fresh._built_version == fresh.index.version
        assert np.array_equal(fresh._nbr, built._nbr)
        assert np.array_equal(fresh._rev_indices, built._rev_indices)
        assert fresh._entry == built._entry

    def test_adopt_rejects_stale_active_set(self, medium_mixture, built):
        payload = built.serialized_graph()
        other = LinearScanIndex(medium_mixture)
        other.remove(3)
        fresh = GraphRkNNStrategy(other, graph_m=12, seed=5)
        assert not fresh.adopt_graph(
            payload["graph_node_ids"],
            payload["graph_levels"],
            payload["graph_neighbors"],
            payload["graph_neighbor_dists"],
        )
        assert fresh._built_version is None  # lazy rebuild still pending

    def test_adopt_rejects_degree_mismatch(self, medium_mixture, built):
        payload = built.serialized_graph()
        fresh = GraphRkNNStrategy(
            LinearScanIndex(medium_mixture), graph_m=20, seed=5
        )
        assert not fresh.adopt_graph(
            payload["graph_node_ids"],
            payload["graph_levels"],
            payload["graph_neighbors"],
            payload["graph_neighbor_dists"],
        )
