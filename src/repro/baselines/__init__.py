"""Competing RkNN methods from the paper's experimental study (Section 7.1).

* :class:`NaiveRkNN` — brute force; defines the reference semantics;
* :class:`SFT` — approximate, alpha-scaled forward-kNN candidates [40];
* :class:`MRkNNCoP` — exact, precomputed log-log kNN-distance bounds [3];
* :class:`RdNN` — exact, kNN-distance-augmented R*-tree, fixed k [51];
* :class:`TPL` — exact, bisector pruning over an R*-tree [43].
"""

from repro.baselines.mrknncop import MRkNNCoP, fit_log_bounds
from repro.baselines.naive import NaiveRkNN, rknn_brute_force
from repro.baselines.rdnn import RdNN
from repro.baselines.sft import SFT
from repro.baselines.tpl import TPL

__all__ = [
    "NaiveRkNN",
    "rknn_brute_force",
    "SFT",
    "MRkNNCoP",
    "fit_log_bounds",
    "RdNN",
    "TPL",
]
