"""Exact brute-force reverse-kNN — the library's reference semantics.

Every algorithm in the repository is tested and evaluated against this
definition (DESIGN.md "Semantics and conventions"):

    RkNN_k(q) = { x in S \\ {q} :  d(x, q) <= d_k(x) },

where ``d_k(x)`` is the k-th nearest neighbor distance of ``x`` computed
over ``S \\ {x}``, and the comparison is the tolerant ``dist_le`` so that
boundary members (points whose k-th neighbor *is* the query) are classified
identically regardless of which vectorized kernel produced each side.

Two call styles are provided: :class:`NaiveRkNN` precomputes the full
kNN-distance table once and answers any number of queries in O(n) each
(what the evaluation harness uses to build ground truth), while
:func:`rknn_brute_force` answers a single query from scratch.

:class:`NaiveRkNN` implements the :class:`~repro.core.protocol.RkNNEngine`
protocol (``query`` returns an :class:`~repro.core.result.RkNNResult`;
``query_batch`` / ``query_all`` come from the looped mixin default), so
registry-driven code treats the reference like any other engine.  The
historical raw-id surface survives as :meth:`NaiveRkNN.query_ids` — the
oracle harness and ground-truth builder consume bare arrays on purpose.
kNN-distance tables are cached per ``k``, so one instance answers any
neighborhood size; the constructor's ``k`` merely selects the default.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.protocol import EngineBase
from repro.core.result import QueryStats, RkNNResult
from repro.distances import Metric, get_metric
from repro.indexes.bulk_knn import bulk_knn_distances
from repro.utils.tolerance import DIST_ATOL, DIST_RTOL
from repro.utils.validation import as_dataset, as_query_point, check_k

__all__ = ["NaiveRkNN", "rknn_brute_force"]


class NaiveRkNN(EngineBase):
    """Exact RkNN answering backed by a precomputed kNN-distance table."""

    engine_name = "naive"
    guarantee = "exact"
    reads_index_live = False

    def __init__(self, data, k: int, metric: str | Metric | None = None) -> None:
        self.points = as_dataset(data)
        n = self.points.shape[0]
        self.k = check_k(k, n=n - 1, name="k")
        self.metric = get_metric(metric)
        self._tables: dict[int, np.ndarray] = {}
        self._tables_lock = threading.Lock()
        # Build the default-k table eagerly: the common single-k uses pay
        # the O(n^2) cost at construction, where callers expect it.
        self._table(self.k)

    def _table(self, k: int) -> np.ndarray:
        """The k-th NN distance of every point over ``S \\ {x}``, cached.

        Build-once under concurrent callers: the lock-free hit path
        serves the common case, and a double-checked lock makes the
        O(n^2) fill happen exactly once per ``k`` instead of once per
        racing thread.
        """
        table = self._tables.get(k)
        if table is None:
            check_k(k, n=self.points.shape[0] - 1, name="k")
            with self._tables_lock:
                table = self._tables.get(k)
                if table is None:
                    table = bulk_knn_distances(self.points, k, metric=self.metric)
                    self._tables[k] = table
        return table

    @property
    def knn_distances(self) -> np.ndarray:
        """The default-``k`` distance table (historical attribute name)."""
        return self._table(self.k)

    def member_ids(self) -> np.ndarray:
        return np.arange(self.points.shape[0], dtype=np.intp)

    def query_ids(
        self, query=None, *, query_index: int | None = None, k: int | None = None
    ) -> np.ndarray:
        """Exact reverse k-nearest neighbors, ascending point ids."""
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        k = self.k if k is None else check_k(k)
        table = self._table(k)
        if query_index is not None:
            query = self.points[query_index]
        query = as_query_point(query, dim=self.points.shape[1])
        dists = self.metric.to_point(self.points, query)
        slack = DIST_RTOL * np.abs(table) + DIST_ATOL
        members = dists <= table + slack
        if query_index is not None:
            members[query_index] = False
        return np.flatnonzero(members).astype(np.intp)

    def query(
        self, query=None, *, query_index: int | None = None, k: int | None = None
    ) -> RkNNResult:
        """One exact query through the engine protocol's result contract."""
        k = self.k if k is None else check_k(k)
        self._table(k)  # build outside the timed region, like the ctor does
        metric_calls = self.metric.num_calls
        started = time.perf_counter()
        ids = self.query_ids(query, query_index=query_index, k=k)
        stats = QueryStats(
            num_retrieved=self.points.shape[0],
            num_candidates=self.points.shape[0],
            num_verified=self.points.shape[0],
            num_verified_hits=int(ids.shape[0]),
            omega=float("inf"),
            terminated_by="exhausted",
            num_distance_calls=self.metric.num_calls - metric_calls,
            filter_seconds=time.perf_counter() - started,
        )
        return RkNNResult(ids=ids, k=k, t=float("inf"), stats=stats)

    def __repr__(self) -> str:
        return (
            f"NaiveRkNN(n={self.points.shape[0]}, dim={self.points.shape[1]}, "
            f"metric={self.metric.name}, k={self.k})"
        )


def rknn_brute_force(
    data,
    k: int,
    query=None,
    *,
    query_index: int | None = None,
    metric: str | Metric | None = None,
) -> np.ndarray:
    """One-shot exact RkNN query (builds the distance table and discards it)."""
    return NaiveRkNN(data, k, metric=metric).query_ids(query, query_index=query_index)
