"""Exact brute-force reverse-kNN — the library's reference semantics.

Every algorithm in the repository is tested and evaluated against this
definition (DESIGN.md "Semantics and conventions"):

    RkNN_k(q) = { x in S \\ {q} :  d(x, q) <= d_k(x) },

where ``d_k(x)`` is the k-th nearest neighbor distance of ``x`` computed
over ``S \\ {x}``, and the comparison is the tolerant ``dist_le`` so that
boundary members (points whose k-th neighbor *is* the query) are classified
identically regardless of which vectorized kernel produced each side.

Two call styles are provided: :class:`NaiveRkNN` precomputes the full
kNN-distance table once and answers any number of queries in O(n) each
(what the evaluation harness uses to build ground truth), while
:func:`rknn_brute_force` answers a single query from scratch.
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric, get_metric
from repro.indexes.bulk_knn import bulk_knn_distances
from repro.utils.tolerance import DIST_ATOL, DIST_RTOL
from repro.utils.validation import as_dataset, as_query_point, check_k

__all__ = ["NaiveRkNN", "rknn_brute_force"]


class NaiveRkNN:
    """Exact RkNN answering backed by a precomputed kNN-distance table."""

    def __init__(self, data, k: int, metric: str | Metric | None = None) -> None:
        self.points = as_dataset(data)
        n = self.points.shape[0]
        self.k = check_k(k, n=n - 1, name="k")
        self.metric = get_metric(metric)
        #: k-th NN distance of every point over ``S \\ {x}``
        self.knn_distances = bulk_knn_distances(self.points, self.k, metric=self.metric)

    def query(self, query=None, *, query_index: int | None = None) -> np.ndarray:
        """Exact reverse k-nearest neighbors, ascending point ids."""
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        if query_index is not None:
            query = self.points[query_index]
        query = as_query_point(query, dim=self.points.shape[1])
        dists = self.metric.to_point(self.points, query)
        slack = DIST_RTOL * np.abs(self.knn_distances) + DIST_ATOL
        members = dists <= self.knn_distances + slack
        if query_index is not None:
            members[query_index] = False
        return np.flatnonzero(members).astype(np.intp)


def rknn_brute_force(
    data,
    k: int,
    query=None,
    *,
    query_index: int | None = None,
    metric: str | Metric | None = None,
) -> np.ndarray:
    """One-shot exact RkNN query (builds the distance table and discards it)."""
    return NaiveRkNN(data, k, metric=metric).query(query, query_index=query_index)
