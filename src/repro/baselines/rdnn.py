"""Query-method wrapper around the RdNN-tree (Yang & Lin, ICDE 2001).

The index itself lives in :mod:`repro.indexes.rdnn_tree`; this wrapper
gives it the same ``query(...) -> RkNNResult`` surface as every other
method in :mod:`repro.baselines`, so the evaluation harness can drive all
competitors uniformly.  Queries are exact but the tree answers only the
single ``k`` it was precomputed for — asking for another ``k`` raises,
reproducing the inflexibility the paper holds against the method (a new
tree must be built per ``k``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.protocol import EngineBase
from repro.core.result import QueryStats, RkNNResult
from repro.indexes.rdnn_tree import RdNNTreeIndex
from repro.utils.validation import check_k

__all__ = ["RdNN"]


class RdNN(EngineBase):
    """Exact fixed-k RkNN via the kNN-distance-augmented R*-tree."""

    engine_name = "rdnn"
    guarantee = "exact"
    #: the tree's per-point kNN distances are frozen at build time — the
    #: structure is static, so churn requires a rebuild (Service does it).
    reads_index_live = False

    def __init__(self, index: RdNNTreeIndex) -> None:
        if not isinstance(index, RdNNTreeIndex):
            raise TypeError(
                f"RdNN requires an RdNNTreeIndex, got {type(index).__name__}"
            )
        self.index = index
        self.built_at_version = index.version

    def query(
        self, query=None, *, query_index: int | None = None, k: int | None = None
    ) -> RkNNResult:
        """Exact RkNN for the tree's fixed ``k``.

        ``k`` may be passed for interface uniformity but must match the
        precomputed value.
        """
        if k is None:
            k = self.index.k
        k = check_k(k)
        if k != self.index.k:
            raise ValueError(
                f"this RdNN-tree was precomputed for k={self.index.k}; "
                f"answering k={k} requires building a new tree "
                "(the method's per-k precomputation cost)"
            )
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        if query_index is not None:
            query = self.index.get_point(query_index)

        metric = self.index.metric
        calls_before = metric.num_calls
        stats = QueryStats()
        started = time.perf_counter()
        ids = self.index.rknn(query, exclude_index=query_index)
        stats.filter_seconds = time.perf_counter() - started
        stats.num_candidates = int(ids.shape[0])
        stats.num_distance_calls = metric.num_calls - calls_before
        stats.terminated_by = "rdnn-tree"
        return RkNNResult(ids=np.asarray(ids, dtype=np.intp), k=k, t=float(k), stats=stats)

    def __repr__(self) -> str:
        return f"RdNN(k={self.index.k}, index={self.index!r})"
