"""SFT — the approximate RkNN heuristic of Singh, Ferhatosmanoglu and Tosun
(CIKM 2003), the paper's main approximate competitor.

Query processing has three steps:

1. **Candidate extraction** — the ``alpha * k`` nearest neighbors of the
   query form the candidate set (``alpha >= 1`` is the accuracy knob, the
   x-axis of the SFT curves in Figures 3–6).
2. **Local filtering** — pairwise distances *within* the candidate set
   eliminate candidates that already have ``k`` closer candidates than the
   query (a restricted form of RDT's witness rule; the restriction to the
   candidate set is why SFT needs no extra index passes here).
3. **Count range queries** — each survivor ``x`` is verified by counting
   the database points inside the ball of radius ``d(x, q)`` around ``x``;
   the candidate is reported iff at most ``k`` points beside itself lie
   within.

Recall is bounded by the candidate pool: any reverse neighbor whose forward
rank exceeds ``alpha * k`` is unreachable — the paper's Section 2.2 points
out that the relationship between ``alpha`` and recall is not well
understood, which is precisely what RDT's distance-adaptive termination
fixes.  False positives never survive step 3, so precision is always 1.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.protocol import EngineBase
from repro.core.result import QueryStats, RkNNResult
from repro.indexes.base import Index
from repro.utils.tolerance import inflate
from repro.utils.validation import as_query_point, check_k

__all__ = ["SFT"]


class SFT(EngineBase):
    """Approximate RkNN via alpha-scaled forward-kNN candidate sets."""

    engine_name = "sft"
    query_knobs = ("alpha",)
    #: count range queries verify every survivor exactly, so false
    #: positives never appear; recall is capped by the alpha*k pool.
    guarantee = "precision"

    def __init__(self, index: Index) -> None:
        self.index = index
        self.built_at_version = index.version

    def __repr__(self) -> str:
        return f"SFT(index={self.index!r})"

    def query(
        self,
        query=None,
        *,
        query_index: int | None = None,
        k: int,
        alpha: float = 4.0,
    ) -> RkNNResult:
        """Answer one RkNN query with candidate pool size ``ceil(alpha * k)``."""
        k = check_k(k)
        if alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {alpha}")
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        if query_index is not None:
            query_point = self.index.get_point(query_index)
        else:
            query_point = as_query_point(query, dim=self.index.dim)

        metric = self.index.metric
        calls_before = metric.num_calls
        stats = QueryStats()
        started = time.perf_counter()

        pool_size = min(int(np.ceil(alpha * k)), self.index.size)
        ids, dists = self.index.knn(query_point, pool_size, exclude_index=query_index)
        stats.num_retrieved = int(ids.shape[0])
        stats.num_candidates = int(ids.shape[0])
        if ids.shape[0] == 0:
            stats.filter_seconds = time.perf_counter() - started
            stats.terminated_by = "alpha-pool"
            return RkNNResult(
                ids=np.empty(0, dtype=np.intp), k=k, t=float(alpha), stats=stats
            )

        # Step 2: mutual filtering inside the candidate pool.
        pool = self.index.points[ids]
        inner = metric.pairwise(pool)
        closer = inner < dists[None, :]  # closer[i, j]: cand_i closer to cand_j than q
        closer[np.arange(len(ids)), np.arange(len(ids))] = False
        witness_counts = closer.sum(axis=0)
        survivors = np.flatnonzero(witness_counts < k)
        stats.num_lazy_rejects = int(len(ids) - survivors.shape[0])
        stats.filter_seconds = time.perf_counter() - started

        # Step 3: count range queries against the full database.
        started = time.perf_counter()
        result: list[int] = []
        for pos in survivors:
            candidate_id = int(ids[pos])
            radius = inflate(float(dists[pos]))
            count = self.index.range_count(pool[pos], radius)
            stats.num_verified += 1
            # The count includes the candidate itself; membership requires at
            # most k *other* points (query included) within the ball.
            if count - 1 <= k:
                result.append(candidate_id)
                stats.num_verified_hits += 1
        stats.refine_seconds = time.perf_counter() - started
        stats.num_distance_calls = metric.num_calls - calls_before
        stats.terminated_by = "alpha-pool"
        return RkNNResult(
            ids=np.asarray(sorted(result), dtype=np.intp),
            k=k,
            t=float(alpha),
            stats=stats,
        )
