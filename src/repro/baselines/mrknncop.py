"""MRkNNCoP — exact RkNN with precomputed kNN-distance models
(Achtert et al., SIGMOD 2006), the paper's precomputation-heavy exact
competitor and the only prior method using (implicit) intrinsic
dimensionality.

The method's model assumption is the fractal-dimension relationship
``log d_k(x) ~ a * log k + b``: for each object the kNN distances for
``k = 1 .. k_max`` are **precomputed**, and two straight lines in log-log
space are fitted that provably bound the distance curve from above
(*conservative* approximation) and below (*progressive* approximation).
Only the four line coefficients are stored per object.  At query time,

* ``d(q, x) <= lower_x(k)``  proves  ``x`` is a reverse neighbor (true hit),
* ``d(q, x) >  upper_x(k)``  proves it is not (prune),
* anything in between is refined with one exact forward-kNN query.

Subtrees of the backing M-tree are pruned through aggregated line
coefficients: for ``z = ln k >= 0``, ``max_x (a_x z + b_x)`` is bounded by
``(max_x a_x) z + (max_x b_x)``, so each node stores the pair of maxima and
a node is visited only when ``mindist(q, node)`` is below the aggregated
upper bound.

Where this reproduction simplifies the original: the bounding lines are
obtained by least-squares fit followed by intercept shifts onto the extreme
residuals (the original computes the optimal hull lines).  The bounds stay
mathematically valid — results remain exact — they are merely a little
looser, which only moves some objects into the refinement bucket.

The cost profile is the point of the exercise: preprocessing performs a
full ``k_max``-NN self-join (O(n^2) here), which is exactly the
"enormous precomputation" the paper's Figures 8–9 hold against this
method, while queries are very fast.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.protocol import EngineBase
from repro.core.result import QueryStats, RkNNResult
from repro.distances import Metric, get_metric
from repro.indexes.bulk_knn import bulk_knn
from repro.indexes.m_tree import MTreeIndex
from repro.utils.tolerance import dist_le, inflate
from repro.utils.validation import as_dataset, as_query_point, check_k

__all__ = ["MRkNNCoP", "fit_log_bounds"]

#: Floor applied inside logs so zero kNN distances (duplicate points)
#: degrade to extremely small — still valid — lower bounds.
_LOG_FLOOR = 1e-300


def _safe_exp(value: float) -> float:
    """``exp`` that saturates to +inf instead of raising OverflowError.

    Duplicate-heavy data with a small ``k_max`` produces extreme fitted
    slopes (the log curve jumps from ``log(_LOG_FLOOR)`` to a real
    distance within a few ranks), and a node's *aggregated* bound mixes
    the worst slope and the worst intercept of different objects — its
    exponent can exceed the float range.  An infinite upper bound is
    conservative (the node is simply never pruned), so results stay exact.
    """
    try:
        return math.exp(value)
    except OverflowError:
        return math.inf


def fit_log_bounds(knn_dists: np.ndarray) -> tuple[float, float, float, float]:
    """Fit guaranteed bounding lines to one object's log-log kNN curve.

    Returns ``(a_upper, b_upper, a_lower, b_lower)``.  Both lines share the
    least-squares slope; intercepts are shifted onto the extreme residuals,
    so the upper line lies on or above every sample and the lower line on
    or below — the bounds are guaranteed over ``k = 1 .. k_max`` even where
    the fractal model fits poorly.
    """
    kmax = knn_dists.shape[0]
    xs = np.log(np.arange(1, kmax + 1, dtype=np.float64))
    ys = np.log(np.maximum(knn_dists, _LOG_FLOOR))
    if kmax == 1:
        return 0.0, float(ys[0]), 0.0, float(ys[0])
    slope, intercept = np.polyfit(xs, ys, deg=1)
    residuals = ys - (slope * xs + intercept)
    return (
        float(slope),
        float(intercept + residuals.max()),
        float(slope),
        float(intercept + residuals.min()),
    )


class MRkNNCoP(EngineBase):
    """Exact RkNN with conservative/progressive kNN-distance approximations."""

    engine_name = "mrknncop"
    guarantee = "exact"
    reads_index_live = False

    def __init__(
        self,
        data,
        k_max: int = 100,
        metric: str | Metric | None = None,
        capacity: int = 32,
    ) -> None:
        self.points = as_dataset(data)
        n = self.points.shape[0]
        self.k_max = check_k(k_max, n=n - 1, name="k_max")
        self.metric = get_metric(metric)

        started = time.perf_counter()
        # The expensive part: the full kNN self-join up to k_max.
        _, knn_dists = bulk_knn(self.points, self.k_max, metric=self.metric)
        self._knn_table_seconds = time.perf_counter() - started

        coeffs = np.array([fit_log_bounds(row) for row in knn_dists])
        self.upper_slope = coeffs[:, 0]
        self.upper_intercept = coeffs[:, 1]
        self.lower_slope = coeffs[:, 2]
        self.lower_intercept = coeffs[:, 3]

        # Backing M-tree plus per-node aggregated upper-bound coefficients.
        self.tree = MTreeIndex(self.points, metric=self.metric, capacity=capacity)
        self._node_max_slope: dict[int, float] = {}
        self._node_max_intercept: dict[int, float] = {}
        self._aggregate(self.tree.root)
        self.preprocessing_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Preprocessing helpers
    # ------------------------------------------------------------------
    def _aggregate(self, node) -> tuple[float, float]:
        max_slope = -math.inf
        max_intercept = -math.inf
        for entry in node.entries:
            if entry.is_leaf_entry:
                slope = float(self.upper_slope[entry.center_id])
                intercept = float(self.upper_intercept[entry.center_id])
            else:
                slope, intercept = self._aggregate(entry.child)
            max_slope = max(max_slope, slope)
            max_intercept = max(max_intercept, intercept)
        self._node_max_slope[id(node)] = max_slope
        self._node_max_intercept[id(node)] = max_intercept
        return max_slope, max_intercept

    def upper_bound(self, point_id: int, k: int) -> float:
        """Conservative (upper) kNN-distance approximation of one object."""
        z = math.log(k)
        return _safe_exp(self.upper_slope[point_id] * z + self.upper_intercept[point_id])

    def lower_bound(self, point_id: int, k: int) -> float:
        """Progressive (lower) kNN-distance approximation of one object."""
        z = math.log(k)
        return _safe_exp(self.lower_slope[point_id] * z + self.lower_intercept[point_id])

    def member_ids(self) -> np.ndarray:
        return np.arange(self.points.shape[0], dtype=np.intp)

    def __repr__(self) -> str:
        return (
            f"MRkNNCoP(n={self.points.shape[0]}, dim={self.points.shape[1]}, "
            f"metric={self.metric.name}, k_max={self.k_max})"
        )

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(
        self,
        query=None,
        *,
        query_index: int | None = None,
        k: int,
        verify_index=None,
    ) -> RkNNResult:
        """Exact reverse-kNN for any ``k <= k_max``.

        ``verify_index`` optionally supplies the forward-kNN index used for
        refining uncertain candidates; by default the backing M-tree is
        used.
        """
        k = check_k(k, n=self.k_max, name="k")
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        if query_index is not None:
            query_point = self.points[query_index]
        else:
            query_point = as_query_point(query, dim=self.points.shape[1])
        index = verify_index if verify_index is not None else self.tree

        stats = QueryStats()
        calls_before = self.metric.num_calls
        started = time.perf_counter()
        z = math.log(k)

        hits: list[int] = []
        uncertain: list[tuple[int, float]] = []
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                d_center = self.metric.distance(
                    query_point, self.points[entry.center_id]
                )
                if entry.is_leaf_entry:
                    point_id = entry.center_id
                    if point_id == query_index:
                        continue
                    stats.num_candidates += 1
                    if dist_le(d_center, self.lower_bound(point_id, k)):
                        hits.append(point_id)
                    elif dist_le(d_center, self.upper_bound(point_id, k)):
                        uncertain.append((point_id, d_center))
                    else:
                        stats.num_lazy_rejects += 1
                else:
                    mindist = max(0.0, d_center - entry.radius)
                    bound = _safe_exp(
                        self._node_max_slope[id(entry.child)] * z
                        + self._node_max_intercept[id(entry.child)]
                    )
                    if mindist <= inflate(bound):
                        stack.append(entry.child)
        stats.filter_seconds = time.perf_counter() - started
        stats.num_lazy_accepts = len(hits)

        started = time.perf_counter()
        result = list(hits)
        for point_id, d_center in uncertain:
            kth = index.knn_distance(self.points[point_id], k, exclude_index=point_id)
            stats.num_verified += 1
            if dist_le(d_center, kth):
                result.append(point_id)
                stats.num_verified_hits += 1
        stats.refine_seconds = time.perf_counter() - started
        stats.num_distance_calls = self.metric.num_calls - calls_before
        stats.terminated_by = "cop-bounds"
        return RkNNResult(
            ids=np.asarray(sorted(result), dtype=np.intp),
            k=k,
            t=float(k),
            lazy_accepted_ids=np.asarray(sorted(hits), dtype=np.intp),
            stats=stats,
        )
