"""TPL — reverse kNN by bisector pruning (Tao, Papadias, Lian, VLDB 2004).

The paper compares against "a variant of TPL based on k-trim and a Hilbert
heuristic".  TPL performs a single best-first traversal of an R*-tree,
growing a candidate set in ascending distance from the query; every
candidate ``c`` defines a perpendicular-bisector half-space

    H(c) = { x : d(x, c) < d(x, q) },

and any point (or whole MBR) covered by ``k`` such half-spaces provably has
``k`` database points closer to it than the query and can be discarded.
Surviving candidates are verified exactly in a refinement step.

This implementation keeps TPL's structure while simplifying the geometric
machinery the way the paper's own comparator does:

* **point pruning** is exact: count candidates strictly closer to the point
  than the query is;
* **MBR pruning** is conservative: for the Euclidean metric, containment of
  an MBR in a bisector half-space is decided exactly by maximizing the
  (linear) bisector function over the box; for other metrics the weaker
  ``maxdist(N, c) < mindist(N, q)`` test is used.  Conservative pruning can
  only reduce pruning power, never correctness;
* **k-trim** is approximated by testing each node against a bounded number
  of candidates — the ones nearest the node's center — instead of the
  full candidate list (the role the Hilbert ordering plays in the
  original).

Query results are exact; the cost explodes with dimensionality and with
``k`` because bisector pruning loses its power — the behaviour the paper's
Section 8.1 reports for TPL.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.protocol import EngineBase
from repro.core.result import QueryStats, RkNNResult
from repro.distances import EuclideanMetric
from repro.indexes.r_star_tree import RStarTreeIndex
from repro.utils.priority_queue import MinPriorityQueue
from repro.utils.tolerance import dist_le
from repro.utils.validation import as_query_point, check_k

__all__ = ["TPL"]


class TPL(EngineBase):
    """Exact RkNN through bisector pruning over an R*-tree."""

    engine_name = "tpl"
    guarantee = "exact"

    def __init__(self, index: RStarTreeIndex, trim_size: int | None = None) -> None:
        if not isinstance(index, RStarTreeIndex):
            raise TypeError(
                "TPL requires an R*-tree index (the method is defined on "
                f"MBR hierarchies), got {type(index).__name__}"
            )
        self.index = index
        self.built_at_version = index.version
        #: maximum number of candidates tested per node (k-trim stand-in);
        #: None derives ``4 * k`` at query time.
        self.trim_size = trim_size

    def __repr__(self) -> str:
        return f"TPL(trim_size={self.trim_size}, index={self.index!r})"

    # ------------------------------------------------------------------
    # Geometric helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _box_in_halfspace_euclidean(
        lo: np.ndarray, hi: np.ndarray, c: np.ndarray, q: np.ndarray
    ) -> bool:
        """Exact test: is the box entirely closer to ``c`` than to ``q``?

        ``d(x,c) < d(x,q)`` is linear in ``x``:  ``2 x . (q - c) < |q|^2 - |c|^2``.
        The maximum of a linear function over a box picks, per dimension,
        whichever corner coordinate the coefficient favours.
        """
        w = 2.0 * (q - c)
        bound = float(q @ q - c @ c)
        max_val = float(np.where(w > 0.0, hi * w, lo * w).sum())
        return max_val < bound

    def _box_dominated(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        candidates: np.ndarray,
        query: np.ndarray,
        k: int,
    ) -> bool:
        """Can the whole MBR be pruned by ``k`` candidate bisectors?"""
        if candidates.shape[0] < k:
            return False
        metric = self.index.metric
        if isinstance(metric, EuclideanMetric):
            count = 0
            for c in candidates:
                if self._box_in_halfspace_euclidean(lo, hi, c, query):
                    count += 1
                    if count >= k:
                        return True
            return False
        # Metric-generic conservative test: the farthest box corner from c
        # is still closer to c than the nearest box corner is to q.
        mindist_q = metric.distance(query, np.clip(query, lo, hi))
        count = 0
        for c in candidates:
            farthest = np.where(np.abs(c - lo) > np.abs(c - hi), lo, hi)
            if metric.distance(c, farthest) < mindist_q:
                count += 1
                if count >= k:
                    return True
        return False

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query(
        self, query=None, *, query_index: int | None = None, k: int
    ) -> RkNNResult:
        """Exact reverse k-nearest neighbors of the query."""
        k = check_k(k)
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        if query_index is not None:
            query_point = self.index.get_point(query_index)
        else:
            query_point = as_query_point(query, dim=self.index.dim)

        metric = self.index.metric
        calls_before = metric.num_calls
        stats = QueryStats()
        started = time.perf_counter()
        trim = self.trim_size if self.trim_size is not None else 4 * k

        cand_ids: list[int] = []
        cand_points: list[np.ndarray] = []
        queue = MinPriorityQueue()
        queue.push(0.0, self.index.root)
        while queue:
            key, item = queue.pop()
            if isinstance(item, tuple):  # a point entry: (point_id, point)
                point_id, point = item
                stats.num_retrieved += 1
                if cand_ids:
                    dists_to_cands = metric.to_point(np.asarray(cand_points), point)
                    dominated = int(np.count_nonzero(dists_to_cands < key))
                else:
                    dominated = 0
                if dominated >= k:
                    stats.num_lazy_rejects += 1
                    continue
                cand_ids.append(point_id)
                cand_points.append(point)
                continue
            # An R*-tree node: prune whole boxes via candidate bisectors.
            for entry in item.entries:
                if entry.is_point:
                    point_id = entry.point_id
                    if point_id == query_index or not self.index.is_active(point_id):
                        continue
                    point = self.index.points[point_id]
                    dist = metric.distance(query_point, point)
                    queue.push(dist, (point_id, point))
                else:
                    lo, hi = entry.lo, entry.hi
                    if cand_ids:
                        trimmed = self._trim_candidates(
                            np.asarray(cand_points), (lo + hi) * 0.5, trim
                        )
                        if self._box_dominated(lo, hi, trimmed, query_point, k):
                            continue
                    bound = metric.distance(query_point, np.clip(query_point, lo, hi))
                    queue.push(bound, entry.child)

        stats.num_candidates = len(cand_ids)
        stats.filter_seconds = time.perf_counter() - started

        # Refinement: exact verification of every surviving candidate.
        started = time.perf_counter()
        result: list[int] = []
        for point_id, point in zip(cand_ids, cand_points):
            kth = self.index.knn_distance(point, k, exclude_index=point_id)
            stats.num_verified += 1
            d_q = metric.distance(query_point, point)
            if dist_le(d_q, kth):
                result.append(point_id)
                stats.num_verified_hits += 1
        stats.refine_seconds = time.perf_counter() - started
        stats.num_distance_calls = metric.num_calls - calls_before
        stats.terminated_by = "bisector-pruning"
        return RkNNResult(
            ids=np.asarray(sorted(result), dtype=np.intp), k=k, t=float(k), stats=stats
        )

    def _trim_candidates(
        self, cand_points: np.ndarray, center: np.ndarray, trim: int
    ) -> np.ndarray:
        """The k-trim stand-in: the ``trim`` candidates nearest the node."""
        if cand_points.shape[0] <= trim:
            return cand_points
        dists = self.index.metric.to_point(cand_points, center)
        nearest = np.argpartition(dists, trim - 1)[:trim]
        return cand_points[nearest]
