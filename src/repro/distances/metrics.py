"""Metric abstractions used by every index and algorithm in the library.

The analysis of RDT (paper Section 5) holds for any distance measure
satisfying the triangle inequality, so the library routes every distance
computation through a :class:`Metric` instance instead of hard-coding the
Euclidean distance.  All kernels are vectorized numpy; none of them allocate
more than one temporary of the output shape.

Every metric implements three primitives:

``distance(x, y)``
    Distance between two single points (1-D arrays).

``to_point(X, y)``
    Distances from every row of the matrix ``X`` to the point ``y``.

``pairwise(X, Y=None)``
    Full distance matrix between the rows of ``X`` and the rows of ``Y``
    (or of ``X`` with itself when ``Y`` is omitted).

Distance evaluations performed through a metric are counted in
:attr:`Metric.num_calls` (one "call" per scalar distance produced), which the
evaluation harness uses as a machine-independent cost measure.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "get_metric",
]


class Metric:
    """Base class for distance metrics.

    Subclasses implement :meth:`_dist_matrix`; the public entry points handle
    input coercion and the distance-call accounting shared by all metrics.
    """

    #: Human-readable identifier, e.g. ``"euclidean"``.
    name: str = "abstract"

    def __init__(self) -> None:
        self.num_calls: int = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        """Return the distance between two points.

        Routed through :meth:`to_point` so that single-pair distances are
        produced by the same kernel as batched query-side distances — the
        tolerance policy in :mod:`repro.utils.tolerance` relies on decision
        boundaries never mixing kernels gratuitously.
        """
        y = np.asarray(y, dtype=np.float64)
        return float(self.to_point(np.asarray(x, dtype=np.float64)[None, :], y)[0])

    def to_point(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return distances from each row of ``X`` to the point ``y``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        self.num_calls += X.shape[0]
        return self._dist_matrix(X, y[None, :])[:, 0]

    def pairwise(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        """Return the distance matrix between rows of ``X`` and rows of ``Y``."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if Y is None:
            Y = X
        else:
            Y = np.asarray(Y, dtype=np.float64)
            if Y.ndim == 1:
                Y = Y[None, :]
        self.num_calls += X.shape[0] * Y.shape[0]
        return self._dist_matrix(X, Y)

    def paired(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Row-wise distances ``d(X[i], Y[i])`` between equal-shape matrices.

        The pruned batched tree searches use this to evaluate one lower
        bound per query in a single kernel call (each query row is paired
        with its own closest box/ball point).  Implemented through the same
        difference kernel as :meth:`to_point`, so bound values share that
        kernel's round-off behavior.
        """
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if X.shape != Y.shape:
            raise ValueError(
                f"paired distances need equal shapes, got {X.shape} and {Y.shape}"
            )
        self.num_calls += X.shape[0]
        return self._diff_kernel((X - Y)[:, None, :])[:, 0]

    def to_point_many(self, X: np.ndarray, Ys: np.ndarray) -> np.ndarray:
        """Distance matrix ``D[i, j] = d(X[i], Ys[j])``, to_point-consistent.

        Unlike :meth:`pairwise` (which may use a faster expansion kernel
        whose results differ from :meth:`to_point` in the last ulp), every
        column of this matrix is bit-identical to
        ``to_point(X, Ys[j])`` — the guarantee the batched RDT filter
        needs so its strict tie comparisons decide exactly like the
        sequential per-point path.  Subclasses override the generic
        column loop with an equivalent broadcast kernel.
        """
        X = np.asarray(X, dtype=np.float64)
        Ys = np.asarray(Ys, dtype=np.float64)
        out = np.empty((X.shape[0], Ys.shape[0]), dtype=np.float64)
        for col in range(Ys.shape[0]):
            out[:, col] = self.to_point(X, Ys[col])
        return out

    def _to_point_many_via_diff(self, X: np.ndarray, Ys: np.ndarray) -> np.ndarray:
        """Shared broadcast implementation for difference-kernel metrics."""
        X = np.asarray(X, dtype=np.float64)
        Ys = np.asarray(Ys, dtype=np.float64)
        self.num_calls += X.shape[0] * Ys.shape[0]
        return self._diff_kernel(X[:, None, :] - Ys[None, :, :])

    def _diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def reset_counter(self) -> None:
        """Reset the distance-call counter to zero."""
        self.num_calls = 0

    # ------------------------------------------------------------------
    # Subclass hook
    # ------------------------------------------------------------------
    def _dist_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class EuclideanMetric(Metric):
    """The Euclidean (L2) distance, the paper's experimental metric."""

    name = "euclidean"

    def _dist_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        # ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y, clipped against negative
        # round-off before the square root.  Distances are translation
        # invariant, so when the data sits far from the origin relative to
        # its spread, both sides are centered on Y's mean first: without
        # this, such data loses ~eps * ||x||^2 / d(x, y) absolute accuracy
        # to cancellation in the expansion — far beyond the library's
        # comparison tolerance.  Near-origin data is left untouched (the
        # expansion is already accurate there, and exactly-representable
        # inputs keep their exact distances).  The centering decision and
        # offset depend only on Y, so results are independent of how
        # callers chunk X.
        yy = np.einsum("ij,ij->i", Y, Y)
        mu = Y.mean(axis=0)
        offset_sq = float(mu @ mu)
        spread_sq = max(float(yy.mean()) - offset_sq, 0.0)
        if offset_sq > 100.0 * spread_sq:
            X = X - mu
            Y = Y - mu
            yy = np.einsum("ij,ij->i", Y, Y)
        xx = np.einsum("ij,ij->i", X, X)
        sq = xx[:, None] + yy[None, :] - 2.0 * (X @ Y.T)
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq, out=sq)

    def to_point(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        # Direct subtraction is both faster and more accurate than the
        # dot-product expansion for the single-point case.
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        self.num_calls += X.shape[0]
        diff = X - y[None, :]
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    # The 3-D einsum reduces each (i, j) row over the contiguous last axis
    # exactly like to_point's 2-D einsum, so the columns are bit-identical
    # to per-point calls.
    to_point_many = Metric._to_point_many_via_diff

    def _diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


class ManhattanMetric(Metric):
    """The Manhattan (L1) distance."""

    name = "manhattan"

    def _dist_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        return np.abs(X[:, None, :] - Y[None, :, :]).sum(axis=2)

    def to_point(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        self.num_calls += X.shape[0]
        return np.abs(X - y[None, :]).sum(axis=1)

    to_point_many = Metric._to_point_many_via_diff

    def _diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        return np.abs(diff).sum(axis=2)


class ChebyshevMetric(Metric):
    """The Chebyshev (L-infinity) distance."""

    name = "chebyshev"

    def _dist_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        return np.abs(X[:, None, :] - Y[None, :, :]).max(axis=2)

    def to_point(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        self.num_calls += X.shape[0]
        return np.abs(X - y[None, :]).max(axis=1)

    to_point_many = Metric._to_point_many_via_diff

    def _diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        return np.abs(diff).max(axis=2)


class MinkowskiMetric(Metric):
    """The Minkowski L-p distance for ``p >= 1`` (a metric only in that range)."""

    name = "minkowski"

    def __init__(self, p: float = 2.0) -> None:
        super().__init__()
        if p < 1.0:
            raise ValueError(f"Minkowski distance requires p >= 1, got p={p}")
        self.p = float(p)

    def _dist_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        diff = np.abs(X[:, None, :] - Y[None, :, :])
        return (diff**self.p).sum(axis=2) ** (1.0 / self.p)

    def to_point(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        self.num_calls += X.shape[0]
        diff = np.abs(X - y[None, :])
        return (diff**self.p).sum(axis=1) ** (1.0 / self.p)

    to_point_many = Metric._to_point_many_via_diff

    def _diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        diff = np.abs(diff)
        return (diff**self.p).sum(axis=2) ** (1.0 / self.p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MinkowskiMetric(p={self.p})"


_REGISTRY = {
    "euclidean": EuclideanMetric,
    "l2": EuclideanMetric,
    "manhattan": ManhattanMetric,
    "l1": ManhattanMetric,
    "cityblock": ManhattanMetric,
    "chebyshev": ChebyshevMetric,
    "linf": ChebyshevMetric,
}


def get_metric(metric: str | Metric | None = None, **kwargs) -> Metric:
    """Resolve a metric name (or pass through an instance) to a :class:`Metric`.

    Parameters
    ----------
    metric:
        Either an existing :class:`Metric` instance (returned as-is), a
        registered name such as ``"euclidean"`` / ``"manhattan"`` /
        ``"chebyshev"`` / ``"minkowski"``, or ``None`` for the default
        Euclidean metric.
    kwargs:
        Extra constructor arguments, e.g. ``p=3`` for ``"minkowski"``.
    """
    if metric is None:
        return EuclideanMetric()
    if isinstance(metric, Metric):
        return metric
    key = metric.lower()
    if key == "minkowski":
        return MinkowskiMetric(**kwargs)
    if key in _REGISTRY:
        return _REGISTRY[key](**kwargs)
    raise ValueError(
        f"Unknown metric {metric!r}; known: {sorted(set(_REGISTRY))} + ['minkowski']"
    )
