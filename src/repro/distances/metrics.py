"""Metric abstractions used by every index and algorithm in the library.

The analysis of RDT (paper Section 5) holds for any distance measure
satisfying the triangle inequality, so the library routes every distance
computation through a :class:`Metric` instance instead of hard-coding the
Euclidean distance.  All kernels are vectorized numpy; none of them allocate
more than one temporary of the output shape.

Every metric implements three primitives:

``distance(x, y)``
    Distance between two single points (1-D arrays).

``to_point(X, y)``
    Distances from every row of the matrix ``X`` to the point ``y``.

``pairwise(X, Y=None)``
    Full distance matrix between the rows of ``X`` and the rows of ``Y``
    (or of ``X`` with itself when ``Y`` is omitted).

Distance evaluations performed through a metric are counted in
:attr:`Metric.num_calls` (one "call" per scalar distance produced), which the
evaluation harness uses as a machine-independent cost measure.

**Dtype policy.**  The metric owns the numeric storage policy for every
consumer built on it: ``Metric(dtype=...)`` selects ``float64`` (default)
or ``float32``, every kernel coerces its operands to that dtype and
returns it, and indexes store their point matrix in the metric's dtype.
The comparison tolerances for each tier are documented in
:mod:`repro.utils.tolerance` (float32 kernels agree to ~1e-4 relative);
:func:`repro.utils.tolerance.tolerances_for` maps :attr:`Metric.dtype` to
the matching ``(rtol, atol)``.
"""

from __future__ import annotations

import numpy as np

from repro import kernels

__all__ = [
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "get_metric",
]

_SUPPORTED_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def _check_dtype(dtype) -> np.dtype:
    resolved = np.dtype(np.float64 if dtype is None else dtype)
    if resolved not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"metric dtype must be float64 or float32, got {resolved.name!r}"
        )
    return resolved


class Metric:
    """Base class for distance metrics.

    Subclasses implement :meth:`_dist_matrix`; the public entry points handle
    input coercion and the distance-call accounting shared by all metrics.

    Parameters
    ----------
    dtype:
        Numeric policy for every kernel: ``float64`` (default) or
        ``float32``.  Inputs of any other dtype are coerced on entry, so
        a float32 metric never silently computes in float64 and vice
        versa.
    """

    #: Human-readable identifier, e.g. ``"euclidean"``.
    name: str = "abstract"

    def __init__(self, dtype=None) -> None:
        self.num_calls: int = 0
        self.dtype: np.dtype = _check_dtype(dtype)

    def _coerce(self, arr) -> np.ndarray:
        """Coerce an operand to this metric's dtype (no copy when it matches)."""
        return np.asarray(arr, dtype=self.dtype)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        """Return the distance between two points.

        Routed through :meth:`to_point` so that single-pair distances are
        produced by the same kernel as batched query-side distances — the
        tolerance policy in :mod:`repro.utils.tolerance` relies on decision
        boundaries never mixing kernels gratuitously.
        """
        y = self._coerce(y)
        return float(self.to_point(self._coerce(x)[None, :], y)[0])

    def to_point(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return distances from each row of ``X`` to the point ``y``."""
        X = self._coerce(X)
        y = self._coerce(y)
        if X.ndim == 1:
            X = X[None, :]
        self.num_calls += X.shape[0]
        return self._dist_matrix(X, y[None, :])[:, 0]

    def pairwise(self, X: np.ndarray, Y: np.ndarray | None = None) -> np.ndarray:
        """Return the distance matrix between rows of ``X`` and rows of ``Y``."""
        X = self._coerce(X)
        if X.ndim == 1:
            X = X[None, :]
        if Y is None:
            Y = X
        else:
            Y = self._coerce(Y)
            if Y.ndim == 1:
                Y = Y[None, :]
        self.num_calls += X.shape[0] * Y.shape[0]
        return self._dist_matrix(X, Y)

    def paired(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        """Row-wise distances ``d(X[i], Y[i])`` between equal-shape matrices.

        The pruned batched tree searches use this to evaluate one lower
        bound per query in a single kernel call (each query row is paired
        with its own closest box/ball point).  Implemented through the same
        difference kernel as :meth:`to_point`, so bound values share that
        kernel's round-off behavior.
        """
        X = self._coerce(X)
        Y = self._coerce(Y)
        if X.shape != Y.shape:
            raise ValueError(
                f"paired distances need equal shapes, got {X.shape} and {Y.shape}"
            )
        self.num_calls += X.shape[0]
        return self._diff_kernel((X - Y)[:, None, :])[:, 0]

    def to_point_many(self, X: np.ndarray, Ys: np.ndarray) -> np.ndarray:
        """Distance matrix ``D[i, j] = d(X[i], Ys[j])``, to_point-consistent.

        Unlike :meth:`pairwise` (which may use a faster expansion kernel
        whose results differ from :meth:`to_point` in the last ulp), every
        column of this matrix is bit-identical to
        ``to_point(X, Ys[j])`` — the guarantee the batched RDT filter
        needs so its strict tie comparisons decide exactly like the
        sequential per-point path.  Subclasses override the generic
        column loop with an equivalent broadcast kernel.
        """
        X = self._coerce(X)
        Ys = self._coerce(Ys)
        out = np.empty((X.shape[0], Ys.shape[0]), dtype=self.dtype)
        for col in range(Ys.shape[0]):
            out[:, col] = self.to_point(X, Ys[col])
        return out

    def boxes_lower_bounds(
        self, queries: np.ndarray, clipped: np.ndarray
    ) -> np.ndarray:
        """Distances from each query row to its clamp in a stack of boxes.

        ``clipped`` has shape ``(r, E, dim)`` — each query row clamped
        into ``E`` axis-aligned boxes.  Returns ``(r, E)`` through the
        same difference kernel as :meth:`paired`, without materializing
        the broadcast query copies a flattened ``paired`` call would
        need.  This is the flat tree descent's bound kernel.
        """
        queries = self._coerce(queries)
        clipped = self._coerce(clipped)
        self.num_calls += clipped.shape[0] * clipped.shape[1]
        return self._diff_kernel(queries[:, None, :] - clipped)

    def to_point_sets(self, X: np.ndarray, Ys: np.ndarray) -> np.ndarray:
        """Row-wise candidate distances ``D[i, j] = d(X[i], Ys[i, j])``.

        ``Ys`` has shape ``(r, E, dim)`` — one private candidate set of
        ``E`` points per query row, the access pattern of graph-based
        beam search (each query expands its own frontier's neighbor
        lists).  Same difference kernel as :meth:`paired` /
        :meth:`boxes_lower_bounds`, so decision boundaries stay within
        one kernel family.
        """
        X = self._coerce(X)
        Ys = self._coerce(Ys)
        self.num_calls += Ys.shape[0] * Ys.shape[1]
        return self._diff_kernel(X[:, None, :] - Ys)

    def _to_point_many_via_diff(self, X: np.ndarray, Ys: np.ndarray) -> np.ndarray:
        """Shared broadcast implementation for difference-kernel metrics."""
        X = self._coerce(X)
        Ys = self._coerce(Ys)
        self.num_calls += X.shape[0] * Ys.shape[0]
        return self._diff_kernel(X[:, None, :] - Ys[None, :, :])

    def _diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def reset_counter(self) -> None:
        """Reset the distance-call counter to zero."""
        self.num_calls = 0

    # ------------------------------------------------------------------
    # Subclass hook
    # ------------------------------------------------------------------
    def _dist_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.dtype == np.float32:
            return f"{type(self).__name__}(dtype=float32)"
        return f"{type(self).__name__}()"


class EuclideanMetric(Metric):
    """The Euclidean (L2) distance, the paper's experimental metric.

    The heavy kernels (pairwise expansion, broadcast to_point_many) are
    routed through the :mod:`repro.kernels` dispatch table, so they pick
    up the compiled implementations when Numba is available.
    """

    name = "euclidean"

    def _dist_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        # Centered dot expansion; see repro.kernels.numpy_impl for the
        # numerical rationale (centering decision depends only on Y, so
        # results are independent of how callers chunk X).
        return kernels.euclidean_pairwise(X, Y)

    def to_point(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        # Direct subtraction is both faster and more accurate than the
        # dot-product expansion for the single-point case.
        X = self._coerce(X)
        y = self._coerce(y)
        if X.ndim == 1:
            X = X[None, :]
        self.num_calls += X.shape[0]
        diff = X - y[None, :]
        return np.sqrt(np.einsum("ij,ij->i", diff, diff))

    def to_point_many(self, X: np.ndarray, Ys: np.ndarray) -> np.ndarray:
        # The dispatched kernel reduces each (i, j) row over the contiguous
        # last axis exactly like to_point's 2-D einsum, so the columns are
        # bit-identical to per-point calls.
        X = self._coerce(X)
        Ys = self._coerce(Ys)
        self.num_calls += X.shape[0] * Ys.shape[0]
        return kernels.euclidean_to_point_many(X, Ys)

    def _diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


class ManhattanMetric(Metric):
    """The Manhattan (L1) distance."""

    name = "manhattan"

    def _dist_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        return np.abs(X[:, None, :] - Y[None, :, :]).sum(axis=2)

    def to_point(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        X = self._coerce(X)
        y = self._coerce(y)
        if X.ndim == 1:
            X = X[None, :]
        self.num_calls += X.shape[0]
        return np.abs(X - y[None, :]).sum(axis=1)

    to_point_many = Metric._to_point_many_via_diff

    def _diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        return np.abs(diff).sum(axis=2)


class ChebyshevMetric(Metric):
    """The Chebyshev (L-infinity) distance."""

    name = "chebyshev"

    def _dist_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        return np.abs(X[:, None, :] - Y[None, :, :]).max(axis=2)

    def to_point(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        X = self._coerce(X)
        y = self._coerce(y)
        if X.ndim == 1:
            X = X[None, :]
        self.num_calls += X.shape[0]
        return np.abs(X - y[None, :]).max(axis=1)

    to_point_many = Metric._to_point_many_via_diff

    def _diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        return np.abs(diff).max(axis=2)


class MinkowskiMetric(Metric):
    """The Minkowski L-p distance for ``p >= 1`` (a metric only in that range)."""

    name = "minkowski"

    def __init__(self, p: float = 2.0, dtype=None) -> None:
        super().__init__(dtype=dtype)
        if p < 1.0:
            raise ValueError(f"Minkowski distance requires p >= 1, got p={p}")
        self.p = float(p)

    def _dist_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        diff = np.abs(X[:, None, :] - Y[None, :, :])
        return (diff**self.p).sum(axis=2) ** (1.0 / self.p)

    def to_point(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        X = self._coerce(X)
        y = self._coerce(y)
        if X.ndim == 1:
            X = X[None, :]
        self.num_calls += X.shape[0]
        diff = np.abs(X - y[None, :])
        return (diff**self.p).sum(axis=1) ** (1.0 / self.p)

    to_point_many = Metric._to_point_many_via_diff

    def _diff_kernel(self, diff: np.ndarray) -> np.ndarray:
        diff = np.abs(diff)
        return (diff**self.p).sum(axis=2) ** (1.0 / self.p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.dtype == np.float32:
            return f"MinkowskiMetric(p={self.p}, dtype=float32)"
        return f"MinkowskiMetric(p={self.p})"


_REGISTRY = {
    "euclidean": EuclideanMetric,
    "l2": EuclideanMetric,
    "manhattan": ManhattanMetric,
    "l1": ManhattanMetric,
    "cityblock": ManhattanMetric,
    "chebyshev": ChebyshevMetric,
    "linf": ChebyshevMetric,
}


def get_metric(metric: str | Metric | None = None, *, dtype=None, **kwargs) -> Metric:
    """Resolve a metric name (or pass through an instance) to a :class:`Metric`.

    Parameters
    ----------
    metric:
        Either an existing :class:`Metric` instance (returned as-is), a
        registered name such as ``"euclidean"`` / ``"manhattan"`` /
        ``"chebyshev"`` / ``"minkowski"``, or ``None`` for the default
        Euclidean metric.
    dtype:
        Numeric policy for a metric constructed here (``None`` →
        float64).  When ``metric`` is already an instance, its own dtype
        is authoritative: passing a *different* ``dtype`` raises rather
        than silently rewrapping.
    kwargs:
        Extra constructor arguments, e.g. ``p=3`` for ``"minkowski"``.
    """
    if isinstance(metric, Metric):
        if dtype is not None and np.dtype(dtype) != metric.dtype:
            raise ValueError(
                f"metric instance has dtype {metric.dtype.name!r} but "
                f"dtype={np.dtype(dtype).name!r} was requested; construct the "
                f"metric with the desired dtype instead"
            )
        return metric
    if metric is None:
        return EuclideanMetric(dtype=dtype)
    key = metric.lower()
    if key == "minkowski":
        return MinkowskiMetric(dtype=dtype, **kwargs)
    if key in _REGISTRY:
        return _REGISTRY[key](dtype=dtype, **kwargs)
    raise ValueError(
        f"Unknown metric {metric!r}; known: {sorted(set(_REGISTRY))} + ['minkowski']"
    )
