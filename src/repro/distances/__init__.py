"""Distance metrics for the RDT reproduction.

The RDT analysis (paper Section 5) holds for arbitrary metrics; everything in
this library is parameterized over the :class:`~repro.distances.Metric`
abstraction defined here.
"""

from repro.distances.metrics import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    MinkowskiMetric,
    get_metric,
)

__all__ = [
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "get_metric",
]
