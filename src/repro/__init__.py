"""repro — Dimensional Testing for Reverse k-Nearest Neighbor Search.

A production-quality reproduction of Casanova et al., "Dimensional Testing
for Reverse k-Nearest Neighbor Search", PVLDB 10(7), 2017.

The top-level namespace re-exports the public API:

* the **front door**: :class:`~repro.service.Service` /
  :class:`~repro.service.QuerySpec`, and the registries
  :func:`~repro.engines.create_engine` / :func:`~repro.indexes.create_index`
  that construct any engine or index backend by name;
* the engine protocol every method implements
  (:class:`~repro.core.protocol.RkNNEngine`);
* :class:`~repro.core.RDT` — the paper's algorithm (RDT and RDT+ variants);
* the index substrates (:mod:`repro.indexes`);
* the competing methods (:mod:`repro.baselines`);
* intrinsic-dimensionality estimators (:mod:`repro.lid`);
* dataset generators and paper stand-ins (:mod:`repro.datasets`);
* the evaluation harness (:mod:`repro.evaluation`);
* the concurrent serving layer (:mod:`repro.serving`): a micro-batching
  :class:`~repro.serving.QueryCoalescer`, an epoch-keyed
  :class:`~repro.serving.ResultCache`, and the open-loop load generator
  :func:`~repro.serving.run_open_loop`;
* the multi-core execution layer (:mod:`repro.parallel`): a
  query-parallel :class:`~repro.parallel.ParallelExecutor` over
  shared-memory point matrices (also reachable as
  ``Service(..., parallel=N)``) and a data-parallel
  :class:`~repro.parallel.ShardedService` with d_k-bound cross-shard
  pruning.

Quickstart::

    import numpy as np
    import repro

    rng = np.random.default_rng(0)
    data = rng.normal(size=(2000, 16))
    svc = repro.Service(data, backend="kd", engine="rdt+",
                        defaults=repro.QuerySpec(k=10, t=8.0))
    result = svc.query(query_index=7)
    print(result.ids, result.stats.num_candidates)

The classes behind the registry names remain importable directly
(``repro.RDT``, ``repro.CoverTreeIndex``, ...) and keep their historical
constructors.
"""

from repro.distances import (
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    MinkowskiMetric,
    get_metric,
)
from repro.indexes import (
    INDEX_ALIASES,
    INDEX_REGISTRY,
    BallTreeIndex,
    CoverTreeIndex,
    Index,
    IndexCapabilityError,
    KDTreeIndex,
    LinearScanIndex,
    MTreeIndex,
    RdNNTreeIndex,
    RStarTreeIndex,
    VPTreeIndex,
    build_index,
    bulk_knn,
    bulk_knn_distances,
    create_index,
)
from repro.core import (
    GUARANTEES,
    RDT,
    AdaptiveRDT,
    BichromaticRDT,
    EngineBase,
    EngineCapabilityError,
    QueryStats,
    RkNNEngine,
    RkNNResult,
    bichromatic_brute_force,
    suggest_scale,
)
from repro.engines import ENGINE_REGISTRY, create_engine
from repro.service import QuerySpec, Service
from repro.approx import (
    APPROX_STRATEGIES,
    ApproxRkNN,
    LSHFilter,
    SampledKNNEstimator,
    build_strategy,
)
from repro.baselines import SFT, TPL, MRkNNCoP, NaiveRkNN, RdNN, rknn_brute_force
from repro.lid import (
    estimate_id,
    estimate_id_gp,
    estimate_id_mle,
    estimate_id_takens,
    ged,
    max_ged,
)
from repro.datasets import load_standin
from repro.evaluation import (
    GroundTruth,
    index_builders,
    measure_precompute,
    run_approx_tradeoff,
    run_bichromatic_batched,
    run_engine,
    run_engine_suite,
    run_method,
    run_method_batched,
    run_precompute_suite,
    run_tradeoff,
    run_tradeoff_batched,
)
from repro.serving import QueryCoalescer, ResultCache, run_open_loop
from repro.parallel import ParallelExecutor, ShardedService
from repro.mining import (
    hubness_counts,
    hubness_skewness,
    influence_set,
    knn_digraph,
    odin_outliers,
    odin_scores,
    rknn_self_join,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # the front door: facade + registries + protocol
    "Service",
    "QuerySpec",
    "create_engine",
    "create_index",
    "ENGINE_REGISTRY",
    "INDEX_REGISTRY",
    "INDEX_ALIASES",
    "RkNNEngine",
    "EngineBase",
    "EngineCapabilityError",
    "GUARANTEES",
    # distances
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "get_metric",
    # indexes
    "Index",
    "IndexCapabilityError",
    "LinearScanIndex",
    "KDTreeIndex",
    "CoverTreeIndex",
    "VPTreeIndex",
    "BallTreeIndex",
    "MTreeIndex",
    "RStarTreeIndex",
    "RdNNTreeIndex",
    "build_index",
    "bulk_knn",
    "bulk_knn_distances",
    # core algorithm
    "RDT",
    "AdaptiveRDT",
    "BichromaticRDT",
    "bichromatic_brute_force",
    "RkNNResult",
    "QueryStats",
    "suggest_scale",
    # approximate engine
    "ApproxRkNN",
    "APPROX_STRATEGIES",
    "LSHFilter",
    "SampledKNNEstimator",
    "build_strategy",
    # baselines
    "NaiveRkNN",
    "rknn_brute_force",
    "SFT",
    "MRkNNCoP",
    "RdNN",
    "TPL",
    # intrinsic dimensionality
    "estimate_id",
    "estimate_id_mle",
    "estimate_id_gp",
    "estimate_id_takens",
    "ged",
    "max_ged",
    # datasets & evaluation
    "load_standin",
    "GroundTruth",
    "run_engine",
    "run_engine_suite",
    "run_method",
    "run_method_batched",
    "run_approx_tradeoff",
    "run_bichromatic_batched",
    "run_precompute_suite",
    "run_tradeoff",
    "run_tradeoff_batched",
    "index_builders",
    "measure_precompute",
    # serving
    "QueryCoalescer",
    "ResultCache",
    "run_open_loop",
    # parallel execution
    "ParallelExecutor",
    "ShardedService",
    # mining applications
    "rknn_self_join",
    "odin_scores",
    "odin_outliers",
    "influence_set",
    "hubness_counts",
    "hubness_skewness",
    "knn_digraph",
]
