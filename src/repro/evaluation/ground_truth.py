"""Ground-truth construction and query sampling for the experiments.

Reproduces the paper's Section 7.1 protocol: 100 query points drawn
uniformly at random from the dataset, with exact reverse-kNN answers
computed by brute force (:class:`repro.baselines.NaiveRkNN`).  Per-``k``
truth tables are cached because every tradeoff sweep re-evaluates the same
queries at many parameter settings.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.naive import NaiveRkNN
from repro.distances import Metric, get_metric
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_dataset, check_k, check_positive_int

__all__ = ["GroundTruth", "sample_query_indices"]


def sample_query_indices(n: int, n_queries: int = 100, seed=0) -> np.ndarray:
    """Uniform random query sample, without replacement when possible."""
    check_positive_int(n, name="n")
    check_positive_int(n_queries, name="n_queries")
    rng = ensure_rng(seed)
    if n_queries >= n:
        return np.arange(n, dtype=np.intp)
    return np.sort(rng.choice(n, size=n_queries, replace=False)).astype(np.intp)


class GroundTruth:
    """Cached exact RkNN answers for one dataset."""

    def __init__(self, data, metric: str | Metric | None = None) -> None:
        self.points = as_dataset(data)
        self.metric = get_metric(metric)
        self._solvers: dict[int, NaiveRkNN] = {}
        self._answers: dict[tuple[int, int], np.ndarray] = {}

    def solver(self, k: int) -> NaiveRkNN:
        """The brute-force solver for ``k`` (building its kNN table once)."""
        k = check_k(k, n=self.points.shape[0] - 1)
        if k not in self._solvers:
            self._solvers[k] = NaiveRkNN(self.points, k, metric=self.metric)
        return self._solvers[k]

    def answer(self, query_index: int, k: int) -> np.ndarray:
        """Exact RkNN ids for a member query, cached."""
        key = (int(query_index), int(k))
        if key not in self._answers:
            self._answers[key] = self.solver(k).query_ids(query_index=query_index)
        return self._answers[key]

    def answers(self, query_indices, k: int) -> dict[int, np.ndarray]:
        """Exact RkNN ids for a batch of member queries."""
        return {int(qi): self.answer(int(qi), k) for qi in query_indices}
