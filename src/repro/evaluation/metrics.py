"""Result-quality metrics for reverse-kNN evaluation.

The paper reports *recall* (fraction of true reverse neighbors returned) as
its quality axis; precision is reported here as well because RDT+'s
candidate-reduction rule is the one mechanism in the library that can
produce false positives (Section 4.3's "risk of a drop in precision").
"""

from __future__ import annotations

import numpy as np

__all__ = ["recall", "precision", "f1_score", "set_metrics", "speedup"]


def _as_set(ids) -> set[int]:
    if isinstance(ids, set):
        return ids
    return set(np.asarray(ids, dtype=np.intp).tolist())


def recall(truth, result) -> float:
    """|result ∩ truth| / |truth|; 1.0 when the truth set is empty."""
    truth, result = _as_set(truth), _as_set(result)
    if not truth:
        return 1.0
    return len(result & truth) / len(truth)


def precision(truth, result) -> float:
    """|result ∩ truth| / |result|; 1.0 when the result set is empty."""
    truth, result = _as_set(truth), _as_set(result)
    if not result:
        return 1.0
    return len(result & truth) / len(result)


def f1_score(truth, result) -> float:
    """Harmonic mean of recall and precision."""
    r = recall(truth, result)
    p = precision(truth, result)
    if r + p == 0.0:
        return 0.0
    return 2.0 * r * p / (r + p)


def speedup(baseline_seconds: float, seconds: float) -> float:
    """Wall-clock speedup of a method over a baseline (``inf`` for 0s).

    The approximate-search evaluation reports quality *against* time
    saved, so the time axis is expressed relative to the exact engine's
    cost on the same workload rather than as raw seconds.
    """
    if seconds <= 0.0:
        return float("inf")
    return float(baseline_seconds) / float(seconds)


def set_metrics(truth, result) -> dict[str, float]:
    """All three metrics in one pass-friendly dict."""
    return {
        "recall": recall(truth, result),
        "precision": precision(truth, result),
        "f1": f1_score(truth, result),
    }
