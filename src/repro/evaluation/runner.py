"""Experiment runner: drive any RkNN method over a query workload.

All methods in this library answer through ``query(query_index=..., k=...)``
returning an :class:`~repro.core.result.RkNNResult` (or a bare id array for
the brute-force reference).  The runner times each query, scores it against
ground truth, and aggregates into a :class:`MethodRun`; a parameter sweep
produces a :class:`TradeoffCurve` — one point per parameter value — which
is the exact shape of the paper's Figures 3–6 and 8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.result import RkNNResult
from repro.evaluation.ground_truth import GroundTruth
from repro.evaluation.metrics import precision, recall

__all__ = ["QueryRecord", "MethodRun", "TradeoffCurve", "run_method", "run_tradeoff"]


@dataclass
class QueryRecord:
    """Outcome of one query: quality, time, and method-reported stats."""

    query_index: int
    recall: float
    precision: float
    seconds: float
    result: RkNNResult | None = None


@dataclass
class MethodRun:
    """Aggregated outcome of one method at one parameter setting."""

    method: str
    k: int
    parameter: float
    records: list[QueryRecord] = field(default_factory=list)

    @property
    def mean_recall(self) -> float:
        return float(np.mean([r.recall for r in self.records])) if self.records else 0.0

    @property
    def mean_precision(self) -> float:
        return (
            float(np.mean([r.precision for r in self.records])) if self.records else 1.0
        )

    @property
    def mean_seconds(self) -> float:
        return float(np.mean([r.seconds for r in self.records])) if self.records else 0.0

    @property
    def total_seconds(self) -> float:
        return float(np.sum([r.seconds for r in self.records])) if self.records else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "recall": self.mean_recall,
            "precision": self.mean_precision,
            "mean_seconds": self.mean_seconds,
        }


@dataclass
class TradeoffCurve:
    """One method's recall-vs-time curve across a parameter sweep."""

    method: str
    k: int
    runs: list[MethodRun] = field(default_factory=list)

    def parameters(self) -> list[float]:
        return [run.parameter for run in self.runs]

    def recalls(self) -> list[float]:
        return [run.mean_recall for run in self.runs]

    def times(self) -> list[float]:
        return [run.mean_seconds for run in self.runs]


def _result_ids(result) -> np.ndarray:
    if isinstance(result, RkNNResult):
        return result.ids
    return np.asarray(result, dtype=np.intp)


def run_method(
    name: str,
    query_fn: Callable[[int], RkNNResult],
    query_indices: Sequence[int],
    truth: GroundTruth,
    k: int,
    parameter: float = float("nan"),
    keep_results: bool = False,
) -> MethodRun:
    """Evaluate ``query_fn`` over the workload against exact ground truth.

    ``query_fn`` maps a query index to an :class:`RkNNResult` (or raw ids).
    Timing covers only the method call; ground truth is precomputed
    outside the timed region.
    """
    answers = truth.answers(query_indices, k)
    run = MethodRun(method=name, k=k, parameter=parameter)
    for query_index in query_indices:
        started = time.perf_counter()
        result = query_fn(int(query_index))
        elapsed = time.perf_counter() - started
        ids = _result_ids(result)
        expected = answers[int(query_index)]
        run.records.append(
            QueryRecord(
                query_index=int(query_index),
                recall=recall(expected, ids),
                precision=precision(expected, ids),
                seconds=elapsed,
                result=result if keep_results and isinstance(result, RkNNResult) else None,
            )
        )
    return run


def run_tradeoff(
    name: str,
    query_fn_for_parameter: Callable[[float], Callable[[int], RkNNResult]],
    parameters: Sequence[float],
    query_indices: Sequence[int],
    truth: GroundTruth,
    k: int,
) -> TradeoffCurve:
    """Sweep a method's accuracy knob and collect the tradeoff curve.

    ``query_fn_for_parameter(p)`` returns the single-query function for one
    setting of the knob (``t`` for RDT/RDT+, ``alpha`` for SFT).
    """
    curve = TradeoffCurve(method=name, k=k)
    for parameter in parameters:
        query_fn = query_fn_for_parameter(float(parameter))
        curve.runs.append(
            run_method(
                name, query_fn, query_indices, truth, k, parameter=float(parameter)
            )
        )
    return curve
