"""Experiment runner: drive any RkNN method over a query workload.

All methods in this library answer through ``query(query_index=..., k=...)``
returning an :class:`~repro.core.result.RkNNResult` (or a bare id array for
the brute-force reference).  The runner times each query, scores it against
ground truth, and aggregates into a :class:`MethodRun`; a parameter sweep
produces a :class:`TradeoffCurve` — one point per parameter value — which
is the exact shape of the paper's Figures 3–6 and 8.

Methods with a batched entry point (``RDT.query_batch``) are driven through
:func:`run_method_batched` / :func:`run_tradeoff_batched` instead: the
whole workload is answered in one engine call, and per-query seconds are
taken from the engine's own :class:`~repro.core.result.QueryStats` (which
attribute the shared vectorized work to each query) rather than from a
wall clock around each interpreter-level call.

The runner also drives the *preprocessing* side of the experiments:
:func:`run_precompute_suite` times a whole roster of method/backend
builders (see :func:`repro.evaluation.precompute.index_builders`)
uniformly, which is how Figure 8/9 budgets and the build-trajectory
benchmark (``benchmarks/test_build_backends.py`` → ``BENCH_build.json``)
are produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.result import RkNNResult
from repro.evaluation.ground_truth import GroundTruth
from repro.evaluation.metrics import precision, recall, speedup
from repro.evaluation.precompute import PrecomputeReport, measure_precompute

__all__ = [
    "QueryRecord",
    "MethodRun",
    "TradeoffCurve",
    "ApproxRun",
    "ApproxTradeoff",
    "run_approx_tradeoff",
    "run_engine",
    "run_engine_suite",
    "run_method",
    "run_method_batched",
    "run_bichromatic_batched",
    "run_precompute_suite",
    "run_tradeoff",
    "run_tradeoff_batched",
]


@dataclass
class QueryRecord:
    """Outcome of one query: quality, time, and method-reported stats."""

    query_index: int
    recall: float
    precision: float
    seconds: float
    result: RkNNResult | None = None


@dataclass
class MethodRun:
    """Aggregated outcome of one method at one parameter setting."""

    method: str
    k: int
    parameter: float
    records: list[QueryRecord] = field(default_factory=list)

    @property
    def mean_recall(self) -> float:
        return float(np.mean([r.recall for r in self.records])) if self.records else 0.0

    @property
    def mean_precision(self) -> float:
        return (
            float(np.mean([r.precision for r in self.records])) if self.records else 1.0
        )

    @property
    def mean_seconds(self) -> float:
        return float(np.mean([r.seconds for r in self.records])) if self.records else 0.0

    @property
    def total_seconds(self) -> float:
        return float(np.sum([r.seconds for r in self.records])) if self.records else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "recall": self.mean_recall,
            "precision": self.mean_precision,
            "mean_seconds": self.mean_seconds,
        }


@dataclass
class TradeoffCurve:
    """One method's recall-vs-time curve across a parameter sweep."""

    method: str
    k: int
    runs: list[MethodRun] = field(default_factory=list)

    def parameters(self) -> list[float]:
        return [run.parameter for run in self.runs]

    def recalls(self) -> list[float]:
        return [run.mean_recall for run in self.runs]

    def times(self) -> list[float]:
        return [run.mean_seconds for run in self.runs]


def _result_ids(result) -> np.ndarray:
    if isinstance(result, RkNNResult):
        return result.ids
    return np.asarray(result, dtype=np.intp)


def run_method(
    name: str,
    query_fn: Callable[[int], RkNNResult],
    query_indices: Sequence[int],
    truth: GroundTruth,
    k: int,
    parameter: float = float("nan"),
    keep_results: bool = False,
) -> MethodRun:
    """Evaluate ``query_fn`` over the workload against exact ground truth.

    ``query_fn`` maps a query index to an :class:`RkNNResult` (or raw ids).
    Timing covers only the method call; ground truth is precomputed
    outside the timed region.
    """
    answers = truth.answers(query_indices, k)
    run = MethodRun(method=name, k=k, parameter=parameter)
    for query_index in query_indices:
        started = time.perf_counter()
        result = query_fn(int(query_index))
        elapsed = time.perf_counter() - started
        ids = _result_ids(result)
        expected = answers[int(query_index)]
        run.records.append(
            QueryRecord(
                query_index=int(query_index),
                recall=recall(expected, ids),
                precision=precision(expected, ids),
                seconds=elapsed,
                result=result if keep_results and isinstance(result, RkNNResult) else None,
            )
        )
    return run


def run_method_batched(
    name: str,
    batch_fn: Callable[[Sequence[int]], Sequence[RkNNResult]],
    query_indices: Sequence[int],
    truth: GroundTruth,
    k: int,
    parameter: float = float("nan"),
    keep_results: bool = False,
) -> MethodRun:
    """Evaluate a batched method over the workload against ground truth.

    ``batch_fn`` maps the whole sequence of query indices to one
    :class:`RkNNResult` per index (e.g. a bound ``RDT.query_batch``).  The
    whole workload is timed as one call; each record's ``seconds`` is the
    engine's per-query attribution (``stats.total_seconds``), so aggregate
    totals reflect the true batched cost while per-query numbers stay
    comparable across methods.
    """
    answers = truth.answers(query_indices, k)
    run = MethodRun(method=name, k=k, parameter=parameter)
    results = batch_fn(query_indices)
    if len(results) != len(query_indices):
        raise ValueError(
            f"batch_fn returned {len(results)} results for "
            f"{len(query_indices)} queries"
        )
    for query_index, result in zip(query_indices, results):
        ids = _result_ids(result)
        expected = answers[int(query_index)]
        is_full_result = isinstance(result, RkNNResult)
        run.records.append(
            QueryRecord(
                query_index=int(query_index),
                recall=recall(expected, ids),
                precision=precision(expected, ids),
                # Raw-id returns carry no timing; record them as 0 rather
                # than crashing (mirrors run_method's _result_ids tolerance).
                seconds=result.stats.total_seconds if is_full_result else 0.0,
                result=result if keep_results and is_full_result else None,
            )
        )
    return run


def run_engine(
    engine,
    query_indices: Sequence[int],
    truth: GroundTruth,
    k: int,
    *,
    data=None,
    spec=None,
    name: str | None = None,
    parameter: float = float("nan"),
    keep_results: bool = False,
    engine_kwargs: Mapping | None = None,
) -> MethodRun:
    """Evaluate one engine — by registry name or instance — over a workload.

    The protocol's capability flags pick the execution strategy: engines
    with a native batch path (``supports_batch``) answer the workload in
    one :meth:`~repro.core.protocol.RkNNEngine.query_batch` call scored
    through :func:`run_method_batched`; the rest loop through
    :func:`run_method`.  Query-time knobs come from ``spec`` (a
    :class:`repro.QuerySpec`; its ``k`` is overridden by the explicit
    ``k`` argument), filtered down to what the engine understands.

    ``engine`` may be a registry name — then ``data`` (raw points or a
    prebuilt index, see :func:`repro.create_engine`) is required and
    ``engine_kwargs`` are forwarded to the factory — or a ready
    :class:`~repro.core.protocol.RkNNEngine`.
    """
    from repro.engines import create_engine, kwargs_for_k
    from repro.service import QuerySpec

    if isinstance(engine, str):
        if data is None:
            raise ValueError(
                "building an engine by registry name needs `data` "
                "(raw points or a prebuilt index)"
            )
        kwargs = {**kwargs_for_k(engine, k), **dict(engine_kwargs or {})}
        engine = create_engine(engine, data, **kwargs)
    elif engine_kwargs:
        raise ValueError(
            "engine_kwargs only apply when `engine` is a registry name"
        )
    if spec is None:
        spec = QuerySpec(k=k)
    if name is None:
        name = getattr(engine, "engine_name", type(engine).__name__)
    if getattr(engine, "supports_batch", False):
        knobs = spec.knobs_for(engine, batch=True)
        return run_method_batched(
            name,
            lambda qis: engine.query_batch(query_indices=qis, k=k, **knobs),
            query_indices,
            truth,
            k,
            parameter=parameter,
            keep_results=keep_results,
        )
    knobs = spec.knobs_for(engine)
    return run_method(
        name,
        lambda qi: engine.query(query_index=qi, k=k, **knobs),
        query_indices,
        truth,
        k,
        parameter=parameter,
        keep_results=keep_results,
    )


def run_engine_suite(
    engines: Sequence[str] | Mapping[str, object],
    query_indices: Sequence[int],
    truth: GroundTruth,
    k: int,
    *,
    data=None,
    spec=None,
    engine_kwargs: Mapping[str, Mapping] | None = None,
) -> list[MethodRun]:
    """Evaluate a whole roster of engines uniformly (one :class:`MethodRun`
    each, in roster order).

    ``engines`` is a sequence of registry names (each built over ``data``
    with the per-name ``engine_kwargs``) or a mapping of display name to
    prebuilt engine instance.  This is the enumeration the figure
    benchmarks and the conformance harness drive instead of hard-coding
    engine classes.
    """
    runs: list[MethodRun] = []
    if isinstance(engines, Mapping):
        for name, engine in engines.items():
            runs.append(
                run_engine(engine, query_indices, truth, k, spec=spec, name=name)
            )
        return runs
    for name in engines:
        runs.append(
            run_engine(
                name,
                query_indices,
                truth,
                k,
                data=data,
                spec=spec,
                engine_kwargs=(engine_kwargs or {}).get(name),
            )
        )
    return runs


def run_bichromatic_batched(
    name: str,
    batch_fn: Callable[[np.ndarray], Sequence[RkNNResult]],
    query_points: np.ndarray,
    truth_fn: Callable[[np.ndarray], np.ndarray],
    k: int,
    parameter: float = float("nan"),
    keep_results: bool = False,
) -> MethodRun:
    """Evaluate a batched bichromatic method over raw query points.

    Bichromatic queries are prospective service locations, not members of
    either color, so the workload is an ``(m, dim)`` array of points
    rather than member ids; records carry the query's row number.
    ``batch_fn`` maps the whole array to one result per row (e.g. a bound
    :meth:`~repro.core.BichromaticRDT.query_batch`) and ``truth_fn`` maps
    one query point to its exact BRkNN ids (e.g. a partial of
    :func:`~repro.core.bichromatic_brute_force`).  Timing follows
    :func:`run_method_batched`: per-record seconds come from the engine's
    own per-query attribution of the shared batched work.
    """
    query_points = np.asarray(query_points, dtype=np.float64)
    run = MethodRun(method=name, k=k, parameter=parameter)
    results = batch_fn(query_points)
    if len(results) != query_points.shape[0]:
        raise ValueError(
            f"batch_fn returned {len(results)} results for "
            f"{query_points.shape[0]} queries"
        )
    for row, result in enumerate(results):
        ids = _result_ids(result)
        expected = truth_fn(query_points[row])
        is_full_result = isinstance(result, RkNNResult)
        run.records.append(
            QueryRecord(
                query_index=row,
                recall=recall(expected, ids),
                precision=precision(expected, ids),
                seconds=result.stats.total_seconds if is_full_result else 0.0,
                result=result if keep_results and is_full_result else None,
            )
        )
    return run


def run_precompute_suite(
    builders: Mapping[str, Callable[[], object]],
    keep_artifacts: bool = False,
) -> list[PrecomputeReport]:
    """Time every builder in a method/backend roster uniformly.

    ``builders`` maps a display name to a zero-argument callable that
    performs the method's full preprocessing and returns its artifact —
    typically :func:`repro.evaluation.precompute.index_builders` for the
    index backends, extended with entries for precomputation-heavy
    baselines (RdNN-tree kNN tables, MRkNNCoP fits).  Reports come back in
    roster order.  Artifacts are dropped by default so a sweep over large
    ``n`` does not hold every built index alive at once.
    """
    reports: list[PrecomputeReport] = []
    for name, build in builders.items():
        report = measure_precompute(name, build)
        if not keep_artifacts:
            report.artifact = None
        reports.append(report)
    return reports


@dataclass
class ApproxRun:
    """One approximate configuration measured against the exact engine.

    Unlike :class:`MethodRun` (whose per-query seconds come from engine
    stats attribution), the approximate sweep times the *whole batched
    call* with a wall clock on both sides: the quantity being traded is
    end-to-end workload time, and the exact/approximate engines must be
    measured with the same instrument for the speedup to mean anything.
    """

    method: str
    k: int
    parameter: float
    recall: float
    precision: float
    seconds: float
    speedup: float


@dataclass
class ApproxTradeoff:
    """An approximate method's recall/precision-vs-speedup sweep."""

    method: str
    k: int
    #: wall-clock seconds of the exact engine on the same workload
    exact_seconds: float
    runs: list[ApproxRun] = field(default_factory=list)

    def parameters(self) -> list[float]:
        return [run.parameter for run in self.runs]

    def recalls(self) -> list[float]:
        return [run.recall for run in self.runs]

    def speedups(self) -> list[float]:
        return [run.speedup for run in self.runs]

    def best_gated(
        self, min_recall: float
    ) -> ApproxRun | None:
        """The fastest run meeting a recall floor (the gate the benchmark
        asserts), or ``None`` if no setting clears it."""
        eligible = [run for run in self.runs if run.recall >= min_recall]
        if not eligible:
            return None
        return max(eligible, key=lambda run: run.speedup)


def run_approx_tradeoff(
    name: str,
    batch_fn_for_parameter: Callable[
        [float], Callable[[Sequence[int]], Sequence[RkNNResult]]
    ],
    parameters: Sequence[float],
    query_indices: Sequence[int],
    truth: GroundTruth,
    k: int,
    *,
    exact_batch_fn: Callable[[Sequence[int]], Sequence[RkNNResult]] | None = None,
    exact_seconds: float | None = None,
) -> ApproxTradeoff:
    """Sweep an approximate method's knob against the exact engine.

    ``batch_fn_for_parameter(p)`` returns the whole-workload batch
    function for one setting of the strategy knob (``sample_size`` for
    the sampled estimator, ``n_tables`` for LSH, ...).  The exact
    baseline is either timed here (``exact_batch_fn``, e.g. a bound
    ``RDT.query_batch``) or passed in as ``exact_seconds`` so several
    strategies can share one measured baseline.  Ground truth is
    precomputed outside every timed region.
    """
    if (exact_batch_fn is None) == (exact_seconds is None):
        raise ValueError(
            "provide exactly one of `exact_batch_fn` or `exact_seconds`"
        )
    answers = truth.answers(query_indices, k)
    if exact_batch_fn is not None:
        started = time.perf_counter()
        exact_batch_fn(query_indices)
        exact_seconds = time.perf_counter() - started
    tradeoff = ApproxTradeoff(method=name, k=k, exact_seconds=float(exact_seconds))
    for parameter in parameters:
        batch_fn = batch_fn_for_parameter(float(parameter))
        started = time.perf_counter()
        results = batch_fn(query_indices)
        elapsed = time.perf_counter() - started
        if len(results) != len(query_indices):
            raise ValueError(
                f"batch_fn returned {len(results)} results for "
                f"{len(query_indices)} queries"
            )
        recalls, precisions = [], []
        for query_index, result in zip(query_indices, results):
            ids = _result_ids(result)
            expected = answers[int(query_index)]
            recalls.append(recall(expected, ids))
            precisions.append(precision(expected, ids))
        tradeoff.runs.append(
            ApproxRun(
                method=name,
                k=k,
                parameter=float(parameter),
                recall=float(np.mean(recalls)) if recalls else 1.0,
                precision=float(np.mean(precisions)) if precisions else 1.0,
                seconds=elapsed,
                speedup=speedup(tradeoff.exact_seconds, elapsed),
            )
        )
    return tradeoff


def run_tradeoff(
    name: str,
    query_fn_for_parameter: Callable[[float], Callable[[int], RkNNResult]],
    parameters: Sequence[float],
    query_indices: Sequence[int],
    truth: GroundTruth,
    k: int,
) -> TradeoffCurve:
    """Sweep a method's accuracy knob and collect the tradeoff curve.

    ``query_fn_for_parameter(p)`` returns the single-query function for one
    setting of the knob (``t`` for RDT/RDT+, ``alpha`` for SFT).
    """
    curve = TradeoffCurve(method=name, k=k)
    for parameter in parameters:
        query_fn = query_fn_for_parameter(float(parameter))
        curve.runs.append(
            run_method(
                name, query_fn, query_indices, truth, k, parameter=float(parameter)
            )
        )
    return curve


def run_tradeoff_batched(
    name: str,
    batch_fn_for_parameter: Callable[
        [float], Callable[[Sequence[int]], Sequence[RkNNResult]]
    ],
    parameters: Sequence[float],
    query_indices: Sequence[int],
    truth: GroundTruth,
    k: int,
) -> TradeoffCurve:
    """Sweep an accuracy knob of a batched method (see :func:`run_method_batched`).

    ``batch_fn_for_parameter(p)`` returns the whole-workload batch function
    for one setting of the knob.
    """
    curve = TradeoffCurve(method=name, k=k)
    for parameter in parameters:
        batch_fn = batch_fn_for_parameter(float(parameter))
        curve.runs.append(
            run_method_batched(
                name, batch_fn, query_indices, truth, k, parameter=float(parameter)
            )
        )
    return curve
