"""Preprocessing-cost accounting (Figures 8 and 9).

The paper's scalability argument is a cost-model comparison: the exact
competitors spend enormous effort *before the first query* (kNN self-joins,
per-k tree builds), while RDT's preprocessing is just the forward index.
These helpers time method construction uniformly and express the gap the
way Figure 9 does — "how many RDT+ queries could have been answered during
the time the RdNN-tree spent precomputing?".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["PrecomputeReport", "measure_precompute", "queries_per_budget"]


@dataclass
class PrecomputeReport:
    """Construction cost of one method on one dataset."""

    method: str
    seconds: float
    artifact: object = None


def measure_precompute(method: str, build: Callable[[], object]) -> PrecomputeReport:
    """Time a method's full preprocessing (index builds, kNN tables, fits)."""
    started = time.perf_counter()
    artifact = build()
    return PrecomputeReport(
        method=method, seconds=time.perf_counter() - started, artifact=artifact
    )


def queries_per_budget(budget_seconds: float, mean_query_seconds: float) -> float:
    """How many queries fit into a preprocessing budget (Figure 9's y-axis)."""
    if mean_query_seconds <= 0.0:
        return float("inf")
    return budget_seconds / mean_query_seconds
