"""Preprocessing-cost accounting and the build benchmark harness (Figures 8–9).

The paper's scalability argument is a cost-model comparison: the exact
competitors spend enormous effort *before the first query* (kNN self-joins,
per-k tree builds), while RDT's preprocessing is just the forward index.
After the query side went batched and pruned, that forward-index build
became the dominant wall-clock cost of tree-backed runs — so this module
is both the uniform timer the Figure 9 experiments always used and the
harness that tracks construction cost itself:

``measure_precompute``
    Times one method's full preprocessing (index builds, kNN tables, fits).
    Driven over whole suites by :func:`repro.evaluation.runner.run_precompute_suite`.

``index_builders``
    One zero-argument builder per index backend — the bulk path by default,
    optionally alongside the scalar insert-loop baselines (``<name>[insert]``)
    for every backend that keeps one — so a benchmark or experiment can
    hand the whole backend roster to ``run_precompute_suite``.

``BuildRecord`` / ``write_bench_json``
    The machine-readable trajectory: ``benchmarks/test_build_backends.py``
    records one ``BuildRecord`` per (backend, n, mode) and serializes them
    to ``BENCH_build.json`` so construction-cost changes are diffable
    across PRs, the same way ``benchmarks/results/*.json`` twins the
    rendered figure tables.
"""

from __future__ import annotations

import json
import pathlib
import time
from dataclasses import asdict, dataclass
from typing import Callable, Mapping, Sequence

__all__ = [
    "PrecomputeReport",
    "BuildRecord",
    "measure_precompute",
    "queries_per_budget",
    "index_builders",
    "bench_payload",
    "write_bench_json",
]


@dataclass
class PrecomputeReport:
    """Construction cost of one method on one dataset."""

    method: str
    seconds: float
    artifact: object = None


@dataclass
class BuildRecord:
    """One timed index construction: backend, dataset size, and path used.

    ``mode`` is ``"bulk"`` for the vectorized bulk-load/batch construction
    and ``"insert"`` for the point-at-a-time insert-loop baseline.
    """

    backend: str
    n: int
    dim: int
    mode: str
    seconds: float


def measure_precompute(method: str, build: Callable[[], object]) -> PrecomputeReport:
    """Time a method's full preprocessing (index builds, kNN tables, fits)."""
    started = time.perf_counter()
    artifact = build()
    return PrecomputeReport(
        method=method, seconds=time.perf_counter() - started, artifact=artifact
    )


def queries_per_budget(budget_seconds: float, mean_query_seconds: float) -> float:
    """How many queries fit into a preprocessing budget (Figure 9's y-axis)."""
    if mean_query_seconds <= 0.0:
        return float("inf")
    return budget_seconds / mean_query_seconds


#: Constructor flags selecting the scalar insert-loop path of each backend
#: that still keeps one (the bulk path is the constructor default).
INSERT_PATH_FLAGS: dict[str, dict[str, bool]] = {
    "m-tree": {"bulk_build": False},
    "cover-tree": {"batch_build": False},
    "r-star-tree": {"bulk_load": False},
}


def index_builders(
    data,
    metric=None,
    backends: Sequence[str] | None = None,
    include_insert_paths: bool = False,
    **kwargs,
) -> dict[str, Callable[[], object]]:
    """Zero-argument builders for every index backend over ``data``.

    Keys are registry names (``kd-tree``, ``m-tree``, ...); when
    ``include_insert_paths`` is set, every backend with a retained
    insert-loop baseline additionally appears as ``"<name>[insert]"``.
    The result plugs directly into
    :func:`repro.evaluation.runner.run_precompute_suite`.
    """
    from repro.indexes import INDEX_REGISTRY

    names = list(backends) if backends is not None else sorted(INDEX_REGISTRY)
    builders: dict[str, Callable[[], object]] = {}
    for name in names:
        if name not in INDEX_REGISTRY:
            raise ValueError(
                f"unknown index {name!r}; known: {sorted(INDEX_REGISTRY)}"
            )
        builders[name] = _make_builder(name, data, metric, {}, kwargs)
        if include_insert_paths and name in INSERT_PATH_FLAGS:
            builders[f"{name}[insert]"] = _make_builder(
                name, data, metric, INSERT_PATH_FLAGS[name], kwargs
            )
    return builders


def _make_builder(name, data, metric, flags, kwargs) -> Callable[[], object]:
    from repro.indexes import build_index

    def build():
        return build_index(name, data, metric=metric, **flags, **kwargs)

    return build


def bench_payload(
    records: Sequence[BuildRecord], extra: Mapping[str, object] | None = None
) -> dict:
    """Assemble the ``BENCH_build.json`` document from build records.

    Besides the raw records, the payload carries the derived
    ``bulk_speedup`` map — insert-loop seconds over bulk seconds for every
    (backend, n) measured both ways — which is the number the acceptance
    gate and the cross-PR trajectory read.
    """
    speedups: dict[str, float] = {}
    by_key: dict[tuple[str, int], dict[str, float]] = {}
    for record in records:
        by_key.setdefault((record.backend, record.n), {})[record.mode] = (
            record.seconds
        )
    for (backend, n), modes in sorted(by_key.items()):
        if "bulk" in modes and "insert" in modes and modes["bulk"] > 0.0:
            speedups[f"{backend}@{n}"] = modes["insert"] / modes["bulk"]
    payload: dict[str, object] = {
        "benchmark": "build_backends",
        "schema_version": 1,
        "records": [asdict(record) for record in records],
        "bulk_speedup": speedups,
    }
    if extra:
        payload.update(extra)
    return payload


def write_bench_json(path, payload: Mapping[str, object]) -> pathlib.Path:
    """Write a benchmark payload as stable, diffable JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
