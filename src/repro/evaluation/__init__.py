"""Evaluation harness: ground truth, metrics, tradeoff sweeps, reporting."""

from repro.evaluation.ground_truth import GroundTruth, sample_query_indices
from repro.evaluation.metrics import (
    f1_score,
    precision,
    recall,
    set_metrics,
    speedup,
)
from repro.evaluation.precompute import (
    BuildRecord,
    PrecomputeReport,
    bench_payload,
    index_builders,
    measure_precompute,
    queries_per_budget,
    write_bench_json,
)
from repro.evaluation.reporting import (
    format_table,
    render_approx_tradeoffs,
    render_curves,
    render_kv_section,
)
from repro.evaluation.runner import (
    ApproxRun,
    ApproxTradeoff,
    MethodRun,
    QueryRecord,
    TradeoffCurve,
    run_approx_tradeoff,
    run_bichromatic_batched,
    run_method,
    run_method_batched,
    run_precompute_suite,
    run_tradeoff,
    run_tradeoff_batched,
)

__all__ = [
    "GroundTruth",
    "sample_query_indices",
    "recall",
    "precision",
    "f1_score",
    "set_metrics",
    "speedup",
    "ApproxRun",
    "ApproxTradeoff",
    "MethodRun",
    "QueryRecord",
    "TradeoffCurve",
    "run_approx_tradeoff",
    "run_method",
    "run_method_batched",
    "run_bichromatic_batched",
    "run_precompute_suite",
    "run_tradeoff",
    "run_tradeoff_batched",
    "format_table",
    "render_approx_tradeoffs",
    "render_curves",
    "render_kv_section",
    "PrecomputeReport",
    "BuildRecord",
    "bench_payload",
    "index_builders",
    "measure_precompute",
    "queries_per_budget",
    "write_bench_json",
]
