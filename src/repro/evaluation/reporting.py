"""Plain-text rendering of the paper's tables and figure series.

The benchmark harness regenerates every table and figure of the paper as
text: a figure becomes the table of the series it plots (parameter, recall,
mean query time per method).  These helpers keep the formatting consistent
across all benchmark files and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence

from repro.evaluation.runner import ApproxTradeoff, TradeoffCurve

__all__ = [
    "format_table",
    "render_approx_tradeoffs",
    "render_curves",
    "render_kv_section",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Monospace table with right-padded columns."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # nan
            return "-"
        if abs(value) >= 1000 or (abs(value) < 0.001 and value != 0.0):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_curves(title: str, curves: Sequence[TradeoffCurve]) -> str:
    """Render tradeoff curves the way the paper's figure panels read."""
    blocks = [title]
    for curve in curves:
        rows = [
            (
                run.parameter,
                run.mean_recall,
                run.mean_precision,
                run.mean_seconds,
            )
            for run in curve.runs
        ]
        blocks.append(f"\n[{curve.method}, k={curve.k}]")
        blocks.append(
            format_table(["param", "recall", "precision", "mean_query_s"], rows)
        )
    return "\n".join(blocks)


def render_approx_tradeoffs(
    title: str, tradeoffs: Sequence[ApproxTradeoff]
) -> str:
    """Render approximate-search sweeps the way the Figure-8 columns read.

    One row per (method, knob setting): quality columns first, then the
    batched workload time and its speedup over the shared exact baseline.
    """
    blocks = [title]
    for tradeoff in tradeoffs:
        blocks.append(
            f"\n[{tradeoff.method}, k={tradeoff.k}] "
            f"exact engine: {tradeoff.exact_seconds:.3f} s"
        )
        rows = [
            (
                run.parameter,
                run.recall,
                run.precision,
                run.seconds,
                f"{run.speedup:.2f}x",
            )
            for run in tradeoff.runs
        ]
        blocks.append(
            format_table(
                ["param", "recall", "precision", "batch_s", "speedup"], rows
            )
        )
    return "\n".join(blocks)


def render_kv_section(title: str, pairs: Sequence[tuple[str, object]]) -> str:
    """A labelled key/value block (used for preprocessing-cost reports)."""
    width = max((len(key) for key, _ in pairs), default=0)
    lines = [title]
    for key, value in pairs:
        lines.append(f"  {key.ljust(width)} : {_fmt(value)}")
    return "\n".join(lines)
