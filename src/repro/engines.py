"""The engine registry: every RkNN method constructible by name.

Mirrors the index registry (:func:`repro.indexes.create_index`) on the
algorithm side: :func:`create_engine` resolves a string to a fully built
:class:`~repro.core.protocol.RkNNEngine`, hiding the fact that the
families want different substrates (an incremental-NN index for RDT and
the approximate strategies, a raw data snapshot for the precomputation
baselines, an R*-tree for TPL, two indexes for the bichromatic engine).

>>> engine = repro.create_engine("rdt+", data, backend="kd")
>>> engine.query_all(k=10, t=8.0)

This is what the evaluation runner, the mining joins, the conformance
oracle, and the :class:`repro.Service` facade enumerate instead of
hard-coding classes; adding an engine here makes it reachable from every
driver at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.approx.engine import ApproxRkNN
from repro.baselines.mrknncop import MRkNNCoP
from repro.baselines.naive import NaiveRkNN
from repro.baselines.rdnn import RdNN
from repro.baselines.sft import SFT
from repro.baselines.tpl import TPL
from repro.core.adaptive import AdaptiveRDT
from repro.core.bichromatic import BichromaticRDT
from repro.core.rdt import RDT
from repro.indexes import RStarTreeIndex, RdNNTreeIndex, create_index
from repro.indexes.base import Index
from repro.utils.validation import as_dataset

__all__ = [
    "DEFAULT_BACKEND",
    "ENGINE_REGISTRY",
    "EngineSpec",
    "create_engine",
    "kwargs_for_k",
]

#: Backend built when an engine needs an index but was handed raw data.
DEFAULT_BACKEND = "kd-tree"


@dataclass(frozen=True)
class EngineSpec:
    """One registry entry: how to build an engine and what it promises."""

    name: str
    cls: type
    #: what the factory consumes: ``"index"`` (any backend), ``"data"``
    #: (a raw snapshot), ``"rstar-index"``, or ``"two-colors"``
    needs: str
    summary: str
    factory: Callable[..., object]


def _as_index(data, metric, backend, backend_kwargs) -> Index:
    """An Index over ``data``, building ``backend`` when given raw rows."""
    if isinstance(data, Index):
        if metric is not None:
            raise ValueError(
                "metric only applies when building from raw data; the "
                "given index already carries one"
            )
        if backend_kwargs:
            raise ValueError(
                "backend_kwargs only apply when building from raw data"
            )
        return data
    return create_index(
        backend or DEFAULT_BACKEND, data, metric=metric, **(backend_kwargs or {})
    )


def _as_data(data) -> tuple[np.ndarray, object]:
    """A raw point matrix (and its metric) for snapshot-based engines.

    Accepts an :class:`Index` only while its id space still equals row
    order (no removals): snapshot engines answer in dense row ids, and a
    silently shifted id space would corrupt every downstream comparison.
    The :class:`repro.Service` facade owns the id translation for the
    post-removal case.
    """
    if isinstance(data, Index):
        if data.active_ids().shape[0] != data.points.shape[0]:
            raise ValueError(
                "cannot build a data-snapshot engine from an index with "
                "removed points: its dense row ids no longer match the "
                "index id space.  Pass the raw data (or use repro.Service, "
                "which translates ids)"
            )
        return data.points, data.metric
    return as_dataset(data), None


def _make_rdt(variant):
    def build(data, *, metric, backend, backend_kwargs, **kwargs):
        index = _as_index(data, metric, backend, backend_kwargs)
        return RDT(index, variant=variant, **kwargs)

    return build


def _make_approx(strategy):
    def build(data, *, metric, backend, backend_kwargs, **kwargs):
        index = _as_index(data, metric, backend, backend_kwargs)
        return ApproxRkNN(index, strategy, **kwargs)

    return build


def _build_adaptive(data, *, metric, backend, backend_kwargs, **kwargs):
    index = _as_index(data, metric, backend, backend_kwargs)
    return AdaptiveRDT(index, **kwargs)


def _build_sft(data, *, metric, backend, backend_kwargs, **kwargs):
    index = _as_index(data, metric, backend, backend_kwargs)
    return SFT(index, **kwargs)


def _build_naive(data, *, metric, backend, backend_kwargs, k: int = 10, **kwargs):
    points, index_metric = _as_data(data)
    return NaiveRkNN(points, k, metric=metric or index_metric, **kwargs)


def _build_mrknncop(data, *, metric, backend, backend_kwargs, **kwargs):
    points, index_metric = _as_data(data)
    return MRkNNCoP(points, metric=metric or index_metric, **kwargs)


def _build_rdnn(data, *, metric, backend, backend_kwargs, k: int = 10, **kwargs):
    if isinstance(data, RdNNTreeIndex):
        if kwargs or metric is not None or k != data.k:
            raise ValueError(
                "an RdNN-tree is already built for one fixed k; pass raw "
                "data to build a tree with different parameters"
            )
        return RdNN(data)
    points, index_metric = _as_data(data)
    return RdNN(RdNNTreeIndex(points, k=k, metric=metric or index_metric, **kwargs))


def _build_tpl(data, *, metric, backend, backend_kwargs, trim_size=None):
    if isinstance(data, Index):
        if not isinstance(data, RStarTreeIndex):
            raise ValueError(
                "TPL is defined on MBR hierarchies: pass an RStarTreeIndex "
                f"or raw data, got {type(data).__name__}"
            )
        index = _as_index(data, metric, backend, backend_kwargs)
    else:
        index = RStarTreeIndex(
            as_dataset(data), metric=metric, **(backend_kwargs or {})
        )
    return TPL(index, trim_size=trim_size)


def _build_bichromatic(
    data, *, metric, backend, backend_kwargs, clients=None, **kwargs
):
    if clients is None:
        raise ValueError(
            "the bichromatic engine needs both colors: pass the client "
            "points (or a prebuilt client index) as clients=..., with "
            "`data` holding the services"
        )
    services = _as_index(data, metric, backend, backend_kwargs)
    if isinstance(clients, Index):
        client_index = clients
    else:
        client_index = create_index(
            backend or DEFAULT_BACKEND,
            clients,
            metric=metric if not isinstance(data, Index) else services.metric,
            **(backend_kwargs or {}),
        )
    return BichromaticRDT(client_index, services, **kwargs)


ENGINE_REGISTRY: dict[str, EngineSpec] = {
    spec.name: spec
    for spec in (
        EngineSpec(
            "rdt", RDT, "index",
            "the paper's Algorithm 1 (exact given t >= max GED)",
            _make_rdt("rdt"),
        ),
        EngineSpec(
            "rdt+", RDT, "index",
            "RDT with Section 4.3 candidate-set reduction",
            _make_rdt("rdt+"),
        ),
        EngineSpec(
            "adaptive", AdaptiveRDT, "index",
            "RDT with per-query mid-search re-estimation of t (heuristic)",
            _build_adaptive,
        ),
        EngineSpec(
            "bichromatic", BichromaticRDT, "two-colors",
            "two-color (client/service) dimensional testing",
            _build_bichromatic,
        ),
        EngineSpec(
            "approx-sampled", ApproxRkNN, "index",
            "sampled-kNN upper-bound shortlist (recall 1 by construction)",
            _make_approx("sampled"),
        ),
        EngineSpec(
            "approx-lsh", ApproxRkNN, "index",
            "multi-table LSH filter, every candidate verified (precision 1)",
            _make_approx("lsh"),
        ),
        EngineSpec(
            "approx-graph", ApproxRkNN, "index",
            "HRNN-style navigable graph shortlist, verified (precision 1)",
            _make_approx("graph"),
        ),
        EngineSpec(
            "naive", NaiveRkNN, "data",
            "brute force over a precomputed kNN-distance table (reference)",
            _build_naive,
        ),
        EngineSpec(
            "sft", SFT, "index",
            "alpha-scaled forward-kNN candidates (Singh et al., CIKM 2003)",
            _build_sft,
        ),
        EngineSpec(
            "mrknncop", MRkNNCoP, "data",
            "log-log kNN-distance bounds over an M-tree (Achtert et al.)",
            _build_mrknncop,
        ),
        EngineSpec(
            "rdnn", RdNN, "data",
            "kNN-distance-augmented R*-tree, one fixed k (Yang & Lin)",
            _build_rdnn,
        ),
        EngineSpec(
            "tpl", TPL, "rstar-index",
            "bisector pruning over an R*-tree (Tao et al., VLDB 2004)",
            _build_tpl,
        ),
    )
}


def kwargs_for_k(name: str, k: int) -> dict:
    """Engine-construction kwargs implied by the neighborhood size.

    Fixed-k engines (``naive``, ``rdnn``) and k_max-bounded ones
    (``mrknncop``) must be told the queried ``k`` at build time; drivers
    that construct by registry name for a known workload k (the
    :class:`repro.Service` facade, :func:`repro.run_engine`) merge these
    under any explicitly given kwargs.
    """
    if name in ("naive", "rdnn"):
        return {"k": int(k)}
    if name == "mrknncop":
        return {"k_max": int(k)}
    return {}


def create_engine(
    name: str,
    data,
    *,
    metric=None,
    backend: str | None = None,
    backend_kwargs: dict | None = None,
    parallel=None,
    **kwargs,
):
    """Construct a registered RkNN engine by name (the front door).

    Parameters
    ----------
    name:
        A registry name: ``"rdt"``, ``"rdt+"``, ``"adaptive"``,
        ``"bichromatic"``, ``"approx-sampled"``, ``"approx-lsh"``,
        ``"approx-graph"``, ``"naive"``, ``"sft"``, ``"mrknncop"``,
        ``"rdnn"``, ``"tpl"``.
    data:
        The member points — an ``(n, dim)`` array or a prebuilt
        :class:`~repro.indexes.Index` (for the bichromatic engine these
        are the *services*).  Engines that consume a raw snapshot
        (``naive``, ``mrknncop``, ``rdnn``) accept an index only while
        no point has been removed from it; TPL requires an R*-tree.
    metric:
        Metric name or instance, applied when building from raw data.
    backend:
        Index backend name/alias built when the engine needs an index
        and ``data`` is raw (default ``"kd-tree"``; TPL and RdNN build
        their own specialized trees).
    backend_kwargs:
        Forwarded to the backend constructor (``leaf_size``, ...).
    parallel:
        When set (``True``, an int worker count, or a dict of
        :class:`repro.parallel.ParallelExecutor` knobs), returns a
        :class:`~repro.parallel.ParallelExecutor` fanning
        ``query_batch``/``query_all`` across a worker-process pool
        instead of the bare engine.  Index-family engines only.
    kwargs:
        Engine-specific knobs: ``k`` (``naive``/``rdnn``), ``k_max``
        (``mrknncop``), ``sample_size``/``margin``/``n_tables``/
        ``ef``/``graph_m``/``seed`` (approx strategies), ``trim_size``
        (TPL), ``clients`` (the bichromatic engine's second color), ...

    Returns an object implementing :class:`repro.RkNNEngine`.
    """
    try:
        spec = ENGINE_REGISTRY[str(name).lower()]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; known: {sorted(ENGINE_REGISTRY)}"
        ) from None
    if parallel is not None and parallel is not False:
        from repro.parallel import ParallelExecutor

        if parallel is True:
            pool_kwargs = {}
        elif isinstance(parallel, int):
            pool_kwargs = {"workers": parallel}
        elif isinstance(parallel, dict):
            pool_kwargs = dict(parallel)
        else:
            raise TypeError(
                "parallel must be None, True, an int worker count, or a "
                f"dict of executor options, got {type(parallel).__name__}"
            )
        return ParallelExecutor(
            data,
            spec.name,
            metric=metric,
            backend=backend or DEFAULT_BACKEND,
            backend_kwargs=backend_kwargs,
            engine_kwargs=kwargs,
            **pool_kwargs,
        )
    engine = spec.factory(
        data,
        metric=metric,
        backend=backend,
        backend_kwargs=backend_kwargs,
        **kwargs,
    )
    if engine.built_at_version is None and isinstance(data, Index):
        # Data-snapshot engines (naive/mrknncop) read rows out of the
        # index but never hold it, so their constructors cannot bind the
        # version; stamp it here so is_stale(index) works for them too.
        engine.built_at_version = data.version
    return engine
