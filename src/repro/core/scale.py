"""Automatic selection of the scale parameter ``t`` (paper Section 6).

Theorem 1 suggests choosing ``t`` as an upper bound on the maximum
generalized expansion dimension, but MaxGED is both impractical to compute
and far too conservative.  The paper instead sets ``t`` to a *direct
estimate of the intrinsic dimensionality* produced by one of three
estimators — MLE (Hill), Grassberger–Procaccia, or Takens — turning the
exact termination rule into a well-behaved heuristic (the RDT+(MLE) /
RDT+(GP) / RDT+(Takens) curves of Figures 3–6).

:func:`suggest_scale` wraps that procedure, with an optional multiplicative
safety margin for callers who want to push recall closer to 1.
"""

from __future__ import annotations

import math

from repro.lid import estimate_id

__all__ = ["suggest_scale"]

#: Fallback when an estimator returns nan (degenerate data): a moderate
#: dimension that keeps the search bounded without collapsing it.
_FALLBACK_T = 4.0


def suggest_scale(
    data,
    method: str = "mle",
    margin: float = 1.0,
    minimum: float = 1.0,
    **estimator_kwargs,
) -> float:
    """Return a data-driven scale parameter ``t``.

    Parameters
    ----------
    data:
        The dataset the queries will run against (or a representative
        sample of it).
    method:
        ``"mle"``, ``"gp"`` or ``"takens"`` — see :mod:`repro.lid`.
    margin:
        Multiplier applied to the raw estimate (1.0 reproduces the paper's
        configuration; > 1 trades time for recall).
    minimum:
        Lower clamp; an estimated dimensionality below 1 would make the
        rank cap ``2^t k`` collapse below ``2k``.
    estimator_kwargs:
        Forwarded to the chosen estimator (e.g. ``sample_size`` or ``k``).
    """
    if margin <= 0.0:
        raise ValueError(f"margin must be positive, got {margin}")
    estimate = estimate_id(data, method=method, **estimator_kwargs)
    if not math.isfinite(estimate) or estimate <= 0.0:
        estimate = _FALLBACK_T
    return max(float(minimum), margin * float(estimate))
