"""Query result and statistics containers.

The statistics mirror what the paper reports: Figure 7 plots the proportion
of candidates handled by lazy acceptance, lazy rejection and explicit
verification; Figures 3–6 and 8 need wall-clock query time; and the
theoretical analysis (Theorem 1) speaks about the final ``omega`` bound and
the number of objects discovered before termination, both of which are
exposed here so the property-based tests can check the guarantee directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["QueryStats", "RkNNResult"]


@dataclass
class QueryStats:
    """Instrumentation for a single reverse-kNN query."""

    #: objects retrieved by the expanding search (``s`` at termination)
    num_retrieved: int = 0
    #: candidates stored in the filter set ``F``
    num_candidates: int = 0
    #: candidates RDT+ refused to store (first-cycle exclusions)
    num_excluded: int = 0
    #: candidates accepted by Assertion 2 (no verification query needed)
    num_lazy_accepts: int = 0
    #: candidates rejected by Assertion 1 (``W >= k``), including exclusions
    num_lazy_rejects: int = 0
    #: candidates that required an explicit forward-kNN verification
    num_verified: int = 0
    #: verified candidates that turned out to be true reverse neighbors
    num_verified_hits: int = 0
    #: final value of the omega termination bound (may be +inf)
    omega: float = float("inf")
    #: which condition stopped the filter phase: omega / rank-cap / exhausted
    terminated_by: str = "unknown"
    #: scalar distance computations charged to this query
    num_distance_calls: int = 0
    #: wall-clock seconds spent in the filter phase
    filter_seconds: float = 0.0
    #: wall-clock seconds spent in the refinement phase
    refine_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """End-to-end query time."""
        return self.filter_seconds + self.refine_seconds

    @property
    def num_generated(self) -> int:
        """All candidates the filter phase touched (stored + excluded)."""
        return self.num_candidates + self.num_excluded

    def proportions(self) -> dict[str, float]:
        """Fractions of generated candidates per treatment (Figure 7)."""
        total = max(1, self.num_generated)
        return {
            "accept": self.num_lazy_accepts / total,
            "reject": self.num_lazy_rejects / total,
            "verify": self.num_verified / total,
        }


@dataclass
class RkNNResult:
    """The answer to one reverse-kNN query."""

    #: reverse k-nearest neighbors, ascending point ids
    ids: np.ndarray
    #: neighborhood size the query was asked for
    k: int
    #: scale parameter used by the dimensional test
    t: float
    #: ids accepted lazily — guaranteed members found without verification
    lazy_accepted_ids: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.intp)
    )
    #: per-query instrumentation
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def __contains__(self, point_id: int) -> bool:
        return bool(np.isin(point_id, self.ids))

    def __iter__(self):
        return iter(self.ids.tolist())
