"""Witness-counter machinery for the RDT filter phase (paper Section 4.1).

A point ``y`` discovered by the expanding search is a *witness* of a
candidate ``x`` when ``d(y, x) < d(q, x)`` — evidence that ``y`` sits inside
the ball around ``x`` whose boundary passes through the query.  Witness
counts drive the paper's two shortcut rules:

* **Lazy reject** (Assertion 1): ``W(x) >= k`` proves that at least ``k``
  points lie strictly closer to ``x`` than ``q`` does, so together with
  ``q`` itself more than ``k`` points occupy the ball — ``x`` cannot be a
  reverse k-nearest neighbor.

* **Lazy accept** (Assertion 2): once the search frontier passes
  ``2 * d(q, x)``, the ball around ``x`` of radius ``d(q, x)`` has been
  fully enumerated; if fewer than ``k`` witnesses appeared, ``q`` is inside
  ``x``'s k-nearest neighborhood and ``x`` is accepted without a
  verification query.

Under the library's self-exclusive neighborhood convention (DESIGN.md) both
rules are exact up to distance ties; note the printed pseudocode in the
paper swaps the two witness-increment branches relative to the prose
definition — this implementation follows the prose.

The store keeps all per-candidate state in flat, capacity-doubling numpy
arrays so that the O(|F|) work per retrieved point runs at vector speed
(the paper's O(|F|^2) total witness cost, but with a tiny constant).
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric

__all__ = ["CandidateStore"]

_INITIAL_CAPACITY = 64


class CandidateStore:
    """Growable arrays holding the filter set ``F`` and its witness state."""

    #: Optional per-candidate upper bounds on each candidate's k-th NN
    #: distance, derived from the batched witness matrix; the refinement
    #: seeds its tree descent with them as pruning caps.
    dk_caps = None

    def __init__(self, dim: int, metric: Metric, k: int) -> None:
        self._metric = metric
        self._k = k
        self._dim = dim
        capacity = _INITIAL_CAPACITY
        # Candidate rows and distances follow the metric's dtype policy, so
        # a float32 pipeline stays float32 through the filter set.
        self._ids = np.empty(capacity, dtype=np.intp)
        self._points = np.empty((capacity, dim), dtype=metric.dtype)
        self._query_dists = np.empty(capacity, dtype=metric.dtype)
        self._witnesses = np.zeros(capacity, dtype=np.int64)
        #: accept/reject decision has been taken for the candidate
        self._decided = np.zeros(capacity, dtype=bool)
        #: candidate was lazily accepted (subset of decided)
        self._accepted = np.zeros(capacity, dtype=bool)
        self.size = 0
        #: number of candidates RDT+ refused to store (first-cycle exclusions)
        self.num_excluded = 0

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------
    def _ensure_capacity(self) -> None:
        if self.size < self._ids.shape[0]:
            return
        new_capacity = self._ids.shape[0] * 2
        # Explicit allocate-and-copy: np.resize would fill the tail by
        # repeating existing entries, leaking stale ids/distances to any
        # reader that ever touches beyond ``size``.
        ids = np.empty(new_capacity, dtype=np.intp)
        ids[: self.size] = self._ids[: self.size]
        self._ids = ids
        points = np.empty((new_capacity, self._dim), dtype=self._points.dtype)
        points[: self.size] = self._points[: self.size]
        self._points = points
        query_dists = np.empty(new_capacity, dtype=self._query_dists.dtype)
        query_dists[: self.size] = self._query_dists[: self.size]
        self._query_dists = query_dists
        for name in ("_witnesses", "_decided", "_accepted"):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[: self.size] = old[: self.size]
            setattr(self, name, grown)

    # ------------------------------------------------------------------
    # Filter-phase update (one retrieved point)
    # ------------------------------------------------------------------
    def process_retrieved(
        self,
        point_id: int,
        point: np.ndarray,
        query_dist: float,
        *,
        exclude_if_rejected: bool,
    ) -> bool:
        """Run one witness cycle for a newly retrieved point ``v``.

        Performs, vectorized over the current candidate set:

        1. count how many stored candidates witness ``v`` (``W(v)``);
        2. increment ``W(x)`` for every candidate ``x`` witnessed by ``v``;
        3. take lazy accept/reject decisions for candidates whose ball has
           just been completely explored (``d(q, v) >= 2 d(q, x)``);
        4. append ``v`` to the store — unless ``exclude_if_rejected`` is set
           (the RDT+ rule) and ``v`` already collected ``k`` witnesses in
           this first cycle.

        Returns True if ``v`` was inserted into the filter set.
        """
        m = self.size
        if m > 0:
            dists = self._metric.to_point(self._points[:m], point)
            witnesses_of_v = int(np.count_nonzero(dists < query_dist))
            # v witnesses every stored candidate it sits strictly inside of.
            np.add(
                self._witnesses[:m],
                dists < self._query_dists[:m],
                out=self._witnesses[:m],
            )
            # Candidates whose ball the frontier has fully covered get their
            # final lazy decision now; witness counts of decided candidates
            # keep growing but can no longer change the outcome.
            newly_complete = ~self._decided[:m] & (
                2.0 * self._query_dists[:m] <= query_dist
            )
            if newly_complete.any():
                self._accepted[:m] |= newly_complete & (self._witnesses[:m] < self._k)
                self._decided[:m] |= newly_complete
        else:
            witnesses_of_v = 0

        if exclude_if_rejected and witnesses_of_v >= self._k:
            # RDT+ (paper Section 4.3): a point rejected within its first
            # witness cycle is unlikely to help reject others; leaving it out
            # of F saves witness maintenance at the risk of optimistic lazy
            # accepts later (F-based witness counts become undercounts).
            self.num_excluded += 1
            return False

        self._ensure_capacity()
        slot = self.size
        self._ids[slot] = point_id
        self._points[slot] = point
        self._query_dists[slot] = query_dist
        self._witnesses[slot] = witnesses_of_v
        self._decided[slot] = False
        self._accepted[slot] = False
        self.size = slot + 1
        return True

    def append_candidate(
        self, point_id: int, point: np.ndarray, query_dist: float
    ) -> None:
        """Store a candidate without any witness bookkeeping.

        Used by the witness-ablation mode (``RDT(use_witnesses=False)``):
        every candidate stays undecided and must be verified explicitly.
        """
        self._ensure_capacity()
        slot = self.size
        self._ids[slot] = point_id
        self._points[slot] = point
        self._query_dists[slot] = query_dist
        self._witnesses[slot] = 0
        self._decided[slot] = False
        self._accepted[slot] = False
        self.size = slot + 1

    # ------------------------------------------------------------------
    # Read access for the refinement phase
    # ------------------------------------------------------------------
    @property
    def ids(self) -> np.ndarray:
        return self._ids[: self.size]

    @property
    def points(self) -> np.ndarray:
        return self._points[: self.size]

    @property
    def query_dists(self) -> np.ndarray:
        return self._query_dists[: self.size]

    @property
    def witnesses(self) -> np.ndarray:
        return self._witnesses[: self.size]

    @property
    def accepted(self) -> np.ndarray:
        """Candidates lazily accepted by Assertion 2."""
        return self._accepted[: self.size]

    @property
    def lazy_rejected(self) -> np.ndarray:
        """Candidates ruled out by Assertion 1 (``W >= k`` and not accepted)."""
        return ~self._accepted[: self.size] & (self._witnesses[: self.size] >= self._k)

    @property
    def needs_verification(self) -> np.ndarray:
        """Candidates that survived filtering undecided: ``W < k``, not accepted."""
        return ~self._accepted[: self.size] & (self._witnesses[: self.size] < self._k)
