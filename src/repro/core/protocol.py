"""The `RkNNEngine` protocol: one query surface for every engine family.

The toolkit grew four engine families — :class:`repro.core.RDT` (RDT and
RDT+), :class:`repro.core.BichromaticRDT`, :class:`repro.approx.ApproxRkNN`,
and the five competitors in :mod:`repro.baselines` — each initially with
its own constructor and query conventions.  This module is the contract
that makes them interchangeable behind one front door
(:func:`repro.create_engine`, :class:`repro.Service`):

``query(query=None, *, query_index=None, k, **knobs) -> RkNNResult``
    One reverse-kNN query.  Exactly one of ``query`` (a raw point, not
    necessarily a dataset member) or ``query_index`` (a member id,
    excluded from its own answer) is given; the answer is always an
    :class:`~repro.core.result.RkNNResult` carrying ascending member ids
    and per-query :class:`~repro.core.result.QueryStats`.

``query_batch(queries=None, *, query_indices=None, k, **knobs) -> list[RkNNResult]``
    Many queries, one result per input row/id in order.  Engines with a
    vectorized batch implementation (``supports_batch = True``) answer
    the whole workload in one pass; the :class:`EngineBase` default loops
    :meth:`query`, so every engine is batch-drivable either way.

``query_all(*, k, **knobs) -> dict[int, RkNNResult]``
    The RkNN self-join: one query per member point, keyed by id.

**Capability flags** (class attributes) let generic drivers — the
evaluation runner, the mining joins, the conformance oracle, the
:class:`repro.Service` facade — route workloads without isinstance
checks:

``engine_name``
    The registry identifier (``"rdt+"``, ``"approx-lsh"``, ...).
``supports_batch``
    Whether ``query_batch`` is natively vectorized (as opposed to the
    looped default).
``supports_raw_queries`` / ``supports_member_queries``
    Which of the two query forms the engine accepts.  Bichromatic
    queries, for instance, are never members of either color.
``supports_bichromatic``
    Whether the engine answers the two-color (client/service) problem.
``query_knobs``
    The query-time keyword arguments the engine understands beyond ``k``
    (``("t", "filter_mode")`` for RDT, ``("alpha",)`` for SFT, ...).
    :meth:`repro.QuerySpec.knobs_for` filters a spec down to this tuple,
    which is how one spec drives heterogeneous engines.
``guarantee``
    What the engine promises about its answers (see
    :data:`GUARANTEES`); the conformance oracle maps each value to the
    assertion it can actually make.
``reads_index_live``
    Whether the engine observes index churn (insert/remove) on its own.
    Engines built from a data snapshot (``"naive"``, ``"mrknncop"``,
    ``"rdnn"``) answer stale results after churn; the
    :class:`repro.Service` facade rebuilds them automatically.
    Live-reading engines carry the opposite hazard under concurrency:
    a query racing a writer reads the index *mid-mutation* (a torn
    read), so a concurrency layer must run them over frozen
    :meth:`~repro.indexes.base.Index.snapshot` views instead.

**Versioning.**  Every engine records :attr:`~EngineBase.built_at_version`
— the backing index's :attr:`~repro.indexes.base.Index.version` at
construction — and answers :meth:`~EngineBase.is_stale`, the one
staleness predicate the drivers consult.  This replaces the historical
per-engine ad-hoc checks (the approx strategies compared whole active-id
arrays; the Service counted churn events).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.result import RkNNResult

__all__ = [
    "GUARANTEES",
    "EngineBase",
    "EngineCapabilityError",
    "RkNNEngine",
]

#: The vocabulary of :attr:`EngineBase.guarantee` values.
GUARANTEES = {
    "exact": "answers equal the brute-force reference on any input",
    "scale-exact": (
        "answers equal the reference whenever the scale parameter t "
        "dominates the data's generalized expansion dimension (Theorem 1)"
    ),
    "scale-recall": (
        "answers contain every reference member whenever t dominates the "
        "expansion dimension; precision may drop (RDT+'s Section 4.3 trade)"
    ),
    "recall": "answers contain every reference member (no false negatives)",
    "precision": "every answered id is a reference member (no false positives)",
    "heuristic": "no deterministic containment guarantee either way",
}


class EngineCapabilityError(RuntimeError):
    """Raised when an engine is asked for a query form it does not support."""


@runtime_checkable
class RkNNEngine(Protocol):
    """Structural type of every reverse-kNN engine (see module docstring)."""

    engine_name: str
    supports_batch: bool
    supports_raw_queries: bool
    supports_member_queries: bool
    supports_bichromatic: bool
    query_knobs: tuple[str, ...]
    guarantee: str
    reads_index_live: bool
    built_at_version: int | None

    def is_stale(self, index=None) -> bool:
        ...

    def query(self, query=None, *, query_index=None, k=None, **knobs) -> RkNNResult:
        ...

    def query_batch(
        self, queries=None, *, query_indices=None, k=None, **knobs
    ) -> list[RkNNResult]:
        ...

    def query_all(self, *, k=None, **knobs) -> dict[int, RkNNResult]:
        ...


class EngineBase:
    """Mixin turning a single-query method into a full protocol surface.

    Subclasses implement :meth:`query` and (for engines without a live
    :attr:`index`) override :meth:`member_ids`; the mixin supplies looped
    ``query_batch`` / ``query_all`` with the protocol's calling
    convention.  Engines with a vectorized batch path override both and
    set ``supports_batch = True``.
    """

    engine_name: str = "abstract"
    supports_batch: bool = False
    supports_raw_queries: bool = True
    supports_member_queries: bool = True
    supports_bichromatic: bool = False
    query_knobs: tuple[str, ...] = ()
    #: extra knobs understood only by the batched entry points (e.g.
    #: RDT's ``filter_mode`` — an execution-strategy switch that has no
    #: meaning for a single query).
    batch_knobs: tuple[str, ...] = ()
    guarantee: str = "heuristic"
    reads_index_live: bool = True
    #: The backing index's :attr:`~repro.indexes.base.Index.version` at
    #: the time this engine's derived state was built.  Index-backed
    #: engines bind it in their constructor; data-snapshot engines have
    #: no index to read and leave it ``None`` until an owner (e.g.
    #: :class:`repro.Service`) stamps it.
    built_at_version: int | None = None

    def is_stale(self, index=None) -> bool:
        """Whether ``index`` has churned past :attr:`built_at_version`.

        With no argument, checks the engine's own ``self.index``.  An
        engine with no bound index or no recorded version is never
        reported stale — the owner that built it from raw data is
        responsible for stamping :attr:`built_at_version` if it wants
        this predicate to fire.  Note the meaning differs by family:
        for ``reads_index_live`` engines staleness marks *derived state*
        (caches, estimates) as outdated while queries still see fresh
        data; for snapshot engines it means the answers themselves
        reflect an older epoch.
        """
        if index is None:
            index = getattr(self, "index", None)
        if index is None or self.built_at_version is None:
            return False
        return int(index.version) != int(self.built_at_version)

    def member_ids(self) -> np.ndarray:
        """Ids of the member points ``query_all`` should enumerate."""
        index = getattr(self, "index", None)
        if index is None:
            raise EngineCapabilityError(
                f"{type(self).__name__} has no backing index; override "
                "member_ids() to enumerate its member points"
            )
        return index.active_ids()

    def query_batch(
        self, queries=None, *, query_indices=None, k=None, **knobs
    ) -> list[RkNNResult]:
        """Looped default: one :meth:`query` call per input row/id."""
        if (queries is None) == (query_indices is None):
            raise ValueError(
                "provide exactly one of `queries` or `query_indices`"
            )
        if query_indices is not None:
            return [
                self.query(query_index=int(qi), k=k, **knobs)
                for qi in np.asarray(query_indices, dtype=np.intp)
            ]
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be a 2-D array of rows, got shape {queries.shape}"
            )
        return [self.query(row, k=k, **knobs) for row in queries]

    def query_all(self, *, k=None, **knobs) -> dict[int, RkNNResult]:
        """The RkNN self-join through :meth:`query_batch`."""
        ids = self.member_ids()
        results = self.query_batch(query_indices=ids, k=k, **knobs)
        return {int(pid): result for pid, result in zip(ids, results)}
