"""The dimensional test terminating RDT's expanding search (Sections 4.1, 5).

The filter phase walks outward from the query in nondecreasing distance
order.  After each retrieved point it refreshes an upper bound ``omega`` on
the distance at which an undiscovered reverse neighbor could still exist:

    omega = min over visited ranks s of   d_s(q) / ((s / k')^(1/t) - 1),

and stops as soon as the frontier distance exceeds ``omega``, or the rank
reaches the Lemma-1 cap ``min(n, floor(2^t * k'))``.  If ``t`` is at least
the maximum generalized expansion dimension of the data, Theorem 1 shows no
reverse neighbor is ever missed.

``k'`` is the *termination rank*: the paper's pseudocode uses ``k' = k``
under its self-inclusive ball counts.  This library counts neighborhoods
self-exclusively (DESIGN.md), under which the theorem's chain of
inequalities requires ``k' = k + 1``; the ``conservative`` flag (default
True) selects that provably exact variant, while False reproduces the
paper's literal formula (negligibly earlier termination).
"""

from __future__ import annotations

import math

from repro.utils.validation import check_k, check_scale_parameter

__all__ = ["DimensionalTest"]


class DimensionalTest:
    """Tracks ``omega`` and the rank cap for one RDT query."""

    def __init__(self, k: int, t: float, n: int, conservative: bool = True) -> None:
        self.k = check_k(k)
        self.t = check_scale_parameter(t)
        self.termination_rank = self.k + 1 if conservative else self.k
        self.omega = math.inf
        # floor(2^t * k') overflows fast; anything past n is "never by rank".
        if self.t * math.log2(max(2, self.termination_rank)) > 120 or self.t > 60:
            self.rank_cap = n
        else:
            self.rank_cap = min(n, int(math.floor(2.0**self.t * self.termination_rank)))
        self.terminated_by: str | None = None

    def observe(self, rank: int, frontier_dist: float) -> None:
        """Update ``omega`` after retrieving a point of rank ``rank``.

        Matches Algorithm 1 lines 21–23: the update applies once the rank
        exceeds the termination rank and the frontier has left the query
        point itself (``d > 0`` — duplicates of the query carry no
        expansion information and would divide by zero).
        """
        if rank > self.termination_rank and frontier_dist > 0.0:
            ratio = (rank / self.termination_rank) ** (1.0 / self.t) - 1.0
            if ratio > 0.0:
                bound = frontier_dist / ratio
                if bound < self.omega:
                    self.omega = bound

    def should_terminate(self, rank: int, frontier_dist: float) -> bool:
        """Algorithm 1 line 24: stop on the omega test or the rank cap."""
        if frontier_dist > self.omega:
            self.terminated_by = "omega"
            return True
        if rank >= self.rank_cap:
            self.terminated_by = "rank-cap"
            return True
        return False

    def mark_exhausted(self) -> None:
        """Record that the index ran out of points before either test fired."""
        if self.terminated_by is None:
            self.terminated_by = "exhausted"
