"""RDT — Reverse k-nearest neighbor queries by Dimensional Testing.

This is the paper's Algorithm 1, in two variants:

* **RDT**: every point retrieved by the expanding forward search enters the
  filter set and participates in witness counting;
* **RDT+** (Section 4.3): a retrieved point that collects ``k`` witnesses
  within its own first cycle is excluded from the filter set, trading a
  possible loss of precision for much cheaper witness maintenance on large
  candidate sets.

A query proceeds in two phases:

**Filter** — an incremental forward search expands from the query ``q``
through the backing index.  Each retrieved point ``v`` runs one witness
cycle against the current candidates (see :mod:`repro.core.witness`), then
the dimensional test (:mod:`repro.core.termination`) decides whether any
undiscovered reverse neighbor can still exist under the assumption that the
scale parameter ``t`` upper-bounds the local intrinsic dimensionality.
Points with identical query distance are drained as one tie group before
the test runs, so the rank bookkeeping matches the paper's max-rank
convention ``s = rho_S(q, v)``.

**Refinement** — candidates that were neither lazily accepted nor lazily
rejected are verified with forward kNN distances: ``x`` belongs to the
result iff ``d_k(x) >= d(q, x)`` (self-exclusive kNN distance, boundary
ties included).  This is the expensive step the witness rules exist to
avoid; the per-query statistics record exactly how many verifications were
spent.  All undecided candidates of a query (or of a whole batch, see
below) are verified with one call to the index's batched
:meth:`~repro.indexes.Index.knn_distances` capability rather than one
Python-level search per candidate.

**Batched execution** — :meth:`RDT.query_batch` answers many queries in
one pass and :meth:`RDT.query_all` answers one query per indexed point
(the RkNN self-join workload of the mining and evaluation modules).  The
batch engine vectorizes both phases:

* for the plain ``rdt`` variant the filter phase is computed in closed
  form from chunked pairwise distances — the sequential witness recursion
  of Algorithm 1 collapses, because with every retrieved point stored, the
  final witness count of a candidate ``x`` is simply the number of other
  candidates strictly inside the ball ``B(x, d(q, x))``, and ``x`` is
  lazily decided iff some later-retrieved point lies at distance at least
  ``2 d(q, x)``;
* for ``rdt+`` the exclusion rule makes the recursion genuinely
  sequential, so the filter runs per query while refinement is still
  batched;
* the refinement phase issues a single :meth:`knn_distances` call for the
  undecided candidates of the *entire batch*.

Per-query :class:`~repro.core.result.QueryStats` survive batching: the
semantic counters (retrieved/candidates/lazy decisions/verifications),
``omega`` and the termination reason are identical to a loop of
single-point queries; distance-call counts and wall-clock fields report
the batch's actual (shared, vectorized) work, attributed per query.

Exactness: with ``t`` at least the maximum generalized expansion dimension
of the data (see :func:`repro.lid.max_ged`), the returned set equals the
true reverse k-nearest neighbors (Theorem 1); for smaller ``t`` the result
may miss members whose query distance exceeds the final ``omega`` bound,
which is exposed in :class:`~repro.core.result.QueryStats`.
"""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from repro.core.protocol import EngineBase
from repro.core.result import QueryStats, RkNNResult
from repro.core.termination import DimensionalTest
from repro.core.witness import CandidateStore
from repro.distances import EuclideanMetric
from repro import kernels
from repro.kernels import numpy_impl
from repro.indexes.base import Index
from repro.utils.tolerance import DIST_ATOL as _DIST_ATOL
from repro.utils.tolerance import DIST_RTOL as _DIST_RTOL
from repro.utils.tolerance import dist_le_many, inflate
from repro.utils.validation import (
    as_query_point,
    check_k,
    check_scale_parameter,
    resolve_batch_queries,
)

__all__ = ["RDT", "VARIANTS"]

VARIANTS = ("rdt", "rdt+")

#: Peak doubles of gathered-coordinate work per block of the batched
#: filter phase (the row budget divides this by n * dim).  Results are
#: block-size independent — the pairwise kernel's centering decision
#: depends only on Y, and selection/witness math is per-row — but time is
#: not: column budgets (preselect width, witness tensor sides) are maxima
#: over the block's rows, so wide blocks make every row pay for the
#: widest one.  Keep blocks narrow.
_FILTER_BLOCK = 4 * 1024 * 1024


def _tie_groups(
    neighbor_iter: Iterator[tuple[int, float]],
) -> Iterator[list[tuple[int, float]]]:
    """Group an ascending neighbor stream by exactly-equal distances."""
    group: list[tuple[int, float]] = []
    for point_id, dist in neighbor_iter:
        if group and dist != group[0][1]:
            yield group
            group = []
        group.append((point_id, dist))
    if group:
        yield group


class RDT(EngineBase):
    """Reverse-kNN query processor over any incremental-NN index.

    Parameters
    ----------
    index:
        Any :class:`repro.indexes.Index`.  The algorithm inherits the
        index's metric; dynamic updates to the index are picked up by
        subsequent queries automatically (the paper's Section 4 storage
        argument: RDT itself keeps no per-dataset state).
    variant:
        ``"rdt"`` or ``"rdt+"`` (candidate-set reduction).
    conservative:
        Use the provably exact termination rank ``k + 1`` (default); False
        reproduces the paper's literal formula with ``k``.  See
        :mod:`repro.core.termination`.
    use_witnesses:
        Ablation switch (default True).  With False, the witness machinery
        of Section 4.1 is skipped entirely: every candidate reaching the
        refinement phase is verified with a forward-kNN query, which is how
        the paper explains the RDT-over-SFT advantage (Section 8.2).  The
        result set is unchanged for plain RDT — only the cost moves.
    """

    supports_batch = True
    query_knobs = ("t",)
    batch_knobs = ("filter_mode",)

    #: Blocked, row-parallel selection and omega recursion in the batched
    #: filter (``False`` restores the historical one-query-at-a-time loop;
    #: results are identical either way — the kernel benchmarks flip this
    #: to measure the baseline).
    vectorized_filter = True
    #: Seed the refinement's batched kNN with triangle-inequality caps on
    #: each candidate's k-th NN distance, so the tree descent prunes from
    #: the first node instead of warming up its radii from ``inf``.  Pure
    #: pruning: the returned distances are identical with or without it.
    use_refine_caps = True

    def __init__(
        self,
        index: Index,
        variant: str = "rdt",
        conservative: bool = True,
        use_witnesses: bool = True,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
        if variant == "rdt+" and not use_witnesses:
            raise ValueError(
                "RDT+ is defined through its witness-based exclusion rule; "
                "use_witnesses=False only applies to the plain RDT variant"
            )
        self.index = index
        self.built_at_version = index.version
        self.variant = variant
        self.conservative = bool(conservative)
        self.use_witnesses = bool(use_witnesses)
        # Protocol identity: the registry names the two variants apart.
        self.engine_name = variant
        # Exact given t >= max GED (Theorem 1); RDT+ additionally trades
        # precision for cheaper witness upkeep (Section 4.3).
        self.guarantee = "scale-exact" if variant == "rdt" else "scale-recall"

    def __repr__(self) -> str:
        knobs = ""
        if not self.conservative:
            knobs += ", conservative=False"
        if not self.use_witnesses:
            knobs += ", use_witnesses=False"
        return f"RDT(variant={self.variant!r}{knobs}, index={self.index!r})"

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def query(
        self,
        query=None,
        *,
        query_index: int | None = None,
        k: int,
        t: float,
    ) -> RkNNResult:
        """Answer one reverse k-nearest neighbor query.

        Exactly one of ``query`` (a raw point, not necessarily a dataset
        member) or ``query_index`` (id of an indexed point; the point is
        excluded from its own answer, as in the paper's experiments) must
        be given.  ``t`` is the scale parameter trading accuracy for time;
        see :mod:`repro.core.scale` for data-driven choices.
        """
        k = check_k(k)
        t = check_scale_parameter(t)
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        if query_index is not None:
            query_point = self.index.get_point(query_index)
        else:
            query_point = as_query_point(query, dim=self.index.dim)

        metric = self.index.metric
        calls_before = metric.num_calls
        stats = QueryStats()

        store, test = self._filter_phase(query_point, query_index, k, t, stats)
        result_ids, lazy_ids = self._refinement_phase(store, k, stats)

        stats.num_distance_calls = metric.num_calls - calls_before
        stats.omega = test.omega
        stats.terminated_by = test.terminated_by or "unknown"
        return RkNNResult(
            ids=result_ids, k=k, t=t, lazy_accepted_ids=lazy_ids, stats=stats
        )

    def query_batch(
        self,
        queries=None,
        *,
        query_indices=None,
        k: int,
        t: float,
        filter_mode: str = "auto",
    ) -> list[RkNNResult]:
        """Answer many reverse-kNN queries in one vectorized pass.

        Exactly one of ``queries`` (an ``(m, dim)`` array of raw points)
        or ``query_indices`` (a sequence of member point ids, each excluded
        from its own answer) must be given.  Returns one
        :class:`~repro.core.result.RkNNResult` per query, in input order,
        with decisions identical to a loop of :meth:`query` calls — only
        the execution strategy changes (see the module docstring).

        ``filter_mode`` selects the filter-phase strategy:

        * ``"auto"`` (default) — the closed-form vectorized filter for the
          plain ``rdt`` variant, the per-query sequential filter otherwise;
        * ``"sequential"`` — force the per-query index-driven filter.  The
          vectorized filter scans all active points per query, so on very
          large datasets with a pruning tree backend the sequential filter
          (plus the still-batched refinement) can do less total work;
        * ``"vectorized"`` — require the closed-form filter (raises for
          ``rdt+``, whose exclusion rule is order-dependent).
        """
        if filter_mode not in ("auto", "sequential", "vectorized"):
            raise ValueError(
                "filter_mode must be 'auto', 'sequential' or 'vectorized', "
                f"got {filter_mode!r}"
            )
        if filter_mode == "vectorized" and self.variant != "rdt":
            raise ValueError(
                "filter_mode='vectorized' requires the plain 'rdt' variant: "
                "the RDT+ exclusion rule is order-dependent and has no "
                "closed form"
            )
        k = check_k(k)
        t = check_scale_parameter(t)
        query_points, exclude = resolve_batch_queries(
            self.index, queries, query_indices
        )
        if query_points.shape[0] == 0:
            return []

        stats_list = [QueryStats() for _ in range(query_points.shape[0])]
        if self.variant == "rdt" and filter_mode != "sequential":
            stores = self._filter_phase_batch(
                query_points, exclude, k, t, stats_list
            )
        else:
            # Per-query index-driven filter: mandatory for RDT+ (each
            # exclusion changes the witness counts of everything retrieved
            # later, so the recursion is order-dependent), optional via
            # filter_mode for plain RDT; refinement is still batched.
            metric = self.index.metric
            stores = []
            for row, stats in enumerate(stats_list):
                calls_before = metric.num_calls
                query_index = int(exclude[row]) if exclude[row] >= 0 else None
                store, test = self._filter_phase(
                    query_points[row], query_index, k, t, stats
                )
                stats.num_distance_calls = metric.num_calls - calls_before
                stats.omega = test.omega
                stats.terminated_by = test.terminated_by or "unknown"
                stores.append(store)
        return self._refine_batch(stores, k, t, stats_list)

    def query_all(
        self, *, k: int, t: float, filter_mode: str = "auto"
    ) -> dict[int, RkNNResult]:
        """The RkNN self-join: one query per active indexed point.

        Returns ``{point_id: result}`` for every active point, computed
        through :meth:`query_batch` — this is the all-points mode the
        mining (:mod:`repro.mining`) and evaluation workloads consume.
        """
        ids = self.index.active_ids()
        results = self.query_batch(
            query_indices=ids, k=k, t=t, filter_mode=filter_mode
        )
        return {int(pid): result for pid, result in zip(ids, results)}

    # ------------------------------------------------------------------
    # Phase 1: expanding search with dimensional testing
    # ------------------------------------------------------------------
    def _filter_phase(
        self,
        query_point: np.ndarray,
        query_index: int | None,
        k: int,
        t: float,
        stats: QueryStats,
    ) -> tuple[CandidateStore, DimensionalTest]:
        started = time.perf_counter()
        n = self.index.size
        test = DimensionalTest(k, t, n, conservative=self.conservative)
        store = CandidateStore(self.index.dim, self.index.metric, k)
        exclude_if_rejected = self.variant == "rdt+"

        rank = 0
        for group in _tie_groups(self.index.iter_neighbors(query_point)):
            # Max-rank tie convention: every member of the group takes the
            # rank of the group's last element.
            rank += len(group)
            frontier = group[0][1]
            for point_id, dist in group:
                if point_id == query_index:
                    # The query point counts toward ranks (ball cardinalities
                    # are physical counts) but is never its own candidate.
                    continue
                if self.use_witnesses:
                    store.process_retrieved(
                        point_id,
                        self.index.get_point(point_id),
                        dist,
                        exclude_if_rejected=exclude_if_rejected,
                    )
                else:
                    store.append_candidate(
                        point_id, self.index.get_point(point_id), dist
                    )
            test.observe(rank, frontier)
            if test.should_terminate(rank, frontier):
                break
        else:
            test.mark_exhausted()

        stats.num_retrieved = rank
        stats.num_candidates = store.size
        stats.num_excluded = store.num_excluded
        stats.filter_seconds = time.perf_counter() - started
        return store, test

    # ------------------------------------------------------------------
    # Phase 1, batched: closed-form filter for the plain RDT variant
    # ------------------------------------------------------------------
    def _filter_phase_batch(
        self,
        query_points: np.ndarray,
        exclude: np.ndarray,
        k: int,
        t: float,
        stats_list: list[QueryStats],
    ) -> list[CandidateStore]:
        """Vectorized filter phase for ``variant="rdt"``.

        Each query's distances to the whole active set carry the same bits
        as the sequential scan's per-query ``metric.to_point`` call (the
        row-block ``to_point_many`` kernel evaluates the identical
        elementwise expression), so tie-group structure and termination
        rank are bit-identical to a looped :meth:`query`.  The termination
        rank, final witness counts and lazy decisions then follow in
        closed form (see the module docstring for why the sequential
        recursion collapses when every retrieved point is stored).

        With :attr:`vectorized_filter` the selection, sort, and omega
        recursion run row-parallel over blocks of queries; rows whose
        selection straddles a tie group at the rank cap fall back to the
        per-row closed form, which handles straddling exactly.
        """
        index = self.index
        metric = index.metric
        active = index.active_ids()
        points = index.points[active]
        n = active.shape[0]
        probe = DimensionalTest(k, t, n, conservative=self.conservative)
        rank_cap = probe.rank_cap
        termination_rank = probe.termination_rank
        inv_t = 1.0 / probe.t
        m = query_points.shape[0]

        if not self.vectorized_filter or n == 0:
            stores: list[CandidateStore] = []
            for row in range(m):
                stats = stats_list[row]
                started = time.perf_counter()
                calls_before = metric.num_calls
                dists = metric.to_point(points, query_points[row])
                store = self._filter_one_from_distances(
                    dists,
                    active,
                    int(exclude[row]),
                    k,
                    termination_rank,
                    rank_cap,
                    inv_t,
                    stats,
                )
                stats.num_distance_calls = metric.num_calls - calls_before
                stats.filter_seconds = time.perf_counter() - started
                stores.append(store)
            return stores

        out: list[CandidateStore | None] = [None] * m
        m_scale = (
            self._max_centered_norm_sq(points) if self.use_witnesses else 0.0
        )
        bound_scale = (
            4.0 * 1000.0 * index.dim * float(np.finfo(points.dtype).eps) * m_scale
            if self.use_witnesses
            else None
        )
        fast_select = isinstance(metric, EuclideanMetric)
        presel_err = (
            self._preselect_error_bound(query_points, points)
            if fast_select
            else 0.0
        )
        all_points = index.points
        points_mu = points.mean(axis=0) if n else None
        limit = min(rank_cap, n)
        presel_stats = None
        if fast_select and limit < n and kernels.active_backend() == "numpy":
            # Hoist the pairwise kernel's Y-side passes (squared norms,
            # mean, centering decision — chunk-independent by design) out
            # of the per-block loop; the stats variant then reproduces
            # metric.pairwise(qblock, points) bit-for-bit.
            presel_stats = numpy_impl.euclidean_y_stats(points)
        # Column-constant parts of the omega recursion: rank r sits at
        # column r - 1 of every sorted selection row.
        col_ranks = np.arange(1, limit + 1, dtype=np.int64)
        rank_eligible = col_ranks > termination_rank
        ratio_row = np.where(
            rank_eligible, (col_ranks / termination_rank) ** inv_t - 1.0, np.inf
        )
        cap_cols = (col_ranks >= rank_cap)[None, :]

        block = max(1, _FILTER_BLOCK // max(1, n * max(1, index.dim)))
        for start in range(0, m, block):
            stop = min(m, start + block)
            width = stop - start
            t_block = time.perf_counter()
            qblock = query_points[start:stop]
            cols = None
            if fast_select and limit < n:
                # Squared-domain preselection with the dgemm expansion
                # kernel: the exact ``limit`` smallest distances (with all
                # their ties) of every row are guaranteed to sit among its
                # columns with approx-squared value within ``2 * presel_err``
                # of the row's limit-th smallest — exact distances are then
                # recomputed only for that thin slab of columns.
                if presel_stats is not None:
                    asq = kernels.euclidean_pairwise_stats(
                        qblock, *presel_stats
                    )
                    metric.num_calls += width * n
                else:
                    asq = metric.pairwise(qblock, points)
                np.square(asq, out=asq)
                lp = limit + 64
                if lp < n:
                    # One O(n)-selection pass: the limit-th smallest (for
                    # the threshold) and the candidate columns both come
                    # from the same ``lp``-wide argpartition.  When every
                    # row's prefix boundary value exceeds its threshold,
                    # the prefix provably contains all below-threshold
                    # entries and is itself a valid column superset — the
                    # downstream selection works on exact recomputed
                    # distances, so extra columns are harmless — and the
                    # full-width counting pass is skipped entirely.
                    part = np.argpartition(asq, lp - 1, axis=1)[:, :lp]
                    vals = np.take_along_axis(asq, part, axis=1)
                    thr = (
                        np.partition(vals, limit - 1, axis=1)[:, limit - 1]
                        + 2.0 * presel_err
                    )
                    if bool((vals.max(axis=1) > thr).all()):
                        cols = np.sort(part, axis=1)
                else:
                    thr = (
                        np.partition(asq, limit - 1, axis=1)[:, limit - 1]
                        + 2.0 * presel_err
                    )
                if cols is None:
                    # Tie plateau at the prefix boundary (or no usable
                    # prefix): fall back to the exact counting pass.
                    maxc = int(
                        np.count_nonzero(asq <= thr[:, None], axis=1).max()
                    )
                    if maxc < n:
                        cols = np.sort(
                            np.argpartition(asq, maxc - 1, axis=1)[:, :maxc],
                            axis=1,
                        )
                if cols is not None:
                    # Bit-identical to per-point ``to_point``: same
                    # subtraction, same contiguous last-axis reduction.
                    diff = points[cols] - qblock[:, None, :]
                    sub_d = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
                del asq
            if cols is None:
                sub_d = metric.to_point_many(qblock, points)
            share_seconds = (time.perf_counter() - t_block) / width

            nc = sub_d.shape[1]
            if limit < nc:
                part = np.argpartition(sub_d, limit - 1, axis=1)[:, :limit]
                # Ascending positions restore ascending ids (active is
                # sorted and cols rows are sorted), so a stable sort by
                # distance afterwards equals the per-row
                # lexsort((ids, dists)).
                pos = np.sort(part, axis=1)
                sel = np.take_along_axis(sub_d, pos, axis=1)
                order = np.argsort(sel, axis=1, kind="stable")
                sel = np.take_along_axis(sel, order, axis=1)
                pos = np.take_along_axis(pos, order, axis=1)
                counts = np.count_nonzero(
                    sub_d <= sel[:, -1][:, None], axis=1
                )
                # Rows where a tie group straddles the cap retrieve more
                # than ``limit`` points; leave them to the per-row path.
                # (Preselection never hides straddles: every point within
                # tolerance of the limit-th distance is among the columns.)
                regular = counts == limit
            else:
                pos = np.argsort(sub_d, axis=1, kind="stable")
                sel = np.take_along_axis(sub_d, pos, axis=1)
                regular = np.ones(width, dtype=bool)

            reg = np.flatnonzero(regular)
            if reg.shape[0]:
                sd = sel[reg]
                nreg = reg.shape[0]
                is_end = np.empty(sd.shape, dtype=bool)
                if sd.shape[1] > 1:
                    np.not_equal(sd[:, 1:], sd[:, :-1], out=is_end[:, :-1])
                is_end[:, -1] = True
                eligible = is_end & rank_eligible[None, :] & (sd > 0.0)
                bounds = np.full(sd.shape, np.inf)
                np.divide(
                    sd,
                    ratio_row[None, :],
                    out=bounds,
                    where=eligible & (ratio_row > 0.0)[None, :],
                )
                omega_run = np.minimum.accumulate(bounds, axis=1)
                terminating = is_end & ((sd > omega_run) | cap_cols)
                first_end = np.argmax(terminating, axis=1)
                has_hit = terminating[np.arange(nreg), first_end]
                ret = np.where(has_hit, first_end + 1, sd.shape[1])

                # Compact every regular row's candidate set (retrieved
                # prefix minus the query itself) into padded (nreg, c)
                # arrays so witness counting runs as one batched kernel.
                max_r = int(ret.max())
                pos_r = pos[reg, :max_r]
                if cols is not None:
                    gpos = np.take_along_axis(cols[reg], pos_r, axis=1)
                else:
                    gpos = pos_r
                ids_mat = active[gpos]
                d_mat = sd[:, :max_r]
                valid = np.arange(max_r)[None, :] < ret[:, None]
                keep = valid & (ids_mat != exclude[start:stop][reg][:, None])
                sizes = keep.sum(axis=1)
                c = int(sizes.max()) if nreg else 0
                corder = np.argsort(~keep, axis=1, kind="stable")[:, :c]
                cand_ids = np.take_along_axis(ids_mat, corder, axis=1)
                cand_d = np.take_along_axis(d_mat, corder, axis=1)
                cvalid = np.arange(c)[None, :] < sizes[:, None]

                counts_w = None
                dk = None
                if self.use_witnesses and c:
                    counts_w, dk = self._batched_witnesses(
                        all_points,
                        points_mu,
                        cand_ids,
                        cand_d,
                        cvalid,
                        k,
                        m_scale,
                    )

                arange_cache: dict[int, np.ndarray] = {}
                for j in range(nreg):
                    row = start + int(reg[j])
                    stats = stats_list[row]
                    t_row = time.perf_counter()
                    if has_hit[j]:
                        g = int(first_end[j])
                        stats.omega = float(omega_run[j, g])
                        stats.terminated_by = (
                            "omega" if sd[j, g] > omega_run[j, g] else "rank-cap"
                        )
                    else:
                        # Only reachable when the selection covered the
                        # whole index.
                        stats.omega = float(omega_run[j, -1])
                        stats.terminated_by = "exhausted"
                    size = int(sizes[j])
                    cid = cand_ids[j, :size].astype(np.intp)
                    cd = np.array(cand_d[j, :size])
                    cpts = all_points[cid]
                    witnesses = np.zeros(size, dtype=np.int64)
                    decided = np.zeros(size, dtype=bool)
                    accepted = np.zeros(size, dtype=bool)
                    dk_caps = None
                    wit_calls = 0
                    if size and self.use_witnesses:
                        witnesses = np.array(counts_w[j, :size])
                        wit_calls = size * size
                        if dk is not None:
                            dk_caps = dk[j, :size].copy()
                        ar = arange_cache.get(size)
                        if ar is None:
                            ar = np.arange(size)
                            arange_cache[size] = ar
                        decided = (ar < size - 1) & (2.0 * cd <= cd[-1])
                        accepted = decided & (witnesses < k)
                    store = CandidateStore(index.dim, metric, k)
                    store._ids = cid
                    store._points = cpts
                    store._query_dists = cd
                    store._witnesses = witnesses
                    store._decided = decided
                    store._accepted = accepted
                    store.size = size
                    store.dk_caps = dk_caps
                    out[row] = store
                    stats.num_retrieved = int(ret[j])
                    stats.num_candidates = size
                    stats.num_excluded = 0
                    stats.num_distance_calls = n + wit_calls
                    stats.filter_seconds = share_seconds + (
                        time.perf_counter() - t_row
                    )

            for row_local in np.flatnonzero(~regular):
                row = start + int(row_local)
                stats = stats_list[row]
                t_row = time.perf_counter()
                calls_row = metric.num_calls
                if cols is None:
                    dists_full = sub_d[row_local]
                else:
                    dists_full = metric.to_point(points, query_points[row])
                out[row] = self._filter_one_from_distances(
                    dists_full,
                    active,
                    int(exclude[row]),
                    k,
                    termination_rank,
                    rank_cap,
                    inv_t,
                    stats,
                    bound_scale,
                )
                stats.num_distance_calls = n + (metric.num_calls - calls_row)
                stats.filter_seconds = share_seconds + (
                    time.perf_counter() - t_row
                )
        return out

    def _filter_one_from_distances(
        self,
        dists: np.ndarray,
        ids: np.ndarray,
        query_index: int,
        k: int,
        termination_rank: int,
        rank_cap: int,
        inv_t: float,
        stats: QueryStats,
        bound_scale: float | None = None,
    ) -> CandidateStore:
        """Closed-form filter outcome for one query, given all distances."""
        n = dists.shape[0]
        # Only the first rank_cap ranks (plus the tie group straddling the
        # cap) can ever be retrieved; select them without a full sort.
        limit = min(rank_cap, n)
        if limit < n:
            threshold = np.partition(dists, limit - 1)[limit - 1]
            selection = np.flatnonzero(dists <= threshold)
            sel_dists = dists[selection]
            sel_ids = ids[selection]
        else:
            sel_dists = dists
            sel_ids = ids
        order = np.lexsort((sel_ids, sel_dists))
        sel_dists = sel_dists[order]
        sel_ids = sel_ids[order]
        if sel_dists.shape[0] == 0:
            # Empty active set: mirror the sequential loop, which yields no
            # groups and marks the search exhausted.
            stats.omega = float("inf")
            stats.terminated_by = "exhausted"
            stats.num_retrieved = 0
            stats.num_candidates = 0
            stats.num_excluded = 0
            store = CandidateStore(self.index.dim, self.index.metric, k)
            return store

        # Tie groups and the omega recursion over their end ranks.
        boundaries = np.flatnonzero(sel_dists[1:] != sel_dists[:-1])
        ends = np.append(boundaries, sel_dists.shape[0] - 1)
        ranks = ends + 1
        group_dists = sel_dists[ends]
        eligible = (ranks > termination_rank) & (group_dists > 0.0)
        ratio = np.where(
            eligible, (ranks / termination_rank) ** inv_t - 1.0, np.inf
        )
        # Huge t underflows the ratio to exactly 0.0; divide only where the
        # bound is defined instead of filtering a 0-division afterwards.
        bounds = np.full(ratio.shape, np.inf)
        np.divide(
            group_dists, ratio, out=bounds, where=eligible & (ratio > 0.0)
        )
        omega_run = np.minimum.accumulate(bounds)
        terminating = (group_dists > omega_run) | (ranks >= rank_cap)
        hits = np.flatnonzero(terminating)
        if hits.shape[0]:
            g = int(hits[0])
            retrieved = int(ranks[g])
            stats.omega = float(omega_run[g])
            stats.terminated_by = (
                "omega" if group_dists[g] > omega_run[g] else "rank-cap"
            )
        else:
            # Only reachable when the selection covered the whole index.
            retrieved = int(sel_dists.shape[0])
            stats.omega = float(omega_run[-1]) if ends.shape[0] else float("inf")
            stats.terminated_by = "exhausted"

        return self._finish_store(
            sel_ids[:retrieved],
            sel_dists[:retrieved],
            query_index,
            k,
            retrieved,
            stats,
            bound_scale,
        )

    def _finish_store(
        self,
        prefix_ids: np.ndarray,
        prefix_dists: np.ndarray,
        query_index: int,
        k: int,
        retrieved: int,
        stats: QueryStats,
        bound_scale: float | None = None,
    ) -> CandidateStore:
        """Candidate store for one query from its retrieved prefix."""
        if query_index >= 0:
            keep = prefix_ids != query_index
            cand_ids = prefix_ids[keep]
            cand_dists = prefix_dists[keep]
        else:
            cand_ids = prefix_ids.copy()
            cand_dists = prefix_dists.copy()
        cand_points = self.index.points[cand_ids]
        size = cand_ids.shape[0]

        witnesses = np.zeros(size, dtype=np.int64)
        decided = np.zeros(size, dtype=bool)
        accepted = np.zeros(size, dtype=bool)
        if size and self.use_witnesses:
            # Final witness count of x = other candidates strictly inside
            # B(x, d(q, x)); all of them are retrieved before any point at
            # distance >= 2 d(q, x), so the count at lazy-decision time
            # equals the final count.
            witnesses = self._count_witnesses(cand_points, cand_dists, bound_scale)
            # x is decided iff a later-retrieved point completed its ball:
            # candidates are in retrieval order, so the last one decides all
            # the others whose doubled query distance it covers.
            decided = (np.arange(size) < size - 1) & (
                2.0 * cand_dists <= cand_dists[-1]
            )
            accepted = decided & (witnesses < k)

        store = CandidateStore(self.index.dim, self.index.metric, k)
        store._ids = cand_ids.astype(np.intp)
        store._points = cand_points
        store._query_dists = cand_dists
        store._witnesses = witnesses.astype(np.int64)
        store._decided = decided
        store._accepted = accepted
        store.size = size
        stats.num_retrieved = retrieved
        stats.num_candidates = size
        stats.num_excluded = 0
        return store

    @staticmethod
    def _preselect_error_bound(queries: np.ndarray, points: np.ndarray) -> float:
        """Absolute error bound on the expansion kernel's squared distances.

        Mirrors the centering decision of the dispatched pairwise kernel
        (``repro.kernels.numpy_impl.euclidean_pairwise``): when the kernel
        centers on the point mean, errors scale with the centered squared
        norms; otherwise with the raw ones.  The factor is deliberately
        generous (the true bound is ``~log2(dim)`` epsilons) — a too-large
        bound only widens the preselection by a few columns.
        """
        if points.shape[0] == 0 or queries.shape[0] == 0:
            return 0.0
        yy = np.einsum("ij,ij->i", points, points)
        mu = points.mean(axis=0)
        offset_sq = float(mu @ mu)
        spread_sq = max(float(yy.mean()) - offset_sq, 0.0)
        if offset_sq > 100.0 * spread_sq:
            q = queries - mu
            p = points - mu
            yy = np.einsum("ij,ij->i", p, p)
        else:
            q = queries
        xx = np.einsum("ij,ij->i", q, q)
        m_sq = max(float(xx.max()), float(yy.max()))
        eps = float(np.finfo(points.dtype).eps)
        return 1000.0 * points.shape[1] * eps * m_sq

    def _batched_witnesses(
        self,
        all_points: np.ndarray,
        points_mu: np.ndarray,
        cand_ids: np.ndarray,
        cand_d: np.ndarray,
        cvalid: np.ndarray,
        k: int,
        m_scale: float,
    ) -> tuple[np.ndarray, np.ndarray | None]:
        """Witness counts for a block of candidate sets in one batched kernel.

        ``cand_ids``/``cand_d`` are ``(r, c)`` padded candidate ids and
        exact query distances; ``cvalid`` masks the padding.  Returns
        ``(counts, dk_caps)``: per-candidate witness counts and optional
        upper bounds on each candidate's true k-th NN distance (``inf``
        where underfull).

        The distance tensor is assembled in float32 on globally centered
        coordinates: the comparisons run in the squared domain, where every
        decision farther than the float32-scaled error bound from its
        boundary provably matches the exact per-pair computation, and each
        entry inside that band is recomputed individually with the same
        subtract/einsum/sqrt bit recipe as :meth:`Metric.to_point` — so the
        counts equal the sequential path's everywhere, at half the memory
        traffic of a float64 tensor.
        """
        eps32 = float(np.finfo(np.float32).eps)
        # ``m_scale`` is the full set's largest centered squared norm.
        # This path centers on the full-set mean, so every norm here is
        # bounded by m_scale directly (no subset-mean headroom), and the
        # true float32 assembly error is ~(dim + 14) * eps32 * m_scale; a
        # 32x margin keeps the bound sound with a thin repair band — the
        # scalar path's 1000x slack would flag a visible fraction of all
        # entries at float32 eps and melt the batched win into repairs.
        dim = all_points.shape[1]
        err32 = 32.0 * (dim + 16.0) * eps32 * m_scale
        cp = (all_points[cand_ids] - points_mu).astype(
            np.float32, copy=False
        )
        nn = np.einsum("ijk,ijk->ij", cp, cp)
        # Padding rows get an inf norm, which floods their sq rows AND
        # columns with inf — they can never witness or be witnessed.
        nn[~cvalid] = np.inf
        sq = cp @ cp.swapaxes(1, 2)
        sq *= np.float32(-2.0)
        sq += nn[:, :, None]
        sq += nn[:, None, :]
        np.maximum(sq, np.float32(0.0), out=sq)
        c = sq.shape[1]
        diag = np.arange(c)
        sq[:, diag, diag] = np.inf
        bound_sq = np.where(
            cvalid,
            np.square(cand_d.astype(np.float32)),
            np.float32(-np.inf),
        )
        b3 = bound_sq[:, None, :]
        max_bsq = np.max(
            np.where(cvalid, bound_sq, np.float32(0.0)), axis=1
        ).astype(np.float64)
        # The band must absorb the float32 kernel error, the float32
        # rounding of the bounds themselves, and the distance-domain
        # comparison tolerance mapped into the squared domain; the 1.25
        # headroom also covers the cast of the threshold back to float32.
        threshold = (
            1.25
            * (
                err32
                + 8.0 * eps32 * max_bsq
                + 2.0 * (_DIST_RTOL * max_bsq + _DIST_ATOL)
            )
        ).astype(np.float32)[:, None, None]
        # Entries within the band (or non-finite — overflow in float32)
        # cannot be decided from the float32 tensor; written as a negated
        # comparison so NaNs land in the repair set.
        flagged = ~(np.abs(sq - b3) > threshold)
        counts = np.count_nonzero((sq < b3) & ~flagged, axis=1)
        if flagged.any():
            # Per-entry exact repair: recompute each flagged pair with the
            # raw (uncentered) rows and the contiguous last-axis einsum —
            # bit-identical to Metric.to_point — then compare strictly in
            # the distance domain exactly like the sequential path.
            w_i, i_i, j_i = np.nonzero(flagged)
            diff = all_points[cand_ids[w_i, i_i]] - all_points[
                cand_ids[w_i, j_i]
            ]
            exact = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            np.add.at(counts, (w_i, j_i), exact < cand_d[w_i, j_i])
        dk = None
        if c > k:
            # k-th smallest candidate-to-candidate distance per column is
            # an upper bound on that candidate's true k-th NN distance
            # (all candidates are distinct member points); widened by the
            # float32 kernel error bound so it stays valid against exact
            # bits.  Caps are pure pruning hints, so float32 precision is
            # fine as long as the bound stays an upper bound.
            sq_t = np.ascontiguousarray(sq.swapaxes(1, 2))
            sq_t.partition(k - 1, axis=2)
            dk = np.sqrt(sq_t[:, :, k - 1].astype(np.float64) + err32)
            dk[~np.isfinite(dk)] = np.inf
        return counts, dk

    @staticmethod
    def _witness_bound_scale(points: np.ndarray) -> float:
        """Kernel-error scale valid for any candidate subset of ``points``.

        :meth:`_count_witnesses` screens entries near the decision boundary
        against an error bound proportional to the largest centered squared
        norm of the candidate set.  A subset's own centered norms can
        exceed the full set's by at most 2x (the subset mean is a convex
        combination of full-set points), so 4x the full-set scale is
        conservative for every per-query candidate set and can be computed
        once per batch instead of once per query.
        """
        eps = float(np.finfo(points.dtype).eps)
        max_norm_sq = RDT._max_centered_norm_sq(points)
        return 4.0 * 1000.0 * points.shape[1] * eps * max_norm_sq

    @staticmethod
    def _max_centered_norm_sq(points: np.ndarray) -> float:
        """Largest squared norm of ``points`` centered on their mean."""
        if points.shape[0] == 0:
            return 0.0
        centered = points - points.mean(axis=0)
        return float(np.einsum("ij,ij->i", centered, centered).max())

    def _count_witnesses(
        self,
        cand_points: np.ndarray,
        cand_dists: np.ndarray,
        bound_scale: float | None = None,
    ) -> np.ndarray:
        """Witness counts for one query's candidate set, column-chunked.

        ``W[x] = #{u != x : d(u, x) < d(q, x)}``, computed with the fast
        pairwise kernel in memory-bounded column blocks.  The strict
        comparison must decide exactly like the sequential path's
        per-point ``to_point`` calls, and the two kernels can sit one ulp
        apart precisely at ties — so any column holding an entry within a
        conservative kernel-error bound of its decision boundary is
        recomputed with :meth:`~repro.distances.Metric.to_point`
        (bit-identical to the sequential comparison).  On tie-free data
        the bound never fires and the dgemm-speed path stands.
        """
        metric = self.index.metric
        size, dim = cand_points.shape
        witnesses = np.empty(size, dtype=np.int64)
        if bound_scale is None:
            eps = float(np.finfo(cand_points.dtype).eps)
            centered = cand_points - cand_points.mean(axis=0)
            max_norm_sq = float(np.einsum("ij,ij->i", centered, centered).max())
            bound_scale = 1000.0 * dim * eps * max_norm_sq
        block = max(16, _FILTER_BLOCK // max(1, size))
        for start in range(0, size, block):
            stop = min(size, start + block)
            pair = metric.pairwise(cand_points, cand_points[start:stop])
            diag = np.arange(start, stop)
            pair[diag, diag - start] = np.inf
            bounds = cand_dists[None, start:stop]
            gaps = np.abs(pair - bounds)
            min_pair = float(pair.min())
            if min_pair <= 0.0:
                threshold = np.inf  # duplicate candidates: always repair
            else:
                threshold = (
                    _DIST_RTOL * float(cand_dists.max())
                    + _DIST_ATOL
                    + bound_scale / min_pair
                )
            if float(gaps.min()) <= threshold:
                cols = np.flatnonzero((gaps <= threshold).any(axis=0))
                exact = metric.to_point_many(
                    cand_points, cand_points[start + cols]
                )
                exact[start + cols, np.arange(cols.shape[0])] = np.inf
                pair[:, cols] = exact
            witnesses[start:stop] = np.count_nonzero(pair < bounds, axis=0)
        return witnesses

    # ------------------------------------------------------------------
    # Phase 2: verification of undecided candidates
    # ------------------------------------------------------------------
    def _verify_stores(
        self,
        stores: list[CandidateStore],
        k: int,
        stats_list: list[QueryStats],
    ) -> list[np.ndarray]:
        """Verify the undecided candidates of one or more stores in one call.

        The per-candidate forward-kNN searches of the sequential algorithm
        collapse into a single :meth:`~repro.indexes.Index.knn_distances`
        invocation over the concatenated candidate rows; wall-clock time
        and distance calls of that shared call are attributed to each query
        in proportion to its number of verified candidates.  Returns the
        final accepted mask per store and fills each query's lazy/verify
        statistics.
        """
        metric = self.index.metric
        slots_list = [np.flatnonzero(s.needs_verification) for s in stores]
        row_counts = [int(sl.shape[0]) for sl in slots_list]
        total_rows = sum(row_counts)

        hits_list: list[np.ndarray] = [
            np.zeros(count, dtype=bool) for count in row_counts
        ]
        shared_seconds = 0.0
        shared_calls = 0
        if total_rows:
            rows = np.concatenate(
                [s.points[sl] for s, sl in zip(stores, slots_list)], axis=0
            )
            exclude = np.concatenate(
                [s.ids[sl] for s, sl in zip(stores, slots_list)]
            )
            query_dists = np.concatenate(
                [s.query_dists[sl] for s, sl in zip(stores, slots_list)]
            )
            started = time.perf_counter()
            calls_before = metric.num_calls
            occ_caps = None
            if self.use_refine_caps:
                # Per-occurrence upper bounds on each candidate's k-th NN
                # distance.  Triangle bound: the k + 1 filter candidates
                # closest to q all sit within spill = (k+1)-th smallest
                # d(q, .) of q, so at least k points other than x lie
                # within d(q, x) + spill of x.  The filter's dk_caps
                # (k-th NN among the candidate set itself) are usually far
                # tighter.  Inflated so kernel round-off can never make a
                # cap exclusive of a true k-th neighbor.
                occ_caps = np.full(total_rows, np.inf)
                offset = 0
                for store, slots in zip(stores, slots_list):
                    count = int(slots.shape[0])
                    if count:
                        bound = np.full(count, np.inf)
                        if store.size > k:
                            spill = float(
                                np.partition(store.query_dists, k)[k]
                            )
                            bound = (
                                store.query_dists[slots].astype(np.float64)
                                + spill
                            )
                        if store.dk_caps is not None:
                            bound = np.minimum(bound, store.dk_caps[slots])
                        occ_caps[offset : offset + count] = bound
                    offset += count
                occ_caps = inflate(occ_caps, dtype=rows.dtype)
            hits = np.zeros(total_rows, dtype=bool)
            if occ_caps is None:
                alive = np.ones(total_rows, dtype=bool)
            else:
                # Cap pre-reject: the final test is a tolerant
                # d(q, x) <= kth(x), and the computed kth can never exceed
                # the inflated cap — so a candidate already failing the
                # test against its cap fails it against kth too, and never
                # needs the search.
                alive = dist_le_many(query_dists, occ_caps)
            if np.any(alive):
                a_idx = np.flatnonzero(alive)
                # Candidates are always member points verified against
                # S \ {candidate}, so their k-th NN distance is independent
                # of which query asked: verify each distinct candidate once
                # and scatter the answer back to every occurrence.
                unique_ids, first_rows, inverse = np.unique(
                    exclude[a_idx], return_index=True, return_inverse=True
                )
                caps = None
                if occ_caps is not None:
                    caps = np.full(unique_ids.shape[0], np.inf)
                    np.minimum.at(caps, inverse, occ_caps[a_idx])
                kth_unique = self.index.knn_distances(
                    rows[a_idx][first_rows],
                    k,
                    exclude_indices=unique_ids,
                    prune_caps=caps,
                )
                hits[a_idx] = dist_le_many(
                    query_dists[a_idx], kth_unique[inverse]
                )
            shared_calls = metric.num_calls - calls_before
            shared_seconds = time.perf_counter() - started
            offset = 0
            for i, count in enumerate(row_counts):
                hits_list[i] = hits[offset : offset + count]
                offset += count

        accepted_masks: list[np.ndarray] = []
        for store, slots, hits, stats in zip(
            stores, slots_list, hits_list, stats_list
        ):
            accepted_mask = store.accepted.copy()
            accepted_mask[slots[hits]] = True
            stats.num_verified = int(slots.shape[0])
            stats.num_verified_hits = int(np.count_nonzero(hits))
            stats.num_lazy_accepts = int(np.count_nonzero(store.accepted))
            stats.num_lazy_rejects = (
                int(np.count_nonzero(store.lazy_rejected)) + store.num_excluded
            )
            if total_rows:
                fraction = slots.shape[0] / total_rows
                stats.refine_seconds = shared_seconds * fraction
                stats.num_distance_calls += int(round(shared_calls * fraction))
            accepted_masks.append(accepted_mask)
        return accepted_masks

    def _refinement_phase(
        self, store: CandidateStore, k: int, stats: QueryStats
    ) -> tuple[np.ndarray, np.ndarray]:
        accepted_mask = self._verify_stores([store], k, [stats])[0]
        lazy_ids = np.sort(store.ids[store.accepted])
        result_ids = np.sort(store.ids[accepted_mask])
        return result_ids.astype(np.intp), lazy_ids.astype(np.intp)

    def _refine_batch(
        self,
        stores: list[CandidateStore],
        k: int,
        t: float,
        stats_list: list[QueryStats],
    ) -> list[RkNNResult]:
        """Build per-query results on top of the shared verification core."""
        accepted_masks = self._verify_stores(stores, k, stats_list)
        return [
            RkNNResult(
                ids=np.sort(store.ids[mask]).astype(np.intp),
                k=k,
                t=t,
                lazy_accepted_ids=np.sort(store.ids[store.accepted]).astype(
                    np.intp
                ),
                stats=stats,
            )
            for store, mask, stats in zip(stores, accepted_masks, stats_list)
        ]
