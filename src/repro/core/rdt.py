"""RDT — Reverse k-nearest neighbor queries by Dimensional Testing.

This is the paper's Algorithm 1, in two variants:

* **RDT**: every point retrieved by the expanding forward search enters the
  filter set and participates in witness counting;
* **RDT+** (Section 4.3): a retrieved point that collects ``k`` witnesses
  within its own first cycle is excluded from the filter set, trading a
  possible loss of precision for much cheaper witness maintenance on large
  candidate sets.

A query proceeds in two phases:

**Filter** — an incremental forward search expands from the query ``q``
through the backing index.  Each retrieved point ``v`` runs one witness
cycle against the current candidates (see :mod:`repro.core.witness`), then
the dimensional test (:mod:`repro.core.termination`) decides whether any
undiscovered reverse neighbor can still exist under the assumption that the
scale parameter ``t`` upper-bounds the local intrinsic dimensionality.
Points with identical query distance are drained as one tie group before
the test runs, so the rank bookkeeping matches the paper's max-rank
convention ``s = rho_S(q, v)``.

**Refinement** — candidates that were neither lazily accepted nor lazily
rejected are verified with one forward kNN query each: ``x`` belongs to the
result iff ``d_k(x) >= d(q, x)`` (self-exclusive kNN distance, boundary
ties included).  This is the expensive step the witness rules exist to
avoid; the per-query statistics record exactly how many verifications were
spent.

Exactness: with ``t`` at least the maximum generalized expansion dimension
of the data (see :func:`repro.lid.max_ged`), the returned set equals the
true reverse k-nearest neighbors (Theorem 1); for smaller ``t`` the result
may miss members whose query distance exceeds the final ``omega`` bound,
which is exposed in :class:`~repro.core.result.QueryStats`.
"""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from repro.core.result import QueryStats, RkNNResult
from repro.core.termination import DimensionalTest
from repro.core.witness import CandidateStore
from repro.indexes.base import Index
from repro.utils.tolerance import dist_le
from repro.utils.validation import as_query_point, check_k, check_scale_parameter

__all__ = ["RDT", "VARIANTS"]

VARIANTS = ("rdt", "rdt+")


def _tie_groups(
    neighbor_iter: Iterator[tuple[int, float]],
) -> Iterator[list[tuple[int, float]]]:
    """Group an ascending neighbor stream by exactly-equal distances."""
    group: list[tuple[int, float]] = []
    for point_id, dist in neighbor_iter:
        if group and dist != group[0][1]:
            yield group
            group = []
        group.append((point_id, dist))
    if group:
        yield group


class RDT:
    """Reverse-kNN query processor over any incremental-NN index.

    Parameters
    ----------
    index:
        Any :class:`repro.indexes.Index`.  The algorithm inherits the
        index's metric; dynamic updates to the index are picked up by
        subsequent queries automatically (the paper's Section 4 storage
        argument: RDT itself keeps no per-dataset state).
    variant:
        ``"rdt"`` or ``"rdt+"`` (candidate-set reduction).
    conservative:
        Use the provably exact termination rank ``k + 1`` (default); False
        reproduces the paper's literal formula with ``k``.  See
        :mod:`repro.core.termination`.
    use_witnesses:
        Ablation switch (default True).  With False, the witness machinery
        of Section 4.1 is skipped entirely: every candidate reaching the
        refinement phase is verified with a forward-kNN query, which is how
        the paper explains the RDT-over-SFT advantage (Section 8.2).  The
        result set is unchanged for plain RDT — only the cost moves.
    """

    def __init__(
        self,
        index: Index,
        variant: str = "rdt",
        conservative: bool = True,
        use_witnesses: bool = True,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(f"variant must be one of {VARIANTS}, got {variant!r}")
        if variant == "rdt+" and not use_witnesses:
            raise ValueError(
                "RDT+ is defined through its witness-based exclusion rule; "
                "use_witnesses=False only applies to the plain RDT variant"
            )
        self.index = index
        self.variant = variant
        self.conservative = bool(conservative)
        self.use_witnesses = bool(use_witnesses)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def query(
        self,
        query=None,
        *,
        query_index: int | None = None,
        k: int,
        t: float,
    ) -> RkNNResult:
        """Answer one reverse k-nearest neighbor query.

        Exactly one of ``query`` (a raw point, not necessarily a dataset
        member) or ``query_index`` (id of an indexed point; the point is
        excluded from its own answer, as in the paper's experiments) must
        be given.  ``t`` is the scale parameter trading accuracy for time;
        see :mod:`repro.core.scale` for data-driven choices.
        """
        k = check_k(k)
        t = check_scale_parameter(t)
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        if query_index is not None:
            query_point = self.index.get_point(query_index)
        else:
            query_point = as_query_point(query, dim=self.index.dim)

        metric = self.index.metric
        calls_before = metric.num_calls
        stats = QueryStats()

        store, test = self._filter_phase(query_point, query_index, k, t, stats)
        result_ids, lazy_ids = self._refinement_phase(store, k, stats)

        stats.num_distance_calls = metric.num_calls - calls_before
        stats.omega = test.omega
        stats.terminated_by = test.terminated_by or "unknown"
        return RkNNResult(
            ids=result_ids, k=k, t=t, lazy_accepted_ids=lazy_ids, stats=stats
        )

    # ------------------------------------------------------------------
    # Phase 1: expanding search with dimensional testing
    # ------------------------------------------------------------------
    def _filter_phase(
        self,
        query_point: np.ndarray,
        query_index: int | None,
        k: int,
        t: float,
        stats: QueryStats,
    ) -> tuple[CandidateStore, DimensionalTest]:
        started = time.perf_counter()
        n = self.index.size
        test = DimensionalTest(k, t, n, conservative=self.conservative)
        store = CandidateStore(self.index.dim, self.index.metric, k)
        exclude_if_rejected = self.variant == "rdt+"

        rank = 0
        for group in _tie_groups(self.index.iter_neighbors(query_point)):
            # Max-rank tie convention: every member of the group takes the
            # rank of the group's last element.
            rank += len(group)
            frontier = group[0][1]
            for point_id, dist in group:
                if point_id == query_index:
                    # The query point counts toward ranks (ball cardinalities
                    # are physical counts) but is never its own candidate.
                    continue
                if self.use_witnesses:
                    store.process_retrieved(
                        point_id,
                        self.index.get_point(point_id),
                        dist,
                        exclude_if_rejected=exclude_if_rejected,
                    )
                else:
                    store.append_candidate(
                        point_id, self.index.get_point(point_id), dist
                    )
            test.observe(rank, frontier)
            if test.should_terminate(rank, frontier):
                break
        else:
            test.mark_exhausted()

        stats.num_retrieved = rank
        stats.num_candidates = store.size
        stats.num_excluded = store.num_excluded
        stats.filter_seconds = time.perf_counter() - started
        return store, test

    # ------------------------------------------------------------------
    # Phase 2: verification of undecided candidates
    # ------------------------------------------------------------------
    def _refinement_phase(
        self, store: CandidateStore, k: int, stats: QueryStats
    ) -> tuple[np.ndarray, np.ndarray]:
        started = time.perf_counter()
        accepted_mask = store.accepted.copy()
        needs_verification = np.flatnonzero(store.needs_verification)
        ids = store.ids
        points = store.points
        query_dists = store.query_dists

        for slot in needs_verification:
            point_id = int(ids[slot])
            kth_dist = self.index.knn_distance(
                points[slot], k, exclude_index=point_id
            )
            stats.num_verified += 1
            if dist_le(float(query_dists[slot]), kth_dist):
                accepted_mask[slot] = True
                stats.num_verified_hits += 1

        lazy_ids = np.sort(ids[store.accepted])
        result_ids = np.sort(ids[accepted_mask])
        stats.num_lazy_accepts = int(np.count_nonzero(store.accepted))
        stats.num_lazy_rejects = (
            int(np.count_nonzero(store.lazy_rejected)) + store.num_excluded
        )
        stats.refine_seconds = time.perf_counter() - started
        return result_ids.astype(np.intp), lazy_ids.astype(np.intp)
