"""The paper's primary contribution: RDT / RDT+ and their supporting parts."""

from repro.core.adaptive import AdaptiveRDT
from repro.core.bichromatic import BichromaticRDT, bichromatic_brute_force
from repro.core.protocol import (
    GUARANTEES,
    EngineBase,
    EngineCapabilityError,
    RkNNEngine,
)
from repro.core.rdt import RDT, VARIANTS
from repro.core.result import QueryStats, RkNNResult
from repro.core.scale import suggest_scale
from repro.core.termination import DimensionalTest
from repro.core.witness import CandidateStore

__all__ = [
    "RDT",
    "VARIANTS",
    "AdaptiveRDT",
    "BichromaticRDT",
    "bichromatic_brute_force",
    "RkNNEngine",
    "EngineBase",
    "EngineCapabilityError",
    "GUARANTEES",
    "RkNNResult",
    "QueryStats",
    "DimensionalTest",
    "CandidateStore",
    "suggest_scale",
]
