"""Bichromatic reverse-kNN (paper Section 1's service/client setting).

In the bichromatic problem the data is split into two types — think
*services* (the queried type) and *clients*.  A query at a prospective
service location ``q`` asks for the clients that would have ``q`` among
their ``k`` nearest services:

    BRkNN_k(q) = { x in C :  d(x, q) <= d_k(x; S) },

with ``C`` the client set, ``S`` the service set, and ``d_k(x; S)`` the
k-th NN distance of ``x`` over ``S``.

The dimensional-testing machinery ports with one structural change: the
expanding search runs over *both* colors behind a single nondecreasing
frontier.  Clients become candidates; services become witnesses.  A client
is lazily rejected once ``k`` services are strictly closer to it than the
query, and lazily accepted once the service frontier passes twice its query
distance with fewer than ``k`` witnesses — both rules are exact here (the
query is not a member of either set, so no self-counting subtleties
remain).  The termination bound ``omega`` is computed from *service* ranks:
Theorem 1's ball-counting argument concerns the set in which neighborhoods
are ranked, and bounds the query distance of any undiscovered member
client.  The Lemma 1 rank cap does not transfer across colors (a member
client's position in the client stream is unconstrained by service
geometry), so termination is by ``omega`` or exhaustion only: large ``t``
degenerates to an exact full scan.

**Batched execution** — :meth:`BichromaticRDT.query_batch` answers many
prospective service locations in one pass.  The two-color filter recursion
is order-dependent (every retrieved service immediately reshapes the
witness counts of every pending client), so the filter runs per query; the
refinement, however, is shared by the whole batch: all undecided clients
are verified with **one** batched k-th-NN-distance call against the service
index (:meth:`~repro.indexes.Index.knn_distances`), deduplicated by client
id — a client's k-th NN distance over ``S`` does not depend on which query
asked, so each distinct client is verified exactly once per batch.  The
single-query :meth:`~BichromaticRDT.query` routes through the same
verifier, so batched and looped answers are decided by identical kernels.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.protocol import EngineBase, EngineCapabilityError
from repro.core.result import QueryStats, RkNNResult
from repro.core.termination import DimensionalTest
from repro.distances import Metric
from repro.indexes.base import Index
from repro.utils.tolerance import dist_le_many
from repro.utils.validation import (
    as_query_point,
    as_query_rows,
    check_k,
    check_scale_parameter,
)

__all__ = ["BichromaticRDT", "bichromatic_brute_force"]


def bichromatic_brute_force(clients, services, query, k: int, metric=None) -> np.ndarray:
    """Exact bichromatic RkNN by definition (reference for tests)."""
    from repro.distances import get_metric
    from repro.utils.tolerance import DIST_ATOL, DIST_RTOL
    from repro.utils.validation import as_dataset

    clients = as_dataset(clients, name="clients")
    services = as_dataset(services, name="services")
    metric = get_metric(metric)
    query = as_query_point(query, dim=clients.shape[1])
    k = check_k(k, n=services.shape[0], name="k")
    to_services = metric.pairwise(clients, services)
    if k < services.shape[0]:
        kth = np.partition(to_services, k - 1, axis=1)[:, k - 1]
    else:
        kth = to_services.max(axis=1)
    to_query = metric.to_point(clients, query)
    slack = DIST_RTOL * np.abs(kth) + DIST_ATOL
    return np.flatnonzero(to_query <= kth + slack).astype(np.intp)


class _BichromaticStore:
    """Client candidates witnessed by services, behind a shared frontier."""

    def __init__(self, dim: int, metric: Metric, k: int) -> None:
        self._dim = dim
        self._metric = metric
        self._k = k
        self.client_ids: list[int] = []
        self.client_points: list[np.ndarray] = []
        self.client_qdists: list[float] = []
        self.witnesses: list[int] = []
        self.decided: list[bool] = []
        self.accepted: list[bool] = []
        self.service_points: list[np.ndarray] = []
        self.service_qdists: list[float] = []

    def add_client(self, point_id: int, point: np.ndarray, qdist: float) -> None:
        """A new candidate: seed its witness count from seen services."""
        count = 0
        if self.service_points:
            dists = self._metric.to_point(np.asarray(self.service_points), point)
            count = int(np.count_nonzero(dists < qdist))
        self.client_ids.append(point_id)
        self.client_points.append(point)
        self.client_qdists.append(qdist)
        self.witnesses.append(count)
        self.decided.append(False)
        self.accepted.append(False)

    def add_service(self, point: np.ndarray, qdist: float) -> None:
        """A new witness: update counts and take newly final decisions."""
        self.service_points.append(point)
        self.service_qdists.append(qdist)
        if not self.client_ids:
            return
        pts = np.asarray(self.client_points)
        qd = np.asarray(self.client_qdists)
        dists = self._metric.to_point(pts, point)
        closer = dists < qd
        for slot in np.flatnonzero(closer):
            self.witnesses[slot] += 1
        # Clients whose service ball the frontier has fully covered.
        for slot in range(len(self.client_ids)):
            if not self.decided[slot] and 2.0 * qd[slot] <= qdist:
                self.decided[slot] = True
                if self.witnesses[slot] < self._k:
                    self.accepted[slot] = True

    def masks(self) -> tuple[np.ndarray, np.ndarray]:
        accepted = np.asarray(self.accepted, dtype=bool)
        witnesses = np.asarray(self.witnesses)
        needs_verification = ~accepted & (witnesses < self._k)
        return accepted, needs_verification

    def client_rows(self, slots: np.ndarray) -> np.ndarray:
        """The candidate point matrix for the given slot positions."""
        if slots.shape[0] == 0:
            return np.empty((0, self._dim), dtype=np.float64)
        return np.asarray([self.client_points[int(s)] for s in slots])


class BichromaticRDT(EngineBase):
    """Dimensional-testing BRkNN over two incremental-NN indexes."""

    engine_name = "bichromatic"
    supports_batch = True
    supports_bichromatic = True
    #: bichromatic queries are prospective service locations — they are
    #: never members of either color, so the member-id query form (and
    #: with it the query_all self-join) does not exist here.
    supports_member_queries = False
    query_knobs = ("t",)
    guarantee = "scale-exact"

    def __init__(self, client_index: Index, service_index: Index) -> None:
        if client_index.dim != service_index.dim:
            raise ValueError(
                "client and service indexes must share a dimension, got "
                f"{client_index.dim} and {service_index.dim}"
            )
        self.clients = client_index
        self.services = service_index
        self._built_versions = (client_index.version, service_index.version)

    def is_stale(self, index=None) -> bool:
        """Stale when *either* color has churned past construction.

        With an explicit ``index`` the base single-index comparison
        applies (the caller knows which color it is asking about).
        """
        if index is not None:
            return super().is_stale(index)
        return (
            self.clients.version,
            self.services.version,
        ) != self._built_versions

    def __repr__(self) -> str:
        return (
            f"BichromaticRDT(clients={self.clients!r}, "
            f"services={self.services!r})"
        )

    def query(
        self, query=None, *, query_index: int | None = None, k: int, t: float
    ) -> RkNNResult:
        """Clients that would rank ``q`` among their k nearest services."""
        if query_index is not None or query is None:
            raise EngineCapabilityError(
                "bichromatic queries are prospective service locations, "
                "never members of either color: pass a raw query point, "
                "not a query_index"
            )
        k = check_k(k, n=self.services.size, name="k")
        t = check_scale_parameter(t)
        query_point = as_query_point(query, dim=self.clients.dim)
        stats = QueryStats()
        store = self._filter_one(query_point, k, t, stats)
        return self._refine_batch([store], k, t, [stats])[0]

    def query_batch(
        self, queries=None, *, query_indices=None, k: int, t: float
    ) -> list[RkNNResult]:
        """Answer many bichromatic queries with one shared refinement pass.

        ``queries`` is an ``(m, dim)`` array of prospective service
        locations (bichromatic queries are never members of either set).
        Returns one :class:`~repro.core.result.RkNNResult` per row, in
        input order, with decisions identical to a loop of :meth:`query`
        calls.  The two-color filter runs per query (its witness recursion
        is order-dependent, like RDT+'s); refinement issues a single
        batched :meth:`~repro.indexes.Index.knn_distances` call over the
        *distinct* undecided clients of the entire batch — deduplicated by
        client id, since a client's k-th NN distance over the service set
        is query-independent.  Per-query :class:`QueryStats` survive
        batching: semantic counters match looped execution, while the
        shared verification's wall-clock time and distance calls are
        attributed per query in proportion to its verified candidates.
        """
        if query_indices is not None or queries is None:
            raise EngineCapabilityError(
                "bichromatic queries are prospective service locations, "
                "never members of either color: pass raw query rows, not "
                "query_indices"
            )
        k = check_k(k, n=self.services.size, name="k")
        t = check_scale_parameter(t)
        query_rows = as_query_rows(queries, dim=self.clients.dim, name="queries")
        if query_rows.shape[0] == 0:
            return []
        stats_list = [QueryStats() for _ in range(query_rows.shape[0])]
        stores = [
            self._filter_one(query_rows[row], k, t, stats)
            for row, stats in enumerate(stats_list)
        ]
        return self._refine_batch(stores, k, t, stats_list)

    def query_all(self, *, k=None, **knobs):
        raise EngineCapabilityError(
            "the bichromatic engine has no member self-join: queries are "
            "prospective service locations, not members of either color"
        )

    # ------------------------------------------------------------------
    # Phase 1: the two-color expanding search
    # ------------------------------------------------------------------
    def _filter_one(
        self, query_point: np.ndarray, k: int, t: float, stats: QueryStats
    ) -> _BichromaticStore:
        metric = self.clients.metric
        calls_before = metric.num_calls
        started = time.perf_counter()
        store = _BichromaticStore(self.clients.dim, metric, k)
        test = DimensionalTest(k, t, self.services.size, conservative=True)

        client_iter = self.clients.iter_neighbors(query_point)
        service_iter = self.services.iter_neighbors(query_point)
        next_client = next(client_iter, None)
        next_service = next(service_iter, None)
        service_rank = 0
        while next_client is not None or next_service is not None:
            take_client = next_service is None or (
                next_client is not None and next_client[1] <= next_service[1]
            )
            if take_client:
                point_id, dist = next_client
                if dist > test.omega:
                    # No undiscovered member can lie beyond omega; stop
                    # admitting candidates (services may still be useful, but
                    # every pending candidate can go to verification instead).
                    test.terminated_by = "omega"
                    break
                store.add_client(point_id, self.clients.get_point(point_id), dist)
                next_client = next(client_iter, None)
            else:
                point_id, dist = next_service
                if dist > test.omega and (
                    next_client is None or next_client[1] > test.omega
                ):
                    test.terminated_by = "omega"
                    break
                service_rank += 1
                store.add_service(self.services.get_point(point_id), dist)
                test.observe(service_rank, dist)
                next_service = next(service_iter, None)
        else:
            test.mark_exhausted()

        stats.num_retrieved = service_rank
        stats.num_candidates = len(store.client_ids)
        stats.filter_seconds = time.perf_counter() - started
        stats.num_distance_calls = metric.num_calls - calls_before
        stats.omega = test.omega
        stats.terminated_by = test.terminated_by or "unknown"
        return store

    # ------------------------------------------------------------------
    # Phase 2: shared, deduplicated verification
    # ------------------------------------------------------------------
    def _refine_batch(
        self,
        stores: list[_BichromaticStore],
        k: int,
        t: float,
        stats_list: list[QueryStats],
    ) -> list[RkNNResult]:
        """Verify the undecided clients of one or more stores in one call.

        Distinct undecided clients across the whole batch are verified
        with a single batched k-th-NN-distance query against the service
        index (no exclusion — the query is not a service), and the answers
        are scattered back to every occurrence.
        """
        service_metric = self.services.metric
        accepted_list: list[np.ndarray] = []
        slots_list: list[np.ndarray] = []
        for store in stores:
            accepted, needs_verification = store.masks()
            accepted_list.append(accepted)
            slots_list.append(np.flatnonzero(needs_verification))
        row_counts = [int(slots.shape[0]) for slots in slots_list]
        total_rows = sum(row_counts)

        hits_list: list[np.ndarray] = [
            np.zeros(count, dtype=bool) for count in row_counts
        ]
        shared_seconds = 0.0
        shared_calls = 0
        if total_rows:
            rows = np.concatenate(
                [s.client_rows(sl) for s, sl in zip(stores, slots_list)], axis=0
            )
            client_ids = np.concatenate(
                [
                    np.asarray(s.client_ids, dtype=np.intp)[sl]
                    for s, sl in zip(stores, slots_list)
                ]
            )
            qdists = np.concatenate(
                [
                    np.asarray(s.client_qdists, dtype=np.float64)[sl]
                    for s, sl in zip(stores, slots_list)
                ]
            )
            started = time.perf_counter()
            calls_before = service_metric.num_calls
            unique_ids, first_rows, inverse = np.unique(
                client_ids, return_index=True, return_inverse=True
            )
            kth_unique = self.services.knn_distances(rows[first_rows], k)
            kth_dists = kth_unique[inverse]
            shared_calls = service_metric.num_calls - calls_before
            shared_seconds = time.perf_counter() - started
            hits = dist_le_many(qdists, kth_dists)
            offset = 0
            for i, count in enumerate(row_counts):
                hits_list[i] = hits[offset : offset + count]
                offset += count

        results: list[RkNNResult] = []
        for store, accepted, slots, hits, stats in zip(
            stores, accepted_list, slots_list, hits_list, stats_list
        ):
            ids = np.asarray(store.client_ids, dtype=np.intp)
            final = accepted.copy()
            final[slots[hits]] = True
            stats.num_verified = int(slots.shape[0])
            stats.num_verified_hits = int(np.count_nonzero(hits))
            stats.num_lazy_accepts = int(np.count_nonzero(accepted))
            undecided = np.zeros(ids.shape[0], dtype=bool)
            undecided[slots] = True
            stats.num_lazy_rejects = int(np.count_nonzero(~accepted & ~undecided))
            if total_rows:
                fraction = slots.shape[0] / total_rows
                stats.refine_seconds = shared_seconds * fraction
                stats.num_distance_calls += int(round(shared_calls * fraction))
            results.append(
                RkNNResult(
                    ids=np.sort(ids[final]).astype(np.intp),
                    k=k,
                    t=t,
                    lazy_accepted_ids=np.sort(ids[accepted]).astype(np.intp),
                    stats=stats,
                )
            )
        return results
