"""Adaptive-scale RDT — the paper's future-work proposal (Section 9).

    "For future work, it would be interesting to study the behavior of RDT
    and RDT+ when the value of t is dynamically adjusted during the
    execution of individual queries."

This module implements that idea.  The expanding search already produces,
for free, exactly the data a local-ID estimator needs: the ascending
distances from the query to its neighborhood.  Every ``update_every``
retrievals the filter phase re-estimates the *local* intrinsic
dimensionality at the query via the Hill estimator over the distances seen
so far, sets ``t`` to ``margin`` times that estimate (clamped to
``[t_min, t_max]``), and recomputes the termination bound ``omega`` from
the recorded (rank, distance) history under the new ``t``.

Compared to a fixed global estimate, the adaptive scale spends effort where
the query's own neighborhood is genuinely high-dimensional and terminates
earlier in flat regions — the density-adaptivity argument of Section 4.1
taken one step further.  The Theorem 1 guarantee does not transfer (``t``
is no longer an a-priori bound), so this variant is a heuristic, evaluated
by the ablation benchmarks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.rdt import RDT, _tie_groups
from repro.core.result import QueryStats, RkNNResult
from repro.core.termination import DimensionalTest
from repro.core.witness import CandidateStore
from repro.indexes.base import Index
from repro.lid.mle import hill_estimator
from repro.utils.validation import check_k, check_scale_parameter

__all__ = ["AdaptiveRDT"]


class AdaptiveRDT(RDT):
    """RDT with per-query, mid-search re-estimation of the scale parameter."""

    #: The adaptive recursion re-tunes t *during* each query, so RDT's
    #: fixed-t vectorized batch path does not apply: batched entry points
    #: loop :meth:`query` (the protocol's EngineBase default), keeping
    #: batch decisions identical to looped ones.
    supports_batch = False
    batch_knobs = ()

    def query_batch(
        self, queries=None, *, query_indices=None, k=None, t: float | None = None
    ):
        from repro.core.protocol import EngineBase

        knobs = {} if t is None else {"t": t}
        return EngineBase.query_batch(
            self, queries, query_indices=query_indices, k=k, **knobs
        )

    def query_all(self, *, k=None, t: float | None = None):
        from repro.core.protocol import EngineBase

        knobs = {} if t is None else {"t": t}
        return EngineBase.query_all(self, k=k, **knobs)

    def __init__(
        self,
        index: Index,
        variant: str = "rdt",
        conservative: bool = True,
        t_min: float = 1.0,
        t_max: float = 32.0,
        margin: float = 1.25,
        update_every: int = 16,
    ) -> None:
        super().__init__(index, variant=variant, conservative=conservative)
        self.t_min = check_scale_parameter(t_min, name="t_min")
        self.t_max = check_scale_parameter(t_max, name="t_max")
        if self.t_max < self.t_min:
            raise ValueError("t_max must be >= t_min")
        if margin <= 0.0:
            raise ValueError(f"margin must be positive, got {margin}")
        self.margin = float(margin)
        self.update_every = check_k(update_every, name="update_every")
        # Protocol identity: the mid-search re-estimation voids Theorem 1,
        # so the adaptive variant never promises containment either way.
        self.engine_name = "adaptive"
        self.guarantee = "heuristic"

    def __repr__(self) -> str:
        return (
            f"AdaptiveRDT(variant={self.variant!r}, t_min={self.t_min}, "
            f"t_max={self.t_max}, margin={self.margin}, "
            f"update_every={self.update_every}, index={self.index!r})"
        )

    def query(
        self,
        query=None,
        *,
        query_index: int | None = None,
        k: int,
        t: float | None = None,
    ) -> RkNNResult:
        """Answer a query; ``t`` (optional) is only the *initial* scale."""
        k = check_k(k)
        initial_t = check_scale_parameter(t) if t is not None else self.t_min
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        if query_index is not None:
            query_point = self.index.get_point(query_index)
        else:
            from repro.utils.validation import as_query_point

            query_point = as_query_point(query, dim=self.index.dim)

        metric = self.index.metric
        calls_before = metric.num_calls
        stats = QueryStats()
        started = time.perf_counter()
        n = self.index.size

        test = DimensionalTest(k, initial_t, n, conservative=self.conservative)
        store = CandidateStore(self.index.dim, metric, k)
        exclude_if_rejected = self.variant == "rdt+"

        history: list[tuple[int, float]] = []  # (rank, frontier distance)
        distances: list[float] = []  # all retrieved distances, ascending
        rank = 0
        for group in _tie_groups(self.index.iter_neighbors(query_point)):
            rank += len(group)
            frontier = group[0][1]
            for point_id, dist in group:
                distances.append(dist)
                if point_id == query_index:
                    continue
                store.process_retrieved(
                    point_id,
                    self.index.get_point(point_id),
                    dist,
                    exclude_if_rejected=exclude_if_rejected,
                )
            history.append((rank, frontier))
            test.observe(rank, frontier)
            if rank > k and len(distances) % self.update_every == 0:
                test = self._retuned_test(test, k, n, distances, history)
            if test.should_terminate(rank, frontier):
                break
        else:
            test.mark_exhausted()

        stats.num_retrieved = rank
        stats.num_candidates = store.size
        stats.num_excluded = store.num_excluded
        stats.filter_seconds = time.perf_counter() - started

        result_ids, lazy_ids = self._refinement_phase(store, k, stats)
        stats.num_distance_calls = metric.num_calls - calls_before
        stats.omega = test.omega
        stats.terminated_by = test.terminated_by or "unknown"
        return RkNNResult(
            ids=result_ids, k=k, t=test.t, lazy_accepted_ids=lazy_ids, stats=stats
        )

    def _retuned_test(
        self,
        current: DimensionalTest,
        k: int,
        n: int,
        distances: list[float],
        history: list[tuple[int, float]],
    ) -> DimensionalTest:
        """Re-estimate local ID and rebuild the termination state under it."""
        estimate = hill_estimator(np.asarray(distances))
        if not np.isfinite(estimate) or estimate <= 0.0:
            return current
        new_t = float(np.clip(self.margin * estimate, self.t_min, self.t_max))
        if abs(new_t - current.t) < 0.25:
            return current  # not worth re-deriving omega for a tiny shift
        test = DimensionalTest(k, new_t, n, conservative=self.conservative)
        # Replay the observation history so omega reflects the new scale.
        for rank, frontier in history:
            test.observe(rank, frontier)
        return test
