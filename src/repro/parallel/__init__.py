"""Multi-core execution: query-parallel fan-out and data-parallel shards.

Two tiers over one shared-memory substrate (DESIGN.md "Parallel
execution & sharding"):

* :class:`ParallelExecutor` — tier 1, query-parallel: one full engine
  replica per worker process over the zero-copy shared point matrix,
  query blocks fanned across the pool.  Bit-identical to the in-process
  Service per pinned epoch.
* :class:`ShardedService` — tier 2, data-parallel: disjoint member
  partitions with per-shard engines, d_k-bound cross-shard pruning, and
  one exact global verification merge.
"""

from repro.parallel.executor import ParallelExecutor, resolve_start_method
from repro.parallel.shared import (
    SharedArrayPack,
    SharedAttachment,
    attach_arrays,
    publish_arrays,
    shared_memory_available,
)
from repro.parallel.sharded import SHARD_STRATEGIES, ShardedService

__all__ = [
    "SHARD_STRATEGIES",
    "ParallelExecutor",
    "ShardedService",
    "SharedArrayPack",
    "SharedAttachment",
    "attach_arrays",
    "publish_arrays",
    "resolve_start_method",
    "shared_memory_available",
]
