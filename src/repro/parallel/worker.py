"""Worker-process side of the parallel execution layer.

A worker is one process in a persistent pool
(:class:`repro.parallel.executor.WorkerPool`).  Its lifecycle:

1. **Initializer** (:func:`init_worker`): pin the kernel-dispatch
   environment — the parent's ``REPRO_JIT`` decision is re-applied and
   :func:`repro.kernels.refresh` re-resolves the dispatch table, so a
   parent running jit kernels never hands workers a stale table.  This
   matters under both start methods: ``fork`` children inherit a table
   resolved in the parent (possibly against an environment the parent
   mutated afterwards), ``spawn`` children re-import from scratch
   against whatever environment they were handed.
2. **Task dispatch** (:func:`run_task`): every task carries a
   :class:`BoundContext` naming the published epoch (shared-memory pack)
   and the engine configuration.  The first task for a context attaches
   the shared arrays, rebuilds the backend index over them (the same
   deterministic bulk-build + removal-replay recipe
   :meth:`repro.Service.load` uses, so answers bit-match the parent),
   builds the engine, and caches everything keyed by the context
   fingerprint.  Later tasks for the same context reuse the cache;
   tasks for a *new* fingerprint evict stale entries (the parent moved
   to a newer epoch — old attachments close, which is when an unlinked
   segment's memory is actually returned).

Engines answering here are restricted to the ``needs == "index"``
registry families (rdt / rdt+ / adaptive / sft / approx-*): they answer
in index ids directly, so no id translation crosses the process
boundary.  The parent enforces this before dispatching.

Everything in this module must stay importable under the ``spawn`` start
method: top-level functions only, no closures in task payloads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro import kernels
from repro.distances import get_metric
from repro.engines import ENGINE_REGISTRY
from repro.indexes import create_index
from repro.parallel.shared import PackMeta, SharedAttachment, attach_arrays

__all__ = ["BoundContext", "WorkerInit", "init_worker", "run_task"]


@dataclass(frozen=True)
class WorkerInit:
    """Environment the pool initializer pins in every worker.

    ``jit_env`` is the parent's ``REPRO_JIT`` value at pool creation
    (``None`` = unset): re-applied before :func:`repro.kernels.refresh`
    so the worker resolves the same dispatch table the parent runs.
    """

    jit_env: str | None = None


@dataclass(frozen=True)
class BoundContext:
    """One published (epoch, engine configuration) a task executes against.

    Picklable and tiny: the heavy arrays travel through the shared
    segments named by ``pack``; this object only carries coordinates.
    """

    #: shared-memory coordinates of the epoch's arrays ("points",
    #: "active", optional shard assignment "shard_ids"/"shard_offsets")
    pack: PackMeta
    #: the parent epoch the pack was published from (for result stamping)
    epoch: int
    backend: str
    engine: str
    #: metric reconstruction meta: {"name", optional "p", "dtype"}
    metric: dict
    backend_kwargs: dict = field(default_factory=dict)
    engine_kwargs: dict = field(default_factory=dict)
    #: optional flat-layout pack ("kd"/"ball" SoA arrays, see
    #: :func:`repro.indexes.soa.layout_to_arrays`) published when the
    #: parent tree is pure-bulk-built (version 0) and therefore
    #: reproduced structurally by the worker's rebuild
    layout_kind: str | None = None
    layout: PackMeta | None = None

    @property
    def fingerprint(self) -> tuple:
        return (
            self.pack.fingerprint,
            self.engine,
            tuple(sorted(self.engine_kwargs.items())),
        )


# ----------------------------------------------------------------------
# Per-process caches (one worker = one process = one module instance)
# ----------------------------------------------------------------------
#: fingerprint -> dict(attachment, index, engine, layout_attachment)
_STATE: dict = {}
#: (fingerprint, shard_id) -> dict(index, engine, member_ids)
_SHARDS: dict = {}


def init_worker(config: WorkerInit) -> None:
    """Pool initializer: pin ``REPRO_JIT`` and re-resolve kernel dispatch."""
    if config.jit_env is None:
        os.environ.pop("REPRO_JIT", None)
    else:
        os.environ["REPRO_JIT"] = config.jit_env
    kernels.refresh()


def _evict_other_fingerprints(fingerprint: tuple) -> None:
    """Drop cached state for retired publications (close their mappings)."""
    for key in [k for k in _STATE if k != fingerprint]:
        state = _STATE.pop(key)
        for handle in ("attachment", "layout_attachment"):
            attachment = state.get(handle)
            if isinstance(attachment, SharedAttachment):
                attachment.close()
    for key in [k for k in _SHARDS if k[0] != fingerprint]:
        _SHARDS.pop(key)


def _rebuild_index(ctx: BoundContext, points: np.ndarray, active: np.ndarray):
    """The worker replica of the parent index, in the parent id space.

    Deterministic bulk build over the *full* matrix (removed rows
    included) followed by a removal replay — exactly the
    :meth:`repro.Service.load` recipe, whose ``query_all`` round-trip is
    pinned bit-identical by the persistence tests.
    """
    metric_meta = dict(ctx.metric)
    metric = get_metric(metric_meta.pop("name"), **metric_meta)
    index = create_index(ctx.backend, points, metric=metric, **ctx.backend_kwargs)
    for point_id in np.flatnonzero(~active):
        index.remove(int(point_id))
    return index


def _adopt_layout(ctx: BoundContext, index, state: dict) -> None:
    """Attach the parent's published SoA layout instead of re-flattening."""
    if ctx.layout is None or ctx.layout_kind is None:
        return
    from repro.indexes.soa import layout_from_arrays

    attachment = attach_arrays(ctx.layout)
    layout = layout_from_arrays(ctx.layout_kind, attachment.arrays)
    adopt = getattr(index, "adopt_flat_layout", None)
    if adopt is None:  # pragma: no cover - parent only ships kd/ball layouts
        attachment.close()
        return
    adopt(layout)
    state["layout_attachment"] = attachment


def _ensure_state(ctx: BoundContext) -> dict:
    state = _STATE.get(ctx.fingerprint)
    if state is not None:
        return state
    _evict_other_fingerprints(ctx.fingerprint)
    attachment = attach_arrays(ctx.pack)
    points = attachment.arrays["points"]
    active = attachment.arrays["active"]
    state = {"attachment": attachment}
    index = _rebuild_index(ctx, points, active)
    _adopt_layout(ctx, index, state)
    entry = ENGINE_REGISTRY[ctx.engine]
    if entry.needs != "index":  # pragma: no cover - parent validates first
        raise ValueError(
            f"parallel workers only run index-family engines, got "
            f"{ctx.engine!r} (needs={entry.needs!r})"
        )
    state["index"] = index
    state["engine"] = entry.factory(
        index, metric=None, backend=None, backend_kwargs=None,
        **ctx.engine_kwargs,
    )
    _STATE[ctx.fingerprint] = state
    return state


def _ensure_shard(ctx: BoundContext, shard_id: int) -> dict:
    key = (ctx.fingerprint, int(shard_id))
    shard = _SHARDS.get(key)
    if shard is not None:
        return shard
    _evict_other_fingerprints(ctx.fingerprint)
    attachment = _STATE.get(ctx.fingerprint, {}).get("attachment")
    if attachment is None:
        attachment = attach_arrays(ctx.pack)
        _STATE.setdefault(ctx.fingerprint, {})["attachment"] = attachment
    arrays = attachment.arrays
    offsets = arrays["shard_offsets"]
    member_ids = arrays["shard_ids"][offsets[shard_id] : offsets[shard_id + 1]]
    metric_meta = dict(ctx.metric)
    metric = get_metric(metric_meta.pop("name"), **metric_meta)
    # Shard indexes are built over the shard's rows only (dense local
    # ids 0..len-1); ``member_ids`` maps local back to global ids.
    index = create_index(
        ctx.backend,
        arrays["points"][member_ids],
        metric=metric,
        **ctx.backend_kwargs,
    )
    engine = ENGINE_REGISTRY[ctx.engine].factory(
        index, metric=None, backend=None, backend_kwargs=None,
        **ctx.engine_kwargs,
    )
    shard = {"index": index, "engine": engine, "member_ids": member_ids}
    _SHARDS[key] = shard
    return shard


# ----------------------------------------------------------------------
# Task handlers
# ----------------------------------------------------------------------
def _query_block(ctx: BoundContext, kind: str, payload, k: int, knobs: dict):
    """Tier-1 (query-parallel) block: full results in engine id space."""
    state = _ensure_state(ctx)
    engine = state["engine"]
    if kind == "member":
        return engine.query_batch(query_indices=payload, k=k, **knobs)
    points = state["attachment"].arrays["points"]
    rows = points[payload] if isinstance(payload, np.ndarray) and payload.ndim == 1 else payload
    return engine.query_batch(queries=rows, k=k, **knobs)


def _shard_block(
    ctx: BoundContext, shard_id: int, kind: str, payload, k: int, knobs: dict
):
    """Tier-2 (data-parallel) block: per-query *candidate* global ids.

    The shard engine answers against shard-local data, whose k-th NN
    distances can only be larger than the global ones (the shard is a
    subset of ``S \\ {x}``) — every true reverse neighbor in this shard
    survives, possibly joined by shard-local false positives.  The
    parent's single deduplicated global verification pass makes the
    merged answer exact, so workers return candidate id arrays only.
    """
    shard = _ensure_shard(ctx, shard_id)
    engine = shard["engine"]
    member_ids = shard["member_ids"]
    points = _STATE[ctx.fingerprint]["attachment"].arrays["points"]
    if kind == "member":
        # ``payload`` holds *global* member ids; the ones living in this
        # shard are answered with self-exclusion, the rest as raw points.
        qids = np.asarray(payload, dtype=np.intp)
        local = np.searchsorted(member_ids, qids)
        local_in = np.minimum(local, max(member_ids.shape[0] - 1, 0))
        in_shard = (
            member_ids[local_in] == qids if member_ids.shape[0] else
            np.zeros(qids.shape[0], dtype=bool)
        )
        out: list = [None] * qids.shape[0]
        home_rows = np.flatnonzero(in_shard)
        if home_rows.shape[0]:
            home = engine.query_batch(
                query_indices=local_in[home_rows], k=k, **knobs
            )
            for row, result in zip(home_rows, home):
                out[row] = member_ids[result.ids]
        foreign_rows = np.flatnonzero(~in_shard)
        if foreign_rows.shape[0]:
            foreign = engine.query_batch(
                queries=points[qids[foreign_rows]], k=k, **knobs
            )
            for row, result in zip(foreign_rows, foreign):
                out[row] = member_ids[result.ids]
        return out
    results = engine.query_batch(queries=payload, k=k, **knobs)
    return [member_ids[result.ids] for result in results]


def _probe() -> dict:
    """Kernel-dispatch introspection for the spawn/fork regression tests."""
    return {
        "pid": os.getpid(),
        "backend": kernels.active_backend(),
        "jit_available": kernels.jit_available(),
        "jit_enabled": kernels.jit_enabled(),
        "repro_jit": os.environ.get("REPRO_JIT"),
    }


def run_task(task: tuple):
    """The pool's single entry point; dispatches on the task kind."""
    kind = task[0]
    if kind in ("member", "raw"):
        _, ctx, payload, k, knobs = task
        return _query_block(ctx, kind, payload, k, knobs)
    if kind in ("shard-member", "shard-raw"):
        _, ctx, shard_id, payload, k, knobs = task
        return _shard_block(
            ctx, shard_id, kind.removeprefix("shard-"), payload, k, knobs
        )
    if kind == "probe":
        return _probe()
    raise ValueError(f"unknown worker task kind {kind!r}")
