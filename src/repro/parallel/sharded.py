"""Data-parallel execution: a Service partitioned across shard processes.

:class:`ShardedService` splits the member set into ``shards`` disjoint
partitions, builds a per-shard engine in the worker pool (over the
shard's rows of the shared point matrix — no copies cross the process
boundary), and answers queries by broadcasting to the shards that could
possibly contribute, merging with one exact global verification pass.

**Why per-shard answers are a safe superset.**  A member ``x`` is a
reverse neighbor of ``q`` iff ``d(q, x) <= d_k(x)`` with ``d_k`` over
``S \\ {x}``.  A shard engine computes the same test with ``d_k`` over
``shard \\ {x}`` — a subset — so its k-th NN distance can only be
*larger*: every true member in the shard passes the shard-local test,
possibly joined by false positives.  The parent then recomputes the
global test once per unique candidate (one deduplicated
``knn_distances`` pass over the pinned snapshot, the same dedup-and-
verify shape as the RDT refinement), restoring exactness: merged ids
equal brute-force membership, and therefore bit-match any
exact-guarantee single-process engine (``rdt`` at ``t >= max GED``).
Note the merge *tightens* engines that carry precision slack — ``rdt+``
is ``scale-recall`` (its Section 4.3 lazy accepts may keep provable-
cheap false positives unverified), so the sharded answer is the exact
subset of what a single-process ``rdt+`` would return.

**d_k cross-shard pruning.**  The sampled strategy's per-k tables
(:class:`repro.approx.SampledKNNEstimator`) give every member a
*provable* upper bound ``u_k(x) >= d_k(x)``.  With shard centroid ``c``,
shard radius ``R = max d(x, c)`` and ``r_k = max u_k(x)`` over the
shard, the triangle inequality gives ``d(q, x) >= d(q, c) - R``; if
``d(q, c) - R > r_k`` then no shard member can count ``q`` among its k
nearest, so the shard is skipped without being asked (recall-safe — the
bound only ever *over*-estimates reach).  Shards are assigned
round-robin or d_k-balanced (members snake-dealt by descending
``u_k``, spreading the widest-reach points evenly).
"""

from __future__ import annotations

import json
import os
import pathlib

import numpy as np

from repro.approx.sampled import SampledKNNEstimator
from repro.core.result import QueryStats, RkNNResult
from repro.parallel.executor import ParallelExecutor
from repro.service import QuerySpec, Service
from repro.utils.tolerance import dist_le_many, tolerances_for

__all__ = ["SHARD_STRATEGIES", "ShardedService"]

#: Partitioning strategies: round-robin over active ids, or snake-dealt
#: by descending sampled d_k upper bound (balances pruning reach).
SHARD_STRATEGIES = ("round-robin", "dk-balanced")


class ShardedService(ParallelExecutor):
    """Shard a Service's members across worker processes.

    Parameters
    ----------
    source:
        Raw ``(n, dim)`` data (an internal :class:`repro.Service` is
        built and owned) or a Service to adopt.
    shards:
        Number of disjoint partitions (``>= 1``).
    strategy:
        ``"round-robin"`` or ``"dk-balanced"`` (see module docstring).
    prune:
        Apply the d_k cross-shard bound before broadcasting (default
        on); ``False`` broadcasts every query to every non-empty shard.
    sample_size:
        Subsample size of the :class:`SampledKNNEstimator` backing the
        pruning bounds and the d_k-balanced assignment.
    workers / start_method / engine / backend / ... :
        As for :class:`~repro.parallel.executor.ParallelExecutor`;
        ``workers`` defaults to ``min(shards, os.cpu_count())``.

    Queries mirror the Service surface (``query``/``query_batch``/
    ``query_all`` + ``_versioned``); writes (:meth:`insert`/
    :meth:`remove`/:meth:`compact`) delegate to the inner Service, and
    the next dispatch re-partitions against the new epoch.
    """

    #: sharded workers build per-shard trees, never full replicas, so the
    #: parent's full-tree SoA layout is not worth publishing
    _publish_layout = False

    def __init__(
        self,
        source,
        engine: str | None = None,
        *,
        shards: int = 2,
        strategy: str = "round-robin",
        prune: bool = True,
        sample_size: int = 256,
        workers: int | None = None,
        start_method: str | None = None,
        backend: str = "kd",
        metric=None,
        dtype=None,
        defaults: QuerySpec | None = None,
        backend_kwargs: dict | None = None,
        engine_kwargs: dict | None = None,
    ) -> None:
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"strategy must be one of {SHARD_STRATEGIES}, got {strategy!r}"
            )
        self.shards = shards
        self.strategy = strategy
        self.prune = bool(prune)
        self.sample_size = int(sample_size)
        if workers is None:
            workers = max(1, min(shards, os.cpu_count() or 1))
        super().__init__(
            source,
            engine,
            workers=workers,
            start_method=start_method,
            backend=backend,
            metric=metric,
            dtype=dtype,
            defaults=defaults,
            backend_kwargs=backend_kwargs,
            engine_kwargs=engine_kwargs,
        )
        self._snap = None
        self._members: list[np.ndarray] = []
        self._centroids: np.ndarray | None = None
        self._reach: np.ndarray | None = None
        self._est: SampledKNNEstimator | None = None
        self._rk: dict[int, np.ndarray] = {}

    # -- publication (called under the dispatch lock) ------------------
    def _augment_arrays(self, arrays: dict, state, spec: QuerySpec) -> None:
        """Partition the pinned epoch and ship the assignment with it."""
        snap = state.snapshot
        active_ids = snap.active_ids()
        est = SampledKNNEstimator(
            snap, sample_size=max(1, self.sample_size)
        )
        if self.strategy == "dk-balanced" and active_ids.shape[0]:
            # Snake-deal by descending reach: the widest-reach members
            # (largest u_k, hardest to prune) spread evenly instead of
            # clustering in one shard.
            _, upper = est.kth_upper_bounds(spec.k)
            order = np.argsort(-upper, kind="stable")
            block, pos = divmod(
                np.arange(order.shape[0], dtype=np.intp), self.shards
            )
            shard_of = np.where(block % 2 == 0, pos, self.shards - 1 - pos)
            assign = np.empty(order.shape[0], dtype=np.intp)
            assign[order] = shard_of
        else:
            assign = np.arange(active_ids.shape[0], dtype=np.intp) % self.shards
        members = [
            np.sort(active_ids[assign == s]) for s in range(self.shards)
        ]
        offsets = np.zeros(self.shards + 1, dtype=np.int64)
        np.cumsum([ids.shape[0] for ids in members], out=offsets[1:])
        arrays["shard_ids"] = (
            np.concatenate(members) if active_ids.shape[0]
            else np.empty(0, dtype=np.intp)
        )
        arrays["shard_offsets"] = offsets
        points = snap.points
        metric = snap.metric
        dim = points.shape[1]
        centroids = np.zeros((self.shards, dim), dtype=points.dtype)
        reach = np.zeros(self.shards, dtype=np.float64)
        for s, ids in enumerate(members):
            if ids.shape[0] == 0:
                continue
            rows = points[ids]
            centroids[s] = rows.mean(axis=0)
            reach[s] = float(metric.to_point(rows, centroids[s]).max())
        self._snap = snap
        self._members = members
        self._centroids = centroids
        self._reach = reach
        self._est = est
        self._rk = {}

    def _shard_rk(self, k: int) -> np.ndarray:
        """Per-shard ``max u_k`` (the shard's d_k pruning radius)."""
        radii = self._rk.get(k)
        if radii is None:
            ids_a, upper = self._est.kth_upper_bounds(k)
            radii = np.full(self.shards, -np.inf)
            for s, ids in enumerate(self._members):
                if ids.shape[0]:
                    radii[s] = float(upper[np.searchsorted(ids_a, ids)].max())
            self._rk[k] = radii
        return radii

    def _keep_mask(self, query_points: np.ndarray, k: int) -> np.ndarray:
        """``(m, shards)`` broadcast mask; empty shards are never asked."""
        non_empty = np.array(
            [ids.shape[0] > 0 for ids in self._members], dtype=bool
        )
        if not self.prune:
            return np.broadcast_to(
                non_empty, (query_points.shape[0], self.shards)
            ).copy()
        bound = self._reach + self._shard_rk(k)
        to_centroid = self._snap.metric.to_point_many(
            query_points, self._centroids
        ).astype(np.float64)
        # Generous slack: the bound is a reachability cutoff, not a
        # membership compare — over-keeping costs a little work,
        # under-keeping costs exactness.  Empty shards carry a -inf
        # radius (slack would be nan); they are excluded below anyway.
        rtol, atol = tolerances_for(query_points.dtype)
        cutoff = np.full(self.shards, -np.inf)
        finite = np.isfinite(bound)
        cutoff[finite] = bound[finite] + 16.0 * (
            rtol * np.abs(bound[finite]) + atol
        )
        keep = to_centroid <= cutoff[None, :]
        return keep & non_empty[None, :]

    # -- dispatch + merge ---------------------------------------------
    def _dispatch_sharded(
        self, query_points: np.ndarray | None,
        member_ids: np.ndarray | None, spec: QuerySpec,
    ) -> tuple[int, list[RkNNResult]]:
        """One sharded dispatch against one pinned epoch.

        Everything epoch-dependent — the context pin, member-liveness
        checks, the member rows, the keep mask — resolves under a single
        lock acquisition, so a writer landing mid-call can never mix two
        epochs into one answer.
        """
        with self._lock:
            self._check_open()
            ctx = self._ensure_context(spec)
            snap = self._snap
            if member_ids is not None:
                for qid in member_ids:
                    if not snap.is_active(int(qid)):
                        raise KeyError(
                            f"point id {int(qid)} has been removed"
                        )
                query_points = snap.points[member_ids]
            m = query_points.shape[0]
            knobs = self._knobs(spec)
            keep = self._keep_mask(query_points, spec.k)
            tasks, slots = [], []
            for s in range(self.shards):
                rows = np.flatnonzero(keep[:, s])
                if rows.shape[0] == 0:
                    continue
                if member_ids is not None:
                    tasks.append(
                        ("shard-member", ctx, s, member_ids[rows], spec.k, knobs)
                    )
                else:
                    tasks.append(
                        ("shard-raw", ctx, s, query_points[rows], spec.k, knobs)
                    )
                slots.append(rows)
            chunks = self._map(tasks)
        candidates: list[list[np.ndarray]] = [[] for _ in range(m)]
        for rows, chunk in zip(slots, chunks):
            for row, ids in zip(rows, chunk):
                ids = np.asarray(ids, dtype=np.intp)
                if ids.shape[0]:
                    candidates[int(row)].append(ids)
        return ctx.epoch, self._merge(snap, query_points, candidates, spec)

    def _merge(
        self, snap, query_points: np.ndarray,
        candidates: list[list[np.ndarray]], spec: QuerySpec,
    ) -> list[RkNNResult]:
        """Exact global verification of the shard candidates.

        Shards are disjoint, so per-query candidate lists concatenate
        without duplicates; candidates are deduplicated *across* queries
        for one global ``knn_distances`` pass (the ``d_k`` of each
        unique candidate), then membership is the tolerant
        ``d(q, x) <= d_k(x)`` compare — the same policy the engines'
        verification phase uses.
        """
        counts = np.array(
            [sum(ids.shape[0] for ids in lists) for lists in candidates],
            dtype=np.int64,
        )
        total = int(counts.sum())
        empty = np.empty(0, dtype=np.intp)
        if total == 0:
            return [
                RkNNResult(
                    ids=empty, k=spec.k, t=spec.t,
                    stats=QueryStats(terminated_by="sharded-merge"),
                )
                for _ in candidates
            ]
        flat = np.concatenate(
            [ids for lists in candidates for ids in lists]
        ).astype(np.intp)
        rows = np.repeat(np.arange(len(candidates), dtype=np.intp), counts)
        unique, inverse = np.unique(flat, return_inverse=True)
        kth = snap.knn_distances(
            snap.points[unique], spec.k, exclude_indices=unique
        )
        dq = snap.metric.paired(query_points[rows], snap.points[flat])
        member = dist_le_many(np.asarray(dq), kth[inverse])
        ends = np.cumsum(counts)
        results = []
        for i in range(len(candidates)):
            lo = int(ends[i - 1]) if i else 0
            hi = int(ends[i])
            hits = flat[lo:hi][member[lo:hi]]
            results.append(
                RkNNResult(
                    ids=np.sort(hits).astype(np.intp),
                    k=spec.k,
                    t=spec.t,
                    stats=QueryStats(
                        num_candidates=hi - lo,
                        num_verified=hi - lo,
                        num_verified_hits=int(hits.shape[0]),
                        terminated_by="sharded-merge",
                    ),
                )
            )
        return results

    # -- queries -------------------------------------------------------
    def query_versioned(
        self, query=None, *, query_index=None, spec=None, **overrides
    ):
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        if query_index is not None:
            epoch, results = self.query_batch_versioned(
                query_indices=[int(query_index)], spec=spec, **overrides
            )
        else:
            epoch, results = self.query_batch_versioned(
                np.asarray(query)[None, :], spec=spec, **overrides
            )
        return epoch, results[0]

    def query_batch_versioned(
        self, queries=None, *, query_indices=None, spec=None, **overrides
    ):
        if (queries is None) == (query_indices is None):
            raise ValueError(
                "provide exactly one of `queries` or `query_indices`"
            )
        spec = self.service.resolve_spec(spec, **overrides)
        if query_indices is not None:
            member_ids = np.asarray(query_indices, dtype=np.intp)
            query_points = None
        else:
            member_ids = None
            query_points = np.asarray(queries)
            if query_points.ndim == 1:
                query_points = query_points[None, :]
        return self._dispatch_sharded(query_points, member_ids, spec)

    def query_all_versioned(self, *, spec=None, **overrides):
        spec = self.service.resolve_spec(spec, **overrides)
        with self._lock:
            # The RLock makes the inner dispatch's pin this same epoch:
            # the member list and the shard assignment cannot diverge.
            self._check_open()
            self._ensure_context(spec)
            qids = self._active_ids
            epoch, results = self._dispatch_sharded(None, qids, spec)
        return epoch, {
            int(qid): result for qid, result in zip(qids, results)
        }

    # -- writes (delegate to the inner Service) ------------------------
    def insert(self, point) -> int:
        return self.service.insert(point)

    def remove(self, point_id: int) -> None:
        self.service.remove(point_id)

    def compact(self) -> bool:
        return self.service.compact()

    def active_ids(self) -> np.ndarray:
        return self.service.active_ids()

    @property
    def size(self) -> int:
        return self.service.size

    @property
    def dim(self) -> int:
        return self.service.dim

    # -- persistence ---------------------------------------------------
    def save(self, path) -> pathlib.Path:
        """Persist as a Service payload plus the sharding configuration."""
        return self.service.save(
            path,
            extra_meta={
                "sharded": {
                    "shards": self.shards,
                    "strategy": self.strategy,
                    "prune": self.prune,
                    "sample_size": self.sample_size,
                }
            },
        )

    @classmethod
    def load(
        cls, path, *, workers: int | None = None,
        start_method: str | None = None,
    ) -> "ShardedService":
        """Rebuild a :meth:`save` payload (inner Service + sharding meta)."""
        with np.load(pathlib.Path(path), allow_pickle=False) as payload:
            meta = json.loads(str(payload["meta"][()]))
        sharding = meta.get("extra", {}).get("sharded")
        if sharding is None:
            raise ValueError(
                f"{str(path)!r} is a plain Service payload (no sharding "
                "meta); load it with repro.Service.load"
            )
        service = Service.load(path)
        sharded = cls(
            service,
            shards=sharding["shards"],
            strategy=sharding["strategy"],
            prune=sharding["prune"],
            sample_size=sharding["sample_size"],
            workers=workers,
            start_method=start_method,
        )
        # The loaded inner Service has no other owner: tear it down with
        # this wrapper.
        sharded._owns_service = True
        return sharded

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedService(engine={self.service.engine_name!r}, "
            f"shards={self.shards}, strategy={self.strategy!r}, "
            f"workers={self.workers}, n={self.service.size})"
        )
