"""Zero-copy dataset publication over ``multiprocessing.shared_memory``.

The parallel execution layer (:mod:`repro.parallel.executor`,
:mod:`repro.parallel.sharded`) fans query work out to worker *processes*.
Shipping the point matrix to every worker through pickling would copy
~100 MB per dispatch at the scales the scaling benchmark runs; instead
the parent publishes each epoch's arrays **once** into named shared
memory segments and sends workers only a tiny picklable
:class:`PackMeta` (segment names, shapes, dtypes).  Workers attach the
segments and wrap them in numpy views — zero copies, page-cache-shared
across every worker on the host.

Lifecycle contract (DESIGN.md "Parallel execution & sharding"):

* the **owner** (the process that called :func:`publish_arrays`) is the
  only one that ever ``unlink``\\ s; :meth:`SharedArrayPack.close`
  closes the mappings and removes the ``/dev/shm`` names.
* **attachments** (:func:`attach_arrays` in workers) close their local
  mapping only.  On POSIX an unlinked-but-mapped segment stays valid, so
  the owner may retire an epoch while a worker still holds the previous
  mapping.
* Python's ``resource_tracker`` (before 3.13) registers *attached*
  segments as if the attaching process owned them and would unlink them
  at worker exit, yanking memory out from under the parent; attachments
  therefore suppress the registration while constructing the mapping
  (cpython#82300).  Suppression — rather than unregistering *after* —
  matters under ``fork``: workers share the parent's tracker process,
  so a worker-side unregister would erase the owner's registration and
  the owner's eventual ``unlink`` would crash the tracker's bookkeeping
  with a noisy ``KeyError`` at exit.

Views handed out by :func:`attach_arrays` are **read-only**: an epoch's
published arrays are immutable by the MVCC contract, and a stray
in-place write in a worker must fail loudly instead of corrupting every
sibling's data.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "ArrayMeta",
    "PackMeta",
    "SharedArrayPack",
    "SharedAttachment",
    "attach_arrays",
    "publish_arrays",
    "shared_memory_available",
]


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without registering it as ours.

    Attach-side tracker registration is the cpython#82300 bug: the
    tracker would unlink the segment when *this* process exits even
    though the publishing process still owns it.  Python 3.13 grew a
    ``track=False`` parameter; on earlier versions the registration is
    suppressed by patching it out for the duration of the constructor
    (worker task execution is single-threaded, so the patch window
    races nothing).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class ArrayMeta:
    """Shape/dtype/segment coordinates of one published array."""

    segment: str
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class PackMeta:
    """The picklable description of one published array pack.

    ``fingerprint`` names the publication uniquely (workers key their
    attachment/engine caches on it); ``arrays`` maps logical array names
    to their segment coordinates.
    """

    fingerprint: str
    arrays: dict  # name -> ArrayMeta

    def names(self) -> tuple:
        return tuple(sorted(self.arrays))


class SharedArrayPack:
    """Owner-side handle for a set of published arrays (one segment each)."""

    def __init__(self, meta: PackMeta, segments: list) -> None:
        self.meta = meta
        self._segments = segments
        self._closed = False

    @property
    def segment_names(self) -> tuple:
        return tuple(shm.name for shm in self._segments)

    def close(self) -> None:
        """Close the owner mappings and unlink every segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shm in self._segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._segments = []

    def __del__(self):  # pragma: no cover - gc-order dependent
        self.close()


class SharedAttachment:
    """Worker-side handle: attached segments plus their read-only views."""

    def __init__(self, meta: PackMeta) -> None:
        self.meta = meta
        self._segments = []
        self.arrays: dict[str, np.ndarray] = {}
        try:
            for name in meta.names():
                spec = meta.arrays[name]
                shm = _attach_segment(spec.segment)
                self._segments.append(shm)
                view = np.ndarray(
                    spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
                )
                view.flags.writeable = False
                self.arrays[name] = view
        except BaseException:
            self.close()
            raise

    def close(self) -> None:
        """Drop the views and close the local mappings (never unlinks)."""
        # Views must die before the mappings: closing a SharedMemory with
        # live ndarray exports raises BufferError on CPython.
        self.arrays = {}
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    def __del__(self):  # pragma: no cover - gc-order dependent
        self.close()


def publish_arrays(arrays: dict, *, tag: str = "pack") -> SharedArrayPack:
    """Publish named numpy arrays into fresh shared-memory segments.

    Each array is copied once into its own segment (C-contiguous); the
    returned pack owns the segments until :meth:`SharedArrayPack.close`.
    Zero-size arrays are carried in the metadata only (``SharedMemory``
    refuses empty segments).
    """
    token = secrets.token_hex(8)
    fingerprint = f"repro-{tag}-{token}"
    metas: dict[str, ArrayMeta] = {}
    segments: list = []
    try:
        for index, name in enumerate(sorted(arrays)):
            arr = np.ascontiguousarray(arrays[name])
            if arr.nbytes == 0:
                metas[name] = ArrayMeta("", arr.shape, arr.dtype.str)
                continue
            shm = shared_memory.SharedMemory(
                create=True, size=arr.nbytes, name=f"{fingerprint}-{index}"
            )
            segments.append(shm)
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            view[...] = arr
            metas[name] = ArrayMeta(shm.name, arr.shape, arr.dtype.str)
    except BaseException:
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except Exception:
                pass
        raise
    return SharedArrayPack(PackMeta(fingerprint, metas), segments)


def attach_arrays(meta: PackMeta) -> SharedAttachment:
    """Attach a published pack; empty arrays are materialized locally."""
    attachment = SharedAttachment(
        PackMeta(meta.fingerprint, {
            name: spec for name, spec in meta.arrays.items() if spec.segment
        })
    )
    for name, spec in meta.arrays.items():
        if not spec.segment:
            empty = np.empty(spec.shape, dtype=np.dtype(spec.dtype))
            empty.flags.writeable = False
            attachment.arrays[name] = empty
    return attachment


def shared_memory_available() -> bool:
    """Whether shared-memory segments can actually be created here.

    Probes with a tiny segment: containers occasionally run without a
    usable ``/dev/shm`` mount, and the scaling benchmark skips (with a
    logged reason) rather than erroring in that environment.
    """
    try:
        shm = shared_memory.SharedMemory(create=True, size=16)
    except Exception:
        return False
    try:
        shm.close()
        shm.unlink()
    except Exception:  # pragma: no cover - probe cleanup best effort
        pass
    return True
