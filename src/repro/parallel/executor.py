"""Query-parallel execution: fan ``query_batch``/``query_all`` across cores.

RkNN self-joins and batched queries are embarrassingly parallel over
query blocks — each block's answers depend only on the (immutable)
published epoch, never on the other blocks.  :class:`ParallelExecutor`
exploits exactly that: it pins one :class:`repro.Service` epoch, publishes
the epoch's point matrix + active mask (and, when valid, the backend's
SoA flat layout) into shared memory once (:mod:`repro.parallel.shared`),
and fans query blocks out to a persistent ``multiprocessing`` pool whose
workers attach the arrays zero-copy and rebuild only the engine against
them (:mod:`repro.parallel.worker`).

The MVCC contract is the Service's own, extended across processes: one
dispatch answers against exactly one published epoch (stale-but-
consistent — a writer storming between dispatches moves the epoch, never
tears a batch).  Dispatches are serialized on an executor lock, so a
republish only ever happens between dispatches; retired segments are
unlinked immediately (POSIX keeps them valid for workers still mapping
them, and workers drop old mappings when they first see the new epoch's
fingerprint).

Start-method policy (DESIGN.md "Parallel execution & sharding"): ``fork``
by default where the platform offers it — workers inherit the imported
library for free and the shared segments carry the data either way —
overridable to ``spawn`` via the ``REPRO_MP_START`` environment variable
or the ``start_method`` knob (CI runs the fast parallel tier under both).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import threading

import numpy as np

from repro.engines import ENGINE_REGISTRY
from repro.parallel import shared
from repro.parallel.worker import BoundContext, WorkerInit, init_worker, run_task
from repro.service import QuerySpec, Service

__all__ = ["ParallelExecutor", "resolve_start_method"]

#: Environment override for the multiprocessing start method; the CI
#: fast-tier matrix runs the parallel tests under both values.
START_METHOD_ENV = "REPRO_MP_START"


def resolve_start_method(start_method: str | None = None) -> str:
    """The effective start method: knob > ``REPRO_MP_START`` > fork > spawn."""
    if start_method is None:
        start_method = os.environ.get(START_METHOD_ENV) or None
    available = multiprocessing.get_all_start_methods()
    if start_method is None:
        return "fork" if "fork" in available else "spawn"
    if start_method not in available:
        raise ValueError(
            f"start_method {start_method!r} not available on this platform; "
            f"choices: {available}"
        )
    return start_method


class _PoolHost:
    """Shared pool/publication plumbing for the two parallel tiers.

    Owns the worker pool, the currently published shared-memory packs,
    and the teardown path (:meth:`close`): the pool is joined first, then
    every pack is closed and unlinked, so test teardowns can assert
    ``/dev/shm`` holds no leaked ``repro-*`` blocks.
    """

    def __init__(self, workers: int, start_method: str | None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not shared.shared_memory_available():
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable here (no "
                "usable /dev/shm?); parallel execution needs it"
            )
        self.workers = int(workers)
        self.start_method = resolve_start_method(start_method)
        self._lock = threading.RLock()
        self._pool = None
        self._packs: list = []
        self._closed = False

    # -- pool ---------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            ctx = multiprocessing.get_context(self.start_method)
            self._pool = ctx.Pool(
                self.workers,
                initializer=init_worker,
                initargs=(WorkerInit(jit_env=os.environ.get("REPRO_JIT")),),
            )
        return self._pool

    def _map(self, tasks: list) -> list:
        return self._ensure_pool().map(run_task, tasks)

    def probe(self) -> list[dict]:
        """One kernel-dispatch report per submitted probe task.

        Used by the regression tests asserting workers re-resolved their
        dispatch tables (satellite: stale tables under fork/spawn).
        """
        with self._lock:
            self._check_open()
            return self._map([("probe",)] * self.workers)

    # -- publication --------------------------------------------------
    def _swap_packs(self, packs: list) -> None:
        """Adopt new packs, retiring (unlinking) the previous publication."""
        old, self._packs = self._packs, packs
        for pack in old:
            pack.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(f"cannot use a closed {type(self).__name__}")

    # -- teardown -----------------------------------------------------
    def close(self) -> None:
        """Tear down the pool and unlink every published segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._pool is not None:
                self._pool.close()
                self._pool.join()
                self._pool = None
            self._swap_packs([])

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - gc-order dependent
        try:
            self.close()
        except Exception:
            pass


def _metric_meta(metric) -> dict:
    """Picklable metric reconstruction meta (the Service.save recipe)."""
    meta = {"name": metric.name}
    if hasattr(metric, "p"):
        meta["p"] = float(metric.p)
    meta["dtype"] = metric.dtype.name
    return meta


#: Backends whose SoA flat layout can be published for worker adoption.
_LAYOUT_KINDS = {"kd-tree": "kd", "ball-tree": "ball"}


class ParallelExecutor(_PoolHost):
    """Fan a Service's batched queries out to a process pool.

    Parameters
    ----------
    source:
        A :class:`repro.Service` to execute for (adopted, not owned), or
        raw ``(n, dim)`` data / a prebuilt index — then an internal
        Service is built from the remaining constructor knobs and owned
        (closed with the executor).
    engine:
        Engine registry name for the internal Service (default
        ``"rdt+"``); must be an index-family engine — those answer in
        index ids, so per-block answers from worker processes need no id
        translation.  Ignored (and rejected) when adopting a Service.
    workers:
        Pool size (default ``os.cpu_count()``).
    start_method:
        ``"fork"``/``"spawn"``/``"forkserver"`` override (see
        :func:`resolve_start_method`).
    block_size:
        Queries per worker task; default splits each dispatch into
        ``4 * workers`` blocks for load balancing.
    backend / metric / dtype / defaults / backend_kwargs / engine_kwargs:
        Forwarded to the internal :class:`repro.Service` when ``source``
        is raw data.

    ``query_batch``/``query_all`` (and their ``_versioned`` forms) mirror
    the Service's signatures; single :meth:`query` calls stay in-process
    (one query cannot amortize a cross-process hop).  Every dispatch
    repins the Service's latest published epoch and republishes the
    shared arrays only when the epoch (or the engine configuration a
    spec implies) actually moved.
    """

    #: publish the parent tree's SoA flat layout for worker adoption
    #: (subclasses building shard-local trees turn this off)
    _publish_layout = True

    def __init__(
        self,
        source,
        engine: str | None = None,
        *,
        workers: int | None = None,
        start_method: str | None = None,
        block_size: int | None = None,
        backend: str = "kd",
        metric=None,
        dtype=None,
        defaults: QuerySpec | None = None,
        backend_kwargs: dict | None = None,
        engine_kwargs: dict | None = None,
    ) -> None:
        if isinstance(source, Service):
            if engine is not None or metric is not None or dtype is not None:
                raise ValueError(
                    "engine/metric/dtype only apply when building from raw "
                    "data; the given Service already carries them"
                )
            if defaults is not None or backend_kwargs or engine_kwargs:
                raise ValueError(
                    "defaults/backend_kwargs/engine_kwargs only apply when "
                    "building from raw data; configure the Service instead"
                )
            self.service = source
            self._owns_service = False
        else:
            self.service = Service(
                source,
                backend=backend,
                engine="rdt+" if engine is None else engine,
                metric=metric,
                dtype=dtype,
                defaults=defaults,
                backend_kwargs=backend_kwargs,
                engine_kwargs=engine_kwargs,
            )
            self._owns_service = True
        self._entry = ENGINE_REGISTRY[self.service.engine_name]
        if self._entry.needs != "index":
            raise ValueError(
                f"parallel execution supports index-family engines only "
                f"(they answer in index ids); {self.service.engine_name!r} "
                f"needs {self._entry.needs!r}"
            )
        super().__init__(
            workers if workers is not None else (os.cpu_count() or 1),
            start_method,
        )
        if block_size is not None and block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = block_size
        self._ctx: BoundContext | None = None
        self._ctx_key = None
        self._active_ids: np.ndarray | None = None

    # -- epoch publication --------------------------------------------
    def _ensure_context(self, spec: QuerySpec) -> BoundContext:
        """Pin the Service's latest epoch, republishing shared arrays on change.

        Runs with the dispatch lock held; the Service-side pin uses the
        same read guard/lock-free path as an in-process query, so the
        snapshot captured here is one consistent epoch even against a
        concurrent writer storm.
        """
        service = self.service
        with service._read_guard():
            state = service._pin_state(spec)
        key = (state.epoch, tuple(sorted(state.built_kwargs.items())))
        if self._ctx is not None and self._ctx_key == key:
            return self._ctx
        snap = state.snapshot
        active = np.zeros(snap.points.shape[0], dtype=bool)
        active_ids = snap.active_ids()
        active[active_ids] = True
        arrays = {"points": snap.points, "active": active}
        self._augment_arrays(arrays, state, spec)
        packs = [shared.publish_arrays(arrays, tag=f"data{state.epoch}")]
        layout_kind = layout_meta = None
        if self._publish_layout and state.epoch == 0 and bool(active.all()):
            # A pure bulk-built tree: the worker's deterministic rebuild
            # reproduces it node for node, so the parent's flat layout
            # arrays are directly adoptable (no re-flatten per worker).
            kind = _LAYOUT_KINDS.get(service.backend_name)
            layout_arrays = None
            if kind is not None:
                from repro.indexes.soa import layout_to_arrays

                layout_arrays = layout_to_arrays(snap._flat_layout())
            if layout_arrays:
                packs.append(
                    shared.publish_arrays(
                        layout_arrays, tag=f"layout{state.epoch}"
                    )
                )
                layout_kind = kind
                layout_meta = packs[-1].meta
        ctx = BoundContext(
            pack=packs[0].meta,
            epoch=state.epoch,
            backend=service.backend_name,
            engine=service.engine_name,
            metric=_metric_meta(service.metric),
            backend_kwargs=dict(service._backend_kwargs),
            engine_kwargs=dict(state.built_kwargs),
            layout_kind=layout_kind,
            layout=layout_meta,
        )
        self._swap_packs(packs)
        self._ctx = ctx
        self._ctx_key = key
        self._active_ids = active_ids
        return ctx

    def _augment_arrays(self, arrays: dict, state, spec: QuerySpec) -> None:
        """Hook for subclasses to publish extra arrays with the epoch."""

    def _knobs(self, spec: QuerySpec) -> dict:
        # query_knobs/batch_knobs are class attributes, so the engine's
        # *class* resolves the same knob set the Service forwards.
        return spec.knobs_for(self._entry.cls, batch=True)

    def _blocks(self, count: int) -> list[np.ndarray]:
        if count == 0:
            return []
        if self.block_size is not None:
            parts = math.ceil(count / self.block_size)
        else:
            parts = min(count, self.workers * 4)
        return np.array_split(np.arange(count, dtype=np.intp), parts)

    # -- queries ------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self.service.epoch

    def query(self, query=None, *, query_index=None, spec=None, **overrides):
        """One query (in-process here; sharded in :class:`ShardedService`)."""
        return self.query_versioned(
            query, query_index=query_index, spec=spec, **overrides
        )[1]

    def query_versioned(
        self, query=None, *, query_index=None, spec=None, **overrides
    ):
        return self.service.query_versioned(
            query, query_index=query_index, spec=spec, **overrides
        )

    def query_batch(
        self, queries=None, *, query_indices=None, spec=None, **overrides
    ):
        return self.query_batch_versioned(
            queries, query_indices=query_indices, spec=spec, **overrides
        )[1]

    def query_batch_versioned(
        self, queries=None, *, query_indices=None, spec=None, **overrides
    ):
        """Batched queries fanned out across the pool; ``(epoch, results)``."""
        if (queries is None) == (query_indices is None):
            raise ValueError(
                "provide exactly one of `queries` or `query_indices`"
            )
        spec = self.service.resolve_spec(spec, **overrides)
        with self._lock:
            self._check_open()
            ctx = self._ensure_context(spec)
            knobs = self._knobs(spec)
            if query_indices is not None:
                items = np.asarray(query_indices, dtype=np.intp)
                if items.ndim != 1:
                    raise ValueError("query_indices must be one-dimensional")
                kind = "member"
            else:
                items = np.asarray(queries)
                if items.ndim == 1:
                    items = items[None, :]
                kind = "raw"
            tasks = [
                (kind, ctx, items[rows], spec.k, knobs)
                for rows in self._blocks(items.shape[0])
            ]
            chunks = self._map(tasks)
        results = [result for chunk in chunks for result in chunk]
        return ctx.epoch, results

    def query_all(self, *, spec=None, **overrides):
        return self.query_all_versioned(spec=spec, **overrides)[1]

    def query_all_versioned(self, *, spec=None, **overrides):
        """The RkNN self-join over all members, fanned across the pool.

        Returns ``(epoch, {point_id: result})`` — the same mapping (and,
        for index-family engines, the same bits) as
        :meth:`repro.Service.query_all` against that epoch.
        """
        spec = self.service.resolve_spec(spec, **overrides)
        with self._lock:
            self._check_open()
            ctx = self._ensure_context(spec)
            knobs = self._knobs(spec)
            qids = self._active_ids
            tasks = [
                ("member", ctx, qids[rows], spec.k, knobs)
                for rows in self._blocks(qids.shape[0])
            ]
            chunks = self._map(tasks)
        flat = [result for chunk in chunks for result in chunk]
        return ctx.epoch, {
            int(qid): result for qid, result in zip(qids, flat)
        }

    # -- teardown -----------------------------------------------------
    def close(self) -> None:
        super().close()
        if self._owns_service:
            self.service.close()
        self._ctx = None
        self._ctx_key = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelExecutor(engine={self.service.engine_name!r}, "
            f"workers={self.workers}, start_method={self.start_method!r}, "
            f"n={self.service.size})"
        )
