"""Sampled-kNN estimator: approximate RkNN through subsampled kNN distances.

Exact RkNN membership is ``d(q, x) <= d_k(x)`` with ``d_k`` computed over
``S \\ {x}`` — the O(n) part is knowing ``d_k`` for every shortlisted
``x``.  This strategy precomputes, per ``k``, a *sampled* kNN-distance
table: ``u_k(x)``, the k-th NN distance of ``x`` within a fixed random
subsample of the member set.  Two facts drive the decision rule:

* **The sampled distance is a deterministic upper bound**: the sample is a
  subset of ``S \\ {x}``, so its k-th NN distance can only be larger than
  the true ``d_k(x)``.  Any ``x`` with ``d(q, x) > u_k(x)`` is therefore
  *provably* not a reverse neighbor — the cheap phase rejects it without
  error, which is why this strategy never loses recall.
* **A calibrated correction factor recenters the bound into an estimate.**
  With sampling fraction ``p = s/n`` the sample's k-th neighbor sits near
  full-set rank ``k/p``, inflating ``u_k`` by a data-dependent factor.
  Rather than modeling it through an intrinsic-dimensionality estimate,
  the build measures it: a small calibration subset gets exact ``d_k``
  values (O(n) per calibration point), and the median ratio
  ``d_k / u_k`` becomes the correction ``c``.

The decision per candidate ``x`` with ``dq = d(q, x)``:

* ``dq > u_k(x)`` (tolerant) — rejected, provably correct;
* ``dq <= (1 - margin) * c * u_k(x)`` — *decisively* inside the estimated
  neighborhood: accepted without verification (the only step that can
  produce false positives);
* otherwise — pending: the engine verifies it with an exact
  ``knn_distances`` call.

``margin`` trades verification work against precision risk: ``margin=1``
never accepts (exact fallback for every candidate, precision 1), small
margins accept more aggressively.  Rows whose sampled table holds ``inf``
(fewer than ``k`` eligible sample points — DESIGN.md fewer-than-k
convention) are never accepted outright, only verified, so an undersized
sample degrades to exact behavior instead of to wrong answers.
"""

from __future__ import annotations

import numpy as np

from repro.approx.base import ApproxStrategy, StrategyDecision
from repro.indexes.base import Index
from repro.indexes.bulk_knn import adaptive_chunk_size, chunked_knn_distances
from repro.utils.tolerance import DIST_ATOL, DIST_RTOL
from repro.utils.validation import check_positive_int

__all__ = ["SampledKNNEstimator"]


class SampledKNNEstimator(ApproxStrategy):
    """Candidate shortlisting through sampled, calibrated kNN distances.

    Parameters
    ----------
    index:
        Any :class:`repro.indexes.Index`; queries scan its active points
        with chunked pairwise kernels, so a plain linear-scan backend is
        the natural fit.
    sample_size:
        Member points in the kNN-distance subsample (capped at ``n``).
        Larger samples tighten the upper bound — fewer candidates and a
        thinner verification band — at higher per-``k`` build cost.
    margin:
        Decisive-accept safety margin in ``[0, 1]``.  A candidate is
        accepted unverified only when its query distance clears the
        corrected estimate by this relative margin; ``1.0`` disables the
        accept path entirely (every candidate verified, precision 1).
    calibration_size:
        Members given exact ``d_k`` values to measure the correction
        factor (capped at ``n``).
    seed:
        Sampling seed; same data + same seed = same tables.
    """

    name = "sampled"

    def __init__(
        self,
        index: Index,
        sample_size: int = 512,
        margin: float = 0.25,
        calibration_size: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(index)
        self.sample_size = check_positive_int(sample_size, name="sample_size")
        margin = float(margin)
        if not 0.0 <= margin <= 1.0:
            raise ValueError(f"margin must lie in [0, 1], got {margin}")
        self.margin = margin
        self.calibration_size = check_positive_int(
            calibration_size, name="calibration_size"
        )
        self.seed = seed
        self._active = np.empty(0, dtype=np.intp)
        self._points = np.empty((0, index.dim), dtype=np.float64)
        #: per-k tables: k -> (upper bound, corrected decisive-accept radius)
        self._tables: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: per-k measured correction factors (exposed for reporting/tests)
        self.corrections: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Structure maintenance
    # ------------------------------------------------------------------
    def _rebuild(self, active_ids: np.ndarray) -> None:
        self._active = active_ids
        self._points = self.index.points[active_ids]
        self._tables.clear()
        self.corrections.clear()

    def _table(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        if k in self._tables:
            return self._tables[k]
        metric = self.index.metric
        active, points = self._active, self._points
        n = active.shape[0]
        rng = np.random.default_rng([self.seed, k])
        sample = np.sort(rng.choice(n, size=min(self.sample_size, n), replace=False))
        upper = chunked_knn_distances(
            points,
            points[sample],
            k,
            metric,
            point_ids=active[sample],
            exclude_ids=active,
        )
        cal = rng.choice(n, size=min(self.calibration_size, n), replace=False)
        exact = chunked_knn_distances(
            points[cal],
            points,
            k,
            metric,
            point_ids=active,
            exclude_ids=active[cal],
        )
        usable = np.isfinite(exact) & np.isfinite(upper[cal]) & (upper[cal] > 0.0)
        if usable.any():
            correction = float(np.median(exact[usable] / upper[cal][usable]))
        else:
            correction = 1.0
        self.corrections[k] = correction
        # Accept region: decisively inside the corrected estimate.  Rows
        # with an inf upper bound (undersized sample) must never accept
        # outright — map them to -inf so they always fall through to the
        # exact verification path.
        accept = (1.0 - self.margin) * correction * upper
        accept[~np.isfinite(accept)] = -np.inf
        self._tables[k] = (upper, accept)
        return self._tables[k]

    def kth_upper_bounds(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The per-member sampled d_k upper bounds: ``(active_ids, u_k)``.

        ``u_k[i]`` is the provable upper bound on the true ``d_k`` of
        member ``active_ids[i]`` (sample ⊂ ``S \\ {x}``, so its k-th NN
        distance can only be larger; ``inf`` where the sample has fewer
        than ``k`` eligible points).  This is the public face of the
        per-k tables for consumers beyond the approx engine — the
        sharded tier derives its cross-shard pruning radii and its
        d_k-balanced partitioning from it.
        """
        self.ensure_current()
        upper, _ = self._table(check_positive_int(int(k), name="k"))
        return self._active, upper

    # ------------------------------------------------------------------
    # Strategy interface
    # ------------------------------------------------------------------
    def decide_batch(
        self, query_points: np.ndarray, exclude: np.ndarray, k: int
    ) -> list[StrategyDecision]:
        self.ensure_current()
        upper, accept = self._table(k)
        metric = self.index.metric
        active, points = self._active, self._points
        n = active.shape[0]
        m = query_points.shape[0]
        # Tolerant candidate boundary (utils/tolerance policy): the upper
        # bound and the query distances come from different vectorized
        # kernels, and true members can sit exactly on the boundary.
        cand_bound = upper + (DIST_RTOL * np.abs(upper) + DIST_ATOL)
        decisions: list[StrategyDecision] = []
        chunk = adaptive_chunk_size(n)
        for start in range(0, m, chunk):
            stop = min(m, start + chunk)
            dists = metric.pairwise(query_points[start:stop], points)
            block_exclude = exclude[start:stop]
            rows = np.flatnonzero(block_exclude >= 0)
            if rows.shape[0]:
                cols = np.searchsorted(active, block_exclude[rows])
                cols_in = np.minimum(cols, n - 1)
                found = active[cols_in] == block_exclude[rows]
                rows = rows[found]
                dists[rows, cols_in[found]] = np.inf
            # Member rows just had their own column masked, so the k-th
            # smallest of the row *is* the query's exact self-excluded kNN
            # distance — a by-product the engine reuses to skip those
            # members' verification (StrategyDecision.query_kth).
            row_kth = np.full(stop - start, np.nan)
            if rows.shape[0]:
                if k <= n:
                    row_kth[rows] = np.partition(dists[rows], k - 1, axis=1)[
                        :, k - 1
                    ]
                else:
                    row_kth[rows] = np.inf
            cand = dists <= cand_bound[None, :]
            accepted = cand & (dists <= accept[None, :])
            pending = cand & ~accepted
            if rows.shape[0]:
                # The inf-masked own column still passes the candidate test
                # when the upper bound itself is inf (underfull active
                # set); a query is never its own reverse neighbor.
                own = cols_in[found]
                accepted[rows, own] = False
                pending[rows, own] = False
            # One nonzero sweep per block instead of two per row; nonzero
            # returns row-major order, so per-row slices fall out of the
            # row counts directly.
            acc_rows, acc_cols = np.nonzero(accepted)
            pend_rows, pend_cols = np.nonzero(pending)
            rows_in_block = stop - start
            acc_ends = np.cumsum(np.bincount(acc_rows, minlength=rows_in_block))
            pend_ends = np.cumsum(np.bincount(pend_rows, minlength=rows_in_block))
            acc_ids = active[acc_cols]
            pend_ids = active[pend_cols]
            pend_dists = dists[pend_rows, pend_cols]
            for local in range(rows_in_block):
                a0 = acc_ends[local - 1] if local else 0
                p0 = pend_ends[local - 1] if local else 0
                decisions.append(
                    StrategyDecision(
                        accepted_ids=acc_ids[a0 : acc_ends[local]],
                        pending_ids=pend_ids[p0 : pend_ends[local]],
                        pending_dists=pend_dists[p0 : pend_ends[local]],
                        num_scanned=n,
                        query_kth=float(row_kth[local]),
                    )
                )
        return decisions
