"""Strategy protocol for the approximate RkNN engine.

The exact engines (:class:`repro.core.RDT`, the brute-force baselines)
decide RkNN membership by computing, for every surviving candidate ``x``,
its exact k-th NN distance and testing ``d(q, x) <= d_k(x)``.  An
*approximate strategy* replaces the expensive part of that pipeline with a
cheap, possibly-wrong phase and tells the engine what it is still unsure
about.  Concretely, a strategy answers one batched question:

    given query rows, which member points are (a) accepted outright,
    (b) worth an exact verification, and (c) ignored?

encoded per query as a :class:`StrategyDecision`.  The engine
(:class:`repro.approx.ApproxRkNN`) then verifies every *pending* candidate
exactly — one deduplicated :meth:`repro.indexes.Index.knn_distances` call
for the whole batch, identical to the exact engine's refinement — and
merges the accepted ids in unverified.  The split determines the failure
mode (DESIGN.md "Approximate search"):

* a strategy that never accepts outright (the LSH filter) has perfect
  precision and pays for it with recall — members it fails to shortlist
  are lost;
* a strategy that shortlists through a provable upper bound (the sampled
  estimator) has perfect recall and risks precision only on the
  candidates it accepts without verification.

Strategies cache index-derived structure (hash tables, sampled distance
tables) and rebuild it automatically when the index's
:attr:`~repro.indexes.base.Index.version` moves past the version the
cache was built at, so dynamic insert/remove workloads stay correct
without manual invalidation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.indexes.base import Index

__all__ = ["ApproxStrategy", "StrategyDecision"]


def _empty_ids() -> np.ndarray:
    return np.empty(0, dtype=np.intp)


@dataclass
class StrategyDecision:
    """One query's candidate split, produced by a strategy's cheap phase."""

    #: member ids accepted without exact verification (may cost precision)
    accepted_ids: np.ndarray = field(default_factory=_empty_ids)
    #: member ids the engine must verify with an exact kNN distance
    pending_ids: np.ndarray = field(default_factory=_empty_ids)
    #: ``d(q, x)`` for each pending id, in the same order
    pending_dists: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.float64)
    )
    #: how many stored points the cheap phase examined (cost reporting)
    num_scanned: int = 0
    #: exact self-excluded k-th NN distance of the query row itself, when
    #: the cheap phase computed it as a by-product (member queries whose
    #: whole distance row was scanned).  ``nan`` = not computed; ``inf``
    #: is a *valid* value (fewer than ``k`` eligible points).  The engine
    #: reuses these for pending candidates that are member queries of the
    #: same batch, skipping their exact re-verification.
    query_kth: float = float("nan")


class ApproxStrategy:
    """Base class for approximate candidate-generation strategies."""

    #: Registry identifier, e.g. ``"lsh"`` / ``"sampled"``.
    name: str = "abstract"

    def __init__(self, index: Index) -> None:
        self.index = index
        self._built_version: int | None = None

    # ------------------------------------------------------------------
    # Strategy interface
    # ------------------------------------------------------------------
    def decide_batch(
        self, query_points: np.ndarray, exclude: np.ndarray, k: int
    ) -> list[StrategyDecision]:
        """Split each query row's member set into accepted/pending/ignored.

        ``query_points`` is an ``(m, dim)`` array; ``exclude`` holds one
        member id per row that must never appear in that row's answer
        (``-1`` = nothing to exclude — the raw-point convention shared
        with :func:`repro.utils.validation.resolve_batch_queries`).
        """
        raise NotImplementedError

    def _rebuild(self, active_ids: np.ndarray) -> None:
        """Recompute all index-derived structure for the given live set."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared cache invalidation
    # ------------------------------------------------------------------
    def ensure_current(self) -> None:
        """Rebuild cached structure iff the index churned since the build.

        The signature is the index :attr:`~repro.indexes.base.Index.version`
        — every insert, remove, and compaction bumps it, so an O(1)
        integer compare replaces the historical whole-array comparison of
        active id sets.  (Compaction does not change the active set, so
        the version test rebuilds slightly more eagerly than the array
        test did; strategies only derive state from active points, so
        the extra rebuild is merely conservative.)
        """
        version = self.index.version
        if self._built_version == version:
            return
        self._rebuild(self.index.active_ids())
        self._built_version = version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(index={self.index!r})"
