"""Approximate RkNN: tunable-recall strategies behind the exact engines' API.

The exact engines (RDT/RDT+ and the baselines) verify every candidate
exactly, which caps throughput at high query volume.  This package trades
bounded, *measurable* error for speed: :class:`ApproxRkNN` answers the
same queries as :class:`repro.core.RDT` through an interchangeable
:class:`~repro.approx.base.ApproxStrategy`:

``"lsh"`` (:class:`~repro.approx.lsh.LSHFilter`)
    Multi-table random-projection hashing shortlists candidates; all of
    them are verified exactly.  Precision 1, recall is the knob
    (``n_tables``).

``"sampled"`` (:class:`~repro.approx.sampled.SampledKNNEstimator`)
    A subsampled kNN-distance table upper-bounds every member's true
    kNN distance (provably — no recall loss), a calibrated correction
    turns it into an estimate, and candidates decisively inside the
    estimate skip verification.  Recall 1, precision is the knob
    (``margin``).

``"graph"`` (:class:`~repro.approx.graph.GraphRkNNStrategy`)
    An HRNN-style layered forward/reverse kNN graph: member queries
    read their reverse adjacency directly (with the exact d_k cache the
    build produced as a by-product), raw points navigate by greedy
    descent plus beam search.  Precision 1, recall is the knob
    (``ef``/``graph_m``) — the strategy built for the d >= 64 regime
    where tree pruning collapses.

The evaluation harness measures both against the brute-force oracle with
:func:`repro.evaluation.run_approx_tradeoff`; `benchmarks/test_approx_engine.py`
records the recall/speedup trajectory to ``BENCH_approx.json``.
"""

from repro.approx.base import ApproxStrategy, StrategyDecision
from repro.approx.engine import ApproxRkNN
from repro.approx.graph import GraphRkNNStrategy
from repro.approx.lsh import LSHFilter
from repro.approx.sampled import SampledKNNEstimator

__all__ = [
    "ApproxRkNN",
    "ApproxStrategy",
    "StrategyDecision",
    "GraphRkNNStrategy",
    "LSHFilter",
    "SampledKNNEstimator",
    "APPROX_STRATEGIES",
    "build_strategy",
]

APPROX_STRATEGIES = {
    "graph": GraphRkNNStrategy,
    "lsh": LSHFilter,
    "sampled": SampledKNNEstimator,
}


def build_strategy(name: str, index, **kwargs) -> ApproxStrategy:
    """Construct a registered approximate strategy by name."""
    try:
        cls = APPROX_STRATEGIES[name]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown approximate strategy {name!r}; "
            f"known: {sorted(APPROX_STRATEGIES)}"
        ) from None
    return cls(index, **kwargs)
