"""Multi-table random-projection LSH candidate filter for RkNN queries.

Classic p-stable locality-sensitive hashing (Datar et al., SoCG 2004):
each table hashes a point to the integer lattice cell of a handful of
random 1-D projections, ``code(x) = floor((x @ A + b) / w)``, so nearby
points collide with high probability and far points rarely do.  The
strategy keeps ``n_tables`` independent tables over the member set; a
query probes its own bucket in every table and the union of the bucket
contents becomes the candidate shortlist.

RkNN semantics make the *verification* side exact and cheap to reason
about: every shortlisted candidate is handed to the engine as *pending*,
so membership is always decided by the exact ``d(q, x) <= d_k(x)`` test
(one deduplicated :meth:`~repro.indexes.Index.knn_distances` call for the
whole batch).  The filter therefore has **precision exactly 1**; its only
error mode is recall — a true reverse neighbor that collides with the
query in no table is never considered.  More tables (or wider buckets)
raise the collision probability and the recall, at more candidates per
query; that is the knob the evaluation sweep
(:func:`repro.evaluation.run_approx_tradeoff`) turns.

The default bucket width is data-driven: a sample of members gets exact
1-NN distances and ``w = width_factor * median``, putting one bucket at
the scale of a typical nearest-neighbor hop (reverse neighborhoods live
at small forward ranks, so this is the distance scale that must collide).
"""

from __future__ import annotations

import numpy as np

from repro.approx.base import ApproxStrategy, StrategyDecision
from repro.indexes.base import Index
from repro.indexes.bulk_knn import adaptive_chunk_size, chunked_knn_distances
from repro.utils.validation import check_positive_int

__all__ = ["LSHFilter"]

#: Members sampled for the automatic bucket-width estimate.
_WIDTH_SAMPLE = 256


def _group_by_code(codes: np.ndarray, values: np.ndarray) -> dict[bytes, np.ndarray]:
    """Bucket ``values`` by the rows of an integer code matrix."""
    uniq, inverse = np.unique(codes, axis=0, return_inverse=True)
    order = np.argsort(inverse, kind="stable")
    boundaries = np.searchsorted(inverse[order], np.arange(uniq.shape[0] + 1))
    return {
        uniq[g].tobytes(): values[order[boundaries[g] : boundaries[g + 1]]]
        for g in range(uniq.shape[0])
    }


class LSHFilter(ApproxStrategy):
    """Candidate generation through multi-table random-projection hashing.

    Parameters
    ----------
    index:
        Any :class:`repro.indexes.Index`; only its point storage and
        metric are used (buckets are probed directly, not via the tree).
    n_tables:
        Independent hash tables; the recall knob.  Candidates are the
        union of the query's buckets across tables.
    n_projections:
        Random projections concatenated into one table's code.  More
        projections make buckets more selective (fewer candidates,
        lower recall per table).
    bucket_width:
        Lattice cell width ``w``; ``None`` (default) estimates it from
        the data as ``width_factor`` times the median 1-NN distance of a
        member sample.
    width_factor:
        Multiplier for the automatic width estimate.
    seed:
        Projection/offset seed; same data + same seed = same tables.
    """

    name = "lsh"

    def __init__(
        self,
        index: Index,
        n_tables: int = 8,
        n_projections: int = 8,
        bucket_width: float | None = None,
        width_factor: float = 8.0,
        seed: int = 0,
    ) -> None:
        super().__init__(index)
        self.n_tables = check_positive_int(n_tables, name="n_tables")
        self.n_projections = check_positive_int(n_projections, name="n_projections")
        if bucket_width is not None and not float(bucket_width) > 0.0:
            raise ValueError(f"bucket_width must be positive, got {bucket_width}")
        self.bucket_width = None if bucket_width is None else float(bucket_width)
        self.width_factor = float(width_factor)
        self.seed = seed
        self._width = 1.0
        self._projections: list[tuple[np.ndarray, np.ndarray]] = []
        self._tables: list[dict[bytes, np.ndarray]] = []

    @property
    def width(self) -> float:
        """The bucket width in use (estimated or explicit)."""
        return self._width

    # ------------------------------------------------------------------
    # Structure maintenance
    # ------------------------------------------------------------------
    def _estimate_width(self, points: np.ndarray, active: np.ndarray) -> float:
        if points.shape[0] < 2:
            return 1.0
        rng = np.random.default_rng([self.seed, points.shape[0]])
        rows = rng.choice(
            points.shape[0],
            size=min(_WIDTH_SAMPLE, points.shape[0]),
            replace=False,
        )
        nn = chunked_knn_distances(
            points[rows],
            points,
            1,
            self.index.metric,
            point_ids=active,
            exclude_ids=active[rows],
        )
        positive = nn[np.isfinite(nn) & (nn > 0.0)]
        if positive.shape[0] == 0:
            # Degenerate data (all duplicates): any positive width works —
            # every duplicate shares every bucket.
            return 1.0
        return self.width_factor * float(np.median(positive))

    def _rebuild(self, active_ids: np.ndarray) -> None:
        points = self.index.points[active_ids]
        self._width = (
            self.bucket_width
            if self.bucket_width is not None
            else self._estimate_width(points, active_ids)
        )
        rng = np.random.default_rng(self.seed)
        dim = self.index.dim
        self._projections = []
        self._tables = []
        for _ in range(self.n_tables):
            basis = rng.normal(size=(dim, self.n_projections))
            offset = rng.uniform(0.0, self._width, size=self.n_projections)
            codes = np.floor((points @ basis + offset) / self._width).astype(
                np.int64
            )
            self._projections.append((basis, offset))
            self._tables.append(_group_by_code(codes, active_ids))

    # ------------------------------------------------------------------
    # Strategy interface
    # ------------------------------------------------------------------
    def decide_batch(
        self, query_points: np.ndarray, exclude: np.ndarray, k: int
    ) -> list[StrategyDecision]:
        self.ensure_current()
        metric = self.index.metric
        m = query_points.shape[0]
        per_query: list[list[np.ndarray]] = [[] for _ in range(m)]
        query_rows = np.arange(m, dtype=np.intp)
        for (basis, offset), table in zip(self._projections, self._tables):
            codes = np.floor(
                (query_points @ basis + offset) / self._width
            ).astype(np.int64)
            for key, rows in _group_by_code(codes, query_rows).items():
                bucket = table.get(key)
                if bucket is None:
                    continue
                for row in rows:
                    per_query[row].append(bucket)

        candidate_ids: list[np.ndarray] = []
        scanned: list[int] = []
        for row in range(m):
            if per_query[row]:
                multiset = np.concatenate(per_query[row])
                ids = np.unique(multiset)
                if exclude[row] >= 0:
                    ids = ids[ids != exclude[row]]
                scanned.append(int(multiset.shape[0]))
            else:
                ids = np.empty(0, dtype=np.intp)
                scanned.append(0)
            candidate_ids.append(ids)

        # Candidate distances in query blocks: one pairwise kernel against
        # the block's candidate union, then a gather per row.  The union is
        # larger than the block's own pairs, but the dgemm-speed kernel
        # beats per-pair evaluation by a wide margin.
        decisions: list[StrategyDecision] = []
        block = max(16, adaptive_chunk_size(max(1, self.index.size)))
        for start in range(0, m, block):
            stop = min(m, start + block)
            union = np.unique(
                np.concatenate(candidate_ids[start:stop])
                if any(ids.shape[0] for ids in candidate_ids[start:stop])
                else np.empty(0, dtype=np.intp)
            )
            if union.shape[0]:
                dists = metric.pairwise(
                    query_points[start:stop], self.index.points[union]
                )
            for row in range(start, stop):
                ids = candidate_ids[row]
                if ids.shape[0]:
                    cols = np.searchsorted(union, ids)
                    row_dists = dists[row - start, cols]
                else:
                    row_dists = np.empty(0, dtype=np.float64)
                decisions.append(
                    StrategyDecision(
                        pending_ids=ids,
                        pending_dists=row_dists,
                        num_scanned=scanned[row],
                    )
                )
        return decisions
