"""HRNN-style navigable proximity graph for approximate RkNN.

High-dimensional member sets defeat every tree-backed engine in this
library: past d ~ 32 the dimensional test and the MBR bounds stop pruning
and `rdt+` degrades to a brute-force scan per query.  The hybrid
reverse-nearest-neighbor graph of HRNN (PAPERS.md, arxiv 2606.03225)
sidesteps spatial pruning entirely: every member keeps *forward* edges to
its ``M`` nearest neighbors plus the induced *reverse* adjacency (who
points at me), and an HNSW-flavored layer hierarchy (Malkov & Yashunin)
makes the structure navigable from a single entry point.

Three observations make this a good fit for the library's strategy
protocol (:mod:`repro.approx.base`):

* **The forward edge lists double as an exact d_k cache.**  The base
  layer is built by a full vectorized kNN pass (chunked dgemm-speed
  ``pairwise`` blocks), so each member's sorted neighbor distances are
  its exact self-excluded kNN distances for every ``k <= graph_m``.
  Member queries emit them as :attr:`StrategyDecision.query_kth`, which
  the engine reuses to skip those members' verification — the RkNN
  self-join needs **zero** extra ``knn_distances`` calls.
* **Reverse adjacency is the RkNN candidate generator.**  A true reverse
  neighbor ``x`` of member ``q`` has ``q`` among its ``k`` nearest, so
  for ``k <= graph_m`` the edge ``x -> q`` exists and ``x`` appears in
  ``q``'s reverse list: the reverse list *is* the shortlist, and (ties
  at the k-th distance aside) misses nothing.
* **Raw points navigate.**  Queries that are not members greedily
  descend the layer hierarchy to the base layer, run an ``ef``-wide
  best-first beam search for a neighborhood, and expand that
  neighborhood's reverse edges into the shortlist.  ``ef`` (and
  ``graph_m``) trade search work against recall.

Every shortlisted candidate is handed to the engine as *pending* and
decided by the exact ``d(q, x) <= d_k(x)`` test (the shared deduplicated
verification pass), so — like the LSH filter — the strategy has
**precision exactly 1** and pays only in recall.

Determinism: level assignment draws from ``default_rng([seed, n])`` and
everything else is derived arithmetic, so same data + same seed = same
graph (the save/load contract: `Service.save` serializes the base layer,
and payloads that cannot be adopted fall back to this deterministic
rebuild).
"""

from __future__ import annotations

import numpy as np

from repro.approx.base import ApproxStrategy, StrategyDecision
from repro.indexes.base import Index
from repro.indexes.bulk_knn import adaptive_chunk_size
from repro.utils.validation import check_positive_int

__all__ = ["GraphRkNNStrategy"]

#: Hard cap on the layer-hierarchy height (a degree-16 graph only reaches
#: it past ~16^8 points).
_MAX_LEVEL = 8

#: Greedy-descent hop cap per layer.  Each accepted hop strictly
#: decreases the current distance, so termination is guaranteed anyway;
#: the cap just bounds the pathological-tie case.
_MAX_HOPS = 64

#: Frontier width: beam members expanded per vectorized search round.
_FRONTIER = 8

#: Query rows per vectorized search block (bounds the (B, n) visited mask).
_QUERY_BLOCK = 128


def _multi_slice(values: np.ndarray, starts: np.ndarray, ends: np.ndarray):
    """Concatenate ``values[starts[i]:ends[i]]`` slices without a loop."""
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=values.dtype), counts
    base = np.repeat(np.cumsum(counts) - counts, counts)
    idx = np.repeat(starts, counts) + (np.arange(total) - base)
    return values[idx], counts


class GraphRkNNStrategy(ApproxStrategy):
    """Candidate generation through a layered forward/reverse kNN graph.

    Parameters
    ----------
    index:
        Any :class:`repro.indexes.Index`; only its point storage and
        metric are used (the graph is its own navigation structure).
    graph_m:
        Forward-edge degree ``M``: every member links to its ``graph_m``
        nearest neighbors on the base layer.  Member queries with
        ``k <= graph_m`` are answered from the reverse adjacency with
        recall 1 up to k-th-distance ties; larger ``k`` falls back to
        beam search.  Also sets the layer-assignment decay (``1/M``).
    ef:
        Beam width of the base-layer best-first search used by raw-point
        queries (and member queries with ``k > graph_m``); the recall
        knob for navigated queries.  Widened to ``k`` when ``k > ef``.
    seed:
        Level-assignment seed; same data + same seed = same graph.
    """

    name = "graph"

    def __init__(
        self,
        index: Index,
        graph_m: int = 16,
        ef: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(index)
        self.graph_m = check_positive_int(graph_m, name="graph_m")
        self.ef = check_positive_int(ef, name="ef")
        self.seed = seed
        self._active = np.empty(0, dtype=np.intp)
        self._points = np.empty((0, index.dim), dtype=np.float64)
        self._levels = np.empty(0, dtype=np.intp)
        #: base-layer forward edges, ``(n, deg)`` local ids, -1 padded
        self._nbr = np.empty((0, 1), dtype=np.intp)
        #: matching sorted neighbor distances — the exact d_k cache
        self._nbr_dist = np.empty((0, 1), dtype=np.float64)
        #: upper layers, bottom-up: ``(members, nbrs)`` in local ids
        self._layers: list[tuple[np.ndarray, np.ndarray]] = []
        self._rev_indptr = np.zeros(1, dtype=np.intp)
        self._rev_indices = np.empty(0, dtype=np.intp)
        self._entry = -1

    # ------------------------------------------------------------------
    # Structure maintenance
    # ------------------------------------------------------------------
    @property
    def degree(self) -> int:
        """The realized base-layer degree ``min(graph_m, n - 1)``."""
        n = self._active.shape[0]
        return min(self.graph_m, max(n - 1, 0))

    def _knn_among(self, members: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Exact kNN edges among ``members`` (local ids), chunked pairwise.

        Returns ``(neighbors, dists)`` of shape ``(m, deg)`` with
        neighbors as *local* ids into the full active set, sorted by
        distance; one -1/inf pad column when the subset is a singleton.
        """
        metric = self.index.metric
        pts = self._points[members]
        m = members.shape[0]
        deg = min(self.graph_m, m - 1)
        if deg <= 0:
            return (
                np.full((m, 1), -1, dtype=np.intp),
                np.full((m, 1), np.inf, dtype=np.float64),
            )
        nbrs = np.empty((m, deg), dtype=np.intp)
        dists = np.empty((m, deg), dtype=np.float64)
        chunk = adaptive_chunk_size(m)
        for start in range(0, m, chunk):
            stop = min(m, start + chunk)
            block = metric.pairwise(pts[start:stop], pts)
            block[np.arange(stop - start), np.arange(start, stop)] = np.inf
            part = np.argpartition(block, deg - 1, axis=1)[:, :deg]
            part_d = np.take_along_axis(block, part, axis=1)
            order = np.argsort(part_d, axis=1, kind="stable")
            nbrs[start:stop] = np.take_along_axis(part, order, axis=1)
            dists[start:stop] = np.take_along_axis(part_d, order, axis=1)
        return members[nbrs], dists

    def _assign_levels(self, n: int) -> np.ndarray:
        """Geometric layer assignment: ``P(level >= l) = (1/graph_m)^l``."""
        if n == 0:
            return np.empty(0, dtype=np.intp)
        rng = np.random.default_rng([self.seed, n])
        decay = 1.0 / max(2, self.graph_m)
        u = np.maximum(rng.random(n), 1e-300)
        levels = np.floor(np.log(u) / np.log(decay)).astype(np.intp)
        return np.minimum(levels, _MAX_LEVEL)

    def _rebuild(self, active_ids: np.ndarray) -> None:
        self._active = np.asarray(active_ids, dtype=np.intp)
        self._points = self.index.points[self._active]
        n = self._active.shape[0]
        self._nbr, self._nbr_dist = self._knn_among(
            np.arange(n, dtype=np.intp)
        )
        self._levels = self._assign_levels(n)
        self._finalize()

    def _finalize(self) -> None:
        """Derive layers, reverse adjacency, and the entry point.

        Everything here is deterministic arithmetic over the stored base
        layer + levels, shared by :meth:`_rebuild` and
        :meth:`adopt_graph` (the persistence fast path).
        """
        n = self._active.shape[0]
        self._layers = []
        top = int(self._levels.max()) if n else 0
        for level in range(1, top + 1):
            members = np.flatnonzero(self._levels >= level)
            if members.shape[0] <= 1:
                break
            nbrs, _ = self._knn_among(members)
            self._layers.append((members, nbrs))
        self._entry = int(np.argmax(self._levels)) if n else -1
        # Reverse adjacency of the base layer, CSR over local ids.
        edges = self._nbr.ravel()
        valid = edges >= 0
        src = np.repeat(np.arange(n, dtype=np.intp), self._nbr.shape[1])[valid]
        dst = edges[valid]
        order = np.argsort(dst, kind="stable")
        self._rev_indices = src[order]
        counts = np.bincount(dst, minlength=n)
        self._rev_indptr = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(counts, out=self._rev_indptr[1:])

    # ------------------------------------------------------------------
    # Persistence (Service.save / Service.load)
    # ------------------------------------------------------------------
    def serialized_graph(self) -> dict[str, np.ndarray]:
        """The npz arrays that round-trip the expensive build state.

        Only the base layer (+ levels) is stored: upper layers and the
        reverse CSR are cheap deterministic functions of it, recomputed
        by :meth:`adopt_graph`.
        """
        self.ensure_current()
        return {
            "graph_node_ids": self._active,
            "graph_levels": self._levels,
            "graph_neighbors": self._nbr,
            "graph_neighbor_dists": self._nbr_dist,
        }

    def adopt_graph(self, node_ids, levels, neighbors, neighbor_dists) -> bool:
        """Adopt a serialized base layer instead of rebuilding.

        Returns ``False`` — leaving the normal lazy rebuild in place —
        when the payload does not match the current active set or the
        configured degree (the deterministic-rebuild fallback for stale
        or foreign payloads).
        """
        node_ids = np.asarray(node_ids, dtype=np.intp)
        active = self.index.active_ids()
        if not np.array_equal(node_ids, active):
            return False
        n = active.shape[0]
        neighbors = np.asarray(neighbors, dtype=np.intp)
        neighbor_dists = np.asarray(neighbor_dists, dtype=np.float64)
        levels = np.asarray(levels, dtype=np.intp)
        expected_deg = max(min(self.graph_m, n - 1), 1) if n else 1
        if (
            neighbors.shape != (n, expected_deg)
            or neighbor_dists.shape != (n, expected_deg)
            or levels.shape != (n,)
        ):
            return False
        self._active = active
        self._points = self.index.points[active]
        self._nbr = neighbors
        self._nbr_dist = neighbor_dists
        self._levels = levels
        self._finalize()
        self._built_version = self.index.version
        return True

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _greedy(self, Q, cur, cur_dist, members, nbrs):
        """One layer of vectorized greedy descent (hop while improving)."""
        metric = self.index.metric
        pos = np.searchsorted(members, cur)
        rows = np.arange(Q.shape[0], dtype=np.intp)
        for _ in range(_MAX_HOPS):
            if rows.shape[0] == 0:
                break
            cand = nbrs[pos[rows]]
            valid = cand >= 0
            safe = np.where(valid, cand, 0)
            d = metric.to_point_sets(Q[rows], self._points[safe])
            d = np.where(valid, d, np.inf)
            j = np.argmin(d, axis=1)
            best = d[np.arange(rows.shape[0]), j]
            improved = best < cur_dist[rows]
            moved = rows[improved]
            hit = np.flatnonzero(improved)
            new_nodes = cand[hit, j[hit]]
            cur[moved] = new_nodes
            cur_dist[moved] = best[hit]
            pos[moved] = np.searchsorted(members, new_nodes)
            rows = moved
        return cur, cur_dist

    def _descend(self, Q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Greedy descent from the entry point to base-layer seeds."""
        metric = self.index.metric
        cur = np.full(Q.shape[0], self._entry, dtype=np.intp)
        cur_dist = np.asarray(
            metric.to_point(Q, self._points[self._entry]), dtype=np.float64
        )
        for members, nbrs in reversed(self._layers):
            cur, cur_dist = self._greedy(Q, cur, cur_dist, members, nbrs)
        return cur, cur_dist

    def _beam(self, Q, seeds, seed_dists, ef):
        """Best-first beam search on the base layer.

        Returns ``(beam_ids, scanned)``: per row the up-to-``ef``
        closest nodes discovered (local ids, -1 padded, sorted by
        distance) and the count of distance evaluations spent.
        """
        metric = self.index.metric
        B = Q.shape[0]
        n = self._active.shape[0]
        ef = min(ef, n)
        nbrs = self._nbr
        deg = nbrs.shape[1]
        visited = np.zeros((B, n), dtype=bool)
        rows0 = np.arange(B, dtype=np.intp)
        beam_i = np.full((B, ef), -1, dtype=np.intp)
        beam_d = np.full((B, ef), np.inf, dtype=np.float64)
        beam_x = np.zeros((B, ef), dtype=bool)
        beam_i[:, 0] = seeds
        beam_d[:, 0] = seed_dists
        visited[rows0, seeds] = True
        scanned = np.ones(B, dtype=np.intp)
        alive = np.ones(B, dtype=bool)
        for _ in range(n):
            rowsel = np.flatnonzero(alive)
            if rowsel.shape[0] == 0:
                break
            sub_i = beam_i[rowsel]
            unexp = ~beam_x[rowsel] & (sub_i >= 0)
            done = ~unexp.any(axis=1)
            if done.any():
                alive[rowsel[done]] = False
                rowsel = rowsel[~done]
                if rowsel.shape[0] == 0:
                    continue
                sub_i = sub_i[~done]
                unexp = unexp[~done]
            # The beam is kept distance-sorted, so the first _FRONTIER
            # unexpanded slots are the best unexpanded nodes.
            take = unexp & (np.cumsum(unexp, axis=1) <= _FRONTIER)
            trows, tcols = np.nonzero(take)
            beam_x[rowsel[trows], tcols] = True
            crow = np.repeat(rowsel[trows], deg)
            cnode = nbrs[sub_i[trows, tcols]].ravel()
            ok = cnode >= 0
            crow, cnode = crow[ok], cnode[ok]
            fresh = ~visited[crow, cnode]
            crow, cnode = crow[fresh], cnode[fresh]
            if crow.shape[0] == 0:
                continue
            # Two frontier nodes of one row can share a neighbor: dedupe
            # the (row, node) pairs before marking them visited.
            key = crow * n + cnode
            _, first = np.unique(key, return_index=True)
            crow, cnode = crow[first], cnode[first]
            visited[crow, cnode] = True
            np.add.at(scanned, crow, 1)
            cd = np.asarray(
                metric.paired(Q[crow], self._points[cnode]), dtype=np.float64
            )
            # Merge the new candidates into each touched row's beam: pad
            # to a rectangle, concatenate, keep the ef best.
            order = np.argsort(crow, kind="stable")
            crow, cnode, cd = crow[order], cnode[order], cd[order]
            urows, starts = np.unique(crow, return_index=True)
            counts = np.diff(np.append(starts, crow.shape[0]))
            width = int(counts.max())
            R = urows.shape[0]
            pad_d = np.full((R, width), np.inf, dtype=np.float64)
            pad_i = np.full((R, width), -1, dtype=np.intp)
            cols = np.arange(crow.shape[0]) - np.repeat(starts, counts)
            rws = np.repeat(np.arange(R), counts)
            pad_d[rws, cols] = cd
            pad_i[rws, cols] = cnode
            all_d = np.concatenate([beam_d[urows], pad_d], axis=1)
            all_i = np.concatenate([beam_i[urows], pad_i], axis=1)
            all_x = np.concatenate(
                [beam_x[urows], np.zeros((R, width), dtype=bool)], axis=1
            )
            keep = np.argsort(all_d, axis=1, kind="stable")[:, :ef]
            beam_d[urows] = np.take_along_axis(all_d, keep, axis=1)
            beam_i[urows] = np.take_along_axis(all_i, keep, axis=1)
            beam_x[urows] = np.take_along_axis(all_x, keep, axis=1)
        return beam_i, scanned

    def _reverse_of(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Flattened reverse-adjacency lists of ``nodes`` (+ counts)."""
        starts = self._rev_indptr[nodes]
        ends = self._rev_indptr[nodes + 1]
        return _multi_slice(self._rev_indices, starts, ends)

    # ------------------------------------------------------------------
    # Strategy interface
    # ------------------------------------------------------------------
    def decide_batch(
        self, query_points: np.ndarray, exclude: np.ndarray, k: int
    ) -> list[StrategyDecision]:
        self.ensure_current()
        k = int(k)
        metric = self.index.metric
        active = self._active
        n = active.shape[0]
        m = query_points.shape[0]
        decisions: list[StrategyDecision | None] = [None] * m
        if n == 0:
            return [StrategyDecision() for _ in range(m)]
        deg = self.degree
        Q = np.asarray(query_points)

        # Member rows map to their local graph node; their exact d_k is
        # free from the sorted edge distances whenever k <= degree (and
        # trivially inf past the eligible-set size).
        local = np.full(m, -1, dtype=np.intp)
        mrows = np.flatnonzero(exclude >= 0)
        if mrows.shape[0]:
            pos = np.searchsorted(active, exclude[mrows])
            pos_in = np.minimum(pos, n - 1)
            found = active[pos_in] == exclude[mrows]
            local[mrows[found]] = pos_in[found]
        kth = np.full(m, np.nan)
        has_node = local >= 0
        if k > n - 1:
            kth[has_node] = np.inf
        elif k <= deg:
            kth[has_node] = self._nbr_dist[local[has_node], k - 1]

        # Fast path: member queries with a known d_k.  Every true reverse
        # neighbor x has q among its k <= graph_m nearest, so the edge
        # x -> q exists and the reverse list is a complete shortlist
        # (up to argpartition ties at the k-th distance).
        fast = has_node & ~np.isnan(kth)
        frows = np.flatnonzero(fast)
        if frows.shape[0]:
            flat, counts = self._reverse_of(local[frows])
            qrow = np.repeat(frows, counts)
            if flat.shape[0]:
                dists = np.asarray(
                    metric.paired(Q[qrow], self._points[flat]),
                    dtype=np.float64,
                )
            else:
                dists = np.empty(0, dtype=np.float64)
            ends = np.cumsum(counts)
            for i, r in enumerate(frows):
                lo = ends[i - 1] if i else 0
                decisions[r] = StrategyDecision(
                    pending_ids=active[flat[lo : ends[i]]],
                    pending_dists=dists[lo : ends[i]],
                    num_scanned=int(counts[i]),
                    query_kth=float(kth[r]),
                )

        # Navigated path: raw query points, and member queries whose k
        # exceeds the edge degree.  Greedy-descend the layer hierarchy,
        # beam-search an ef-neighborhood, then expand its reverse edges.
        srows = np.flatnonzero(~fast)
        ef = min(max(self.ef, k), n)
        for start in range(0, srows.shape[0], _QUERY_BLOCK):
            block = srows[start : start + _QUERY_BLOCK]
            Qb = Q[block]
            seeds, seed_dists = self._descend(Qb)
            own = local[block]
            seeded = own >= 0
            if seeded.any():
                # A member query's own node is the perfect seed
                # (distance 0 to itself).
                rows = np.flatnonzero(seeded)
                seeds[rows] = own[rows]
                seed_dists[rows] = np.asarray(
                    metric.paired(Qb[rows], self._points[own[rows]]),
                    dtype=np.float64,
                )
            beam_i, scanned = self._beam(Qb, seeds, seed_dists, ef)
            cand_per_row: list[np.ndarray] = []
            for i in range(block.shape[0]):
                ids = beam_i[i]
                ids = ids[ids >= 0]
                rev, _ = self._reverse_of(ids)
                cand = np.unique(np.concatenate([ids, rev]))
                if own[i] >= 0:
                    cand = cand[cand != own[i]]
                cand_per_row.append(cand)
            counts = np.asarray([c.shape[0] for c in cand_per_row])
            flat = (
                np.concatenate(cand_per_row)
                if counts.sum()
                else np.empty(0, dtype=np.intp)
            )
            qrow = np.repeat(block, counts)
            if flat.shape[0]:
                dists = np.asarray(
                    metric.paired(Q[qrow], self._points[flat]),
                    dtype=np.float64,
                )
            else:
                dists = np.empty(0, dtype=np.float64)
            ends = np.cumsum(counts)
            for i, r in enumerate(block):
                lo = ends[i - 1] if i else 0
                decisions[r] = StrategyDecision(
                    pending_ids=active[cand_per_row[i]],
                    pending_dists=dists[lo : ends[i]],
                    num_scanned=int(scanned[i] + counts[i]),
                    query_kth=float(kth[r]),
                )
        return decisions
