"""The approximate RkNN engine: one API over interchangeable strategies.

:class:`ApproxRkNN` mirrors the exact engine's query surface —
``query`` / ``query_batch`` / ``query_all`` with the ``queries`` /
``query_indices`` calling convention of :meth:`repro.core.RDT.query_batch`
— and returns the same :class:`~repro.core.result.RkNNResult` /
:class:`~repro.core.result.QueryStats` containers, so evaluation harness,
mining code, and tests drive exact and approximate engines through one
shape.  Only the guarantee changes: correctness is *statistical* (recall
and precision measured against the brute-force oracle) instead of
bit-exact, with the failure mode determined by the strategy
(:mod:`repro.approx.base`).

Execution is two-phase, like the exact batch engine:

1. the strategy's cheap phase splits each query's member set into
   accepted / pending / ignored (:class:`~repro.approx.base.StrategyDecision`);
2. the engine verifies all pending candidates of the whole batch with
   **one** deduplicated :meth:`~repro.indexes.Index.knn_distances` call —
   the same shared-refinement trick as :meth:`RDT.query_batch` — and
   decides them with the tolerant boundary comparison
   (:func:`repro.utils.tolerance.dist_le_many`).

``QueryStats`` are filled so cost reporting composes with the exact
engines: ``num_lazy_accepts`` counts unverified accepts,
``num_verified``/``num_verified_hits`` the exact fallbacks, and the
shared verification cost is attributed per query in proportion to its
verified candidates.  ``stats.terminated_by`` is ``"approx-<strategy>"``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.approx.base import ApproxStrategy
from repro.core.protocol import EngineBase
from repro.core.result import QueryStats, RkNNResult
from repro.indexes.base import Index
from repro.utils.tolerance import dist_le_many
from repro.utils.validation import (
    as_query_point,
    check_k,
    resolve_batch_queries,
)

__all__ = ["ApproxRkNN"]


class ApproxRkNN(EngineBase):
    """Approximate reverse-kNN queries behind the exact engines' API.

    Parameters
    ----------
    index:
        Any :class:`repro.indexes.Index` over the member set.
    strategy:
        A registry name (``"lsh"``, ``"sampled"``, or ``"graph"``, see
        :data:`repro.approx.APPROX_STRATEGIES`) or a ready
        :class:`~repro.approx.base.ApproxStrategy` instance.
    strategy_kwargs:
        Forwarded to the strategy constructor when ``strategy`` is a
        name (e.g. ``sample_size=1024``, ``n_tables=16``, ``ef=64``).
    """

    supports_batch = True

    def __init__(self, index: Index, strategy="sampled", **strategy_kwargs) -> None:
        from repro.approx import build_strategy

        if isinstance(strategy, ApproxStrategy):
            if strategy_kwargs:
                raise ValueError(
                    "strategy_kwargs only apply when `strategy` is a registry "
                    "name; configure the instance directly instead"
                )
            if strategy.index is not index:
                raise ValueError(
                    "the strategy instance is bound to a different index"
                )
            self.strategy = strategy
        else:
            self.strategy = build_strategy(strategy, index, **strategy_kwargs)
        self.index = index
        self.built_at_version = index.version
        # Protocol identity: the registry names the strategies apart, and
        # each strategy determines which side of the answer is guaranteed
        # (DESIGN.md "Approximate search"): the sampled estimator's
        # upper-bound shortlist never loses a member, the LSH filter's
        # verify-everything design never reports a false one.
        self.engine_name = f"approx-{self.strategy.name}"
        self.guarantee = {
            "sampled": "recall",
            "lsh": "precision",
            "graph": "precision",
        }.get(self.strategy.name, "heuristic")

    # ------------------------------------------------------------------
    # Public API (RDT parity)
    # ------------------------------------------------------------------
    def query(
        self, query=None, *, query_index: int | None = None, k: int
    ) -> RkNNResult:
        """Answer one approximate reverse-kNN query.

        Exactly one of ``query`` (a raw point) or ``query_index`` (a
        member id, excluded from its own answer) must be given — the
        :meth:`repro.core.RDT.query` convention.
        """
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        if query_index is not None:
            results = self.query_batch(query_indices=[query_index], k=k)
        else:
            # The shared single-point validation (scalars, wrong
            # dimension, non-finite entries fail exactly like the exact
            # engines) before the batch promotion.
            point = as_query_point(
                query, dim=self.index.dim, dtype=self.index.points.dtype
            )
            results = self.query_batch(point[None, :], k=k)
        return results[0]

    def query_batch(
        self, queries=None, *, query_indices=None, k: int
    ) -> list[RkNNResult]:
        """Answer many approximate queries in one two-phase pass.

        Accepts exactly one of ``queries`` (``(m, dim)`` raw points) or
        ``query_indices`` (member ids); returns one
        :class:`~repro.core.result.RkNNResult` per query in input order —
        shape- and semantics-compatible with :meth:`RDT.query_batch`.
        """
        k = check_k(k)
        query_points, exclude = resolve_batch_queries(
            self.index, queries, query_indices
        )
        m = query_points.shape[0]
        if m == 0:
            return []
        metric = self.index.metric

        started = time.perf_counter()
        calls_before = metric.num_calls
        decisions = self.strategy.decide_batch(query_points, exclude, k)
        filter_calls = metric.num_calls - calls_before
        filter_seconds = time.perf_counter() - started

        stats_list = [QueryStats() for _ in range(m)]
        pending_counts = [int(d.pending_ids.shape[0]) for d in decisions]
        total_pending = sum(pending_counts)

        hits_list: list[np.ndarray] = [
            np.zeros(count, dtype=bool) for count in pending_counts
        ]
        shared_seconds = 0.0
        shared_calls = 0
        if total_pending:
            pending_ids = np.concatenate([d.pending_ids for d in decisions])
            pending_dists = np.concatenate([d.pending_dists for d in decisions])
            started = time.perf_counter()
            calls_before = metric.num_calls
            # Candidates are member points verified against S \ {candidate}:
            # their k-th NN distance is query-independent, so verify each
            # distinct id once and scatter the answer back (the exact batch
            # engine's deduplicated-refinement trick).  Member queries whose
            # strategy scan already yielded their own exact kNN distance
            # (StrategyDecision.query_kth) skip even that single lookup.
            unique_ids, inverse = np.unique(pending_ids, return_inverse=True)
            kth_unique = self._known_kth(unique_ids, exclude, decisions)
            missing = np.flatnonzero(np.isnan(kth_unique))
            if missing.shape[0]:
                kth_unique[missing] = self.index.knn_distances(
                    self.index.points[unique_ids[missing]],
                    k,
                    exclude_indices=unique_ids[missing],
                )
            shared_calls = metric.num_calls - calls_before
            shared_seconds = time.perf_counter() - started
            hits = dist_le_many(pending_dists, kth_unique[inverse])
            offset = 0
            for i, count in enumerate(pending_counts):
                hits_list[i] = hits[offset : offset + count]
                offset += count

        results: list[RkNNResult] = []
        for row, (decision, hits, stats) in enumerate(
            zip(decisions, hits_list, stats_list)
        ):
            accepted = decision.accepted_ids
            verified = decision.pending_ids[hits]
            ids = np.sort(np.concatenate([accepted, verified]))
            if exclude[row] >= 0:
                # Contract guard independent of the strategy: a member
                # query is never its own reverse neighbor.
                ids = ids[ids != exclude[row]]
            stats.num_retrieved = decision.num_scanned
            stats.num_candidates = int(
                accepted.shape[0] + decision.pending_ids.shape[0]
            )
            stats.num_lazy_accepts = int(accepted.shape[0])
            stats.num_verified = int(decision.pending_ids.shape[0])
            stats.num_verified_hits = int(np.count_nonzero(hits))
            stats.terminated_by = f"approx-{self.strategy.name}"
            stats.filter_seconds = filter_seconds / m
            stats.num_distance_calls = int(round(filter_calls / m))
            if total_pending:
                fraction = stats.num_verified / total_pending
                stats.refine_seconds = shared_seconds * fraction
                stats.num_distance_calls += int(round(shared_calls * fraction))
            results.append(
                RkNNResult(
                    ids=ids.astype(np.intp),
                    k=k,
                    t=float("nan"),
                    lazy_accepted_ids=np.sort(accepted).astype(np.intp),
                    stats=stats,
                )
            )
        return results

    @staticmethod
    def _known_kth(
        unique_ids: np.ndarray, exclude: np.ndarray, decisions
    ) -> np.ndarray:
        """kNN distances already known from the batch's own strategy scans.

        Returns one value per unique pending id: the ``query_kth``
        by-product where the id is a member query of this batch whose
        strategy decision carries one, ``nan`` (= must be verified)
        otherwise.
        """
        out = np.full(unique_ids.shape[0], np.nan)
        member_rows = np.flatnonzero(exclude >= 0)
        if member_rows.shape[0] == 0:
            return out
        kth = np.asarray([decisions[r].query_kth for r in member_rows])
        have = ~np.isnan(kth)
        if not have.any():
            return out
        known_ids = exclude[member_rows[have]]
        known_kth = kth[have]
        order = np.argsort(known_ids, kind="stable")
        known_ids = known_ids[order]
        known_kth = known_kth[order]
        pos = np.searchsorted(known_ids, unique_ids)
        pos_in = np.minimum(pos, known_ids.shape[0] - 1)
        found = known_ids[pos_in] == unique_ids
        out[found] = known_kth[pos_in[found]]
        return out

    def query_all(self, *, k: int) -> dict[int, RkNNResult]:
        """The approximate RkNN self-join: one query per active point."""
        ids = self.index.active_ids()
        results = self.query_batch(query_indices=ids, k=k)
        return {int(pid): result for pid, result in zip(ids, results)}

    def __repr__(self) -> str:
        return (
            f"ApproxRkNN(strategy={self.strategy.name!r}, index={self.index!r})"
        )
