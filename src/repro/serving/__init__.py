"""Concurrent serving on top of :class:`repro.Service`.

Three pieces, composable but independent:

* :class:`QueryCoalescer` — a micro-batching front: concurrently
  arriving ``query()`` calls are collected for a small window and
  answered through one :meth:`~repro.Service.query_batch` dispatch
  against a single pinned snapshot.
* :class:`ResultCache` — an RkNN answer cache keyed by
  ``(epoch, engine, QuerySpec, query)``; epochs make invalidation exact
  (a mutation publishes a new epoch, and older entries are purged).
* :func:`run_open_loop` — a threaded open-loop load generator that
  drives a send callable at a fixed arrival rate and reports achieved
  qps and latency percentiles (the producer of ``BENCH_serving.json``).
"""

from repro.serving.cache import ResultCache, query_cache_key
from repro.serving.coalescer import QueryCoalescer
from repro.serving.loadgen import run_open_loop

__all__ = [
    "QueryCoalescer",
    "ResultCache",
    "query_cache_key",
    "run_open_loop",
]
