"""Threaded open-loop load generator for the serving layer.

Closed-loop drivers (each worker fires its next query the moment the
previous one returns) hide overload: when the server slows down, the
offered load politely slows down with it and the measured latency stays
flat.  The serving benchmark instead drives **open-loop**: arrival ``i``
is scheduled at ``start + i / offered_qps`` regardless of how the
service is coping, so queueing delay shows up in the latency tail the
way it would for independent external clients.  Workers pull arrival
indices from a shared counter, sleep until their arrival's deadline,
then issue the query and record its latency; when the service falls
behind, deadlines pass before workers free up and the measured
``achieved_qps`` drops below ``offered_qps`` — that gap *is* the
saturation signal the benchmark records.

The generator knows nothing about what ``send`` does — the serving
benchmark passes either a naive per-query ``Service.query`` closure or a
:class:`~repro.serving.QueryCoalescer` one, and an optional ``writer``
callable is invoked at its own fixed rate from a dedicated thread to
model insert/remove churn alongside the reads.
"""

from __future__ import annotations

import threading
import time

import numpy as np

__all__ = ["run_open_loop"]


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return sorted_values[low] * (1.0 - fraction) + sorted_values[high] * fraction


def run_open_loop(
    send,
    queries,
    *,
    offered_qps: float,
    duration_s: float,
    n_workers: int = 8,
    writer=None,
    write_rate: float = 0.0,
) -> dict:
    """Drive ``send`` at a fixed arrival rate; return a latency report.

    Parameters
    ----------
    send:
        ``send(query_row) -> result``; exceptions are counted as errors,
        not raised.
    queries:
        ``(m, dim)`` pool of query points, cycled through in arrival
        order.
    offered_qps:
        Target arrival rate (queries per second).
    duration_s:
        How long arrivals keep being scheduled.
    n_workers:
        Threads issuing the queries.  If all are busy when an arrival's
        deadline passes, the arrival waits — that queueing time is
        charged to its latency, as an open-loop client would experience.
    writer:
        Optional ``writer() -> None`` mutation callable, invoked from
        one dedicated thread at ``write_rate`` calls/second for the run
        duration (its failures are counted, not raised).
    write_rate:
        Mutations per second for ``writer`` (0 disables).

    Returns a JSON-ready dict: offered/achieved qps, completed/error
    counts, latency percentiles in milliseconds, and write counts.
    """
    if offered_qps <= 0:
        raise ValueError(f"offered_qps must be > 0, got {offered_qps}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    queries = np.asarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[0] == 0:
        raise ValueError("queries must be a non-empty (m, dim) array")
    n_arrivals = max(1, int(offered_qps * duration_s))
    counter_lock = threading.Lock()
    next_arrival = [0]
    latencies: list[float] = []
    latency_lock = threading.Lock()
    errors = [0]
    writes = [0]
    write_errors = [0]
    # Small lead so every worker is running before the first deadline.
    start = time.perf_counter() + 0.02

    def worker() -> None:
        local: list[float] = []
        while True:
            with counter_lock:
                i = next_arrival[0]
                if i >= n_arrivals:
                    break
                next_arrival[0] = i + 1
            deadline = start + i / offered_qps
            delay = deadline - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                send(queries[i % queries.shape[0]])
            except Exception:
                with latency_lock:
                    errors[0] += 1
            else:
                # Response time from the *scheduled* arrival, so time an
                # arrival spent waiting for a free worker is charged to
                # it (the open-loop client's experience of overload).
                local.append(time.perf_counter() - deadline)
        with latency_lock:
            latencies.extend(local)

    def churn() -> None:
        i = 0
        interval = 1.0 / write_rate
        while True:
            deadline = start + i * interval
            if deadline > start + duration_s:
                return
            delay = deadline - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                writer()
            except Exception:
                write_errors[0] += 1
            else:
                writes[0] += 1
            i += 1

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(n_workers)
    ]
    if writer is not None and write_rate > 0:
        threads.append(
            threading.Thread(target=churn, name="loadgen-writer", daemon=True)
        )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    finished = time.perf_counter()
    elapsed = max(finished - start, 1e-9)
    ordered = sorted(latencies)
    completed = len(ordered)
    return {
        "offered_qps": float(offered_qps),
        "achieved_qps": completed / elapsed,
        "duration_s": float(duration_s),
        "elapsed_s": elapsed,
        "n_workers": int(n_workers),
        "arrivals": n_arrivals,
        "completed": completed,
        "errors": errors[0],
        "writes": writes[0],
        "write_errors": write_errors[0],
        "latency_ms": {
            "p50": _percentile(ordered, 0.50) * 1e3,
            "p90": _percentile(ordered, 0.90) * 1e3,
            "p99": _percentile(ordered, 0.99) * 1e3,
            "max": (ordered[-1] * 1e3) if ordered else float("nan"),
        },
    }
