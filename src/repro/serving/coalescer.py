"""Micro-batching query coalescer: many concurrent queries, one engine pass.

Under concurrent load, dispatching every :meth:`repro.Service.query`
individually wastes the vectorization the engines already have — the
batch path answers m queries against one pinned snapshot with shared
candidate generation, and (for the data-snapshot engines) one matrix
kernel instead of m row kernels.  :class:`QueryCoalescer` recovers that
batching transparently: callers still issue single blocking queries from
their own threads, while a dispatcher thread collects everything that
arrived within a small window (``max_wait``, default 2 ms), groups the
requests by resolved :class:`~repro.service.QuerySpec` and query form,
and answers each group via one
:meth:`~repro.Service.query_batch_versioned` call.

Correctness is inherited, not re-proven: a coalesced batch pins exactly
one published ``(epoch, snapshot, engine)`` triple, so every answer in
the group is exact with respect to that epoch — the same contract a solo
``query_versioned`` gives.  If a batch fails as a whole (one member id
in the group was removed between arrival and dispatch, say), the group
falls back to per-request dispatch so only the offending request raises.

An optional :class:`~repro.serving.ResultCache` short-circuits arrivals
whose ``(epoch, engine, spec, query)`` was already answered, and is
filled with every coalesced answer under the epoch that produced it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serving.cache import ResultCache

__all__ = ["QueryCoalescer"]


@dataclass
class _Pending:
    """One in-flight request parked on its own event until answered."""

    spec: object
    query: np.ndarray | None
    query_index: int | None
    done: threading.Event = field(default_factory=threading.Event)
    epoch: int | None = None
    result: object = None
    error: BaseException | None = None


class QueryCoalescer:
    """Collect concurrent ``query()`` calls into single batch dispatches.

    Parameters
    ----------
    service:
        The :class:`repro.Service` to answer through.
    max_wait:
        The collection window in seconds.  The dispatcher sleeps this
        long after the first arrival before draining, trading that much
        added latency for whatever batching the window captures.
        ``0.0`` disables the wait (drain immediately — batches form only
        from genuinely simultaneous arrivals).
    max_batch:
        Drain at most this many requests per dispatch round.
    cache:
        An optional :class:`~repro.serving.ResultCache` consulted at the
        currently published epoch before parking a request, and filled
        with every answer produced.

    Statistics (`dispatched_batches`, `dispatched_queries`,
    `coalesced_queries`) expose how much batching the window achieved;
    ``stats()`` bundles them with the cache counters for reporting.
    """

    def __init__(
        self,
        service,
        *,
        max_wait: float = 0.002,
        max_batch: int = 64,
        cache: ResultCache | None = None,
    ) -> None:
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.service = service
        self.max_wait = float(max_wait)
        self.max_batch = int(max_batch)
        self.cache = cache
        # Compose teardown with the service's: service.close() (or its
        # context manager) drains this coalescer before tearing down any
        # parallel worker pool the dispatches may be routed through.
        register = getattr(service, "register_closeable", None)
        if callable(register):
            register(self)
        self._lock = threading.Lock()
        self._pending: list[_Pending] = []
        self._wake = threading.Event()
        self._closed = False
        self.dispatched_batches = 0
        self.dispatched_queries = 0
        self.coalesced_queries = 0
        self._thread = threading.Thread(
            target=self._run, name="rknn-coalescer", daemon=True
        )
        self._thread.start()

    # -- caller side ---------------------------------------------------

    def query(self, query=None, *, query_index=None, spec=None, **overrides):
        """One blocking query, transparently batched with its neighbors."""
        return self.query_versioned(
            query, query_index=query_index, spec=spec, **overrides
        )[1]

    def query_versioned(
        self, query=None, *, query_index=None, spec=None, **overrides
    ):
        """Like :meth:`query`, returning ``(epoch, result)``."""
        if self._closed:
            raise RuntimeError("cannot query a closed QueryCoalescer")
        if (query is None) == (query_index is None):
            raise ValueError("provide exactly one of `query` or `query_index`")
        spec = self.service.resolve_spec(spec, **overrides)
        if query is not None:
            query = np.asarray(query, dtype=np.float64)
        if self.cache is not None:
            epoch = self.service.epoch
            hit = self.cache.get(
                epoch,
                self.service.engine_name,
                spec,
                query,
                query_index=query_index,
            )
            if hit is not None:
                return epoch, hit
        request = _Pending(spec=spec, query=query, query_index=query_index)
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot query a closed QueryCoalescer")
            self._pending.append(request)
            self._wake.set()
        request.done.wait()
        if request.error is not None:
            raise request.error
        return request.epoch, request.result

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting queries, drain in-flight ones, join the thread."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._wake.set()
        self._thread.join(timeout)

    def __enter__(self) -> "QueryCoalescer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Batching counters (plus cache counters when a cache is set)."""
        out = {
            "dispatched_batches": self.dispatched_batches,
            "dispatched_queries": self.dispatched_queries,
            "coalesced_queries": self.coalesced_queries,
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out

    # -- dispatcher side -----------------------------------------------

    def _run(self) -> None:
        while True:
            self._wake.wait()
            if self.max_wait > 0.0 and not self._closed:
                # Collection window: let concurrent arrivals pile up so
                # the drain below sees a batch, not a single request.
                time.sleep(self.max_wait)
            with self._lock:
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
                if not self._pending and not self._closed:
                    self._wake.clear()
                drained = self._closed and not self._pending
            if batch:
                self._dispatch(batch)
            if drained and not batch:
                return

    def _dispatch(self, batch: list[_Pending]) -> None:
        groups: dict[tuple, list[_Pending]] = {}
        for request in batch:
            form = "member" if request.query_index is not None else "raw"
            groups.setdefault((request.spec, form), []).append(request)
        self.dispatched_batches += len(groups)
        self.dispatched_queries += len(batch)
        self.coalesced_queries += len(batch) - len(groups)
        for (spec, form), requests in groups.items():
            try:
                if form == "member":
                    epoch, results = self.service.query_batch_versioned(
                        query_indices=[r.query_index for r in requests],
                        spec=spec,
                    )
                else:
                    epoch, results = self.service.query_batch_versioned(
                        np.stack([r.query for r in requests]), spec=spec
                    )
            except BaseException:
                # The whole group failed — typically one poisoned request
                # (a member id removed between arrival and dispatch).
                # Re-dispatch individually so only the offender raises.
                self._dispatch_singly(requests)
                continue
            for request, result in zip(requests, results):
                request.epoch = epoch
                request.result = result
                if self.cache is not None:
                    self.cache.put(
                        epoch,
                        self.service.engine_name,
                        spec,
                        result,
                        request.query,
                        query_index=request.query_index,
                    )
                request.done.set()

    def _dispatch_singly(self, requests: list[_Pending]) -> None:
        for request in requests:
            try:
                request.epoch, request.result = self.service.query_versioned(
                    request.query,
                    query_index=request.query_index,
                    spec=request.spec,
                )
            except BaseException as exc:
                request.error = exc
            finally:
                request.done.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryCoalescer(engine={self.service.engine_name!r}, "
            f"max_wait={self.max_wait}, max_batch={self.max_batch}, "
            f"cache={'on' if self.cache is not None else 'off'})"
        )
