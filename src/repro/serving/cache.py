"""Epoch-keyed RkNN result cache.

Cached reverse-kNN answers are invalidated by *data version*, not by
time: an answer computed at epoch ``e`` is exact forever **for that
epoch** and wrong the moment a single insert or removal publishes
``e+1`` (the LSH-RkNN analysis in PAPERS.md motivates exactly this — an
RkNN membership flips when any member's k-distance moves, which no TTL
can anticipate).  The cache therefore keys every entry by the full
``(epoch, engine, QuerySpec, query)`` tuple and never answers across
epochs: a lookup at the current epoch simply misses entries computed at
older ones, and storing a result from a newer epoch purges everything
older in O(size) — churn keeps the cache small instead of stale.

The query part of the key is :func:`query_cache_key`: member queries key
by id, raw-point queries by the exact bytes of their float64 row
(bitwise identity — no tolerance matching, so a hit is always the very
answer that query produced before).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

__all__ = ["ResultCache", "query_cache_key"]


def query_cache_key(query=None, query_index: int | None = None):
    """The hashable query half of a cache key (member id or row bytes)."""
    if (query is None) == (query_index is None):
        raise ValueError("provide exactly one of `query` or `query_index`")
    if query_index is not None:
        return ("member", int(query_index))
    row = np.asarray(query, dtype=np.float64)
    return ("raw", row.tobytes())


class ResultCache:
    """A bounded LRU cache of RkNN results with epoch invalidation.

    Thread-safe.  ``get``/``put`` take the epoch explicitly (the value
    :meth:`repro.Service.query_versioned` returns), the engine's
    registry name, the resolved :class:`repro.QuerySpec` (frozen, hence
    hashable), and the query itself.  Guarantees:

    * a hit is always the exact result previously stored for the same
      ``(epoch, engine, spec, query)`` — a stale epoch can never be
      served because the epoch is part of the key;
    * storing at a newer epoch drops every older-epoch entry, so memory
      tracks the live epoch under churn;
    * a ``put`` for an epoch older than the newest stored one is
      discarded (a late result from a superseded snapshot).
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._newest_epoch: int | None = None
        self.hits = 0
        self.misses = 0
        self.evicted = 0
        self.invalidated = 0

    def _key(self, epoch, engine_name, spec, query, query_index):
        return (
            int(epoch),
            str(engine_name),
            spec,
            query_cache_key(query, query_index),
        )

    def get(self, epoch, engine_name, spec, query=None, *, query_index=None):
        """The cached result for this exact epoch/spec/query, or ``None``."""
        key = self._key(epoch, engine_name, spec, query, query_index)
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def put(
        self, epoch, engine_name, spec, result, query=None, *, query_index=None
    ) -> None:
        """Store one result; newer epochs purge all older entries."""
        epoch = int(epoch)
        key = self._key(epoch, engine_name, spec, query, query_index)
        with self._lock:
            if self._newest_epoch is not None and epoch < self._newest_epoch:
                return
            if self._newest_epoch is None or epoch > self._newest_epoch:
                self._newest_epoch = epoch
                stale = [k for k in self._entries if k[0] != epoch]
                for k in stale:
                    del self._entries[k]
                self.invalidated += len(stale)
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evicted += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Counters for reporting (hits/misses/evicted/invalidated/size)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evicted": self.evicted,
                "invalidated": self.invalidated,
                "size": len(self._entries),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache(size={len(self)}, maxsize={self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
