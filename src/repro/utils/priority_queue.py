"""Priority-queue helpers for best-first index traversals.

Two structures are provided:

:class:`MinPriorityQueue`
    A thin, allocation-friendly wrapper over ``heapq`` with an insertion
    counter for stable tie-breaking (payloads never need to be comparable).

:class:`KSmallestKeeper`
    A bounded max-heap that retains the ``k`` smallest keys seen so far —
    the standard accumulator for k-nearest-neighbor candidates during a
    tree descent.  ``bound`` exposes the current k-th smallest key, which
    tree searches use as their pruning radius.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

__all__ = ["MinPriorityQueue", "KSmallestKeeper"]


class MinPriorityQueue:
    """Min-heap keyed by float priority with stable FIFO tie-breaking."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = 0

    def push(self, priority: float, item: Any) -> None:
        """Insert ``item`` with the given ``priority``."""
        heapq.heappush(self._heap, (priority, self._counter, item))
        self._counter += 1

    def pop(self) -> tuple[float, Any]:
        """Remove and return ``(priority, item)`` with the smallest priority."""
        priority, _, item = heapq.heappop(self._heap)
        return priority, item

    def peek(self) -> tuple[float, Any]:
        """Return (without removing) the smallest ``(priority, item)``."""
        priority, _, item = self._heap[0]
        return priority, item

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class KSmallestKeeper:
    """Retain the ``k`` smallest ``(key, item)`` pairs pushed into it."""

    __slots__ = ("k", "_heap", "_counter")

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        # Max-heap emulated with negated keys.
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = 0

    def push(self, key: float, item: Any) -> bool:
        """Offer a pair; returns True if it was retained."""
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (-key, self._counter, item))
            self._counter += 1
            return True
        if key < -self._heap[0][0]:
            heapq.heapreplace(self._heap, (-key, self._counter, item))
            self._counter += 1
            return True
        return False

    def bound(self) -> float:
        """Current pruning radius: the k-th smallest key, or +inf if not full."""
        if len(self._heap) < self.k:
            return float("inf")
        return -self._heap[0][0]

    def is_full(self) -> bool:
        """True once ``k`` pairs have been retained."""
        return len(self._heap) >= self.k

    def items_sorted(self) -> list[tuple[float, Any]]:
        """Return retained ``(key, item)`` pairs in ascending key order."""
        return sorted(
            ((-neg_key, item) for neg_key, _, item in self._heap),
            key=lambda pair: pair[0],
        )

    def __iter__(self) -> Iterator[tuple[float, Any]]:
        return iter(self.items_sorted())

    def __len__(self) -> int:
        return len(self._heap)
