"""Input validation helpers shared across the library.

Centralizing the checks keeps error messages consistent and the calling code
flat: every public entry point validates its inputs once, up front, and the
internal machinery can then assume well-formed arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_dataset",
    "as_query_point",
    "as_query_rows",
    "check_k",
    "check_scale_parameter",
    "check_positive_int",
    "check_probability",
    "resolve_batch_queries",
]


def _resolve_dtype(arr, dtype) -> np.dtype:
    """Resolve the target float dtype for a coercion helper.

    ``dtype=None`` preserves float32 input (the dtype-policy opt-in) and
    maps everything else — float64, integers, Python lists — to float64.
    Input is never *silently* upcast: float32 arrays stay float32 unless
    the caller explicitly asks for another dtype.
    """
    if dtype is not None:
        return np.dtype(dtype)
    if getattr(arr, "dtype", None) == np.float32:
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def as_dataset(data, *, name: str = "data", dtype=None) -> np.ndarray:
    """Coerce ``data`` to a 2-D float array of shape ``(n, dim)``.

    ``dtype=None`` preserves float32 input and coerces anything else to
    float64; pass an explicit ``dtype`` to pin the storage policy (the
    indexes pass their metric's dtype).  Raises ``ValueError`` for empty
    input, wrong dimensionality, or non-finite entries.
    """
    arr = np.asarray(data, dtype=_resolve_dtype(data, dtype))
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ValueError(f"{name} must contain at least one point")
    if arr.shape[1] == 0:
        raise ValueError(f"{name} must have at least one feature dimension")
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def as_query_point(point, *, dim: int, name: str = "query", dtype=None) -> np.ndarray:
    """Coerce ``point`` to a 1-D float array of length ``dim``.

    ``dtype=None`` preserves float32 input and coerces anything else to
    float64 (see :func:`as_dataset`).
    """
    arr = np.asarray(point, dtype=_resolve_dtype(point, dtype))
    if arr.ndim == 2 and arr.shape[0] == 1:
        arr = arr[0]
    if arr.ndim != 1:
        raise ValueError(f"{name} must be a single point, got shape {arr.shape}")
    if arr.shape[0] != dim:
        raise ValueError(
            f"{name} has dimension {arr.shape[0]}, but the index holds "
            f"{dim}-dimensional points"
        )
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def as_query_rows(points, *, dim: int, name: str = "points", dtype=None) -> np.ndarray:
    """Coerce ``points`` to a 2-D float array of shape ``(m, dim)``.

    A single 1-D point is promoted to one row.  The batched query entry
    points (``Index.knn_distances``, ``RDT.query_batch``) share this check.
    ``dtype=None`` preserves float32 input and coerces anything else to
    float64 (see :func:`as_dataset`).
    """
    arr = np.asarray(points, dtype=_resolve_dtype(points, dtype))
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] != dim:
        raise ValueError(
            f"{name} must have shape (m, {dim}), got {np.asarray(points).shape}"
        )
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def resolve_batch_queries(
    index,
    queries,
    query_indices,
    *,
    queries_name: str = "queries",
    indices_name: str = "query_indices",
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve the library-wide batched-query calling convention.

    Every batch engine (:meth:`repro.core.RDT.query_batch`,
    :meth:`repro.approx.ApproxRkNN.query_batch`) accepts exactly one of
    ``queries`` (an ``(m, dim)`` array of raw points) or ``query_indices``
    (member point ids, each excluded from its own answer).  This helper
    validates that convention against an :class:`repro.indexes.Index` and
    returns ``(query_points, exclude)`` where ``exclude`` holds one member
    id per row (``-1`` for raw points).  An empty batch yields two empty
    arrays; callers short-circuit on ``query_points.shape[0] == 0``.
    """
    if (queries is None) == (query_indices is None):
        raise ValueError(
            f"provide exactly one of `{queries_name}` or `{indices_name}`"
        )
    if query_indices is not None:
        query_indices = np.asarray(query_indices, dtype=np.intp)
        if query_indices.ndim != 1:
            raise ValueError(
                f"{indices_name} must be 1-D, got shape {query_indices.shape}"
            )
        if query_indices.shape[0] == 0:
            return np.empty((0, index.dim), dtype=index.points.dtype), np.empty(
                0, dtype=np.intp
            )
        # Vectorized equivalent of get_point per id: validate the whole
        # batch, then gather the rows in one fancy-index copy.
        total_rows = index.points.shape[0]
        if int(query_indices.min()) < 0 or int(query_indices.max()) >= total_rows:
            raise IndexError(
                f"{indices_name} out of range for index with {total_rows} rows"
            )
        active_mask = np.zeros(total_rows, dtype=bool)
        active_mask[index.active_ids()] = True
        inactive = np.flatnonzero(~active_mask[query_indices])
        if inactive.shape[0]:
            raise KeyError(
                f"point id {int(query_indices[inactive[0]])} has been removed"
            )
        return index.points[query_indices], query_indices
    # Raw query points follow the index's storage dtype: float32 queries
    # against a float64 index upcast exactly, float64 queries against a
    # float32 index round once here instead of per kernel call.
    query_points = as_query_rows(
        queries, dim=index.dim, name=queries_name, dtype=index.points.dtype
    )
    exclude = np.full(query_points.shape[0], -1, dtype=np.intp)
    return query_points, exclude


def check_k(k, *, n: int | None = None, name: str = "k") -> int:
    """Validate a neighborhood size ``k`` (positive integer, optionally <= n)."""
    if not isinstance(k, (int, np.integer)) or isinstance(k, bool):
        raise TypeError(f"{name} must be an integer, got {type(k).__name__}")
    if k < 1:
        raise ValueError(f"{name} must be >= 1, got {k}")
    if n is not None and k > n:
        raise ValueError(f"{name}={k} exceeds the dataset size n={n}")
    return int(k)


def check_scale_parameter(t, *, name: str = "t") -> float:
    """Validate the RDT scale parameter ``t`` (strictly positive, finite)."""
    t = float(t)
    if not np.isfinite(t) or t <= 0.0:
        raise ValueError(f"{name} must be a finite positive number, got {t}")
    return t


def check_positive_int(value, *, name: str) -> int:
    """Validate a strictly positive integer parameter."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_probability(value, *, name: str) -> float:
    """Validate a probability/fraction in the half-open interval (0, 1]."""
    value = float(value)
    if not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must lie in (0, 1], got {value}")
    return value
