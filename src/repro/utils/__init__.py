"""Shared utilities: validation, RNG plumbing, priority queues."""

from repro.utils.priority_queue import KSmallestKeeper, MinPriorityQueue
from repro.utils.rng import ensure_rng
from repro.utils.tolerance import DIST_ATOL, DIST_RTOL, dist_le, dist_lt, inflate
from repro.utils.validation import (
    as_dataset,
    as_query_point,
    check_k,
    check_positive_int,
    check_probability,
    check_scale_parameter,
)

__all__ = [
    "MinPriorityQueue",
    "KSmallestKeeper",
    "ensure_rng",
    "DIST_RTOL",
    "DIST_ATOL",
    "dist_le",
    "dist_lt",
    "inflate",
    "as_dataset",
    "as_query_point",
    "check_k",
    "check_positive_int",
    "check_probability",
    "check_scale_parameter",
]
