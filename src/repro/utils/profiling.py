"""Lightweight per-kernel call/byte counters for the compiled-kernel layer.

The hot numeric kernels in :mod:`repro.kernels` are routed through a
dispatch table; this module provides the observation side: a
:class:`KernelProfile` accumulates, per kernel name, how many times it was
invoked, how many scalar results it produced, and how many bytes it moved
(inputs plus output).  The :func:`profile_kernels` context manager installs
a profile for the duration of a block::

    with profile_kernels() as prof:
        service.query_all(k=10, t=4.0)
    print(prof.summary())

Profiles are intentionally cheap (a dict update per kernel call, no
timers) so they can stay enabled around benchmark workloads without
perturbing them.  The profile that justified the jit targets for the
kernel layer is checked into ``benchmarks/results/kernel_profile.json``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["KernelCounters", "KernelProfile", "profile_kernels"]


@dataclass
class KernelCounters:
    """Accumulated counters for one kernel name."""

    calls: int = 0
    #: Scalar results produced (e.g. one per distance for metric kernels).
    results: int = 0
    #: Bytes moved: input array bytes plus output array bytes.
    bytes: int = 0


@dataclass
class KernelProfile:
    """Per-kernel counters accumulated while the profile is installed."""

    counters: dict[str, KernelCounters] = field(default_factory=dict)

    def record(self, name: str, results: int, nbytes: int) -> None:
        entry = self.counters.get(name)
        if entry is None:
            entry = self.counters[name] = KernelCounters()
        entry.calls += 1
        entry.results += int(results)
        entry.bytes += int(nbytes)

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {
            name: {"calls": c.calls, "results": c.results, "bytes": c.bytes}
            for name, c in sorted(self.counters.items())
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.as_dict(), **kwargs)

    def summary(self) -> str:
        """Human-readable table, largest byte traffic first."""
        rows = sorted(
            self.counters.items(), key=lambda item: item[1].bytes, reverse=True
        )
        lines = [f"{'kernel':<28} {'calls':>10} {'results':>14} {'MiB':>10}"]
        for name, c in rows:
            lines.append(
                f"{name:<28} {c.calls:>10} {c.results:>14} "
                f"{c.bytes / 2**20:>10.2f}"
            )
        return "\n".join(lines)


@contextmanager
def profile_kernels() -> Iterator[KernelProfile]:
    """Install a :class:`KernelProfile` over the dispatched kernels.

    Nested uses restore the previously installed profile on exit, so a
    benchmark harness can profile a sub-phase without losing the outer
    aggregate.
    """
    from repro import kernels

    profile = KernelProfile()
    previous = kernels._PROFILE
    kernels._PROFILE = profile
    try:
        yield profile
    finally:
        kernels._PROFILE = previous
