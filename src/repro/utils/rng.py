"""Random-number-generator plumbing.

All stochastic components (dataset generators, query sampling, vantage point
selection, ...) accept either an integer seed, an existing
``numpy.random.Generator``, or ``None``; :func:`ensure_rng` normalizes the
three cases so results are reproducible whenever a seed is supplied.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng"]


def ensure_rng(seed=None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``None`` yields a freshly-seeded generator; an integer yields a
    deterministic generator; an existing generator is passed through.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )
