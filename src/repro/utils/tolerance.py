"""Floating-point tolerance policy for distance comparisons.

Reverse-kNN membership is decided by comparisons such as
``d(q, x) <= d_k(x)`` in which *mathematically equal* quantities are
produced by different vectorized kernels (a pairwise dot-product expansion
during precomputation, a direct difference during the query).  Those two
computations can disagree in the final ulp, so every membership boundary in
this library goes through the tolerant comparisons below.

Boundary cases are not rare corner cases here: for every query ``q``, the
points whose k-th nearest neighbor is exactly ``q`` sit precisely on the
membership boundary.  The tolerances are far larger than kernel round-off
yet far smaller than any distance gap in continuous data, so tolerant and
exact semantics coincide on real datasets while the implementation stays
deterministic across kernels.

Two tolerance tiers exist, one per storage dtype:

* **float64** (default): 1e-9 relative / 1e-12 absolute — ~4e6 ulp of
  headroom over the 2.2e-16 machine epsilon, the historical policy.
* **float32** (opt-in via the :class:`repro.distances.Metric` dtype
  policy): 1e-4 relative / 1e-7 absolute.  float32 epsilon is 1.2e-7 and
  the dot-expansion pairwise kernel can lose a few hundred ulp to
  cancellation and accumulation across dimensions, so the same ~1e3 ulp
  safety factor lands at 1e-4.  This is the *documented float32
  contract*: distances produced by any two float32 kernels agree within
  ``1e-4 * d + 1e-7``, and the conformance oracle checks that every
  float32/float64 membership disagreement sits within this band of the
  float64 boundary.

The vectorized comparisons infer the tier from their operands' dtypes
(``float32`` operands get the float32 slack); the scalar helpers accept an
optional ``dtype`` for callers comparing Python floats that originated in
float32 kernels.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DIST_RTOL",
    "DIST_ATOL",
    "FLOAT32_DIST_RTOL",
    "FLOAT32_DIST_ATOL",
    "dist_le",
    "dist_le_many",
    "dist_lt",
    "inflate",
    "tolerances_for",
]

#: Relative tolerance for float64 distance comparisons.
DIST_RTOL = 1e-9
#: Absolute tolerance, for comparisons against (near-)zero float64 distances.
DIST_ATOL = 1e-12

#: Relative tolerance for float32 distance comparisons.
FLOAT32_DIST_RTOL = 1e-4
#: Absolute tolerance for (near-)zero float32 distances.
FLOAT32_DIST_ATOL = 1e-7


def tolerances_for(dtype) -> tuple[float, float]:
    """Return ``(rtol, atol)`` for distances stored in ``dtype``.

    float32 gets the wide tier; every other float dtype (including
    float16, which the storage layer upcasts anyway) uses the float64
    policy.
    """
    if np.dtype(dtype) == np.float32:
        return FLOAT32_DIST_RTOL, FLOAT32_DIST_ATOL
    return DIST_RTOL, DIST_ATOL


def _slack(reference, rtol: float = DIST_RTOL, atol: float = DIST_ATOL):
    # abs() keeps this scalar/array polymorphic for dist_le_many.
    return rtol * abs(reference) + atol


def dist_le(a: float, b: float, *, dtype=None) -> bool:
    """Tolerant ``a <= b`` for distances: true if ``a <= b + slack``."""
    rtol, atol = tolerances_for(dtype) if dtype is not None else (DIST_RTOL, DIST_ATOL)
    return a <= b + _slack(b, rtol, atol)


def dist_le_many(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized :func:`dist_le`: elementwise tolerant ``a <= b``.

    ``inf`` entries in ``b`` (the fewer-than-k kNN-distance convention)
    compare as expected: any finite ``a`` passes against them.  The
    tolerance tier follows the operands: if either side carries float32
    values, the comparison uses the float32 slack (the comparison itself
    runs in float64 so the slack term never rounds away).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    # Mixed float32/float64 operands get the wide tier: the float32 side
    # carries float32 round-off no matter what it is compared against.
    if a.dtype == np.float32 or b.dtype == np.float32:
        rtol, atol = FLOAT32_DIST_RTOL, FLOAT32_DIST_ATOL
    else:
        rtol, atol = tolerances_for(np.result_type(a, b))
    a = a.astype(np.float64, copy=False)
    b = b.astype(np.float64, copy=False)
    return a <= b + _slack(b, rtol, atol)


def dist_lt(a: float, b: float, *, dtype=None) -> bool:
    """Tolerant strict ``a < b``: true only if ``a`` is below ``b - slack``."""
    rtol, atol = tolerances_for(dtype) if dtype is not None else (DIST_RTOL, DIST_ATOL)
    return a < b - _slack(b, rtol, atol)


def inflate(radius: float, *, dtype=None) -> float:
    """Radius inflated by the tolerance, for boundary-inclusive range queries."""
    rtol, atol = tolerances_for(dtype) if dtype is not None else (DIST_RTOL, DIST_ATOL)
    return radius + _slack(radius, rtol, atol)
