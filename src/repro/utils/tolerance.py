"""Floating-point tolerance policy for distance comparisons.

Reverse-kNN membership is decided by comparisons such as
``d(q, x) <= d_k(x)`` in which *mathematically equal* quantities are
produced by different vectorized kernels (a pairwise dot-product expansion
during precomputation, a direct difference during the query).  Those two
computations can disagree in the final ulp, so every membership boundary in
this library goes through the tolerant comparisons below.

Boundary cases are not rare corner cases here: for every query ``q``, the
points whose k-th nearest neighbor is exactly ``q`` sit precisely on the
membership boundary.  The tolerances are far larger than kernel round-off
(1e-9 relative) yet far smaller than any distance gap in continuous data,
so tolerant and exact semantics coincide on real datasets while the
implementation stays deterministic across kernels.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DIST_RTOL",
    "DIST_ATOL",
    "dist_le",
    "dist_le_many",
    "dist_lt",
    "inflate",
]

#: Relative tolerance for distance comparisons.
DIST_RTOL = 1e-9
#: Absolute tolerance, for comparisons against (near-)zero distances.
DIST_ATOL = 1e-12


def _slack(reference):
    # abs() keeps this scalar/array polymorphic for dist_le_many.
    return DIST_RTOL * abs(reference) + DIST_ATOL


def dist_le(a: float, b: float) -> bool:
    """Tolerant ``a <= b`` for distances: true if ``a <= b + slack``."""
    return a <= b + _slack(b)


def dist_le_many(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized :func:`dist_le`: elementwise tolerant ``a <= b``.

    ``inf`` entries in ``b`` (the fewer-than-k kNN-distance convention)
    compare as expected: any finite ``a`` passes against them.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return a <= b + _slack(b)


def dist_lt(a: float, b: float) -> bool:
    """Tolerant strict ``a < b``: true only if ``a`` is below ``b - slack``."""
    return a < b - _slack(b)


def inflate(radius: float) -> float:
    """Radius inflated by the tolerance, for boundary-inclusive range queries."""
    return radius + _slack(radius)
