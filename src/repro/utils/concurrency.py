"""Small concurrency primitives for the serving layers.

The toolkit's concurrency design (DESIGN.md "Concurrency & versioning")
needs exactly one primitive beyond the standard library: a
readers/writer lock used by :class:`repro.Service` to drain in-flight
queries before structurally mutating a backend whose
:attr:`~repro.indexes.base.Index.snapshot_stable` flag is False.
Snapshot-stable backends never take it — their read path is lock-free.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """A reader-preference readers/writer lock.

    Any number of readers may hold the lock together; a writer waits
    until every reader has drained, then holds it exclusively.  Readers
    wait only for a writer *actively writing*, never for queued writers
    — the serving layer's priority order, where queries are
    latency-sensitive and mutations may starve under heavy read load.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextmanager
    def read(self):
        """Hold shared (read) access for the duration of the block."""
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        """Hold exclusive (write) access for the duration of the block."""
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()
