"""Grassberger–Procaccia estimator of the correlation dimension.

Section 6 of the paper: the correlation integral

    C(r) = 2 / (N (N-1)) * #{ (i, j) : i < j, d(x_i, x_j) < r }

behaves like ``r^CD`` for small radii, so the correlation dimension CD is
recovered as the slope of a straight-line fit to ``log C(r)`` versus
``log r`` over the smallest radii.  The pairwise-distance computation gives
the estimator its quadratic runtime — the cost column of the paper's
Table 1, reproduced here by capping the sample size instead of spending
hours (the cap is configurable for anyone who wants the full quadratic
experience).
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric, get_metric
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_dataset, check_positive_int

__all__ = ["correlation_integral", "estimate_id_gp", "pairwise_sample_distances"]


def pairwise_sample_distances(
    data,
    metric: str | Metric | None = None,
    sample_size: int = 2000,
    seed=0,
) -> np.ndarray:
    """All pairwise distances of a random sample, as a flat (condensed) array."""
    points = as_dataset(data)
    metric = get_metric(metric)
    n = points.shape[0]
    rng = ensure_rng(seed)
    if n > sample_size:
        ids = rng.choice(n, size=sample_size, replace=False)
        points = points[ids]
        n = sample_size
    full = metric.pairwise(points)
    iu = np.triu_indices(n, k=1)
    return full[iu]


def correlation_integral(pair_dists: np.ndarray, radii: np.ndarray) -> np.ndarray:
    """Fraction of pairs closer than each radius: ``C(r)`` per radius."""
    pair_dists = np.asarray(pair_dists, dtype=np.float64)
    radii = np.asarray(radii, dtype=np.float64)
    sorted_dists = np.sort(pair_dists)
    counts = np.searchsorted(sorted_dists, radii, side="left")
    return counts / max(1, pair_dists.shape[0])


def estimate_id_gp(
    data,
    metric: str | Metric | None = None,
    sample_size: int = 2000,
    n_radii: int = 24,
    min_pairs: int = 10,
    seed=0,
) -> float:
    """Correlation dimension via a log-log fit over the smallest radii.

    Radii are log-spaced between the radius enclosing ``min_pairs`` pairs
    (below that, ``log C`` is too noisy to fit) and the median pairwise
    distance; the fitted slope over the lower half of that range is the
    estimate.  Returns ``nan`` for degenerate inputs (e.g. all points
    identical).
    """
    check_positive_int(n_radii, name="n_radii")
    pair_dists = pairwise_sample_distances(
        data, metric=metric, sample_size=sample_size, seed=seed
    )
    positive = pair_dists[pair_dists > 0.0]
    if positive.size < max(min_pairs * 2, 4):
        return float("nan")
    sorted_pos = np.sort(positive)
    r_low = float(sorted_pos[min(min_pairs, sorted_pos.size - 1)])
    r_high = float(np.median(sorted_pos))
    if not 0.0 < r_low < r_high:
        return float("nan")
    radii = np.geomspace(r_low, r_high, n_radii)
    c_values = correlation_integral(positive, radii)
    valid = c_values > 0.0
    radii, c_values = radii[valid], c_values[valid]
    if radii.size < 3:
        return float("nan")
    # "Over the smallest values of r": fit the lower half of the range.
    half = max(3, radii.size // 2)
    slope, _ = np.polyfit(np.log(radii[:half]), np.log(c_values[:half]), deg=1)
    return float(slope)
