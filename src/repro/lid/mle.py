"""Maximum-likelihood (Hill) estimation of local intrinsic dimensionality.

The paper's Section 6 uses the MLE of Amsaleg et al. (KDD 2015) to choose
the scale parameter ``t`` automatically: for a point with neighbor
distances ``x_1 .. x_n`` within radius ``w``,

    ID = - ( (1/n) * sum_i ln(x_i / w) )^{-1},

with ``w`` the largest of the neighbor distances.  A dataset-level estimate
averages the per-point values over a random sample (the paper samples 10%
of each dataset and uses 100 neighbors per sampled point, which Amsaleg et
al. report as sufficient for convergence).
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric, get_metric
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_dataset, check_k, check_probability

__all__ = ["hill_estimator", "estimate_id_mle"]


def hill_estimator(distances, w: float | None = None) -> float:
    """Hill/MLE estimate of LID from one neighborhood's distances.

    ``distances`` are distances from a reference point to its neighbors
    (order irrelevant); ``w`` is the neighborhood radius, defaulting to the
    largest distance.  Zero distances (duplicate points) carry no tail
    information and are dropped.  Returns ``nan`` when the neighborhood is
    degenerate (fewer than two distinct positive distances).
    """
    dists = np.asarray(distances, dtype=np.float64)
    if dists.ndim != 1:
        raise ValueError(f"distances must be 1-D, got shape {dists.shape}")
    if w is None:
        w = float(dists.max()) if dists.size else 0.0
    if w <= 0.0:
        return float("nan")
    dists = dists[dists > 0.0]
    if dists.size < 2:
        return float("nan")
    log_ratios = np.log(dists / w)
    mean = float(log_ratios.mean())
    if mean >= 0.0:
        # All neighbors on the boundary: no measurable growth rate.
        return float("nan")
    return -1.0 / mean


def estimate_id_mle(
    data,
    k: int = 100,
    metric: str | Metric | None = None,
    sample_fraction: float = 0.1,
    min_sample: int = 50,
    seed=0,
) -> float:
    """Dataset-level intrinsic dimensionality via averaged Hill estimates.

    Parameters follow the paper's experimental setup: ``k`` neighbors per
    estimate (default 100) over a ``sample_fraction`` random sample of the
    data (default 10%, but never fewer than ``min_sample`` points when the
    dataset allows it).  Runtime is ``O(sample * n)`` distance computations
    — the linear scaling the paper reports for the MLE column of Table 1.
    """
    points = as_dataset(data)
    n = points.shape[0]
    metric = get_metric(metric)
    check_probability(sample_fraction, name="sample_fraction")
    k = check_k(k, name="k")
    k = min(k, n - 1)
    if k < 2:
        raise ValueError("MLE estimation needs at least 2 neighbors per point")
    rng = ensure_rng(seed)

    sample_size = min(n, max(min_sample, int(round(sample_fraction * n))))
    sample_ids = rng.choice(n, size=sample_size, replace=False)

    estimates = []
    for start in range(0, sample_size, 256):
        block_ids = sample_ids[start : start + 256]
        block = metric.pairwise(points[block_ids], points)
        rows = np.arange(block_ids.shape[0])
        block[rows, block_ids] = np.inf  # self-exclusion
        knn_dists = np.partition(block, k - 1, axis=1)[:, :k]
        for row in knn_dists:
            estimates.append(hill_estimator(row))
    estimates = np.asarray(estimates, dtype=np.float64)
    estimates = estimates[np.isfinite(estimates)]
    if estimates.size == 0:
        return float("nan")
    return float(estimates.mean())
