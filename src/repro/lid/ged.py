"""Generalized expansion dimension (GED) and its dataset maximum (MaxGED).

Section 3.2 of the paper: two concentric neighborhood balls with radii
``r1 < r2`` capturing ``k1`` and ``k2`` points witness a dimensional test
value

    Ged = log(k2 / k1) / log(r2 / r1),

an estimator of the local intrinsic dimensionality at the balls' center.
``MaxGed(S, k)`` is the maximum test value over all centers ``q`` in ``S``
and all outer ranks ``s`` in ``(k, |S|]``, with the inner ball anchored at
the k-nearest-neighbor distance.  Theorem 1 guarantees RDT returns exact
results whenever the scale parameter ``t`` reaches ``MaxGed(S ∪ {q}, k)``.

Ball cardinalities here are *physical counts* — the center point itself is
inside its own ball, and distance ties all fall inside (the paper's
max-rank convention).  The computation is exact and O(n^2 log n); it exists
for analysis and for the property-based tests of the exactness guarantee,
not for production use (the paper's Section 6 explains why estimating
MaxGED in practice is hopeless, and estimates LID instead).
"""

from __future__ import annotations

import numpy as np

from repro.distances import Metric, get_metric
from repro.utils.validation import as_dataset, check_k

__all__ = ["ged", "max_ged", "max_ged_for_query", "theorem1_scale"]


def ged(r1: float, k1: int, r2: float, k2: int) -> float:
    """Dimensional test value of two concentric balls (r1 < r2)."""
    if not 0.0 < r1 < r2:
        raise ValueError(f"radii must satisfy 0 < r1 < r2, got r1={r1}, r2={r2}")
    if not 0 < k1 <= k2:
        raise ValueError(f"counts must satisfy 0 < k1 <= k2, got k1={k1}, k2={k2}")
    return float(np.log(k2 / k1) / np.log(r2 / r1))


def _center_max_ged(sorted_dists: np.ndarray, k: int) -> float:
    """Max GED over outer ranks for one center's ascending distance vector."""
    n = sorted_dists.shape[0]
    dk = sorted_dists[k - 1]
    if dk <= 0.0:
        # k-fold duplicate of the center: every ratio degenerates.
        return 0.0
    # Physical count inside the inner ball (ties included).
    count_k = int(np.searchsorted(sorted_dists, dk, side="right"))
    outer = sorted_dists[k:]
    distinct = outer > dk
    if not distinct.any():
        return 0.0
    radii = outer[distinct]
    counts = np.searchsorted(sorted_dists, radii, side="right")
    values = np.log(counts / count_k) / np.log(radii / dk)
    return float(values.max())


def max_ged(data, k: int, metric: str | Metric | None = None) -> float:
    """Exact ``MaxGed(S, k)`` over every center in the dataset."""
    points = as_dataset(data)
    n = points.shape[0]
    k = check_k(k, n=n, name="k")
    metric = get_metric(metric)
    best = 0.0
    for i in range(n):
        dists = np.sort(metric.to_point(points, points[i]))
        value = _center_max_ged(dists, k)
        if value > best:
            best = value
    return best


def max_ged_for_query(data, query, k: int, metric: str | Metric | None = None) -> float:
    """Exact ``MaxGed(S ∪ {q}, k)`` — the Theorem 1 threshold for one query."""
    points = as_dataset(data)
    query = np.asarray(query, dtype=np.float64)
    if query.ndim == 1:
        query = query[None, :]
    augmented = np.vstack([points, query])
    return max_ged(augmented, k, metric=metric)


def theorem1_scale(data, k: int, metric: str | Metric | None = None) -> float:
    """The exactness threshold for :class:`repro.core.RDT` at library-``k``.

    The paper's ball cardinalities count the center point, so its ``k``
    exceeds this library's self-exclusive ``k`` by one: a reverse neighbor
    under library semantics occupies an inclusive ball of at most ``k + 1``
    points.  The Theorem 1 guarantee for ``RDT.query(..., k=k)`` therefore
    anchors at ``MaxGed(S, k + 1)`` (note the paper's anchor degenerates to
    0 at inclusive ``k = 1``, where the inner ball radius is the center's
    self-distance).  See DESIGN.md, "Semantics and conventions".
    """
    points = as_dataset(data)
    k = check_k(k, n=points.shape[0] - 1, name="k")
    return max_ged(points, k + 1, metric=metric)
