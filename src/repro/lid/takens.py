"""Takens estimator of the correlation dimension.

Section 6 of the paper: for a threshold radius ``r``, the Takens estimator
is the reciprocal of the average log-ratio of sub-threshold pairwise
distances to the threshold,

    CD = - 1 / < ln(d_ij / r) >        over pairs with 0 < d_ij < r.

It shares the Grassberger–Procaccia estimator's quadratic pairwise-distance
cost (the paper notes their execution times are "extremely close"), but
replaces the log-log line fit by a closed-form maximum-likelihood value,
which makes it the more stable of the two on small samples.
"""

from __future__ import annotations

import numpy as np

from repro.lid.gp import pairwise_sample_distances

__all__ = ["takens_from_distances", "estimate_id_takens"]


def takens_from_distances(pair_dists: np.ndarray, r: float) -> float:
    """Takens estimate from a flat array of pairwise distances."""
    if r <= 0.0:
        raise ValueError(f"threshold radius must be positive, got {r}")
    pair_dists = np.asarray(pair_dists, dtype=np.float64)
    below = pair_dists[(pair_dists > 0.0) & (pair_dists < r)]
    if below.size < 2:
        return float("nan")
    mean_log = float(np.log(below / r).mean())
    if mean_log >= 0.0:
        return float("nan")
    return -1.0 / mean_log


def estimate_id_takens(
    data,
    metric=None,
    sample_size: int = 2000,
    r_quantile: float = 0.1,
    seed=0,
) -> float:
    """Dataset-level Takens estimate.

    The threshold radius is chosen as the ``r_quantile`` quantile of the
    sampled pairwise distances (default: the smallest decile — "a supplied
    small threshold value" in the paper's wording).
    """
    if not 0.0 < r_quantile < 1.0:
        raise ValueError(f"r_quantile must be in (0, 1), got {r_quantile}")
    pair_dists = pairwise_sample_distances(
        data, metric=metric, sample_size=sample_size, seed=seed
    )
    positive = pair_dists[pair_dists > 0.0]
    if positive.size < 4:
        return float("nan")
    r = float(np.quantile(positive, r_quantile))
    if r <= 0.0:
        return float("nan")
    return takens_from_distances(positive, r)
