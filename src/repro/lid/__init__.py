"""Intrinsic-dimensionality estimators (paper Sections 3.2 and 6).

* :func:`estimate_id_mle` — the Hill/MLE estimator of local intrinsic
  dimensionality, averaged over a sample (linear runtime);
* :func:`estimate_id_gp` — Grassberger–Procaccia correlation dimension
  (quadratic runtime);
* :func:`estimate_id_takens` — Takens correlation-dimension estimator
  (quadratic runtime);
* :func:`ged` / :func:`max_ged` — the generalized expansion dimension and
  its exact dataset maximum, the quantity Theorem 1's guarantee is stated
  in terms of.
"""

from repro.lid.ged import ged, max_ged, max_ged_for_query, theorem1_scale
from repro.lid.gp import correlation_integral, estimate_id_gp, pairwise_sample_distances
from repro.lid.mle import estimate_id_mle, hill_estimator
from repro.lid.takens import estimate_id_takens, takens_from_distances

__all__ = [
    "estimate_id",
    "ESTIMATORS",
    "ged",
    "max_ged",
    "max_ged_for_query",
    "theorem1_scale",
    "estimate_id_gp",
    "correlation_integral",
    "pairwise_sample_distances",
    "estimate_id_mle",
    "hill_estimator",
    "estimate_id_takens",
    "takens_from_distances",
]

#: Registered dataset-level estimators, keyed as in the paper's plots.
ESTIMATORS = {
    "mle": estimate_id_mle,
    "gp": estimate_id_gp,
    "takens": estimate_id_takens,
}


def estimate_id(data, method: str = "mle", **kwargs) -> float:
    """Dispatch to a named estimator (``mle``, ``gp`` or ``takens``)."""
    try:
        estimator = ESTIMATORS[method]
    except KeyError:
        raise ValueError(
            f"unknown estimator {method!r}; known: {sorted(ESTIMATORS)}"
        ) from None
    return estimator(data, **kwargs)
