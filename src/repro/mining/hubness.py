"""Hubness analysis over the kNN digraph (paper Section 1, ref [46]).

The *hubness* of a point is its in-degree in the k-nearest-neighbor
digraph — the size of its reverse-kNN set.  High-dimensional data
concentrates in-degree onto a few hub points, skewing kNN-based mining;
Tomasev et al. (the paper's ref [46]) compute hubness via RkNN queries,
which is what this module does.  When networkx is available the digraph
itself can be materialized for downstream graph analytics.
"""

from __future__ import annotations

import numpy as np

from repro.indexes.base import Index
from repro.mining.join import rknn_self_join

__all__ = ["hubness_counts", "hubness_skewness", "knn_digraph"]


def hubness_counts(
    index: Index, k: int, t: float, variant: str | None = None, engine=None
) -> np.ndarray:
    """In-degree of every point in the kNN digraph, via the RkNN join.

    The join answers all points through the engine protocol's batched
    entry point, so the whole digraph costs one vectorized pass rather
    than n interpreter-level queries; ``engine`` selects any registry
    engine (``variant`` remains the historical RDT/RDT+ switch).
    """
    return rknn_self_join(
        index, k=k, t=t, variant=variant, engine=engine
    ).count_array()


def hubness_skewness(index: Index, k: int, t: float) -> float:
    """Standardized third moment of the in-degree distribution.

    The classic hubness statistic: near 0 in low dimensions, strongly
    positive when hubs emerge.
    """
    counts = hubness_counts(index, k=k, t=t)[index.active_ids()].astype(np.float64)
    std = counts.std()
    if std == 0.0:
        return 0.0
    centered = counts - counts.mean()
    return float((centered**3).mean() / std**3)


def knn_digraph(index: Index, k: int, t: float, variant: str | None = None, engine=None):
    """The kNN digraph as a ``networkx.DiGraph`` (edge u -> v: v in kNN(u)).

    Built from the reverse neighborhoods: ``x in RkNN(q)`` means ``q`` is
    among ``x``'s k nearest, i.e. the edge ``x -> q``.  Requires networkx.
    """
    import networkx as nx

    join = rknn_self_join(index, k=k, t=t, variant=variant, engine=engine)
    graph = nx.DiGraph()
    graph.add_nodes_from(int(pid) for pid in index.active_ids())
    for target, sources in join.neighborhoods.items():
        graph.add_edges_from((int(source), int(target)) for source in sources)
    return graph
