"""Data-mining applications of reverse-kNN search (paper Section 1).

* :func:`rknn_self_join` — reverse neighborhoods of every point;
* :func:`odin_scores` / :func:`odin_outliers` — in-degree outlier detection;
* :func:`influence_set` — update-propagation for dynamic scenarios;
* :func:`hubness_counts` / :func:`hubness_skewness` / :func:`knn_digraph`
  — hubness analysis over the kNN digraph.
"""

from repro.mining.hubness import hubness_counts, hubness_skewness, knn_digraph
from repro.mining.join import RkNNJoinResult, rknn_self_join
from repro.mining.outliers import influence_set, odin_outliers, odin_scores

__all__ = [
    "RkNNJoinResult",
    "rknn_self_join",
    "odin_scores",
    "odin_outliers",
    "influence_set",
    "hubness_counts",
    "hubness_skewness",
    "knn_digraph",
]
