"""Reverse-neighbor-count outlier scores (ODIN) and influence sets.

Section 1 of the paper motivates RkNN through data-mining models built on
"influence": a point that appears in few other points' k-nearest
neighborhoods exerts little influence and is a candidate outlier
(Hautamäki et al.'s ODIN, paper ref [18]; Radovanovic et al., ref [37]),
while the points whose neighborhoods a record *does* appear in are exactly
the points affected when that record changes (refs [1, 36, 35]).
"""

from __future__ import annotations

import numpy as np

from repro.indexes.base import Index
from repro.mining.join import rknn_self_join

__all__ = ["odin_scores", "odin_outliers", "influence_set"]


def odin_scores(
    index: Index, k: int, t: float, variant: str | None = None, engine=None
) -> np.ndarray:
    """ODIN outlierness: the reverse-kNN count of every point (low = outlier).

    Returns an array indexed by point id.  Counts are produced by the RkNN
    self-join — one batched engine pass over all points — so the usual `t`
    accuracy/cost tradeoff applies; with a generous `t` the scores are
    exact in-degrees of the kNN graph.  ``engine`` selects any registry
    engine (e.g. ``"approx-sampled"`` for a recall-guaranteed approximate
    score pass); ``variant`` remains as the historical RDT/RDT+ switch.
    """
    join = rknn_self_join(index, k=k, t=t, variant=variant, engine=engine)
    return join.count_array().astype(np.float64)


def odin_outliers(
    index: Index,
    k: int,
    t: float,
    threshold: float | None = None,
    fraction: float | None = None,
    engine=None,
) -> np.ndarray:
    """Point ids flagged as outliers by the ODIN rule.

    Exactly one of ``threshold`` (flag counts strictly below it — ODIN's
    original formulation) or ``fraction`` (flag the lowest-scoring fraction
    of the dataset) must be given.
    """
    if (threshold is None) == (fraction is None):
        raise ValueError("provide exactly one of `threshold` or `fraction`")
    scores = odin_scores(index, k=k, t=t, engine=engine)
    active = index.active_ids()
    active_scores = scores[active]
    if threshold is not None:
        flagged = active[active_scores < threshold]
    else:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must lie in (0, 1], got {fraction}")
        n_flag = max(1, int(round(fraction * active.shape[0])))
        order = np.argsort(active_scores, kind="stable")
        flagged = np.sort(active[order[:n_flag]])
    return flagged.astype(np.intp)


def influence_set(
    index: Index, point_id: int, k: int, t: float, variant: str | None = None,
    engine=None,
) -> np.ndarray:
    """The points whose k-neighborhoods contain the given point.

    This is the update-propagation primitive of the paper's dynamic
    scenarios: when ``point_id`` is modified or deleted, these are the
    points whose derived results (clusters, outlier scores, ...) may
    change.  Like the self-join, any registry engine (or prebuilt
    instance) can answer it.
    """
    from repro.mining.join import resolve_mining_engine
    from repro.service import QuerySpec

    engine = resolve_mining_engine(index, variant, engine, k=k)
    spec = QuerySpec(k=k, t=t)
    return engine.query(query_index=point_id, k=k, **spec.knobs_for(engine)).ids
