"""Reverse-kNN self-join: the all-points query underlying the mining uses.

The applications motivating the paper (Section 1) — outlier detection,
hubness analysis, cluster-change tracking — all consume the reverse
neighborhoods of *every* point, i.e. the RkNN self-join.  This module runs
the join through RDT/RDT+ so the per-query dimensional test keeps each
point's search local, and aggregates the per-query statistics so callers
can see what the join cost.

The join runs through :meth:`repro.core.RDT.query_batch`, so the whole
workload is answered with vectorized phases (chunked pairwise filter for
plain RDT, one batched kNN-distance call for all refinements) instead of n
interpreter-level queries.  For datasets small enough to afford the O(n^2)
table, the exact join via :class:`repro.baselines.NaiveRkNN` can still win
outright; the RDT join exists for the regime the paper targets — large n,
where n^2 is not an option — and for dynamic settings where only a few
neighborhoods need refreshing after an update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rdt import RDT
from repro.core.result import QueryStats
from repro.indexes.base import Index
from repro.utils.validation import check_k, check_scale_parameter

__all__ = ["RkNNJoinResult", "rknn_self_join"]


@dataclass
class RkNNJoinResult:
    """Reverse neighborhoods for every active point of an index."""

    #: point id -> ascending array of its reverse k-nearest neighbors
    neighborhoods: dict[int, np.ndarray]
    k: int
    t: float
    #: aggregate cost over all queries of the join
    totals: QueryStats = field(default_factory=QueryStats)

    def counts(self) -> dict[int, int]:
        """Reverse-neighbor count per point (the in-degree of the kNN graph)."""
        return {pid: int(ids.shape[0]) for pid, ids in self.neighborhoods.items()}

    def count_array(self) -> np.ndarray:
        """Counts as an array indexed by point id (inactive ids get 0)."""
        size = max(self.neighborhoods, default=-1) + 1
        out = np.zeros(size, dtype=np.int64)
        for pid, ids in self.neighborhoods.items():
            out[pid] = ids.shape[0]
        return out


def rknn_self_join(
    index: Index,
    k: int,
    t: float,
    variant: str = "rdt",
    point_ids=None,
    filter_mode: str = "auto",
) -> RkNNJoinResult:
    """Compute the reverse-kNN set of every (or each given) indexed point.

    Parameters
    ----------
    index:
        Any incremental-NN index over the dataset.
    k, t:
        Neighborhood size and scale parameter, as in :meth:`RDT.query`.
    variant:
        ``"rdt"`` (default) keeps precision exactly 1 — for mining uses,
        phantom reverse neighbors are usually worse than extra query time.
        ``"rdt+"`` accelerates large joins at the Section 4.3 precision
        risk (its lazy accepts can fire on undercounted witness sets even
        when the search scans everything).
    point_ids:
        Optional subset of point ids to join; defaults to all active points
        (useful after dynamic updates, when only the affected neighborhoods
        need recomputation).
    filter_mode:
        Forwarded to :meth:`RDT.query_batch`.  ``"sequential"`` keeps the
        index-driven per-query filter, which pays off on very large
        datasets behind a pruning tree backend — the batched refinement
        then also runs through the backend's pruned ``knn_distances``
        override, so the whole join stays subquadratic.
    """
    k = check_k(k)
    t = check_scale_parameter(t)
    rdt = RDT(index, variant=variant)
    if point_ids is None:
        point_ids = index.active_ids()
    point_ids = np.asarray(point_ids, dtype=np.intp)
    result = RkNNJoinResult(neighborhoods={}, k=k, t=t)
    totals = result.totals
    # One batched pass over the whole workload: the join is exactly the
    # all-points mode the batch engine's vectorized phases exist for.
    answers = rdt.query_batch(
        query_indices=point_ids, k=k, t=t, filter_mode=filter_mode
    )
    for pid, answer in zip(point_ids, answers):
        result.neighborhoods[int(pid)] = answer.ids
        stats = answer.stats
        totals.num_retrieved += stats.num_retrieved
        totals.num_candidates += stats.num_candidates
        totals.num_excluded += stats.num_excluded
        totals.num_lazy_accepts += stats.num_lazy_accepts
        totals.num_lazy_rejects += stats.num_lazy_rejects
        totals.num_verified += stats.num_verified
        totals.num_verified_hits += stats.num_verified_hits
        totals.num_distance_calls += stats.num_distance_calls
        totals.filter_seconds += stats.filter_seconds
        totals.refine_seconds += stats.refine_seconds
    return result
