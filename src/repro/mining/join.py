"""Reverse-kNN self-join: the all-points query underlying the mining uses.

The applications motivating the paper (Section 1) — outlier detection,
hubness analysis, cluster-change tracking — all consume the reverse
neighborhoods of *every* point, i.e. the RkNN self-join.  This module runs
the join through RDT/RDT+ so the per-query dimensional test keeps each
point's search local, and aggregates the per-query statistics so callers
can see what the join cost.

The join runs through the engine protocol's batched entry point
(:meth:`~repro.core.protocol.RkNNEngine.query_batch`), so the whole
workload is answered with vectorized phases (chunked pairwise filter for
plain RDT, one batched kNN-distance call for all refinements) instead of n
interpreter-level queries.  Any registry engine can drive the join —
``engine="rdt+"`` (the historical ``variant`` argument maps onto the same
names), ``engine="approx-sampled"`` for a recall-guaranteed approximate
join, or a prebuilt :class:`~repro.core.protocol.RkNNEngine` instance —
and the scale/filter knobs are forwarded only to engines that understand
them (:meth:`repro.QuerySpec.knobs_for`).  For datasets small enough to
afford the O(n^2) table, the exact join via
:class:`repro.baselines.NaiveRkNN` can still win outright; the RDT join
exists for the regime the paper targets — large n, where n^2 is not an
option — and for dynamic settings where only a few neighborhoods need
refreshing after an update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.result import QueryStats
from repro.indexes.base import Index
from repro.utils.validation import check_k, check_scale_parameter

__all__ = ["RkNNJoinResult", "rknn_self_join"]


def resolve_mining_engine(index: Index, variant, engine, k: int | None = None):
    """Resolve the mining entry points' ``variant``/``engine`` selectors.

    ``variant`` is the historical RDT/RDT+ switch, ``engine`` the
    registry-era selector (a name built over ``index`` for the workload's
    ``k`` — fixed-k engines are built for exactly that k — or a prebuilt
    instance); at most one may be given, and the result must answer
    member queries (the mining workloads are self-joins over the index).
    """
    from repro.engines import create_engine, kwargs_for_k

    if variant is not None and engine is not None:
        raise ValueError("provide at most one of `variant` or `engine`")
    if engine is None:
        engine = variant or "rdt"
    if isinstance(engine, str):
        kwargs = kwargs_for_k(engine, k) if k is not None else {}
        engine = create_engine(engine, index, **kwargs)
    if not getattr(engine, "supports_member_queries", True):
        raise ValueError(
            f"engine {getattr(engine, 'engine_name', engine)!r} cannot "
            "answer member queries, so it cannot drive mining workloads"
        )
    return engine


@dataclass
class RkNNJoinResult:
    """Reverse neighborhoods for every active point of an index."""

    #: point id -> ascending array of its reverse k-nearest neighbors
    neighborhoods: dict[int, np.ndarray]
    k: int
    t: float
    #: aggregate cost over all queries of the join
    totals: QueryStats = field(default_factory=QueryStats)

    def counts(self) -> dict[int, int]:
        """Reverse-neighbor count per point (the in-degree of the kNN graph)."""
        return {pid: int(ids.shape[0]) for pid, ids in self.neighborhoods.items()}

    def count_array(self) -> np.ndarray:
        """Counts as an array indexed by point id (inactive ids get 0)."""
        size = max(self.neighborhoods, default=-1) + 1
        out = np.zeros(size, dtype=np.int64)
        for pid, ids in self.neighborhoods.items():
            out[pid] = ids.shape[0]
        return out


def rknn_self_join(
    index: Index,
    k: int,
    t: float,
    variant: str | None = None,
    point_ids=None,
    filter_mode: str = "auto",
    engine=None,
) -> RkNNJoinResult:
    """Compute the reverse-kNN set of every (or each given) indexed point.

    Parameters
    ----------
    index:
        Any incremental-NN index over the dataset.
    k, t:
        Neighborhood size and scale parameter, as in :meth:`RDT.query`.
        ``t`` only reaches engines that take a scale knob.
    variant:
        Backward-compatible alias for ``engine``: ``"rdt"`` (default)
        keeps precision exactly 1 — for mining uses, phantom reverse
        neighbors are usually worse than extra query time.  ``"rdt+"``
        accelerates large joins at the Section 4.3 precision risk (its
        lazy accepts can fire on undercounted witness sets even when the
        search scans everything).
    point_ids:
        Optional subset of point ids to join; defaults to all active points
        (useful after dynamic updates, when only the affected neighborhoods
        need recomputation).
    filter_mode:
        Forwarded to :meth:`RDT.query_batch`.  ``"sequential"`` keeps the
        index-driven per-query filter, which pays off on very large
        datasets behind a pruning tree backend — the batched refinement
        then also runs through the backend's pruned ``knn_distances``
        override, so the whole join stays subquadratic.
    engine:
        An engine registry name (``"rdt"``, ``"rdt+"``,
        ``"approx-sampled"``, ...) built over ``index``, or a prebuilt
        :class:`~repro.core.protocol.RkNNEngine` answering member
        queries.  Mutually exclusive with ``variant``.
    """
    from repro.service import QuerySpec

    k = check_k(k)
    t = check_scale_parameter(t)
    engine = resolve_mining_engine(index, variant, engine, k=k)
    spec = QuerySpec(k=k, t=t, filter_mode=filter_mode)
    if point_ids is None:
        point_ids = index.active_ids()
    point_ids = np.asarray(point_ids, dtype=np.intp)
    result = RkNNJoinResult(neighborhoods={}, k=k, t=t)
    totals = result.totals
    # One batched pass over the whole workload: the join is exactly the
    # all-points mode the batch engine's vectorized phases exist for.
    answers = engine.query_batch(
        query_indices=point_ids, k=k, **spec.knobs_for(engine, batch=True)
    )
    for pid, answer in zip(point_ids, answers):
        result.neighborhoods[int(pid)] = answer.ids
        stats = answer.stats
        totals.num_retrieved += stats.num_retrieved
        totals.num_candidates += stats.num_candidates
        totals.num_excluded += stats.num_excluded
        totals.num_lazy_accepts += stats.num_lazy_accepts
        totals.num_lazy_rejects += stats.num_lazy_rejects
        totals.num_verified += stats.num_verified
        totals.num_verified_hits += stats.num_verified_hits
        totals.num_distance_calls += stats.num_distance_calls
        totals.filter_seconds += stats.filter_seconds
        totals.refine_seconds += stats.refine_seconds
    return result
