"""The one front door: a Service facade over backends, engines, and specs.

Everything the toolkit can do to a dataset — exact RDT/RDT+ queries,
approximate strategies, competitor baselines, bichromatic queries, dynamic
updates, persistence — is reachable from one object::

    import repro

    svc = repro.Service(data, backend="kd", engine="rdt+",
                        defaults=repro.QuerySpec(k=10, t=8.0))
    result = svc.query(query_index=7)            # defaults apply
    batch  = svc.query_batch(query_indices=ids, t=4.0)   # per-call override
    join   = svc.query_all()                     # the RkNN self-join
    svc.insert(point); svc.remove(3)             # engines follow the churn
    svc.save("svc.npz"); svc2 = repro.Service.load("svc.npz")

The facade owns three responsibilities the call sites used to duplicate:

**Parameter routing** — every query call resolves one :class:`QuerySpec`
(defaults, optionally overridden per call), validates it in one place,
and forwards only the knobs the active engine understands
(:attr:`~repro.core.protocol.EngineBase.query_knobs`); ``t`` reaches RDT
but not the approximate engines, ``alpha`` reaches SFT, strategy knobs
(``margin``/``sample_size``/``n_tables``) trigger an engine rebuild.

**Lifecycle** — the backend index is built once (bulk path); engines are
built lazily from the registry (:func:`repro.create_engine`) and rebuilt
automatically when they need it: data-snapshot engines (``naive``,
``mrknncop``, ``rdnn``) after any insert/remove, ``rdnn`` when the
requested ``k`` changes, ``mrknncop`` when ``k`` exceeds its fitted
``k_max``.  Engines answering in dense snapshot ids are transparently
translated back into the service's id space, so callers always see index
ids regardless of the engine family.

**Persistence** — :meth:`Service.save` writes a single ``.npz`` payload
(point matrix including removed rows, the active mask, metric, backend +
engine names and kwargs, default spec) and :meth:`Service.load` rebuilds
the tree via the backends' deterministic bulk builds and replays the
removals, so a round trip reproduces ``query_all`` bit-identically.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.core.result import RkNNResult
from repro.distances import get_metric
from repro.engines import ENGINE_REGISTRY, create_engine, kwargs_for_k
from repro.indexes import RStarTreeIndex, create_index, resolve_index_name
from repro.indexes.base import Index
from repro.utils.validation import (
    check_k,
    check_positive_int,
    check_scale_parameter,
)

__all__ = ["QuerySpec", "Service", "SERVICE_FORMAT_VERSION"]

#: Bumped whenever the ``.npz`` payload layout changes incompatibly.
SERVICE_FORMAT_VERSION = 1

_FILTER_MODES = ("auto", "sequential", "vectorized")

#: QuerySpec fields that configure an approximate *strategy* rather than a
#: single query; changing one rebuilds the engine.
_STRATEGY_KNOBS = ("margin", "sample_size", "n_tables")

#: Which strategy knobs each engine family's constructor understands —
#: the construction-time analogue of `query_knobs` (knobs an engine does
#: not understand are carried by the spec but never forwarded).
_ENGINE_STRATEGY_KNOBS = {
    "approx-sampled": ("margin", "sample_size"),
    "approx-lsh": ("n_tables",),
}

#: Constructor knobs recoverable from a prebuilt index adopted by a
#: Service, so save()/load() can rebuild an equivalent tree.
_BACKEND_KNOB_ATTRS = ("leaf_size", "n_candidates", "capacity", "k")


@dataclass(frozen=True)
class QuerySpec:
    """One validated bundle of query-time parameters for any engine.

    A spec is engine-agnostic: it may carry knobs the active engine does
    not understand, and only the understood subset is forwarded (see
    :meth:`knobs_for`).  Validation happens once, here, instead of in
    every engine's entry points.
    """

    #: neighborhood size (every engine)
    k: int = 10
    #: scale parameter for the dimensional test (RDT/RDT+/bichromatic)
    t: float = 8.0
    #: batched filter strategy for RDT (see :meth:`repro.RDT.query_batch`)
    filter_mode: str = "auto"
    #: candidate-pool factor for SFT (``None`` = the engine's default)
    alpha: float | None = None
    #: decisive-accept margin of the sampled strategy (rebuilds the engine)
    margin: float | None = None
    #: subsample size of the sampled strategy (rebuilds the engine)
    sample_size: int | None = None
    #: table count of the LSH strategy (rebuilds the engine)
    n_tables: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "k", check_k(self.k))
        object.__setattr__(self, "t", check_scale_parameter(self.t))
        if self.filter_mode not in _FILTER_MODES:
            raise ValueError(
                f"filter_mode must be one of {_FILTER_MODES}, "
                f"got {self.filter_mode!r}"
            )
        if self.alpha is not None and self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {self.alpha}")
        if self.margin is not None and not 0.0 <= self.margin <= 1.0:
            raise ValueError(f"margin must lie in [0, 1], got {self.margin}")
        for name in ("sample_size", "n_tables"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(
                    self, name, check_positive_int(value, name=name)
                )

    def replace(self, **overrides) -> "QuerySpec":
        """A new spec with the given fields overridden (re-validated)."""
        return replace(self, **overrides)

    def knobs_for(self, engine, batch: bool = False) -> dict:
        """The query-time kwargs of this spec that ``engine`` understands."""
        names = tuple(getattr(engine, "query_knobs", ()))
        if batch:
            names += tuple(getattr(engine, "batch_knobs", ()))
        return {
            name: getattr(self, name)
            for name in names
            if getattr(self, name, None) is not None
        }

    def strategy_kwargs(self) -> dict:
        """The engine-construction knobs carried by this spec."""
        return {
            name: getattr(self, name)
            for name in _STRATEGY_KNOBS
            if getattr(self, name) is not None
        }


class Service:
    """One dataset, one backend, one engine — swappable by name.

    Parameters
    ----------
    data:
        ``(n, dim)`` member points, or a prebuilt
        :class:`~repro.indexes.Index` to adopt as the backend.
    backend:
        Index backend name or alias (``"kd"``, ``"rstar"``, ``"linear"``,
        ...); ignored when ``data`` is already an index.
    engine:
        Engine registry name (see :data:`repro.ENGINE_REGISTRY`).  The
        bichromatic engine is not a per-dataset engine — use
        :meth:`query_bichromatic` instead.
    metric:
        Metric name or instance (only when building from raw data).
    defaults:
        The :class:`QuerySpec` applied when a query call does not
        override it.
    backend_kwargs / engine_kwargs:
        Forwarded to the backend / engine constructors.  Both must be
        JSON-serializable for :meth:`save`.
    """

    def __init__(
        self,
        data,
        *,
        backend: str = "kd",
        engine: str = "rdt+",
        metric=None,
        defaults: QuerySpec | None = None,
        backend_kwargs: dict | None = None,
        engine_kwargs: dict | None = None,
    ) -> None:
        engine = str(engine).lower()
        if engine not in ENGINE_REGISTRY:
            raise ValueError(
                f"unknown engine {engine!r}; known: {sorted(ENGINE_REGISTRY)}"
            )
        if engine == "bichromatic":
            raise ValueError(
                "the bichromatic engine needs a second color per call; "
                "use Service.query_bichromatic(queries, clients=...) instead"
            )
        self.engine_name = engine
        self.defaults = defaults if defaults is not None else QuerySpec()
        if not isinstance(self.defaults, QuerySpec):
            raise TypeError(
                f"defaults must be a QuerySpec, got {type(self.defaults).__name__}"
            )
        self._backend_kwargs = dict(backend_kwargs or {})
        self._engine_kwargs = dict(engine_kwargs or {})
        if isinstance(data, Index):
            if metric is not None:
                raise ValueError(
                    "metric only applies when building from raw data; the "
                    "given index already carries one"
                )
            if backend_kwargs:
                raise ValueError(
                    "backend_kwargs only apply when building from raw data"
                )
            self.index = data
            self.backend_name = resolve_index_name(data.name)
            # Recover the adopted tree's constructor knobs so save()/load()
            # rebuilds an equivalent backend (an RdNN-tree's required k
            # included).  Non-attribute knobs (e.g. sampling seeds) fall
            # back to constructor defaults on reload — answers are
            # unchanged, only internal tree shape may differ.
            self._backend_kwargs = {
                name: getattr(data, name)
                for name in _BACKEND_KNOB_ATTRS
                if hasattr(data, name)
            }
        else:
            self.backend_name = resolve_index_name(backend)
            self.index = create_index(
                self.backend_name, data, metric=metric, **self._backend_kwargs
            )
        self._epoch = 0
        self._engine = None
        self._engine_epoch = -1
        self._engine_built_k: int | None = None
        self._engine_built_kwargs: dict = {}
        self._engine_live = True
        self._id_map: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def metric(self):
        return self.index.metric

    @property
    def dim(self) -> int:
        return self.index.dim

    @property
    def size(self) -> int:
        return self.index.size

    def __len__(self) -> int:
        return self.index.size

    def active_ids(self) -> np.ndarray:
        return self.index.active_ids()

    def __repr__(self) -> str:
        return (
            f"Service(engine={self.engine_name!r}, "
            f"backend={self.backend_name!r}, n={self.size}, dim={self.dim}, "
            f"metric={self.metric.name}, defaults={self.defaults!r})"
        )

    # ------------------------------------------------------------------
    # Engine lifecycle
    # ------------------------------------------------------------------
    def engine(self, spec: QuerySpec | None = None):
        """The active engine, (re)built lazily for the given spec."""
        spec = self.defaults if spec is None else spec
        if self._engine is None or self._needs_rebuild(spec):
            self._build_engine(spec)
        return self._engine

    def _needs_rebuild(self, spec: QuerySpec) -> bool:
        if not self._engine_live and self._engine_epoch != self._epoch:
            return True
        if self._merged_engine_kwargs(spec) != self._engine_built_kwargs:
            return True
        if self.engine_name == "rdnn" and spec.k != self._engine_built_k:
            # Rebuilding for the new k only helps when the k was ours to
            # choose; a user-pinned k would survive the rebuild and fail
            # identically, so refuse up front instead of churning O(n^2)
            # tree builds per query.
            self._check_k_pin("k", spec.k, self._engine_kwargs.get("k"))
            return True
        if self.engine_name == "mrknncop" and spec.k > self._engine.k_max:
            self._check_k_pin("k_max", spec.k, self._engine_kwargs.get("k_max"))
            return True
        return False

    @staticmethod
    def _check_k_pin(name: str, wanted_k: int, pinned) -> None:
        if pinned is not None and (
            wanted_k > pinned if name == "k_max" else wanted_k != pinned
        ):
            raise ValueError(
                f"k={wanted_k} conflicts with {name}={pinned} pinned in "
                f"engine_kwargs; drop the pin (the Service derives {name} "
                "from the spec) or query within it"
            )

    def _merged_engine_kwargs(self, spec: QuerySpec) -> dict:
        merged = dict(self._engine_kwargs)
        for name in _ENGINE_STRATEGY_KNOBS.get(self.engine_name, ()):
            value = getattr(spec, name)
            if value is not None:
                merged[name] = value
        return merged

    def _build_engine(self, spec: QuerySpec) -> None:
        entry = ENGINE_REGISTRY[self.engine_name]
        merged = self._merged_engine_kwargs(spec)
        # The factory call may inject spec-derived defaults (k, k_max);
        # the rebuild comparison must see the *user-provided* kwargs only,
        # or every later spec would look like a config change.
        kwargs = dict(merged)
        self._id_map = None
        self._engine_live = True
        if entry.needs == "index":
            engine = entry.factory(
                self.index, metric=None, backend=None, backend_kwargs=None,
                **kwargs,
            )
        elif entry.needs == "rstar-index":
            if isinstance(self.index, RStarTreeIndex):
                tree = self.index
            else:
                # A dedicated R*-tree replica in the same id space: build
                # over the full matrix, replay the removals.  It does not
                # observe future churn, so it is rebuilt like a snapshot.
                tree = RStarTreeIndex(self.index.points, metric=self.metric)
                for point_id in np.flatnonzero(~self._active_mask()):
                    tree.remove(int(point_id))
                self._engine_live = False
            engine = entry.factory(
                tree, metric=None, backend=None, backend_kwargs=None, **kwargs
            )
        elif entry.needs == "data":
            active = self.index.active_ids()
            if active.shape[0] == self.index.points.shape[0]:
                points = self.index.points
            else:
                points = self.index.points[active]
                self._id_map = active
            for knob, value in kwargs_for_k(self.engine_name, spec.k).items():
                kwargs.setdefault(knob, value)
            engine = entry.factory(
                points, metric=self.metric, backend=None, backend_kwargs=None,
                **kwargs,
            )
            self._engine_live = False
        else:  # pragma: no cover - guarded in __init__
            raise ValueError(f"unsupported engine family {entry.needs!r}")
        self._engine = engine
        self._engine_epoch = self._epoch
        self._engine_built_k = spec.k
        self._engine_built_kwargs = merged

    def _active_mask(self) -> np.ndarray:
        mask = np.zeros(self.index.points.shape[0], dtype=bool)
        mask[self.index.active_ids()] = True
        return mask

    # ------------------------------------------------------------------
    # Id translation for snapshot engines
    # ------------------------------------------------------------------
    def _to_engine_index(self, query_index: int) -> int:
        if self._id_map is None:
            return int(query_index)
        pos = int(np.searchsorted(self._id_map, query_index))
        if pos >= self._id_map.shape[0] or self._id_map[pos] != query_index:
            raise KeyError(f"point id {query_index} has been removed")
        return pos

    def _map_result(self, result: RkNNResult) -> RkNNResult:
        if self._id_map is None:
            return result
        return RkNNResult(
            ids=self._id_map[result.ids],
            k=result.k,
            t=result.t,
            lazy_accepted_ids=self._id_map[result.lazy_accepted_ids],
            stats=result.stats,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve_spec(self, spec: QuerySpec | None = None, **overrides) -> QuerySpec:
        """The effective (validated) spec for one call."""
        base = self.defaults if spec is None else spec
        if not isinstance(base, QuerySpec):
            raise TypeError(f"spec must be a QuerySpec, got {type(base).__name__}")
        return base.replace(**overrides) if overrides else base

    def query(
        self,
        query=None,
        *,
        query_index: int | None = None,
        spec: QuerySpec | None = None,
        **overrides,
    ) -> RkNNResult:
        """One reverse-kNN query under the resolved spec.

        Exactly one of ``query`` (raw point) or ``query_index`` (member
        id) must be given; keyword overrides (``k=5``, ``t=4.0``, ...)
        patch the default spec for this call only.
        """
        spec = self.resolve_spec(spec, **overrides)
        engine = self.engine(spec)
        if query_index is not None:
            query_index = self._to_engine_index(query_index)
        result = engine.query(
            query, query_index=query_index, k=spec.k, **spec.knobs_for(engine)
        )
        return self._map_result(result)

    def query_batch(
        self,
        queries=None,
        *,
        query_indices=None,
        spec: QuerySpec | None = None,
        **overrides,
    ) -> list[RkNNResult]:
        """Many queries in one engine pass (vectorized where the engine
        supports it), one :class:`RkNNResult` per input row/id."""
        spec = self.resolve_spec(spec, **overrides)
        engine = self.engine(spec)
        if query_indices is not None:
            query_indices = [
                self._to_engine_index(int(qi)) for qi in query_indices
            ]
        results = engine.query_batch(
            queries,
            query_indices=query_indices,
            k=spec.k,
            **spec.knobs_for(engine, batch=True),
        )
        return [self._map_result(result) for result in results]

    def query_all(
        self, *, spec: QuerySpec | None = None, **overrides
    ) -> dict[int, RkNNResult]:
        """The RkNN self-join: ``{point_id: result}`` over all members."""
        spec = self.resolve_spec(spec, **overrides)
        engine = self.engine(spec)
        results = engine.query_all(k=spec.k, **spec.knobs_for(engine, batch=True))
        if self._id_map is None:
            return results
        return {
            int(self._id_map[local]): self._map_result(result)
            for local, result in results.items()
        }

    # ------------------------------------------------------------------
    # Bichromatic routing
    # ------------------------------------------------------------------
    def bichromatic(self, clients):
        """A bichromatic engine with this service's members as *services*.

        ``clients`` is an ``(m, dim)`` array (indexed with this
        service's backend) or a prebuilt client index.  Build once and
        reuse when issuing many query rounds against the same client set.
        """
        from repro.core.bichromatic import BichromaticRDT

        if isinstance(clients, Index):
            client_index = clients
        else:
            client_index = create_index(
                self.backend_name, clients, metric=self.metric,
                **self._backend_kwargs,
            )
        return BichromaticRDT(client_index, self.index)

    def query_bichromatic(
        self,
        queries,
        clients,
        *,
        spec: QuerySpec | None = None,
        **overrides,
    ):
        """Bichromatic RkNN at prospective service locations.

        ``queries`` is one point (returns one result) or ``(m, dim)``
        rows (returns a list); answers are ids into ``clients``.
        """
        spec = self.resolve_spec(spec, **overrides)
        engine = self.bichromatic(clients)
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            return engine.query(queries, k=spec.k, t=spec.t)
        return engine.query_batch(queries, k=spec.k, t=spec.t)

    # ------------------------------------------------------------------
    # Lifecycle: churn, compaction, persistence
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        """Insert a member point; returns its id.

        Live engines (RDT, the approximate strategies) observe the churn
        on their own; snapshot engines are rebuilt on their next query.
        """
        point_id = self.index.insert(point)
        self._epoch += 1
        return point_id

    def remove(self, point_id: int) -> None:
        """Remove a member point by id (same invalidation as insert)."""
        self.index.remove(int(point_id))
        self._epoch += 1

    def compact(self) -> bool:
        """Pass through to the backend's tombstone compaction, if any.

        Returns ``True`` when the backend compacted, ``False`` when it
        has nothing to compact (no tombstone mechanism).
        """
        compact = getattr(self.index, "compact", None)
        if compact is None:
            return False
        compact()
        return True

    def save(self, path) -> pathlib.Path:
        """Persist the service to one ``.npz`` payload.

        Stores the full point matrix (removed rows included, so ids
        survive), the active mask, and a JSON header with metric,
        backend/engine names, kwargs, and the default spec.  The backend
        tree itself is *not* serialized — :meth:`load` rebuilds it with
        the deterministic bulk build and replays the removals, which
        round-trips ``query_all`` bit-identically.
        """
        from repro import __version__

        metric_meta = {"name": self.metric.name}
        if hasattr(self.metric, "p"):
            metric_meta["p"] = float(self.metric.p)
        meta = {
            "format_version": SERVICE_FORMAT_VERSION,
            "library_version": __version__,
            "backend": self.backend_name,
            "engine": self.engine_name,
            "metric": metric_meta,
            "defaults": asdict(self.defaults),
            "backend_kwargs": self._backend_kwargs,
            "engine_kwargs": self._engine_kwargs,
        }
        try:
            header = json.dumps(meta, sort_keys=True)
        except TypeError as exc:
            raise TypeError(
                "backend_kwargs/engine_kwargs must be JSON-serializable "
                f"to save a Service: {exc}"
            ) from None
        path = pathlib.Path(path)
        with open(path, "wb") as fh:
            np.savez(
                fh,
                points=self.index.points,
                active=self._active_mask(),
                meta=np.asarray(header),
            )
        return path

    @classmethod
    def load(cls, path) -> "Service":
        """Rebuild a service saved by :meth:`save` (see there).

        Replaying removals requires the backend to support ``remove``
        when the payload contains inactive points.
        """
        with np.load(pathlib.Path(path), allow_pickle=False) as payload:
            points = np.array(payload["points"], dtype=np.float64)
            active = np.array(payload["active"], dtype=bool)
            meta = json.loads(str(payload["meta"][()]))
        version = meta.get("format_version")
        if version != SERVICE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported Service payload version {version!r} "
                f"(this build reads version {SERVICE_FORMAT_VERSION})"
            )
        metric_meta = dict(meta["metric"])
        metric = get_metric(metric_meta.pop("name"), **metric_meta)
        service = cls(
            points,
            backend=meta["backend"],
            engine=meta["engine"],
            metric=metric,
            defaults=QuerySpec(**meta["defaults"]),
            backend_kwargs=meta["backend_kwargs"],
            engine_kwargs=meta["engine_kwargs"],
        )
        for point_id in np.flatnonzero(~active):
            service.index.remove(int(point_id))
        if not active.all():
            service._epoch += 1
        return service
