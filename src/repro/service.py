"""The one front door: a Service facade over backends, engines, and specs.

Everything the toolkit can do to a dataset — exact RDT/RDT+ queries,
approximate strategies, competitor baselines, bichromatic queries, dynamic
updates, persistence — is reachable from one object::

    import repro

    svc = repro.Service(data, backend="kd", engine="rdt+",
                        defaults=repro.QuerySpec(k=10, t=8.0))
    result = svc.query(query_index=7)            # defaults apply
    batch  = svc.query_batch(query_indices=ids, t=4.0)   # per-call override
    join   = svc.query_all()                     # the RkNN self-join
    svc.insert(point); svc.remove(3)             # engines follow the churn
    svc.save("svc.npz"); svc2 = repro.Service.load("svc.npz")

The facade owns three responsibilities the call sites used to duplicate:

**Parameter routing** — every query call resolves one :class:`QuerySpec`
(defaults, optionally overridden per call), validates it in one place,
and forwards only the knobs the active engine understands
(:attr:`~repro.core.protocol.EngineBase.query_knobs`); ``t`` reaches RDT
but not the approximate engines, ``alpha`` reaches SFT, strategy knobs
(``margin``/``sample_size``/``n_tables``/``ef``/``graph_m``) trigger an
engine rebuild.  Unknown knob names fail fast with the valid list.

**Lifecycle** — the backend index is built once (bulk path); engines are
built lazily from the registry (:func:`repro.create_engine`) and rebuilt
automatically when they need it: every engine after any insert/remove
(the index :attr:`~repro.indexes.base.Index.version` is the epoch
signal), ``rdnn`` additionally when the requested ``k`` changes,
``mrknncop`` when ``k`` exceeds its fitted ``k_max``.  Engines answering
in dense snapshot ids are transparently translated back into the
service's id space, so callers always see index ids regardless of the
engine family.

**Concurrency** — the Service is split into an exclusive *write path*
and a lock-free *read path* (DESIGN.md "Concurrency & versioning").
Mutations serialize on a writer lock; each one bumps the backend's
version and atomically publishes a fresh ``(epoch, snapshot)`` head,
where the snapshot is the backend's copy-on-read
:meth:`~repro.indexes.base.Index.snapshot` view and the epoch is the
version it pins.  Queries pin the latest published
``(epoch, snapshot, engine)`` triple with plain attribute reads — they
never block behind inserts.  Engine rebuilds happen off the read path
under a dedicated rebuild lock and are published with one assignment;
while a rebuild is in flight, other readers keep serving the previous
published state (a *stale but consistent* older epoch — never torn
data).  Backends whose live structure cannot be mutated under readers
(:attr:`~repro.indexes.base.Index.snapshot_stable` is False) are gated
by a :class:`~repro.utils.concurrency.ReadWriteLock` that drains
in-flight queries before each mutation.  :meth:`query_versioned` exposes
the epoch each answer was computed against.

**Persistence** — :meth:`Service.save` writes a single ``.npz`` payload
(point matrix including removed rows, the active mask, metric, backend +
engine names and kwargs, default spec, and — for ``approx-graph`` — the
strategy's base-layer adjacency) and :meth:`Service.load` rebuilds the
tree via the backends' deterministic bulk builds and replays the
removals, so a round trip reproduces ``query_all`` bit-identically.
"""

from __future__ import annotations

import difflib
import json
import pathlib
import threading
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields, replace

import numpy as np

from repro.core.result import RkNNResult
from repro.distances import get_metric
from repro.engines import ENGINE_REGISTRY, kwargs_for_k
from repro.indexes import RStarTreeIndex, create_index, resolve_index_name
from repro.indexes.base import Index
from repro.utils.concurrency import ReadWriteLock
from repro.utils.validation import (
    check_k,
    check_positive_int,
    check_scale_parameter,
)

__all__ = ["QuerySpec", "Service", "SERVICE_FORMAT_VERSION"]

#: Bumped whenever the ``.npz`` payload layout changes incompatibly.
SERVICE_FORMAT_VERSION = 3

#: Payload versions this build can read.  Version 1 predates the dtype
#: knob: its payloads are always float64 and carry no storage-dtype
#: metadata, so they load exactly as before.  Version 3 adds optional
#: graph-adjacency arrays for the ``approx-graph`` engine; version <= 2
#: payloads simply fall back to the strategy's deterministic rebuild.
_READABLE_FORMAT_VERSIONS = (1, 2, 3)

#: The npz keys that carry the serialized approx-graph base layer
#: (format version 3; optional — absent for every other engine).
_GRAPH_PAYLOAD_KEYS = (
    "graph_node_ids",
    "graph_levels",
    "graph_neighbors",
    "graph_neighbor_dists",
)

#: Storage dtypes the service accepts (the Metric dtype policy).
_DTYPE_NAMES = ("float32", "float64")


def _check_dtype_name(dtype) -> str:
    """Normalize a dtype knob to its canonical name, or raise."""
    name = np.dtype(dtype).name
    if name not in _DTYPE_NAMES:
        raise ValueError(
            f"dtype must be one of {_DTYPE_NAMES}, got {name!r}"
        )
    return name

_FILTER_MODES = ("auto", "sequential", "vectorized")

#: QuerySpec fields that configure an approximate *strategy* rather than a
#: single query; changing one rebuilds the engine.
_STRATEGY_KNOBS = ("margin", "sample_size", "n_tables", "ef", "graph_m")

#: Which strategy knobs each engine family's constructor understands —
#: the construction-time analogue of `query_knobs` (knobs an engine does
#: not understand are carried by the spec but never forwarded).
_ENGINE_STRATEGY_KNOBS = {
    "approx-sampled": ("margin", "sample_size"),
    "approx-lsh": ("n_tables",),
    "approx-graph": ("ef", "graph_m"),
}

#: Kwarg names people reach for when they mean ``query_index`` — the
#: member-id argument of query()/query_batch(), which is not a spec knob.
_QUERY_INDEX_ALIASES = frozenset(
    {"member", "member_id", "query_id", "point_id", "index", "id", "qid",
     "query_index"}
)

#: Constructor knobs recoverable from a prebuilt index adopted by a
#: Service, so save()/load() can rebuild an equivalent tree.
_BACKEND_KNOB_ATTRS = ("leaf_size", "n_candidates", "capacity", "k")


@dataclass(frozen=True)
class QuerySpec:
    """One validated bundle of query-time parameters for any engine.

    A spec is engine-agnostic: it may carry knobs the active engine does
    not understand, and only the understood subset is forwarded (see
    :meth:`knobs_for`).  Validation happens once, here, instead of in
    every engine's entry points.
    """

    #: neighborhood size (every engine)
    k: int = 10
    #: scale parameter for the dimensional test (RDT/RDT+/bichromatic)
    t: float = 8.0
    #: batched filter strategy for RDT (see :meth:`repro.RDT.query_batch`)
    filter_mode: str = "auto"
    #: candidate-pool factor for SFT (``None`` = the engine's default)
    alpha: float | None = None
    #: decisive-accept margin of the sampled strategy (rebuilds the engine)
    margin: float | None = None
    #: subsample size of the sampled strategy (rebuilds the engine)
    sample_size: int | None = None
    #: table count of the LSH strategy (rebuilds the engine)
    n_tables: int | None = None
    #: beam width of the graph strategy (rebuilds the engine)
    ef: int | None = None
    #: forward-edge degree of the graph strategy (rebuilds the engine)
    graph_m: int | None = None
    #: expected storage dtype ("float32"/"float64"); a spec carrying one
    #: refuses to run against a service with a different point dtype
    dtype: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "k", check_k(self.k))
        object.__setattr__(self, "t", check_scale_parameter(self.t))
        if self.dtype is not None:
            object.__setattr__(self, "dtype", _check_dtype_name(self.dtype))
        if self.filter_mode not in _FILTER_MODES:
            raise ValueError(
                f"filter_mode must be one of {_FILTER_MODES}, "
                f"got {self.filter_mode!r}"
            )
        if self.alpha is not None and self.alpha < 1.0:
            raise ValueError(f"alpha must be >= 1, got {self.alpha}")
        if self.margin is not None and not 0.0 <= self.margin <= 1.0:
            raise ValueError(f"margin must lie in [0, 1], got {self.margin}")
        for name in ("sample_size", "n_tables", "ef", "graph_m"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(
                    self, name, check_positive_int(value, name=name)
                )

    def replace(self, **overrides) -> "QuerySpec":
        """A new spec with the given fields overridden (re-validated).

        Unknown names fail here, up front, with the valid knob list —
        instead of surfacing as a bare ``dataclasses.replace`` TypeError
        three frames deep in the query path (``sv.query(kk=3)``,
        ``sv.query(member=3)``).
        """
        valid = tuple(f.name for f in fields(self))
        unknown = sorted(set(overrides) - set(valid))
        if unknown:
            bad = unknown[0]
            if bad.lower() in _QUERY_INDEX_ALIASES:
                hint = (
                    " (to query a member point, pass query_index=... to "
                    "query()/query_batch(), not a spec knob)"
                )
            else:
                close = difflib.get_close_matches(bad, valid, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise TypeError(
                f"unknown query knob {bad!r}{hint}; valid knobs: "
                f"{', '.join(sorted(valid))}"
            )
        return replace(self, **overrides)

    def knobs_for(self, engine, batch: bool = False) -> dict:
        """The query-time kwargs of this spec that ``engine`` understands."""
        names = tuple(getattr(engine, "query_knobs", ()))
        if batch:
            names += tuple(getattr(engine, "batch_knobs", ()))
        return {
            name: getattr(self, name)
            for name in names
            if getattr(self, name, None) is not None
        }

    def strategy_kwargs(self) -> dict:
        """The engine-construction knobs carried by this spec."""
        return {
            name: getattr(self, name)
            for name in _STRATEGY_KNOBS
            if getattr(self, name) is not None
        }


@dataclass(frozen=True)
class _Head:
    """The write path's atomically published ``(epoch, snapshot)`` pair."""

    epoch: int
    snapshot: Index


@dataclass(frozen=True)
class _ReadState:
    """One published ``(epoch, snapshot, engine)`` triple the read path pins.

    Immutable once published: readers that grabbed it keep a fully
    consistent view of one epoch even while the write path churns and
    newer states are published over it.
    """

    epoch: int
    snapshot: Index
    engine: object
    #: merged engine-construction kwargs the engine was built with — the
    #: compatibility signature a spec is checked against
    built_kwargs: dict
    #: the spec ``k`` at build time (fixed-k engines rebuild on change)
    built_k: int
    #: service id per dense engine row, for engines answering in dense
    #: snapshot ids after removals (``None`` = identity)
    id_map: np.ndarray | None

    def to_engine_index(self, query_index: int) -> int:
        if self.id_map is None:
            return int(query_index)
        pos = int(np.searchsorted(self.id_map, query_index))
        if pos >= self.id_map.shape[0] or self.id_map[pos] != query_index:
            raise KeyError(f"point id {query_index} has been removed")
        return pos

    def map_result(self, result: RkNNResult) -> RkNNResult:
        if self.id_map is None:
            return result
        return RkNNResult(
            ids=self.id_map[result.ids],
            k=result.k,
            t=result.t,
            lazy_accepted_ids=self.id_map[result.lazy_accepted_ids],
            stats=result.stats,
        )


class Service:
    """One dataset, one backend, one engine — swappable by name.

    Parameters
    ----------
    data:
        ``(n, dim)`` member points, or a prebuilt
        :class:`~repro.indexes.Index` to adopt as the backend.
    backend:
        Index backend name or alias (``"kd"``, ``"rstar"``, ``"linear"``,
        ...); ignored when ``data`` is already an index.
    engine:
        Engine registry name (see :data:`repro.ENGINE_REGISTRY`).  The
        bichromatic engine is not a per-dataset engine — use
        :meth:`query_bichromatic` instead.
    metric:
        Metric name or instance (only when building from raw data).
    dtype:
        Storage dtype policy, ``"float32"`` or ``"float64"`` (default).
        When building from raw data this constructs the metric with the
        given dtype (conflicting metric instances raise); when adopting
        a prebuilt index it is a cross-check against the index's storage.
        The dtype survives :meth:`save`/:meth:`load`.
    defaults:
        The :class:`QuerySpec` applied when a query call does not
        override it.
    backend_kwargs / engine_kwargs:
        Forwarded to the backend / engine constructors.  Both must be
        JSON-serializable for :meth:`save`.

    Queries (:meth:`query`, :meth:`query_batch`, :meth:`query_all`) are
    safe to issue from many threads concurrently with :meth:`insert` /
    :meth:`remove` / :meth:`compact`; every answer is exact with respect
    to one published epoch (see the module docstring).  :meth:`save`,
    :meth:`load`, and :meth:`bichromatic` are not part of the concurrent
    surface — call them without racing writers.
    """

    def __init__(
        self,
        data,
        *,
        backend: str = "kd",
        engine: str = "rdt+",
        metric=None,
        dtype=None,
        defaults: QuerySpec | None = None,
        backend_kwargs: dict | None = None,
        engine_kwargs: dict | None = None,
        parallel=None,
    ) -> None:
        engine = str(engine).lower()
        if engine not in ENGINE_REGISTRY:
            raise ValueError(
                f"unknown engine {engine!r}; known: {sorted(ENGINE_REGISTRY)}"
            )
        if engine == "bichromatic":
            raise ValueError(
                "the bichromatic engine needs a second color per call; "
                "use Service.query_bichromatic(queries, clients=...) instead"
            )
        self.engine_name = engine
        self.defaults = defaults if defaults is not None else QuerySpec()
        if not isinstance(self.defaults, QuerySpec):
            raise TypeError(
                f"defaults must be a QuerySpec, got {type(self.defaults).__name__}"
            )
        self._backend_kwargs = dict(backend_kwargs or {})
        self._engine_kwargs = dict(engine_kwargs or {})
        if isinstance(data, Index):
            if metric is not None:
                raise ValueError(
                    "metric only applies when building from raw data; the "
                    "given index already carries one"
                )
            if dtype is not None and _check_dtype_name(dtype) != (
                data.points.dtype.name
            ):
                raise ValueError(
                    f"dtype={_check_dtype_name(dtype)!r} conflicts with the "
                    f"adopted index's {data.points.dtype.name!r} storage; "
                    "build the index with the desired metric dtype instead"
                )
            if backend_kwargs:
                raise ValueError(
                    "backend_kwargs only apply when building from raw data"
                )
            self.index = data
            self.backend_name = resolve_index_name(data.name)
            # Recover the adopted tree's constructor knobs so save()/load()
            # rebuilds an equivalent backend (an RdNN-tree's required k
            # included).  Non-attribute knobs (e.g. sampling seeds) fall
            # back to constructor defaults on reload — answers are
            # unchanged, only internal tree shape may differ.
            self._backend_kwargs = {
                name: getattr(data, name)
                for name in _BACKEND_KNOB_ATTRS
                if hasattr(data, name)
            }
        else:
            self.backend_name = resolve_index_name(backend)
            if dtype is not None:
                # The dtype knob is the metric's numeric policy;
                # get_metric raises on a conflicting metric instance.
                metric = get_metric(metric, dtype=_check_dtype_name(dtype))
            self.index = create_index(
                self.backend_name, data, metric=metric, **self._backend_kwargs
            )
        # --- concurrency state (module docstring "Concurrency") ---
        # serializes insert/remove/compact
        self._writer_lock = threading.RLock()
        # serializes engine (re)builds, off the read path
        self._rebuild_lock = threading.Lock()
        # drains in-flight readers before mutating backends whose live
        # structure is not safe to change under concurrent snapshots
        self._gate = None if self.index.snapshot_stable else ReadWriteLock()
        self._published: _ReadState | None = None
        self._head = _Head(self.index.version, self.index.snapshot())
        # --- attached resources (closed by close()) ---
        self._parallel_config = self._normalize_parallel(parallel)
        self._parallel = None
        self._closeables: list = []
        self._closed = False

    def _normalize_parallel(self, parallel) -> dict | None:
        """Validate the ``parallel=`` knob into executor kwargs (or None).

        Accepts ``None`` (in-process, the default), ``True`` (one worker
        per core), an int worker count, or a dict of
        :class:`repro.parallel.ParallelExecutor` knobs (``workers``,
        ``start_method``, ``block_size``).
        """
        if parallel is None or parallel is False:
            return None
        if parallel is True:
            config = {}
        elif isinstance(parallel, int):
            config = {"workers": parallel}
        elif isinstance(parallel, dict):
            allowed = {"workers", "start_method", "block_size"}
            unknown = set(parallel) - allowed
            if unknown:
                raise ValueError(
                    f"unknown parallel option(s) {sorted(unknown)}; "
                    f"allowed: {sorted(allowed)}"
                )
            config = dict(parallel)
        else:
            raise TypeError(
                "parallel must be None, True, an int worker count, or a "
                f"dict of executor options, got {type(parallel).__name__}"
            )
        if ENGINE_REGISTRY[self.engine_name].needs != "index":
            raise ValueError(
                "parallel execution supports index-family engines only; "
                f"{self.engine_name!r} needs "
                f"{ENGINE_REGISTRY[self.engine_name].needs!r}"
            )
        return config

    def _parallel_executor(self):
        """The lazily built executor behind the ``parallel=`` knob."""
        if self._closed:
            raise RuntimeError("cannot query a closed Service in parallel")
        if self._parallel is None:
            from repro.parallel import ParallelExecutor

            self._parallel = ParallelExecutor(self, **self._parallel_config)
        return self._parallel

    # ------------------------------------------------------------------
    # Lifecycle: attached resources
    # ------------------------------------------------------------------
    def register_closeable(self, resource) -> None:
        """Attach a resource whose ``close()`` composes with :meth:`close`.

        The serving layer uses this (a :class:`repro.serving.QueryCoalescer`
        registers itself on construction) so one ``service.close()`` —
        or leaving the ``with`` block — tears down dispatcher threads,
        the parallel worker pool, and every shared-memory segment.
        """
        self._closeables.append(resource)

    def close(self) -> None:
        """Tear down attached resources (idempotent).

        Closes registered closeables (coalescers first, so no dispatcher
        keeps querying a dead pool), then the parallel executor — worker
        pool joined, shared-memory segments unlinked.  In-process
        queries keep working on a closed service; parallel-routed ones
        raise.
        """
        if self._closed:
            return
        self._closed = True
        for resource in self._closeables:
            try:
                resource.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        self._closeables = []
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def metric(self):
        return self.index.metric

    @property
    def dim(self) -> int:
        return self.index.dim

    @property
    def size(self) -> int:
        return self.index.size

    @property
    def epoch(self) -> int:
        """The currently published epoch (the backend's data version)."""
        return self._head.epoch

    def __len__(self) -> int:
        return self.index.size

    def active_ids(self) -> np.ndarray:
        return self.index.active_ids()

    def __repr__(self) -> str:
        return (
            f"Service(engine={self.engine_name!r}, "
            f"backend={self.backend_name!r}, n={self.size}, dim={self.dim}, "
            f"metric={self.metric.name}, defaults={self.defaults!r})"
        )

    # ------------------------------------------------------------------
    # Read path: pin a published (epoch, snapshot, engine) state
    # ------------------------------------------------------------------
    @contextmanager
    def _read_guard(self):
        """Reader side of the drain gate; a no-op on stable backends."""
        if self._gate is None:
            yield
        else:
            with self._gate.read():
                yield

    def engine(self, spec: QuerySpec | None = None):
        """The active engine, (re)built lazily for the given spec."""
        spec = self.defaults if spec is None else spec
        with self._read_guard():
            return self._pin_state(spec).engine

    def _pin_state(self, spec: QuerySpec) -> _ReadState:
        """The lock-free read path: the latest published state, or a rebuild.

        The fast path is two attribute reads and an integer compare.  On
        a miss, the rebuild lock is tried *non-blocking*: if another
        thread is already rebuilding and the last published state still
        answers this spec, that stale-but-consistent older epoch is
        served instead of waiting (MVCC semantics — never torn data, at
        worst a recently superseded version).  Non-snapshot-stable
        backends skip the fallback: their old snapshots share structure
        the next mutation may corrupt, so reads always move forward.
        """
        head = self._head
        state = self._published
        if (
            state is not None
            and state.epoch == head.epoch
            and self._state_serves(state, spec)
        ):
            return state
        if not self._rebuild_lock.acquire(blocking=False):
            if (
                state is not None
                and self.index.snapshot_stable
                and self._state_serves(state, spec)
            ):
                return state
            self._rebuild_lock.acquire()
        try:
            head = self._head
            state = self._published
            if (
                state is not None
                and state.epoch == head.epoch
                and self._state_serves(state, spec)
            ):
                return state
            state = self._build_state(head, spec)
            self._published = state
            return state
        finally:
            self._rebuild_lock.release()

    def _state_serves(self, state: _ReadState, spec: QuerySpec) -> bool:
        """Whether a published state can answer the given spec."""
        if self._merged_engine_kwargs(spec) != state.built_kwargs:
            return False
        if self.engine_name == "rdnn" and spec.k != state.built_k:
            # Rebuilding for the new k only helps when the k was ours to
            # choose; a user-pinned k would survive the rebuild and fail
            # identically, so refuse up front instead of churning O(n^2)
            # tree builds per query.
            self._check_k_pin("k", spec.k, self._engine_kwargs.get("k"))
            return False
        if self.engine_name == "mrknncop" and spec.k > state.engine.k_max:
            self._check_k_pin("k_max", spec.k, self._engine_kwargs.get("k_max"))
            return False
        return True

    @staticmethod
    def _check_k_pin(name: str, wanted_k: int, pinned) -> None:
        if pinned is not None and (
            wanted_k > pinned if name == "k_max" else wanted_k != pinned
        ):
            raise ValueError(
                f"k={wanted_k} conflicts with {name}={pinned} pinned in "
                f"engine_kwargs; drop the pin (the Service derives {name} "
                "from the spec) or query within it"
            )

    def _merged_engine_kwargs(self, spec: QuerySpec) -> dict:
        merged = dict(self._engine_kwargs)
        for name in _ENGINE_STRATEGY_KNOBS.get(self.engine_name, ()):
            value = getattr(spec, name)
            if value is not None:
                merged[name] = value
        return merged

    def _build_state(self, head: _Head, spec: QuerySpec) -> _ReadState:
        """Build an engine over the head's snapshot (never the live index).

        Every engine family reads the frozen snapshot, so a rebuild
        racing the write path still derives all of its state from one
        epoch.  Snapshot-id engines get the id translation table from the
        same snapshot.
        """
        entry = ENGINE_REGISTRY[self.engine_name]
        merged = self._merged_engine_kwargs(spec)
        # The factory call may inject spec-derived defaults (k, k_max);
        # the rebuild comparison must see the *user-provided* kwargs only,
        # or every later spec would look like a config change.
        kwargs = dict(merged)
        snap = head.snapshot
        id_map: np.ndarray | None = None
        if entry.needs == "index":
            engine = entry.factory(
                snap, metric=None, backend=None, backend_kwargs=None,
                **kwargs,
            )
        elif entry.needs == "rstar-index":
            if isinstance(self.index, RStarTreeIndex):
                tree = snap
            else:
                # A dedicated R*-tree replica in the same id space: build
                # over the snapshot's full matrix, replay its removals.
                tree = RStarTreeIndex(snap.points, metric=self.metric)
                mask = np.zeros(snap.points.shape[0], dtype=bool)
                mask[snap.active_ids()] = True
                for point_id in np.flatnonzero(~mask):
                    tree.remove(int(point_id))
            engine = entry.factory(
                tree, metric=None, backend=None, backend_kwargs=None, **kwargs
            )
        elif entry.needs == "data":
            active = snap.active_ids()
            if active.shape[0] == snap.points.shape[0]:
                points = snap.points
            else:
                points = snap.points[active]
                id_map = active
            for knob, value in kwargs_for_k(self.engine_name, spec.k).items():
                kwargs.setdefault(knob, value)
            engine = entry.factory(
                points, metric=self.metric, backend=None, backend_kwargs=None,
                **kwargs,
            )
        else:  # pragma: no cover - guarded in __init__
            raise ValueError(f"unsupported engine family {entry.needs!r}")
        if engine.built_at_version is None:
            # Data-snapshot engines cannot bind a version themselves —
            # stamp the epoch so is_stale(live_index) works uniformly.
            engine.built_at_version = head.epoch
        return _ReadState(
            epoch=head.epoch,
            snapshot=snap,
            engine=engine,
            built_kwargs=merged,
            built_k=spec.k,
            id_map=id_map,
        )

    def _active_mask(self) -> np.ndarray:
        mask = np.zeros(self.index.points.shape[0], dtype=bool)
        mask[self.index.active_ids()] = True
        return mask

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def resolve_spec(self, spec: QuerySpec | None = None, **overrides) -> QuerySpec:
        """The effective (validated) spec for one call."""
        base = self.defaults if spec is None else spec
        if not isinstance(base, QuerySpec):
            raise TypeError(f"spec must be a QuerySpec, got {type(base).__name__}")
        resolved = base.replace(**overrides) if overrides else base
        stored = self.index.points.dtype.name
        if resolved.dtype is not None and resolved.dtype != stored:
            raise ValueError(
                f"spec expects dtype {resolved.dtype!r} but this service "
                f"stores {stored!r} points"
            )
        return resolved

    def query(
        self,
        query=None,
        *,
        query_index: int | None = None,
        spec: QuerySpec | None = None,
        **overrides,
    ) -> RkNNResult:
        """One reverse-kNN query under the resolved spec.

        Exactly one of ``query`` (raw point) or ``query_index`` (member
        id) must be given; keyword overrides (``k=5``, ``t=4.0``, ...)
        patch the default spec for this call only.
        """
        return self.query_versioned(
            query, query_index=query_index, spec=spec, **overrides
        )[1]

    def query_versioned(
        self,
        query=None,
        *,
        query_index: int | None = None,
        spec: QuerySpec | None = None,
        **overrides,
    ) -> tuple[int, RkNNResult]:
        """Like :meth:`query`, returning ``(epoch, result)``.

        The epoch names the published snapshot the answer is exact
        against — the currency for cache invalidation
        (:class:`repro.serving.ResultCache`) and for the linearizability
        checks in the threaded test harness.
        """
        spec = self.resolve_spec(spec, **overrides)
        with self._read_guard():
            state = self._pin_state(spec)
            engine = state.engine
            if query_index is not None:
                query_index = state.to_engine_index(query_index)
            result = engine.query(
                query, query_index=query_index, k=spec.k,
                **spec.knobs_for(engine),
            )
        return state.epoch, state.map_result(result)

    def query_batch(
        self,
        queries=None,
        *,
        query_indices=None,
        spec: QuerySpec | None = None,
        **overrides,
    ) -> list[RkNNResult]:
        """Many queries in one engine pass (vectorized where the engine
        supports it), one :class:`RkNNResult` per input row/id."""
        return self.query_batch_versioned(
            queries, query_indices=query_indices, spec=spec, **overrides
        )[1]

    def query_batch_versioned(
        self,
        queries=None,
        *,
        query_indices=None,
        spec: QuerySpec | None = None,
        **overrides,
    ) -> tuple[int, list[RkNNResult]]:
        """Like :meth:`query_batch`, returning ``(epoch, results)``."""
        spec = self.resolve_spec(spec, **overrides)
        if self._parallel_config is not None:
            return self._parallel_executor().query_batch_versioned(
                queries, query_indices=query_indices, spec=spec
            )
        with self._read_guard():
            state = self._pin_state(spec)
            engine = state.engine
            if query_indices is not None:
                query_indices = [
                    state.to_engine_index(int(qi)) for qi in query_indices
                ]
            results = engine.query_batch(
                queries,
                query_indices=query_indices,
                k=spec.k,
                **spec.knobs_for(engine, batch=True),
            )
        return state.epoch, [state.map_result(result) for result in results]

    def query_all(
        self, *, spec: QuerySpec | None = None, **overrides
    ) -> dict[int, RkNNResult]:
        """The RkNN self-join: ``{point_id: result}`` over all members."""
        return self.query_all_versioned(spec=spec, **overrides)[1]

    def query_all_versioned(
        self, *, spec: QuerySpec | None = None, **overrides
    ) -> tuple[int, dict[int, RkNNResult]]:
        """Like :meth:`query_all`, returning ``(epoch, results)``.

        With the ``parallel=`` knob set, the join fans out across the
        worker pool (:class:`repro.parallel.ParallelExecutor`) — same
        per-epoch answers, computed on every core.
        """
        spec = self.resolve_spec(spec, **overrides)
        if self._parallel_config is not None:
            return self._parallel_executor().query_all_versioned(spec=spec)
        with self._read_guard():
            state = self._pin_state(spec)
            engine = state.engine
            results = engine.query_all(
                k=spec.k, **spec.knobs_for(engine, batch=True)
            )
        if state.id_map is None:
            return state.epoch, results
        return state.epoch, {
            int(state.id_map[local]): state.map_result(result)
            for local, result in results.items()
        }

    # ------------------------------------------------------------------
    # Bichromatic routing
    # ------------------------------------------------------------------
    def bichromatic(self, clients):
        """A bichromatic engine with this service's members as *services*.

        ``clients`` is an ``(m, dim)`` array (indexed with this
        service's backend) or a prebuilt client index.  Build once and
        reuse when issuing many query rounds against the same client set.
        """
        from repro.core.bichromatic import BichromaticRDT

        if isinstance(clients, Index):
            client_index = clients
        else:
            client_index = create_index(
                self.backend_name, clients, metric=self.metric,
                **self._backend_kwargs,
            )
        return BichromaticRDT(client_index, self.index)

    def query_bichromatic(
        self,
        queries,
        clients,
        *,
        spec: QuerySpec | None = None,
        **overrides,
    ):
        """Bichromatic RkNN at prospective service locations.

        ``queries`` is one point (returns one result) or ``(m, dim)``
        rows (returns a list); answers are ids into ``clients``.
        """
        spec = self.resolve_spec(spec, **overrides)
        engine = self.bichromatic(clients)
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim == 1:
            return engine.query(queries, k=spec.k, t=spec.t)
        return engine.query_batch(queries, k=spec.k, t=spec.t)

    # ------------------------------------------------------------------
    # Write path: churn, compaction
    # ------------------------------------------------------------------
    @contextmanager
    def _write_guard(self):
        """Writer side of the drain gate; a no-op on stable backends."""
        if self._gate is None:
            yield
        else:
            with self._gate.write():
                yield

    def _publish(self) -> None:
        """Atomically publish the post-mutation ``(epoch, snapshot)`` head.

        One attribute assignment — readers observe either the previous
        head or this one, never a mixture.  Engine invalidation is
        deferred: the next query sees the epoch moved and rebuilds off
        the read path.
        """
        self._head = _Head(self.index.version, self.index.snapshot())

    def insert(self, point) -> int:
        """Insert a member point; returns its id.

        Serialized with other mutations on the writer lock; concurrent
        queries keep serving the previously published epoch until the
        new head lands.
        """
        with self._writer_lock:
            with self._write_guard():
                point_id = self.index.insert(point)
            self._publish()
        return point_id

    def remove(self, point_id: int) -> None:
        """Remove a member point by id (same publication as insert)."""
        with self._writer_lock:
            with self._write_guard():
                self.index.remove(int(point_id))
            self._publish()

    def compact(self) -> bool:
        """Pass through to the backend's tombstone compaction, if any.

        Returns ``True`` when the backend compacted, ``False`` when it
        has nothing to compact (no tombstone mechanism).
        """
        compact = getattr(self.index, "compact", None)
        if compact is None:
            return False
        with self._writer_lock:
            with self._write_guard():
                compact()
            self._publish()
        return True

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path, *, extra_meta: dict | None = None) -> pathlib.Path:
        """Persist the service to one ``.npz`` payload.

        Stores the full point matrix (removed rows included, so ids
        survive), the active mask, and a JSON header with metric,
        backend/engine names, kwargs, and the default spec.  The backend
        tree itself is *not* serialized — :meth:`load` rebuilds it with
        the deterministic bulk build and replays the removals, which
        round-trips ``query_all`` bit-identically.

        ``extra_meta`` rides along under the header's ``"extra"`` key for
        wrappers that persist additional configuration (e.g.
        :meth:`repro.parallel.ShardedService.save`); :meth:`load` ignores
        it, so every payload stays loadable as a plain Service.

        An ``approx-graph`` service additionally stores the strategy's
        base-layer adjacency (format version 3): rebuilding the graph is
        the expensive part of that engine, so :meth:`load` adopts the
        stored arrays instead of re-deriving them when the knobs match,
        and falls back to the deterministic rebuild otherwise.
        """
        from repro import __version__

        metric_meta = {"name": self.metric.name}
        if hasattr(self.metric, "p"):
            metric_meta["p"] = float(self.metric.p)
        metric_meta["dtype"] = self.metric.dtype.name
        meta = {
            "format_version": SERVICE_FORMAT_VERSION,
            "dtype": self.index.points.dtype.name,
            "library_version": __version__,
            "backend": self.backend_name,
            "engine": self.engine_name,
            "metric": metric_meta,
            "defaults": asdict(self.defaults),
            "backend_kwargs": self._backend_kwargs,
            "engine_kwargs": self._engine_kwargs,
        }
        if extra_meta is not None:
            meta["extra"] = extra_meta
        graph_arrays: dict[str, np.ndarray] = {}
        if self.engine_name == "approx-graph":
            strategy = self.engine().strategy
            strategy.ensure_current()
            graph_arrays = strategy.serialized_graph()
            meta["graph"] = {
                "graph_m": int(strategy.graph_m),
                "seed": int(strategy.seed),
            }
        try:
            header = json.dumps(meta, sort_keys=True)
        except TypeError as exc:
            raise TypeError(
                "backend_kwargs/engine_kwargs must be JSON-serializable "
                f"to save a Service: {exc}"
            ) from None
        path = pathlib.Path(path)
        with open(path, "wb") as fh:
            np.savez(
                fh,
                points=self.index.points,
                active=self._active_mask(),
                meta=np.asarray(header),
                **graph_arrays,
            )
        return path

    @classmethod
    def load(cls, path) -> "Service":
        """Rebuild a service saved by :meth:`save` (see there).

        Replaying removals requires the backend to support ``remove``
        when the payload contains inactive points.
        """
        path = pathlib.Path(path)
        graph_arrays: dict[str, np.ndarray] = {}
        with np.load(path, allow_pickle=False) as payload:
            points = np.array(payload["points"])
            active = np.array(payload["active"], dtype=bool)
            meta = json.loads(str(payload["meta"][()]))
            if all(key in payload.files for key in _GRAPH_PAYLOAD_KEYS):
                graph_arrays = {
                    key: np.array(payload[key]) for key in _GRAPH_PAYLOAD_KEYS
                }
        version = meta.get("format_version")
        if version not in _READABLE_FORMAT_VERSIONS:
            raise ValueError(
                f"cannot load Service payload {str(path)!r}: found "
                f"format_version {version!r}, readable: "
                f"{_READABLE_FORMAT_VERSIONS} (re-save with a matching "
                "library version)"
            )
        if version < 2:
            # Version 1 predates the dtype knob: payloads were always
            # written from float64 services, so coerce defensively and
            # leave the metric's (float64) default alone.
            points = points.astype(np.float64, copy=False)
        else:
            stored = _check_dtype_name(meta["dtype"])
            if points.dtype.name != stored:
                raise ValueError(
                    f"corrupt Service payload {str(path)!r}: header "
                    f"declares dtype {stored!r} but the point matrix is "
                    f"{points.dtype.name!r}"
                )
        metric_meta = dict(meta["metric"])
        metric = get_metric(metric_meta.pop("name"), **metric_meta)
        service = cls(
            points,
            backend=meta["backend"],
            engine=meta["engine"],
            metric=metric,
            defaults=QuerySpec(**meta["defaults"]),
            backend_kwargs=meta["backend_kwargs"],
            engine_kwargs=meta["engine_kwargs"],
        )
        for point_id in np.flatnonzero(~active):
            service.remove(int(point_id))
        if graph_arrays and service.engine_name == "approx-graph":
            # Adopt the stored adjacency only when the payload was built
            # with the same knobs the loaded engine will use; any mismatch
            # (including a missing/legacy header) keeps the deterministic
            # rebuild path, which is always correct, just slower.
            strategy = service.engine().strategy
            stored = meta.get("graph", {})
            if (
                stored.get("graph_m") == strategy.graph_m
                and stored.get("seed") == strategy.seed
            ):
                strategy.adopt_graph(
                    graph_arrays["graph_node_ids"],
                    graph_arrays["graph_levels"],
                    graph_arrays["graph_neighbors"],
                    graph_arrays["graph_neighbor_dists"],
                )
        return service
