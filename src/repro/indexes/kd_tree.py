"""KD-tree with best-first incremental nearest-neighbor search.

A classic axis-aligned space partitioning tree.  Internal nodes split on the
widest dimension of their bounding box at the median; leaves hold up to
``leaf_size`` points.  The incremental search maintains a single priority
queue mixing *points* (keyed by their exact distance) and *subtrees* (keyed
by the minimum possible distance to their bounding box); a point is emitted
only when it reaches the front of the queue, which guarantees nondecreasing
distance order.

The bounding-box lower bound is computed as ``d(q, clip(q, lo, hi))`` —
the closest point of an axis-aligned box under any ``L_p`` metric is the
coordinate-wise clamp of the query, so the same code is exact for Euclidean,
Manhattan, Chebyshev and general Minkowski metrics.

Inserts are supported (descend to the leaf and append, splitting oversized
leaves).  Removals deactivate the point in place and the tree compacts
itself once tombstones outnumber the configured live fraction: a full
rebuild over the surviving ids purges dead leaf slots and re-tightens every
bounding box (boxes only ever grow under inserts, so without compaction a
long insert/remove churn leaves the tree scanning tombstones and pruning
against stale volumes on every query).

The tree is **snapshot-stable** (see :attr:`repro.Index.snapshot_stable`):
every structural mutation is published atomically, so readers holding a
previously taken :meth:`~repro.indexes.base.Index.snapshot` stay
consistent while the live tree churns.  Concretely: leaf splits and
compactions build their replacement subtree fully before attaching it
with a single reference assignment; in-place bounding-box growth is
conservative (boxes only ever grow, so a reader sees pruning bounds at
worst looser than its snapshot requires); and ids appended to shared
leaf lists after a snapshot froze its mask are filtered bounds-safely
(``_live_list``) instead of trusted.

Batched ``knn_distances`` queries run a pruned block traversal: one
``clip`` + metric kernel evaluates the box lower bound of a node for every
active query row at once, and rows whose running k-th smallest distance
(shared :class:`~repro.indexes.batch_tools.KSmallestKeeper` pool) already
prunes the subtree are deactivated on entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

import numpy as np

from repro.indexes.base import Index
from repro.indexes.batch_tools import (
    KSmallestKeeper,
    box_lower_bounds,
    check_exclude_indices,
    mask_excluded,
)
from repro.indexes.build_tools import (
    apply_partition,
    partition_median,
    subtree_point_ids,
)
from repro.indexes.soa import FlatKDLayout, flatten_kd, kd_flat_descent
from repro.utils.priority_queue import MinPriorityQueue
from repro.utils.validation import (
    as_query_point,
    as_query_rows,
    check_k,
    check_positive_int,
)

__all__ = ["KDTreeIndex"]


@dataclass
class _Node:
    """One KD-tree node; a leaf iff ``point_ids`` is not None."""

    lo: np.ndarray
    hi: np.ndarray
    axis: int = -1
    split: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    point_ids: Optional[list[int]] = field(default=None)

    @property
    def is_leaf(self) -> bool:
        return self.point_ids is not None


class KDTreeIndex(Index):
    """Axis-aligned KD-tree supporting incremental forward NN search."""

    name = "kd-tree"
    supports_insert = True
    supports_remove = True
    snapshot_stable = True

    #: Rebuild the tree once the live fraction of ids stored in it drops
    #: below this threshold (see :meth:`remove`).
    compaction_threshold = 0.5

    #: Use the structure-of-arrays iterative descent for batched
    #: ``knn_distances`` (the recursive object-tree walk remains available
    #: for comparison benchmarks and as the semantics of record).
    use_flat_descent = True

    def __init__(self, data, metric=None, leaf_size: int = 16) -> None:
        super().__init__(data, metric)
        self.leaf_size = check_positive_int(leaf_size, name="leaf_size")
        ids = np.arange(self._points.shape[0], dtype=np.intp)
        self._root = self._build(ids)
        self._tombstones = 0  # removed ids still stored in tree leaves
        #: Lazily rebuilt flat node layout (see repro.indexes.soa);
        #: invalidated by structural mutation, shared by snapshots.
        self._layout: FlatKDLayout | None = None

    def _repr_knobs(self) -> str:
        return f"leaf_size={self.leaf_size}"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: np.ndarray) -> _Node:
        """Build a subtree over ``ids`` by index-array partitioning.

        One permutation array is partitioned in place; nodes are ranges of
        it, medians come from ``partition_median`` (selection, not a
        sort), and no per-node Python id lists exist outside the leaves.
        The recursion's split values and id orderings are identical to the
        historical copying build, so tree structures are unchanged.
        """
        perm = np.array(ids, dtype=np.intp)
        return self._build_range(perm, 0, perm.shape[0])

    def _build_range(self, perm: np.ndarray, start: int, end: int) -> _Node:
        view = perm[start:end]
        pts = self._points[view]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        if end - start <= self.leaf_size:
            return _Node(lo=lo, hi=hi, point_ids=view.tolist())
        axis = int(np.argmax(hi - lo))
        if hi[axis] == lo[axis]:
            # All points identical along every axis: keep them in one leaf.
            return _Node(lo=lo, hi=hi, point_ids=view.tolist())
        coords = pts[:, axis]
        split = partition_median(coords)
        left_mask = coords <= split
        # A median equal to the maximum would send everything left; nudge the
        # split so both sides are non-empty.
        if left_mask.all():
            left_mask = coords < split
        node = _Node(lo=lo, hi=hi, axis=axis, split=split)
        n_left = apply_partition(view, left_mask)
        node.left = self._build_range(perm, start, start + n_left)
        node.right = self._build_range(perm, start + n_left, end)
        return node

    def check_invariants(self) -> None:
        """Verify box containment, split-side, and id-coverage invariants."""
        seen: list[int] = []
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            assert (node.lo <= node.hi).all(), "inverted bounding box"
            if node.is_leaf:
                seen.extend(node.point_ids)
                ids = np.asarray(node.point_ids, dtype=np.intp)
                if ids.shape[0]:
                    pts = self._points[ids]
                    assert (pts >= node.lo - 1e-12).all(), "point below box"
                    assert (pts <= node.hi + 1e-12).all(), "point above box"
                continue
            for child in (node.left, node.right):
                assert (child.lo >= node.lo - 1e-12).all(), "box breach (lo)"
                assert (child.hi <= node.hi + 1e-12).all(), "box breach (hi)"
                stack.append(child)
            # Split sides: the build sends `coords <= split` left and the
            # insert path routes equal coordinates left, so left holds
            # coords <= split and right holds coords >= split.
            assert (
                self._points[subtree_point_ids(node.left), node.axis]
                <= node.split + 1e-12
            ).all(), "left subtree crosses split"
            assert (
                self._points[subtree_point_ids(node.right), node.axis]
                >= node.split - 1e-12
            ).all(), "right subtree crosses split"
        assert len(seen) == len(set(seen)), "id stored in more than one leaf"
        stored = set(seen)
        active = set(int(i) for i in self.active_ids())
        assert active <= stored, "active point missing from tree leaves"

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _box_lower_bound(self, query: np.ndarray, node: _Node) -> float:
        nearest = np.clip(query, node.lo, node.hi)
        return self.metric.distance(query, nearest)

    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        query = as_query_point(query, dim=self.dim)
        queue = MinPriorityQueue()
        queue.push(self._box_lower_bound(query, self._root), self._root)
        while queue:
            key, item = queue.pop()
            if isinstance(item, _Node):
                if item.is_leaf:
                    ids = self._live_list(item.point_ids)
                    if ids:
                        dists = self.metric.to_point(
                            self._points[np.asarray(ids, dtype=np.intp)], query
                        )
                        for point_id, dist in zip(ids, dists):
                            queue.push(float(dist), int(point_id))
                else:
                    queue.push(self._box_lower_bound(query, item.left), item.left)
                    queue.push(self._box_lower_bound(query, item.right), item.right)
            else:
                yield item, key

    def knn(
        self, query, k: int, exclude_index: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        k = check_k(k)
        ids: list[int] = []
        dists: list[float] = []
        for point_id, dist in self.iter_neighbors(query):
            if point_id == exclude_index:
                continue
            ids.append(point_id)
            dists.append(dist)
            if len(ids) == k:
                break
        return np.asarray(ids, dtype=np.intp), np.asarray(dists, dtype=np.float64)

    def knn_distances(
        self, query_points, k: int, exclude_indices=None, prune_caps=None
    ) -> np.ndarray:
        """Batched k-th NN distances via a pruned block traversal.

        The whole batch walks the tree together: each node evaluates its
        box lower bound for every still-active query row with one
        ``clip`` + metric kernel, rows whose running k-th smallest
        distance rules the subtree out are dropped on entry, and leaves
        feed a single pairwise block into the shared
        :class:`~repro.indexes.batch_tools.KSmallestKeeper` pool.  The
        child on the side of the majority of rows is descended first so
        pruning radii shrink before the far side is attempted.
        """
        k = check_k(k)
        queries = as_query_rows(query_points, dim=self.dim, dtype=self._points.dtype)
        m = queries.shape[0]
        exclude = check_exclude_indices(exclude_indices, m)
        keeper = KSmallestKeeper(
            m, k, dtype=self._points.dtype, caps=prune_caps
        )
        if m and self.size:
            # A frozen snapshot can never take the trust-the-leaf-list
            # shortcut: the shared tree may hold ids inserted after the
            # mask froze, which must read as inactive.
            all_active = bool(self._active.all()) and not self._frozen
            if self.use_flat_descent:
                kd_flat_descent(
                    self._flat_layout(),
                    self.metric,
                    self._points,
                    None if all_active else self._active,
                    queries,
                    exclude,
                    keeper,
                )
            else:
                self._batch_visit(
                    self._root,
                    np.arange(m, dtype=np.intp),
                    queries,
                    exclude,
                    keeper,
                    all_active,
                )
        return keeper.result()

    def _flat_layout(self) -> FlatKDLayout:
        """The flat node arrays, rebuilt lazily after structural changes.

        Removals are mask flips and never invalidate the layout; inserts
        (in-place box growth, possible leaf splits) and compactions do.
        :meth:`snapshot` materializes the layout first, so frozen views
        share a current layout zero-copy and never rebuild.
        """
        if self._layout is None:
            self._layout = flatten_kd(
                self._root,
                self.dim,
                self._points.dtype,
                points=self._points,
                metric=self.metric,
            )
        return self._layout

    def adopt_flat_layout(self, layout: FlatKDLayout) -> None:
        """Adopt a prebuilt flat layout instead of flattening this tree.

        For replica trees (parallel workers): a version-0 tree is a pure
        deterministic bulk build, so a layout flattened from the original
        is node-for-node valid here — adopting it shares one physical
        copy of the node arrays (e.g. shared-memory views) across every
        worker instead of re-flattening per process.
        """
        if self.version != 0:
            raise ValueError(
                "can only adopt a layout into a pristine (version-0) tree; "
                "this one has been mutated"
            )
        if layout.leaf_ids.shape[0] != self._points.shape[0]:
            raise ValueError(
                f"layout indexes {layout.leaf_ids.shape[0]} points but this "
                f"tree stores {self._points.shape[0]}"
            )
        self._layout = layout

    def snapshot(self) -> "KDTreeIndex":
        self._flat_layout()
        return super().snapshot()

    def _batch_visit(
        self,
        node: _Node,
        rows: np.ndarray,
        queries: np.ndarray,
        exclude: np.ndarray,
        keeper: KSmallestKeeper,
        all_active: bool,
    ) -> None:
        bounds = box_lower_bounds(self.metric, queries[rows], node.lo, node.hi)
        rows = rows[bounds < keeper.kth[rows]]
        if rows.shape[0] == 0:
            return
        if node.is_leaf:
            if all_active:
                ids = np.asarray(node.point_ids, dtype=np.intp)
            else:
                ids = np.asarray(self._live_list(node.point_ids), dtype=np.intp)
            if ids.shape[0]:
                cand = self.metric.pairwise(queries[rows], self._points[ids])
                mask_excluded(cand, ids, exclude[rows])
                keeper.update(rows, cand)
            return
        left_votes = np.count_nonzero(queries[rows, node.axis] <= node.split)
        if 2 * left_votes >= rows.shape[0]:
            first, second = node.left, node.right
        else:
            first, second = node.right, node.left
        self._batch_visit(first, rows, queries, exclude, keeper, all_active)
        self._batch_visit(second, rows, queries, exclude, keeper, all_active)

    def range_count(self, query, radius: float) -> int:
        """Count points within ``radius`` by pruning whole boxes."""
        query = as_query_point(query, dim=self.dim)
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if self._box_lower_bound(query, node) > radius:
                continue
            if node.is_leaf:
                ids = self._live_list(node.point_ids)
                if ids:
                    dists = self.metric.to_point(
                        self._points[np.asarray(ids, dtype=np.intp)], query
                    )
                    count += int(np.count_nonzero(dists <= radius))
            else:
                stack.append(node.left)
                stack.append(node.right)
        return count

    # ------------------------------------------------------------------
    # Dynamic operations
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        point_id = self._append_point(point)
        # Structural change: box growth below mutates node boxes in place
        # (and a leaf split may attach a new subtree), so the flat layout
        # no longer mirrors the tree.
        self._layout = None
        point = self._points[point_id]
        parent = None
        node = self._root
        # Grow bounding boxes along the descent path.  In-place growth is
        # safe for snapshot readers: boxes only ever grow, so a concurrent
        # reader sees at worst looser pruning bounds, never tighter ones.
        while True:
            np.minimum(node.lo, point, out=node.lo)
            np.maximum(node.hi, point, out=node.hi)
            if node.is_leaf:
                break
            parent = node
            node = node.left if point[node.axis] <= node.split else node.right
        live = self._live_list(node.point_ids)
        if len(live) + 1 > self.leaf_size:
            # Split by building the replacement subtree fully, then
            # attaching it with a single reference assignment — snapshot
            # readers see either the old leaf or the complete new
            # subtree, never a half-mutated node.
            rebuilt = self._build(np.asarray(live + [point_id], dtype=np.intp))
            if parent is None:
                self._root = rebuilt
            elif parent.left is node:
                parent.left = rebuilt
            else:
                parent.right = rebuilt
        else:
            node.point_ids.append(point_id)
        return point_id

    def remove(self, index: int) -> None:
        """Deactivate a point; compact the tree when tombstones pile up.

        Leaves keep the ids of removed points (every query re-filters
        them) and bounding boxes never shrink, so a long churn of inserts
        and removals would otherwise decay both scan and pruning
        performance without bound.  Once live ids fall below
        ``compaction_threshold`` of everything stored in the tree, the
        tree is rebuilt over the survivors — amortized O(log n) per
        removal — which purges tombstones and re-tightens every box.
        """
        self._deactivate(index)
        self._tombstones += 1
        live = self.size
        if live and live < self.compaction_threshold * (live + self._tombstones):
            self.compact()

    def compact(self) -> None:
        """Rebuild the tree over the live points, purging all tombstones.

        Runs automatically once removals cross ``compaction_threshold``;
        callers (e.g. :meth:`repro.Service.compact`) may also invoke it
        eagerly before a latency-sensitive query burst.  The rebuilt tree
        is attached with one reference assignment (snapshot readers keep
        traversing the old structure) and bumps :attr:`version`.
        """
        self._check_writable()
        live = self.active_ids()
        if live.shape[0] == 0:
            # Nothing to rebuild over (the builder needs at least one
            # row for its bounding box); queries filter the tombstones.
            return
        self._root = self._build(live)
        self._layout = None
        self._tombstones = 0
        self._version += 1
