"""Vantage-point tree for general metric spaces.

A static metric tree: each internal node stores a vantage point and the
median distance ``mu`` from the vantage point to the points of its subtree.
Points at distance ``<= mu`` go to the inner child, the rest to the outer
child.  The triangle inequality yields lower bounds for both sides:

    inner subtree:  d(q, y) >= max(0, d(q, vp) - mu)
    outer subtree:  d(q, y) >= max(0, mu - d(q, vp))

(combined with the bound inherited from the parent), which drive the
best-first incremental search.  Vantage points are chosen by sampling a few
candidates and keeping the one with the largest distance spread — the
classic Yianilos heuristic.

The VP-tree exists in this library to exercise RDT's claim that the analysis
holds for *any* metric back-end: the tree never looks at coordinates, only
at metric evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.indexes.base import Index
from repro.utils.priority_queue import MinPriorityQueue
from repro.utils.rng import ensure_rng
from repro.utils.validation import as_query_point, check_positive_int

__all__ = ["VPTreeIndex"]


@dataclass
class _Node:
    vantage_id: int = -1
    mu: float = 0.0
    inner: Optional["_Node"] = None
    outer: Optional["_Node"] = None
    point_ids: Optional[list[int]] = None  # set on leaves only

    @property
    def is_leaf(self) -> bool:
        return self.point_ids is not None


class VPTreeIndex(Index):
    """Static vantage-point tree with incremental NN search."""

    name = "vp-tree"

    def __init__(
        self, data, metric=None, leaf_size: int = 16, n_candidates: int = 5, seed=0
    ) -> None:
        super().__init__(data, metric)
        self.leaf_size = check_positive_int(leaf_size, name="leaf_size")
        self.n_candidates = check_positive_int(n_candidates, name="n_candidates")
        self._rng = ensure_rng(seed)
        ids = np.arange(self._points.shape[0], dtype=np.intp)
        self._root = self._build(ids)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _select_vantage(self, ids: np.ndarray) -> int:
        """Pick the candidate vantage point with the widest distance spread."""
        n_cand = min(self.n_candidates, ids.shape[0])
        candidates = self._rng.choice(ids, size=n_cand, replace=False)
        sample = ids if ids.shape[0] <= 64 else self._rng.choice(ids, 64, replace=False)
        best_id, best_spread = int(candidates[0]), -1.0
        for cand in candidates:
            dists = self.metric.to_point(self._points[sample], self._points[cand])
            spread = float(dists.std())
            if spread > best_spread:
                best_id, best_spread = int(cand), spread
        return best_id

    def _build(self, ids: np.ndarray) -> _Node:
        if ids.shape[0] <= self.leaf_size:
            return _Node(point_ids=[int(i) for i in ids])
        vantage_id = self._select_vantage(ids)
        rest = ids[ids != vantage_id]
        dists = self.metric.to_point(self._points[rest], self._points[vantage_id])
        mu = float(np.median(dists))
        inner_mask = dists <= mu
        if inner_mask.all() or not inner_mask.any():
            # Degenerate distance distribution (e.g. duplicates): keep a leaf.
            return _Node(point_ids=[int(i) for i in ids])
        node = _Node(vantage_id=vantage_id, mu=mu)
        node.inner = self._build(rest[inner_mask])
        node.outer = self._build(rest[~inner_mask])
        return node

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        query = as_query_point(query, dim=self.dim)
        queue = MinPriorityQueue()
        queue.push(0.0, (self._root, 0.0))
        while queue:
            key, item = queue.pop()
            if isinstance(item, tuple):
                node, bound = item
                if node.is_leaf:
                    ids = [i for i in node.point_ids if self._active[i]]
                    if ids:
                        dists = self.metric.to_point(
                            self._points[np.asarray(ids, dtype=np.intp)], query
                        )
                        for point_id, dist in zip(ids, dists):
                            queue.push(float(dist), int(point_id))
                    continue
                d_vp = self.metric.distance(query, self._points[node.vantage_id])
                if self._active[node.vantage_id]:
                    queue.push(d_vp, int(node.vantage_id))
                inner_bound = max(bound, d_vp - node.mu, 0.0)
                outer_bound = max(bound, node.mu - d_vp, 0.0)
                queue.push(inner_bound, (node.inner, inner_bound))
                queue.push(outer_bound, (node.outer, outer_bound))
            else:
                yield item, key
