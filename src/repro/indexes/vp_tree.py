"""Vantage-point tree for general metric spaces.

A static metric tree: each internal node stores a vantage point and the
median distance ``mu`` from the vantage point to the points of its subtree.
Points at distance ``<= mu`` go to the inner child, the rest to the outer
child.  The triangle inequality yields lower bounds for both sides:

    inner subtree:  d(q, y) >= max(0, d(q, vp) - mu)
    outer subtree:  d(q, y) >= max(0, mu - d(q, vp))

(combined with the bound inherited from the parent), which drive the
best-first incremental search.  Vantage points are chosen by sampling a few
candidates and keeping the one with the largest distance spread — the
classic Yianilos heuristic.

The VP-tree exists in this library to exercise RDT's claim that the analysis
holds for *any* metric back-end: the tree never looks at coordinates, only
at metric evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.indexes.base import Index
from repro.indexes.batch_tools import (
    KSmallestKeeper,
    check_exclude_indices,
    mask_excluded,
)
from repro.indexes.build_tools import partition_median
from repro.utils.priority_queue import MinPriorityQueue
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    as_query_point,
    as_query_rows,
    check_k,
    check_positive_int,
)

__all__ = ["VPTreeIndex"]


@dataclass
class _Node:
    vantage_id: int = -1
    mu: float = 0.0
    inner: Optional["_Node"] = None
    outer: Optional["_Node"] = None
    point_ids: Optional[list[int]] = None  # set on leaves only

    @property
    def is_leaf(self) -> bool:
        return self.point_ids is not None


class VPTreeIndex(Index):
    """Static vantage-point tree with incremental NN search."""

    name = "vp-tree"

    def __init__(
        self, data, metric=None, leaf_size: int = 16, n_candidates: int = 5, seed=0
    ) -> None:
        super().__init__(data, metric)
        self.leaf_size = check_positive_int(leaf_size, name="leaf_size")
        self.n_candidates = check_positive_int(n_candidates, name="n_candidates")
        self._rng = ensure_rng(seed)
        ids = np.arange(self._points.shape[0], dtype=np.intp)
        self._root = self._build(ids)

    def _repr_knobs(self) -> str:
        return f"leaf_size={self.leaf_size}, n_candidates={self.n_candidates}"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _select_vantage(self, ids: np.ndarray) -> int:
        """Pick the candidate vantage point with the widest distance spread."""
        n_cand = min(self.n_candidates, ids.shape[0])
        candidates = self._rng.choice(ids, size=n_cand, replace=False)
        sample = ids if ids.shape[0] <= 64 else self._rng.choice(ids, 64, replace=False)
        best_id, best_spread = int(candidates[0]), -1.0
        for cand in candidates:
            dists = self.metric.to_point(self._points[sample], self._points[cand])
            spread = float(dists.std())
            if spread > best_spread:
                best_id, best_spread = int(cand), spread
        return best_id

    def _build(self, ids: np.ndarray) -> _Node:
        """Build a subtree over ``ids`` by index-array partitioning.

        A single permutation array is reordered in place — vantage point
        first, then the inner block, then the outer block — so each node is
        a range of it; the only per-node allocations are the vantage
        distance column and the leaf id lists.  Selection rule, median
        values, and id orderings match the historical copying build.
        """
        perm = np.array(ids, dtype=np.intp)
        return self._build_range(perm, 0, perm.shape[0])

    def _build_range(self, perm: np.ndarray, start: int, end: int) -> _Node:
        view = perm[start:end]
        if end - start <= self.leaf_size:
            return _Node(point_ids=view.tolist())
        vantage_id = self._select_vantage(view)
        rest = view[view != vantage_id]
        dists = self.metric.to_point(self._points[rest], self._points[vantage_id])
        mu = partition_median(dists)
        inner_mask = dists <= mu
        if inner_mask.all() or not inner_mask.any():
            # Degenerate distance distribution (e.g. duplicates): keep a leaf.
            return _Node(point_ids=view.tolist())
        node = _Node(vantage_id=vantage_id, mu=mu)
        # Reorder the slice in place: vantage first, inner block, outer block.
        n_inner = int(np.count_nonzero(inner_mask))
        view[0] = vantage_id
        view[1 : 1 + n_inner] = rest[inner_mask]
        view[1 + n_inner :] = rest[~inner_mask]
        node.inner = self._build_range(perm, start + 1, start + 1 + n_inner)
        node.outer = self._build_range(perm, start + 1 + n_inner, end)
        return node

    def check_invariants(self) -> None:
        """Verify mu-partition and id-coverage invariants."""
        seen: list[int] = []
        stack: list[_Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                seen.extend(node.point_ids)
                continue
            seen.append(node.vantage_id)
            vantage = self._points[node.vantage_id]
            for child, inner in ((node.inner, True), (node.outer, False)):
                ids = self._subtree_ids(child)
                if ids.shape[0]:
                    dists = self.metric.to_point(self._points[ids], vantage)
                    if inner:
                        assert (dists <= node.mu + 1e-12).all(), (
                            "inner subtree outside mu"
                        )
                    else:
                        assert (dists > node.mu - 1e-12).all(), (
                            "outer subtree inside mu"
                        )
                stack.append(child)
        assert sorted(seen) == list(range(self._points.shape[0])), (
            "tree does not store every id exactly once"
        )

    def _subtree_ids(self, node: _Node) -> np.ndarray:
        ids: list[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                ids.extend(current.point_ids)
            else:
                ids.append(current.vantage_id)
                stack.append(current.inner)
                stack.append(current.outer)
        return np.asarray(ids, dtype=np.intp)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        query = as_query_point(query, dim=self.dim)
        queue = MinPriorityQueue()
        queue.push(0.0, (self._root, 0.0))
        while queue:
            key, item = queue.pop()
            if isinstance(item, tuple):
                node, bound = item
                if node.is_leaf:
                    ids = self._live_list(node.point_ids)
                    if ids:
                        dists = self.metric.to_point(
                            self._points[np.asarray(ids, dtype=np.intp)], query
                        )
                        for point_id, dist in zip(ids, dists):
                            queue.push(float(dist), int(point_id))
                    continue
                d_vp = self.metric.distance(query, self._points[node.vantage_id])
                if self._active[node.vantage_id]:
                    queue.push(d_vp, int(node.vantage_id))
                inner_bound = max(bound, d_vp - node.mu, 0.0)
                outer_bound = max(bound, node.mu - d_vp, 0.0)
                queue.push(inner_bound, (node.inner, inner_bound))
                queue.push(outer_bound, (node.outer, outer_bound))
            else:
                yield item, key

    def knn_distances(
        self, query_points, k: int, exclude_indices=None, prune_caps=None
    ) -> np.ndarray:
        """Batched k-th NN distances via a pruned block traversal.

        The batch descends the tree together: each node computes the
        block's distances to its vantage point with one ``to_point``
        kernel, derives the triangle-inequality bounds for both children,
        and deactivates query rows whose running k-th smallest distance
        (shared :class:`~repro.indexes.batch_tools.KSmallestKeeper` pool)
        already prunes the subtree.  The child preferred by the majority
        of rows is descended first so radii shrink early.
        """
        k = check_k(k)
        queries = as_query_rows(query_points, dim=self.dim, dtype=self._points.dtype)
        m = queries.shape[0]
        exclude = check_exclude_indices(exclude_indices, m)
        keeper = KSmallestKeeper(
            m, k, dtype=self._points.dtype, caps=prune_caps
        )
        if m and self.size:
            rows = np.arange(m, dtype=np.intp)
            self._batch_visit(
                self._root, rows, np.zeros(m), queries, exclude, keeper
            )
        return keeper.result()

    def _batch_visit(
        self,
        node: _Node,
        rows: np.ndarray,
        bounds: np.ndarray,
        queries: np.ndarray,
        exclude: np.ndarray,
        keeper: KSmallestKeeper,
    ) -> None:
        alive = bounds < keeper.kth[rows]
        rows = rows[alive]
        if rows.shape[0] == 0:
            return
        bounds = bounds[alive]
        if node.is_leaf:
            ids = np.asarray(self._live_list(node.point_ids), dtype=np.intp)
            if ids.shape[0]:
                cand = self.metric.pairwise(queries[rows], self._points[ids])
                mask_excluded(cand, ids, exclude[rows])
                keeper.update(rows, cand)
            return
        d_vp = self.metric.to_point(queries[rows], self._points[node.vantage_id])
        if self._active[node.vantage_id]:
            cand = d_vp[:, None].copy()
            mask_excluded(
                cand, np.asarray([node.vantage_id], dtype=np.intp), exclude[rows]
            )
            keeper.update(rows, cand)
        inner_bounds = np.maximum(bounds, d_vp - node.mu)
        outer_bounds = np.maximum(bounds, node.mu - d_vp)
        inner_votes = np.count_nonzero(d_vp <= node.mu)
        if 2 * inner_votes >= rows.shape[0]:
            order = ((node.inner, inner_bounds), (node.outer, outer_bounds))
        else:
            order = ((node.outer, outer_bounds), (node.inner, inner_bounds))
        for child, child_bounds in order:
            self._batch_visit(child, rows, child_bounds, queries, exclude, keeper)
