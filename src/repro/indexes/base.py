"""The incremental nearest-neighbor index protocol.

Algorithm 1 of the paper requires only "an index structure that can
efficiently process incremental nearest neighbor queries".  This module
defines that contract.  Every concrete index in :mod:`repro.indexes`
implements:

``iter_neighbors(query)``
    A lazy iterator over ``(point_id, distance)`` pairs in nondecreasing
    distance order — the *incremental forward search* that drives the RDT
    filter phase.  Ties may be yielded in any order; RDT's rank bookkeeping
    drains whole tie groups before applying its termination test.

``knn(query, k, exclude_index=None)``
    The k nearest neighbors (ids and distances).  ``exclude_index`` removes a
    single member point from consideration — used to compute the kNN distance
    of a member point over ``S \\ {x}`` (the library-wide rank convention,
    see DESIGN.md).

``knn_distance(query, k, exclude_index=None)``
    Just the k-th nearest neighbor distance.

``knn_distances(points, k, exclude_indices=None)``
    The batched form of ``knn_distance``: k-th NN distances of many query
    rows in one call, with an optional per-row excluded member id.  The
    default implementation is a chunked pairwise scan at numpy speed
    (:func:`repro.indexes.bulk_knn.chunked_knn_distances`); concrete
    indexes may override it with a pruned batch search.  This is the
    capability the batched RkNN engine (:meth:`repro.core.RDT.query_batch`)
    builds its refinement phase on.

``range_count(query, radius)`` / ``range_search(query, radius)``
    Counting and reporting versions of the ball query (SFT's verification
    step uses the counting version).

Dynamic indexes additionally support ``insert`` / ``remove``; the
``supports_insert`` / ``supports_remove`` flags advertise the capability.

Point identifiers are dense integers assigned in insertion order and are
never re-used; removed ids stay allocated but inactive.

**Versioning and snapshots.** Every index carries a monotonically
increasing :attr:`version`, bumped by each insert, remove, and
compaction.  It is the one staleness signal the rest of the library
reads: engines record ``built_at_version`` and answer
``is_stale(index)`` (:mod:`repro.core.protocol`), and the
:class:`repro.Service` facade derives its churn epoch from it.
:meth:`snapshot` returns a cheap copy-on-read view — the active mask is
frozen (removals are mask flips, so a copied mask is a full MVCC read
view), the point matrix reference is pinned (``_append_point`` replaces
the matrix instead of growing it, so pinned rows never change), and the
version is pinned — through which a reader never observes a
half-applied removal.  Whether concurrent *structural* mutation
(insert, compaction) of the live index can corrupt a previously taken
snapshot's reads is a per-backend property advertised by
:attr:`snapshot_stable`; the Service layer gates writers on in-flight
readers for backends that are not snapshot-stable.
"""

from __future__ import annotations

import copy
from typing import Iterator

import numpy as np

from repro.distances import Metric, get_metric
from repro.utils.validation import as_dataset, as_query_point, as_query_rows, check_k

__all__ = ["Index", "IndexCapabilityError"]


class IndexCapabilityError(RuntimeError):
    """Raised when an optional index capability (insert/remove) is missing."""


class Index:
    """Abstract base class for incremental nearest-neighbor indexes."""

    #: Human-readable identifier used by the registry and reports.
    name: str = "abstract"
    #: Whether :meth:`insert` is implemented.
    supports_insert: bool = False
    #: Whether :meth:`remove` is implemented.
    supports_remove: bool = False
    #: Whether structural mutations of the live index (insert,
    #: compaction, eager removal) leave the reads of previously taken
    #: :meth:`snapshot` views consistent.  Static backends are trivially
    #: stable; dynamic ones must publish structural changes atomically
    #: (build the replacement fully, attach with one reference
    #: assignment) to claim it.  Non-stable backends still version and
    #: snapshot correctly — but a concurrency layer must drain readers
    #: before mutating (see ``repro.Service``).
    snapshot_stable: bool = True
    #: True on views returned by :meth:`snapshot`; such views refuse all
    #: mutation.
    _frozen: bool = False

    def __init__(self, data, metric: str | Metric | None = None) -> None:
        # The metric owns the storage dtype policy: resolve it first and
        # coerce the point matrix to its dtype (float64 unless the caller
        # opted into a float32 metric).
        self.metric = get_metric(metric)
        self._points = as_dataset(data, dtype=self.metric.dtype)
        self._active = np.ones(self._points.shape[0], dtype=bool)
        self._version = 0

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    @property
    def points(self) -> np.ndarray:
        """The raw point matrix, including rows of removed points."""
        return self._points

    @property
    def dim(self) -> int:
        """Representational dimension of the indexed points."""
        return self._points.shape[1]

    @property
    def size(self) -> int:
        """Number of *active* points currently indexed."""
        return int(self._active.sum())

    @property
    def version(self) -> int:
        """Monotonically increasing data version.

        Bumped by every :meth:`insert`, :meth:`remove`, and compaction.
        Snapshots pin the version they were taken at; engines record it
        at build time and compare (:meth:`repro.EngineBase.is_stale`).
        """
        return self._version

    @property
    def is_snapshot(self) -> bool:
        """Whether this object is a frozen :meth:`snapshot` view."""
        return self._frozen

    def snapshot(self) -> "Index":
        """A frozen copy-on-read view of the current state.

        O(n) in the active mask (one boolean copy) and O(1) in
        everything else: the point matrix reference is pinned (append
        replaces the matrix, so pinned rows never mutate) and tree
        structure is shared.  The view answers every query method,
        refuses ``insert``/``remove``/compaction, and keeps reporting
        the :attr:`version` it was taken at.  Reads through the view
        never observe a removal applied to the live index afterwards;
        see :attr:`snapshot_stable` for the structural-mutation story.
        """
        view = copy.copy(self)
        active = self._active.copy()
        active.setflags(write=False)
        view._active = active
        view._frozen = True
        return view

    def __len__(self) -> int:
        return self.size

    def is_active(self, index: int) -> bool:
        """Whether the point id refers to a live (non-removed) point."""
        return bool(self._active[index])

    def get_point(self, index: int) -> np.ndarray:
        """Return the coordinates of an active point by id."""
        if not self._active[index]:
            raise KeyError(f"point id {index} has been removed")
        return self._points[index]

    def active_ids(self) -> np.ndarray:
        """Ids of all active points, ascending."""
        return np.flatnonzero(self._active)

    # ------------------------------------------------------------------
    # Query protocol
    # ------------------------------------------------------------------
    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        """Yield ``(point_id, distance)`` pairs in nondecreasing distance order."""
        raise NotImplementedError

    def knn(
        self, query, k: int, exclude_index: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, distances)`` of the ``k`` nearest neighbors of ``query``.

        The default implementation drains :meth:`iter_neighbors`; concrete
        indexes may override it with a bounded search.  If fewer than ``k``
        active points exist, all of them are returned.
        """
        k = check_k(k)
        query = as_query_point(query, dim=self.dim)
        ids: list[int] = []
        dists: list[float] = []
        for point_id, dist in self.iter_neighbors(query):
            if exclude_index is not None and point_id == exclude_index:
                continue
            ids.append(point_id)
            dists.append(dist)
            if len(ids) == k:
                break
        return np.asarray(ids, dtype=np.intp), np.asarray(dists, dtype=np.float64)

    def knn_distance(self, query, k: int, exclude_index: int | None = None) -> float:
        """Return the k-th nearest neighbor distance of ``query``."""
        _, dists = self.knn(query, k, exclude_index=exclude_index)
        if dists.shape[0] < k:
            return float("inf")
        return float(dists[-1])

    def knn_distances(
        self, points, k: int, exclude_indices=None, prune_caps=None
    ) -> np.ndarray:
        """Batched k-th NN distances for many query rows at once.

        Parameters
        ----------
        points:
            ``(m, dim)`` array of query rows (need not be dataset members).
        k:
            Neighborhood size; rows with fewer than ``k`` eligible points
            yield ``inf``, matching :meth:`knn_distance`.
        exclude_indices:
            Optional ``(m,)`` integer array: for each row, the id of one
            member point to exclude from that row's neighborhood (negative
            entries exclude nothing).  This is the batched form of
            ``exclude_index`` and serves the library-wide self-exclusive
            kNN-distance convention.
        prune_caps:
            Optional ``(m,)`` float array of externally known *upper
            bounds* on each row's answer (``inf`` = no bound).  A pure
            pruning hint: backends may use it to seed their pruning radii
            (see :class:`~repro.indexes.batch_tools.KSmallestKeeper`),
            but the returned distances are identical with or without it.
            The chunked default scans everything and ignores it.

        The default is a chunked pairwise scan over the active points —
        one vectorized kernel per chunk instead of ``m`` Python-level
        searches.  Note the accounting consequence: the scan charges
        ``n`` distance calls per row even on backends whose per-point
        ``knn_distance`` would prune most of the data, trading the
        machine-independent call metric for (much) lower interpreter
        overhead.  Every tree backend overrides this with a pruned block
        traversal built on :mod:`repro.indexes.batch_tools` that keeps
        its asymptotics (see the capability matrix in DESIGN.md); an
        override must preserve the semantics (values may differ from the
        per-point path only by kernel round-off, which the tolerance
        policy in :mod:`repro.utils.tolerance` absorbs).
        """
        from repro.indexes.bulk_knn import chunked_knn_distances

        k = check_k(k)
        points = as_query_rows(points, dim=self.dim, dtype=self._points.dtype)
        active = self.active_ids()
        return chunked_knn_distances(
            points,
            self._points[active],
            k,
            self.metric,
            point_ids=active,
            exclude_ids=exclude_indices,
        )

    def range_search(self, query, radius: float) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(ids, distances)`` of points within ``radius`` (inclusive)."""
        query = as_query_point(query, dim=self.dim)
        ids: list[int] = []
        dists: list[float] = []
        for point_id, dist in self.iter_neighbors(query):
            if dist > radius:
                break
            ids.append(point_id)
            dists.append(dist)
        return np.asarray(ids, dtype=np.intp), np.asarray(dists, dtype=np.float64)

    def range_count(self, query, radius: float) -> int:
        """Return the number of points within ``radius`` of ``query`` (inclusive)."""
        ids, _ = self.range_search(query, radius)
        return int(ids.shape[0])

    # ------------------------------------------------------------------
    # Optional dynamic operations
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        """Insert a new point; returns its id.  Optional capability."""
        raise IndexCapabilityError(f"{type(self).__name__} does not support insert")

    def remove(self, index: int) -> None:
        """Remove the point with the given id.  Optional capability."""
        raise IndexCapabilityError(f"{type(self).__name__} does not support remove")

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------
    def _check_writable(self) -> None:
        if self._frozen:
            raise IndexCapabilityError(
                f"{type(self).__name__} snapshot views are read-only; "
                "mutate the live index and take a fresh snapshot"
            )

    def _append_point(self, point) -> int:
        """Append a validated point row; returns the new id."""
        self._check_writable()
        point = as_query_point(
            point, dim=self.dim, name="point", dtype=self._points.dtype
        )
        self._points = np.vstack([self._points, point[None, :]])
        self._active = np.append(self._active, True)
        self._version += 1
        return self._points.shape[0] - 1

    def _deactivate(self, index: int) -> None:
        self._check_writable()
        if not self._active[index]:
            raise KeyError(f"point id {index} has already been removed")
        self._active[index] = False
        self._version += 1

    def _live_list(self, ids) -> list[int]:
        """The subset of ``ids`` live in this view, bounds-safe.

        Snapshot views share tree structure with the live index, and an
        insert may append an id the frozen mask has never heard of; such
        ids read as inactive here instead of indexing out of bounds.
        """
        mask = self._active
        limit = mask.shape[0]
        return [i for i in ids if i < limit and mask[i]]

    def _repr_knobs(self) -> str:
        """Backend-specific constructor knobs shown by :meth:`__repr__`."""
        return ""

    def __repr__(self) -> str:
        knobs = self._repr_knobs()
        return (
            f"{type(self).__name__}(n={self.size}, dim={self.dim}, "
            f"metric={self.metric.name}{', ' + knobs if knobs else ''})"
        )
