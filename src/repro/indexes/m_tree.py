"""M-tree: a dynamic, balanced index for general metric spaces.

Implements the structure of Ciaccia, Patella and Zezula (VLDB 1997), which
the MRkNNCoP baseline builds on.  Every node holds up to ``capacity``
entries; internal entries are *routing objects* — a center point, a covering
radius bounding the subtree, and the distance to the parent center — and
leaf entries are data points with their distance to the parent center.

Insertion descends to the leaf whose routing ball needs the least
enlargement; overflowing nodes are split with the mM_RAD promotion policy
(sample candidate promotion pairs, partition by generalized hyperplane,
minimize the larger covering radius).  Splits propagate upward, growing a
new root when the old one overflows, so the tree stays balanced.

Construction defaults to a **bulk load** (``bulk_build=True``): sampled
pivots recursively partition the whole id block into capacity-sized
nodes, with every distance — assignment, covering radii, parent
distances — produced by vectorized ``Metric.to_point`` columns instead
of one scalar metric call per (point, node) pair.  Covering radii come
out *exact* (the max of each pivot's distance column over its block)
rather than the accumulated upper bounds the insert path maintains, so
the bulk tree is at least as tight as an insert-built one; both answer
identical queries.  The insert path remains for dynamic use and as the
benchmark baseline (``benchmarks/test_build_backends.py``).

The incremental search is best-first over the bound

    d(q, y) >= max(0, d(q, center) - radius)        for y under a routing entry,

which is exact for any metric by the triangle inequality.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.indexes.base import Index
from repro.indexes.batch_tools import (
    KSmallestKeeper,
    check_exclude_indices,
    mask_excluded,
)
from repro.utils.priority_queue import MinPriorityQueue
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    as_query_point,
    as_query_rows,
    check_k,
    check_positive_int,
)

__all__ = ["MTreeIndex"]


class _Entry:
    """Routing entry (points at a child node) or leaf entry (a data point)."""

    __slots__ = ("center_id", "radius", "child", "dist_to_parent")

    def __init__(
        self,
        center_id: int,
        radius: float = 0.0,
        child: Optional["_MNode"] = None,
    ) -> None:
        self.center_id = center_id
        self.radius = radius
        self.child = child
        self.dist_to_parent = 0.0

    @property
    def is_leaf_entry(self) -> bool:
        return self.child is None


class _MNode:
    __slots__ = ("is_leaf", "entries", "parent_entry", "parent_node")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.entries: list[_Entry] = []
        self.parent_entry: Optional[_Entry] = None
        self.parent_node: Optional["_MNode"] = None


class MTreeIndex(Index):
    """Dynamic M-tree supporting incremental forward NN search."""

    name = "m-tree"
    supports_insert = True
    supports_remove = True  # lazy removal: points are masked, not detached
    #: Inserts split routing nodes in place (entries are redistributed
    #: between the two halves while readers may be mid-descent), so
    #: snapshot views sharing the structure are not mutation-safe.
    snapshot_stable = False

    def __init__(
        self,
        data,
        metric=None,
        capacity: int = 32,
        seed=0,
        bulk_build: bool = True,
    ) -> None:
        super().__init__(data, metric)
        self.capacity = check_positive_int(capacity, name="capacity")
        if self.capacity < 4:
            raise ValueError(f"capacity must be >= 4, got {capacity}")
        self._rng = ensure_rng(seed)
        self._root = _MNode(is_leaf=True)
        n = self._points.shape[0]
        if bulk_build and n > self.capacity:
            self._root = self._bulk_load(np.arange(n, dtype=np.intp))
        else:
            for point_id in range(n):
                self._insert_id(point_id)

    def _repr_knobs(self) -> str:
        return f"capacity={self.capacity}"

    # ------------------------------------------------------------------
    # Bulk loading (sampled-pivot recursive partitioning)
    # ------------------------------------------------------------------
    def _pivot_columns(self, ids: np.ndarray, pivots: np.ndarray) -> np.ndarray:
        """Distances from every id row to every pivot, one ``to_point``
        column per pivot.  Columns are bit-identical to scalar
        ``_dist_ids`` calls (the invariant checker and the insert path
        compare against the same kernel), which a ``pairwise`` block
        would not guarantee."""
        block = self._points[ids]
        out = np.empty((ids.shape[0], pivots.shape[0]), dtype=np.float64)
        for col, pivot in enumerate(pivots):
            out[:, col] = self.metric.to_point(block, self._points[pivot])
        return out

    def _bulk_load(self, ids: np.ndarray) -> _MNode:
        pivot = int(ids[self._rng.integers(ids.shape[0])])
        d_pivot = self.metric.to_point(self._points[ids], self._points[pivot])
        routing = self._bulk_subtree(ids, pivot, d_pivot)
        root = routing.child
        root.parent_entry = None  # the root carries no routing entry
        return root

    def _bulk_subtree(
        self, ids: np.ndarray, pivot_id: int, d_pivot: np.ndarray
    ) -> _Entry:
        """Build a subtree over ``ids`` and return its routing entry.

        ``d_pivot`` holds d(pivot, x) for every x in ``ids``; the covering
        radius is its exact maximum.  The caller fills in
        ``dist_to_parent``.
        """
        radius = float(d_pivot.max()) if d_pivot.shape[0] else 0.0
        if ids.shape[0] <= self.capacity:
            node = _MNode(is_leaf=True)
            for pos in range(ids.shape[0]):
                entry = _Entry(int(ids[pos]))
                entry.dist_to_parent = float(d_pivot[pos])
                node.entries.append(entry)
            routing = _Entry(pivot_id, radius=radius, child=node)
            node.parent_entry = routing
            return routing
        # Sample one pivot per child and assign every id to its nearest
        # pivot with one distance column per pivot.
        fanout = min(self.capacity, -(-ids.shape[0] // self.capacity))
        pivot_pos = np.sort(
            self._rng.choice(ids.shape[0], size=fanout, replace=False)
        )
        pivots = ids[pivot_pos]
        dists = self._pivot_columns(ids, pivots)
        assign = np.argmin(dists, axis=1)
        groups = [np.flatnonzero(assign == col) for col in range(fanout)]
        if max(group.shape[0] for group in groups) == ids.shape[0]:
            # Degenerate geometry (e.g. all points identical): nearest-pivot
            # assignment made no progress, so slice the block evenly instead.
            groups = [g for g in np.array_split(np.arange(ids.shape[0]), fanout)]
            pivot_pos = np.asarray([int(g[0]) for g in groups], dtype=np.intp)
            pivots = ids[pivot_pos]
            dists = self._pivot_columns(ids, pivots)
        node = _MNode(is_leaf=False)
        for col, group in enumerate(groups):
            if group.shape[0] == 0:
                continue
            child_entry = self._bulk_subtree(
                ids[group], int(pivots[col]), dists[group, col]
            )
            child_entry.dist_to_parent = float(d_pivot[pivot_pos[col]])
            child_entry.child.parent_node = node
            node.entries.append(child_entry)
        routing = _Entry(pivot_id, radius=radius, child=node)
        node.parent_entry = routing
        return routing

    # ------------------------------------------------------------------
    # Construction / maintenance
    # ------------------------------------------------------------------
    def _dist_ids(self, a: int, b: int) -> float:
        return self.metric.distance(self._points[a], self._points[b])

    def _entry_centers(self, entries: list[_Entry]) -> np.ndarray:
        return np.fromiter(
            (entry.center_id for entry in entries), np.intp, count=len(entries)
        )

    def _insert_id(self, point_id: int) -> None:
        point = self._points[point_id]
        node = self._root
        d_parent = 0.0
        # Descend to a leaf, enlarging covering radii along the way.  Each
        # level evaluates all entry centers with one to_point call; the
        # chosen entry's distance is carried so neither the enlargement
        # check nor the leaf entry's parent distance re-issues a call.
        while not node.is_leaf:
            dists = self.metric.to_point(
                self._points[self._entry_centers(node.entries)], point
            )
            radii = np.fromiter(
                (entry.radius for entry in node.entries),
                np.float64,
                count=len(node.entries),
            )
            inside = dists <= radii
            if inside.any():
                best_col = int(np.argmin(np.where(inside, dists, np.inf)))
            else:
                best_col = int(np.argmin(dists - radii))
            best = node.entries[best_col]
            d_parent = float(dists[best_col])
            if d_parent > best.radius:
                best.radius = d_parent
            node = best.child
        entry = _Entry(point_id)
        if node.parent_entry is not None:
            entry.dist_to_parent = d_parent
        node.entries.append(entry)
        if len(node.entries) > self.capacity:
            self._split(node)

    def _split(self, node: _MNode) -> None:
        entries = node.entries
        ids = [e.center_id for e in entries]
        promo_a, promo_b = self._promote(ids)
        centers = self._points[self._entry_centers(entries)]
        d_a = self.metric.to_point(centers, self._points[promo_a])
        d_b = self.metric.to_point(centers, self._points[promo_b])
        group_a: list[_Entry] = []
        group_b: list[_Entry] = []
        for pos, entry in enumerate(entries):
            (group_a if d_a[pos] <= d_b[pos] else group_b).append(entry)
        # Guard against empty partitions under pathological ties.
        if not group_a:
            group_a.append(group_b.pop())
        if not group_b:
            group_b.append(group_a.pop())

        node_a = _MNode(is_leaf=node.is_leaf)
        node_b = _MNode(is_leaf=node.is_leaf)
        entry_a = self._make_routing_entry(promo_a, group_a, node_a)
        entry_b = self._make_routing_entry(promo_b, group_b, node_b)

        parent = node.parent_node
        if parent is None:
            new_root = _MNode(is_leaf=False)
            self._adopt(new_root, entry_a)
            self._adopt(new_root, entry_b)
            self._root = new_root
            return
        parent.entries.remove(node.parent_entry)
        self._adopt(parent, entry_a)
        self._adopt(parent, entry_b)
        if len(parent.entries) > self.capacity:
            self._split(parent)

    def _promote(self, ids: list[int]) -> tuple[int, int]:
        """mM_RAD-style promotion: sample pairs, pick the best separation."""
        n = len(ids)
        n_samples = min(10, n * (n - 1) // 2)
        pairs = [self._rng.choice(n, size=2, replace=False) for _ in range(n_samples)]
        if not pairs:
            return ids[0], ids[1]
        left = np.asarray([ids[int(i)] for i, _ in pairs], dtype=np.intp)
        right = np.asarray([ids[int(j)] for _, j in pairs], dtype=np.intp)
        scores = self.metric.paired(self._points[left], self._points[right])
        best = int(np.argmax(scores))
        return int(left[best]), int(right[best])

    def _make_routing_entry(
        self, center_id: int, group: list[_Entry], child: _MNode
    ) -> _Entry:
        child.entries = group
        dists = self.metric.to_point(
            self._points[self._entry_centers(group)], self._points[center_id]
        )
        radius = 0.0
        for pos, entry in enumerate(group):
            d = float(dists[pos])
            entry.dist_to_parent = d
            reach = d if entry.is_leaf_entry else d + entry.radius
            if reach > radius:
                radius = reach
            if not entry.is_leaf_entry:
                entry.child.parent_node = child
        routing = _Entry(center_id, radius=radius, child=child)
        child.parent_entry = routing
        for entry in group:
            if not entry.is_leaf_entry:
                entry.child.parent_entry = entry
        return routing

    def _adopt(self, parent: _MNode, entry: _Entry) -> None:
        parent.entries.append(entry)
        entry.child.parent_node = parent
        entry.child.parent_entry = entry
        if parent.parent_entry is not None:
            entry.dist_to_parent = self._dist_ids(
                parent.parent_entry.center_id, entry.center_id
            )

    @property
    def root(self) -> _MNode:
        """The root node (read-only structural access for analyses built
        on top of the tree, e.g. MRkNNCoP's aggregated bounds)."""
        return self._root

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def iter_neighbors(self, query) -> Iterator[tuple[int, float]]:
        query = as_query_point(query, dim=self.dim)
        queue = MinPriorityQueue()
        queue.push(0.0, self._root)
        while queue:
            key, item = queue.pop()
            if isinstance(item, _MNode):
                for entry in item.entries:
                    d = self.metric.distance(
                        query, self._points[entry.center_id]
                    )
                    if entry.is_leaf_entry:
                        if self._active[entry.center_id]:
                            queue.push(d, int(entry.center_id))
                    else:
                        queue.push(max(0.0, d - entry.radius), entry.child)
            else:
                yield item, key

    def knn_distances(
        self, query_points, k: int, exclude_indices=None, prune_caps=None
    ) -> np.ndarray:
        """Batched k-th NN distances via a pruned block traversal.

        Each visited node evaluates the active query block against all of
        its entry centers with one pairwise kernel.  Leaf entries feed the
        shared :class:`~repro.indexes.batch_tools.KSmallestKeeper` pool
        directly (removed points' columns are masked to ``inf`` — removal
        is lazy here); routing entries lower the center distances by their
        covering radius to bound the subtree, and query rows whose running
        k-th smallest distance already prunes it are deactivated before
        descending.  Subtrees are visited in ascending mean bound so radii
        shrink before the far ones are attempted.
        """
        k = check_k(k)
        queries = as_query_rows(query_points, dim=self.dim, dtype=self._points.dtype)
        m = queries.shape[0]
        exclude = check_exclude_indices(exclude_indices, m)
        keeper = KSmallestKeeper(
            m, k, dtype=self._points.dtype, caps=prune_caps
        )
        if m and self.size:
            rows = np.arange(m, dtype=np.intp)
            self._batch_visit(self._root, rows, np.zeros(m), queries, exclude, keeper)
        return keeper.result()

    def _batch_visit(
        self,
        node: _MNode,
        rows: np.ndarray,
        bounds: np.ndarray,
        queries: np.ndarray,
        exclude: np.ndarray,
        keeper: KSmallestKeeper,
    ) -> None:
        alive = bounds < keeper.kth[rows]
        rows = rows[alive]
        if rows.shape[0] == 0 or not node.entries:
            return
        center_ids = np.asarray(
            [entry.center_id for entry in node.entries], dtype=np.intp
        )
        dists = self.metric.pairwise(queries[rows], self._points[center_ids])
        if node.is_leaf:
            cand = dists
            inactive = ~self._active[center_ids]
            if inactive.any():
                cand[:, inactive] = np.inf
            mask_excluded(cand, center_ids, exclude[rows])
            keeper.update(rows, cand)
            return
        radii = np.asarray([entry.radius for entry in node.entries])
        child_bounds = np.maximum(0.0, dists - radii[None, :])
        for col in np.argsort(child_bounds.mean(axis=0)):
            self._batch_visit(
                node.entries[col].child,
                rows,
                child_bounds[:, col],
                queries,
                exclude,
                keeper,
            )

    def range_count(self, query, radius: float) -> int:
        query = as_query_point(query, dim=self.dim)
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                d = self.metric.distance(query, self._points[entry.center_id])
                if entry.is_leaf_entry:
                    if d <= radius and self._active[entry.center_id]:
                        count += 1
                elif d - entry.radius <= radius:
                    stack.append(entry.child)
        return count

    # ------------------------------------------------------------------
    # Dynamic operations
    # ------------------------------------------------------------------
    def insert(self, point) -> int:
        point_id = self._append_point(point)
        self._insert_id(point_id)
        return point_id

    def remove(self, index: int) -> None:
        # Lazy removal: the routing structure keeps the point as a pivot but
        # queries never report it.  Covering radii remain valid upper bounds.
        self._deactivate(index)

    # ------------------------------------------------------------------
    # Invariant checking (used by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify covering-radius and parent-distance invariants.

        The M-tree guarantee is that every routing ball covers all *points*
        stored beneath it (not that child balls nest inside parent balls —
        insertion does not maintain the stronger property, and the search
        bound does not need it).
        """
        stack: list[tuple[_MNode, Optional[_Entry]]] = [(self._root, None)]
        reported: set[int] = set()
        while stack:
            node, routing = stack.pop()
            assert len(node.entries) <= self.capacity, "node overflow"
            for entry in node.entries:
                if routing is not None:
                    d = self._dist_ids(routing.center_id, entry.center_id)
                    assert abs(d - entry.dist_to_parent) <= 1e-9, (
                        "stale parent distance"
                    )
                if entry.is_leaf_entry:
                    reported.add(entry.center_id)
                else:
                    assert entry.child.parent_entry is entry, "broken child link"
                    subtree_ids = self._collect_points(entry.child)
                    dists = self.metric.to_point(
                        self._points[np.asarray(subtree_ids, dtype=np.intp)],
                        self._points[entry.center_id],
                    )
                    assert float(dists.max()) <= entry.radius + 1e-9, (
                        "covering radius does not cover subtree points"
                    )
                    stack.append((entry.child, entry))
        expected = set(range(self._points.shape[0]))
        assert reported == expected, "leaf entries do not cover all points"

    def _collect_points(self, node: _MNode) -> list[int]:
        ids: list[int] = []
        stack = [node]
        while stack:
            current = stack.pop()
            for entry in current.entries:
                if entry.is_leaf_entry:
                    ids.append(entry.center_id)
                else:
                    stack.append(entry.child)
        return ids
